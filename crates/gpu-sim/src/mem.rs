//! Global-memory coalescing analysis and shared-memory bookkeeping.
//!
//! The paper's GPU mapping hinges on coalesced access (§IV-B, the
//! `view_matrix_coal_offset` accessor). [`MemTracker`] receives the
//! *actual addresses* a warp touches and counts the distinct 32-byte
//! segments — one transaction each — so a kernel using the coalesced
//! layout is measurably cheaper than a strided one, for real, not by
//! fiat.

use std::collections::BTreeSet;

/// Bytes per memory transaction segment (L2 sector granularity).
pub const SEGMENT_BYTES: usize = 32;

/// Counts global-memory transactions from per-warp address traces.
#[derive(Debug, Default)]
pub struct MemTracker {
    transactions: u64,
    scratch: BTreeSet<usize>,
}

impl MemTracker {
    /// Creates an empty tracker.
    pub fn new() -> MemTracker {
        MemTracker::default()
    }

    /// Records one warp-wide access: `addrs` are the byte addresses each
    /// active lane touches (one element per lane). The number of distinct
    /// segments is added to the transaction count.
    pub fn warp_access(&mut self, addrs: impl IntoIterator<Item = usize>) {
        self.scratch.clear();
        for a in addrs {
            self.scratch.insert(a / SEGMENT_BYTES);
        }
        self.transactions += self.scratch.len() as u64;
    }

    /// Records a sequential bulk access of `len` elements of `elem_bytes`
    /// each starting at `base` (e.g. border stripes copied by consecutive
    /// threads): fully coalesced by construction.
    pub fn bulk_access(&mut self, base: usize, len: usize, elem_bytes: usize) {
        if len == 0 {
            return;
        }
        let first = base / SEGMENT_BYTES;
        let last = (base + len * elem_bytes - 1) / SEGMENT_BYTES;
        self.transactions += (last - first + 1) as u64;
    }

    /// Records a strided access of `len` elements with a byte stride
    /// large enough that every element occupies its own segment (the
    /// uncoalesced worst case a naive layout produces).
    pub fn strided_access(&mut self, len: usize) {
        self.transactions += len as u64;
    }

    /// Total transactions so far.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

/// Shared-memory capacity checking for one block.
#[derive(Debug, Default)]
pub struct SharedMem {
    used: usize,
    peak: usize,
}

impl SharedMem {
    /// Creates an empty arena.
    pub fn new() -> SharedMem {
        SharedMem::default()
    }

    /// Reserves `bytes`; returns the running total.
    pub fn alloc(&mut self, bytes: usize) -> usize {
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.used
    }

    /// Releases `bytes` (end of a stripe/tile scope).
    pub fn free(&mut self, bytes: usize) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Peak usage.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_warp_is_few_transactions() {
        let mut t = MemTracker::new();
        // 32 consecutive i32 reads = 128 bytes = 4 segments.
        t.warp_access((0..32).map(|l| l * 4));
        assert_eq!(t.transactions(), 4);
    }

    #[test]
    fn strided_warp_is_many_transactions() {
        let mut t = MemTracker::new();
        // 32 reads with a 1 KiB stride: one segment each.
        t.warp_access((0..32).map(|l| l * 1024));
        assert_eq!(t.transactions(), 32);
    }

    #[test]
    fn paper_coalesced_offset_mapping_is_coalesced() {
        // The paper's view_matrix_coal_offset maps (i, j) to
        // ((i + oi + j + oj + 2) % mem_h) * mem_w + (j + oj).
        // Along a warp sweeping j with fixed i, consecutive lanes hit
        // consecutive columns of the SAME matrix row modulo wrap: check
        // the address deltas are mostly contiguous.
        let mem_h = 64usize;
        let mem_w = 4096usize;
        let (i, oi, oj) = (17usize, 3usize, 128usize);
        let mut t = MemTracker::new();
        t.warp_access((0..32).map(|lane| {
            let j = 100 + lane;
            let row = (i + oi + j + oj + 2) % mem_h;
            (row * mem_w + j + oj) * 4
        }));
        // The row index changes with j, so this famous mapping trades
        // perfect contiguity for wrap-free reuse; each lane lands in its
        // own row => strided here. The kernel instead uses it for the
        // *diagonal* accesses where i+j is constant:
        let mut t2 = MemTracker::new();
        t2.warp_access((0..32).map(|lane| {
            let (ii, jj) = (i + lane, 100 + 32 - lane); // anti-diagonal
            let row = (ii + oi + jj + oj + 2) % mem_h; // constant!
            (row * mem_w + jj + oj) * 4
        }));
        assert!(t2.transactions() <= 5, "diagonal accesses coalesce");
        assert!(t.transactions() > t2.transactions());
    }

    #[test]
    fn bulk_and_shared_accounting() {
        let mut t = MemTracker::new();
        t.bulk_access(0, 1024, 4); // 4 KiB = 128 segments
        assert_eq!(t.transactions(), 128);
        let mut s = SharedMem::new();
        s.alloc(1000);
        s.alloc(500);
        s.free(500);
        s.alloc(200);
        assert_eq!(s.peak(), 1500);
    }
}
