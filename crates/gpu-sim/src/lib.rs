//! # anyseq-gpu-sim — GPU execution-model simulator
//!
//! Substitute for the paper's CUDA/Titan V backend (§IV-B): the very same
//! kernel structure — one thread-block per tile, stripes held in shared
//! memory, lockstep anti-diagonals with head/body/tail phasing, in-place
//! row-buffer reuse (Fig. 4), coalesced border layout — is executed
//! *functionally* on the host (bit-exact scores, asserted against the
//! scalar engine) while an analytic cost model charges cycles for warp
//! issue, divergence, synchronization, kernel launches and global-memory
//! transactions (counted by a real coalescing analyzer over the kernel's
//! actual addresses).
//!
//! Modeled GCUPS from [`device::GpuStats::gcups`] drives the paper's
//! Titan V columns in Fig. 5 and Table II; the NVBio-like baseline in
//! `anyseq-baselines` reuses this simulator with striping/phasing/
//! coalescing disabled.

pub mod align;
pub mod device;
pub mod kernel;
pub mod mem;

pub use align::{GpuAligner, GpuRun};
pub use device::{Device, GpuStats};
pub use kernel::{striped_tile_kernel, GpuTileIo, KernelShape};
pub use mem::{MemTracker, SharedMem, SEGMENT_BYTES};
