//! Host-side GPU execution: a wavefront of kernel launches over tile
//! diagonals (paper §IV-B: "This is done in host code that starts a GPU
//! kernel for each diagonal. The GPU kernel uses a one-dimensional grid
//! of thread-blocks where each block computes one matrix tile.").

use crate::device::{Device, GpuStats};
use crate::kernel::{striped_tile_kernel, GpuTileIo, KernelShape};
use crate::mem::MemTracker;
use anyseq_core::alignment::Alignment;
use anyseq_core::hirschberg::{align_with_pass, AlignConfig, HalfPass};
use anyseq_core::kind::{AlignKind, Global, OptRegion};
use anyseq_core::pass::{init_left_f, init_left_h, init_top_e, init_top_h, score_pass, PassOutput};
use anyseq_core::relax::BestCell;
use anyseq_core::scheme::Scheme;
use anyseq_core::score::Score;
use anyseq_core::scoring::{GapModel, SubstScore};
use anyseq_seq::{PairRef, Seq};
use anyseq_wavefront::grid::TileGrid;
use anyseq_wavefront::pass::finalize;
use parking_lot::Mutex;

/// A GPU-simulated aligner: device + kernel shape + tile geometry.
pub struct GpuAligner {
    /// The modeled device.
    pub device: Device,
    /// Kernel structure (striping, phasing, coalescing).
    pub shape: KernelShape,
    /// Tile edge (tiles are `tile × tile`, edges smaller).
    pub tile: usize,
    stats: Mutex<GpuStats>,
}

/// Result of a GPU-simulated scoring run.
#[derive(Debug, Clone)]
pub struct GpuRun {
    /// The (bit-exact) optimal score.
    pub score: Score,
    /// 1-based optimum cell.
    pub end: (usize, usize),
    /// Modeled execution statistics.
    pub stats: GpuStats,
}

impl GpuAligner {
    /// An AnySeq-configured aligner on the given device.
    pub fn new(device: Device) -> GpuAligner {
        GpuAligner {
            device,
            shape: KernelShape::default(),
            tile: 1024,
            stats: Mutex::new(GpuStats::default()),
        }
    }

    /// Overrides the kernel shape (baselines use this).
    pub fn with_shape(mut self, shape: KernelShape) -> GpuAligner {
        self.shape = shape;
        self
    }

    /// Overrides the tile size.
    pub fn with_tile(mut self, tile: usize) -> GpuAligner {
        assert!(tile > 0);
        self.tile = tile;
        self
    }

    /// Accumulated statistics across all runs since the last reset.
    pub fn stats(&self) -> GpuStats {
        *self.stats.lock()
    }

    /// Clears the statistics accumulator.
    pub fn reset_stats(&self) {
        *self.stats.lock() = GpuStats::default();
    }

    /// Score-only pass of kind `K` on the simulated device.
    pub fn pass<K, G, S>(&self, gap: &G, subst: &S, q: &[u8], s: &[u8], tb: Score) -> PassOutput
    where
        K: AlignKind,
        G: GapModel,
        S: SubstScore,
    {
        let n = q.len();
        let m = s.len();
        if n == 0 || m == 0 {
            return score_pass::<K, G, S>(gap, subst, q, s, tb);
        }
        let grid = TileGrid::new(n, m, self.tile);

        // Device-resident border arrays (the stripes live in global
        // memory between kernel launches).
        let mut col_h: Vec<Vec<Score>> = Vec::with_capacity(grid.mt);
        let mut col_e: Vec<Vec<Score>> = Vec::with_capacity(grid.mt);
        let top_h = init_top_h::<K, G>(gap, m);
        let top_e = init_top_e::<K, G>(gap, m);
        for tj in 0..grid.mt {
            let (j0, w) = grid.cols(tj as u32);
            col_h.push(top_h[j0 - 1..j0 + w].to_vec());
            col_e.push(if top_e.is_empty() {
                Vec::new()
            } else {
                top_e[j0 - 1..j0 - 1 + w].to_vec()
            });
        }
        let left_h = init_left_h::<K, G>(gap, n, tb);
        let left_f = init_left_f::<G>(n);
        let mut row_h: Vec<Vec<Score>> = Vec::with_capacity(grid.nt);
        let mut row_f: Vec<Vec<Score>> = Vec::with_capacity(grid.nt);
        for ti in 0..grid.nt {
            let (i0, h) = grid.rows(ti as u32);
            row_h.push(left_h[i0 - 1..i0 - 1 + h].to_vec());
            row_f.push(if left_f.is_empty() {
                Vec::new()
            } else {
                left_f[i0 - 1..i0 - 1 + h].to_vec()
            });
        }

        let mut stats = GpuStats::default();
        let mut mem = MemTracker::new();
        let mut best = BestCell::empty();

        // One kernel launch per tile diagonal; the device runs
        // `concurrent_blocks()` tiles at a time, so the diagonal's
        // modeled duration is the block cost times the occupancy waves
        // (blocks on one diagonal have identical dimensions except at
        // the ragged edge — take the max).
        for d in 0..grid.diagonals() {
            stats.launches += 1;
            stats.cycles += self.device.launch_cycles;
            let tiles: Vec<_> = grid.diagonal(d).collect();
            let mut max_block_cycles = 0.0f64;
            let before_diag = stats.cycles;
            for t in &tiles {
                let (i0, th) = grid.rows(t.ti);
                let (j0, tw) = grid.cols(t.tj);
                let mut block_stats = GpuStats::default();
                striped_tile_kernel(
                    &self.device,
                    &self.shape,
                    gap,
                    subst,
                    &q[i0 - 1..i0 - 1 + th],
                    &s[j0 - 1..j0 - 1 + tw],
                    GpuTileIo {
                        h_row: &mut col_h[t.tj as usize],
                        e_row: &mut col_e[t.tj as usize],
                        h_col: &mut row_h[t.ti as usize],
                        f_col: &mut row_f[t.ti as usize],
                    },
                    &mut block_stats,
                    &mut mem,
                );
                // Track the kind's optimum on the freshly written borders
                // (GPU kernels keep the running maximum in registers; we
                // read it off the border stripes, which is equivalent
                // for border/corner kinds; the local kind additionally
                // scans... not supported on this backend).
                if matches!(K::OPT, OptRegion::Border) {
                    let (j0b, wb) = grid.cols(t.tj);
                    if i0 + th - 1 == n {
                        for (k, &v) in col_h[t.tj as usize][1..].iter().enumerate() {
                            let _ = wb;
                            best.update(v, n, j0b + k);
                        }
                    }
                    if j0 + tw - 1 == m {
                        for (k, &v) in row_h[t.ti as usize].iter().enumerate() {
                            best.update(v, i0 + k, m);
                        }
                    }
                }
                max_block_cycles = max_block_cycles.max(block_stats.cycles);
                let cycles_before = block_stats.cycles;
                stats.merge(&block_stats);
                stats.cycles -= cycles_before; // re-add via wave model below
            }
            let waves = tiles.len().div_ceil(self.device.concurrent_blocks());
            stats.cycles = before_diag + waves as f64 * max_block_cycles;
        }
        // Memory transactions contribute bandwidth-limited cycles on top.
        stats.transactions = mem.transactions();
        stats.cycles += stats.transactions as f64 * self.device.transaction_cycles
            / crate::device::MEMORY_PARALLELISM;

        // Assemble the final row from the column borders.
        let mut last_h = Vec::with_capacity(m + 1);
        let mut last_e = Vec::with_capacity(m);
        for (tj, h) in col_h.iter().enumerate() {
            if tj == 0 {
                last_h.extend_from_slice(h);
            } else {
                last_h.extend_from_slice(&h[1..]);
            }
        }
        for e in &col_e {
            last_e.extend_from_slice(e);
        }

        self.stats.lock().merge(&stats);
        assert!(
            !matches!(K::OPT, OptRegion::Anywhere),
            "the GPU backend supports corner/border kinds (the paper's \
             GPU evaluation is global); use the CPU engines for local"
        );
        finalize::<K, G>(gap, best, n, m, tb, &last_h, last_e)
    }

    /// Global score on the simulated device.
    pub fn score<G, S>(&self, scheme: &Scheme<Global, G, S>, q: &Seq, s: &Seq) -> GpuRun
    where
        G: GapModel,
        S: SubstScore,
    {
        let before = self.stats();
        let out = self.pass::<Global, G, S>(
            scheme.gap(),
            scheme.subst(),
            q.codes(),
            s.codes(),
            scheme.gap().open(),
        );
        let mut stats = self.stats();
        let b = before;
        stats.cells -= b.cells;
        stats.cycles -= b.cycles;
        stats.transactions -= b.transactions;
        stats.launches -= b.launches;
        stats.blocks -= b.blocks;
        stats.warp_steps -= b.warp_steps;
        GpuRun {
            score: out.score,
            end: out.end,
            stats,
        }
    }

    /// Scores a batch of independent pairs (short-read use case): each
    /// alignment is one thread-block computing its whole matrix as a
    /// single tile; blocks are packed into launches of
    /// `concurrent_blocks()` waves (NVBio-style inter-sequence batching).
    ///
    /// Takes borrowed [`PairRef`]s — the simulated host never copies
    /// sequence bytes onto the device (a real device queue would DMA
    /// from exactly these slices).
    pub fn score_batch<G, S>(
        &self,
        scheme: &Scheme<Global, G, S>,
        pairs: &[PairRef<'_>],
    ) -> (Vec<Score>, GpuStats)
    where
        G: GapModel,
        S: SubstScore,
    {
        let gap = scheme.gap();
        let subst = scheme.subst();
        let mut stats = GpuStats::default();
        let mut mem = MemTracker::new();
        let mut scores = Vec::with_capacity(pairs.len());
        let mut wave_max = 0.0f64;
        for (k, pair) in pairs.iter().enumerate() {
            let (q, s) = (pair.q, pair.s);
            let n = q.len();
            let m = s.len();
            if n == 0 || m == 0 {
                scores.push(score_pass::<Global, G, S>(gap, subst, q, s, gap.open()).score);
                continue;
            }
            let mut h_row = init_top_h::<Global, G>(gap, m);
            let mut e_row = init_top_e::<Global, G>(gap, m);
            let mut h_col = init_left_h::<Global, G>(gap, n, gap.open());
            let mut f_col = init_left_f::<G>(n);
            let mut block_stats = GpuStats::default();
            striped_tile_kernel(
                &self.device,
                &self.shape,
                gap,
                subst,
                q,
                s,
                GpuTileIo {
                    h_row: &mut h_row,
                    e_row: &mut e_row,
                    h_col: &mut h_col,
                    f_col: &mut f_col,
                },
                &mut block_stats,
                &mut mem,
            );
            scores.push(h_row[m]);
            wave_max = wave_max.max(block_stats.cycles);
            let c = block_stats.cycles;
            stats.merge(&block_stats);
            stats.cycles -= c;
            // Close a wave when the device is full.
            if (k + 1) % self.device.concurrent_blocks() == 0 {
                stats.cycles += wave_max;
                wave_max = 0.0;
            }
        }
        stats.cycles += wave_max;
        stats.launches += 1 + (pairs.len() / 65_535) as u64;
        stats.cycles += stats.launches as f64 * self.device.launch_cycles;
        stats.transactions = mem.transactions();
        stats.cycles += stats.transactions as f64 * self.device.transaction_cycles
            / crate::device::MEMORY_PARALLELISM;
        self.stats.lock().merge(&stats);
        (scores, stats)
    }

    /// Global alignment with traceback: the Hirschberg recursion runs on
    /// the host, every score pass on the simulated device (the paper's
    /// GPU traceback measurements cover exactly this division of labor).
    pub fn align<G, S>(
        &self,
        scheme: &Scheme<Global, G, S>,
        q: &[u8],
        s: &[u8],
    ) -> (Alignment, GpuStats)
    where
        G: GapModel,
        S: SubstScore,
    {
        let before = self.stats();
        let aln = align_with_pass::<Global, G, S, _>(
            self,
            scheme.gap(),
            scheme.subst(),
            q,
            s,
            &AlignConfig::default(),
        );
        let mut stats = self.stats();
        stats.cells -= before.cells;
        stats.cycles -= before.cycles;
        stats.transactions -= before.transactions;
        stats.launches -= before.launches;
        stats.blocks -= before.blocks;
        stats.warp_steps -= before.warp_steps;
        (aln, stats)
    }
}

impl<G: GapModel, S: SubstScore> HalfPass<G, S> for GpuAligner {
    fn pass<K: AlignKind>(&self, gap: &G, subst: &S, q: &[u8], s: &[u8], tb: Score) -> PassOutput {
        // Small sub-problems of the recursion are not worth a kernel
        // launch; the paper's recursion cutoff plays the same role.
        if q.len().saturating_mul(s.len()) < 1 << 16 {
            return score_pass::<K, G, S>(gap, subst, q, s, tb);
        }
        GpuAligner::pass::<K, G, S>(self, gap, subst, q, s, tb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::kind::SemiGlobal;
    use anyseq_core::prelude::{affine, global, linear, simple};
    use anyseq_seq::genome::GenomeSim;

    fn aligner(tile: usize, threads: usize) -> GpuAligner {
        GpuAligner::new(Device::titan_v())
            .with_tile(tile)
            .with_shape(KernelShape {
                block_threads: threads,
                phased: true,
                coalesced: true,
            })
    }

    #[test]
    fn gpu_score_matches_cpu_linear() {
        let mut sim = GenomeSim::new(41);
        let q = sim.generate(3000);
        let s = sim.mutate(&q, 0.08);
        let scheme = global(linear(simple(2, -1), -1));
        let gpu = aligner(256, 64);
        let run = gpu.score(&scheme, &q, &s);
        assert_eq!(run.score, scheme.score(&q, &s));
        assert_eq!(run.stats.cells, (q.len() * s.len()) as u64);
        assert!(run.stats.launches > 0);
        assert!(run.stats.gcups(&gpu.device) > 0.0);
    }

    #[test]
    fn gpu_score_matches_cpu_affine() {
        let mut sim = GenomeSim::new(43);
        let q = sim.generate(2500);
        let s = sim.mutate(&q, 0.12);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let gpu = aligner(300, 96);
        let run = gpu.score(&scheme, &q, &s);
        assert_eq!(run.score, scheme.score(&q, &s));
    }

    #[test]
    fn gpu_semiglobal_pass_matches_cpu() {
        let mut sim = GenomeSim::new(47);
        let q = sim.generate(1500);
        let s = sim.mutate(&q, 0.1);
        let gap = anyseq_core::scoring::AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let cpu = score_pass::<SemiGlobal, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open());
        let gpu = aligner(200, 64);
        let out = GpuAligner::pass::<SemiGlobal, _, _>(
            &gpu,
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            gap.open(),
        );
        assert_eq!(out.score, cpu.score);
        assert_eq!(out.end, cpu.end);
    }

    #[test]
    fn gpu_traceback_alignment_valid_and_optimal() {
        let mut sim = GenomeSim::new(53);
        let q = sim.generate(2000);
        let s = sim.mutate(&q, 0.07);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let gpu = aligner(256, 64);
        let (aln, stats) = gpu.align(&scheme, q.codes(), s.codes());
        assert_eq!(aln.score, scheme.score(&q, &s));
        aln.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
            .unwrap();
        // Traceback recomputes ~2x the cells of a score-only pass.
        assert!(stats.cells as usize >= q.len() * s.len());
    }

    #[test]
    fn affine_is_modeled_slower_than_linear() {
        let mut sim = GenomeSim::new(59);
        let q = sim.generate(4000);
        let s = sim.mutate(&q, 0.05);
        let gpu = aligner(512, 64);
        let lin = gpu.score(&global(linear(simple(2, -1), -1)), &q, &s);
        let aff = gpu.score(&global(affine(simple(2, -1), -2, -1)), &q, &s);
        assert_eq!(lin.stats.cells, aff.stats.cells);
        assert!(
            aff.stats.cycles > lin.stats.cycles,
            "affine must cost more modeled cycles"
        );
        assert!(aff.stats.transactions > lin.stats.transactions);
    }
}
