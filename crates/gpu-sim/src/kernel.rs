//! The AnySeq GPU tile kernel, executed functionally (paper §IV-B,
//! Fig. 4): one thread-block per tile; the tile is processed in
//! *stripes* of height = block threads; within a stripe, threads relax
//! anti-diagonals in lockstep; the row buffer above the stripe is
//! reused in place for the stripe's bottom row ("re-use the memory cells
//! with the values of the uppermost row that are no longer needed");
//! computation is split into head/body/tail parts "to avoid branch
//! divergence".
//!
//! The emulation is value-faithful: every shared-memory buffer of the
//! real kernel exists here with the same indexing and reuse discipline,
//! and the result is asserted bit-equal to the scalar tile kernel in
//! tests. Cost counters (warp steps, transactions, shared bytes) ride
//! along and feed the [`crate::device`] model.

use crate::device::{Device, GpuStats};
use crate::mem::{MemTracker, SharedMem};
use anyseq_core::score::{Score, NEG_INF};
use anyseq_core::scoring::{GapModel, SubstScore};

/// Kernel structure variants (the NVBio-like baseline flips these off).
#[derive(Debug, Clone, Copy)]
pub struct KernelShape {
    /// Threads per block = stripe height.
    pub block_threads: usize,
    /// Split diagonal loops into head/body/tail (no divergence) instead
    /// of one guarded loop (paper's three parts).
    pub phased: bool,
    /// Use the coalesced border layout for global reads/writes.
    pub coalesced: bool,
}

impl Default for KernelShape {
    fn default() -> Self {
        KernelShape {
            block_threads: 64,
            phased: true,
            coalesced: true,
        }
    }
}

/// Boundary stripes of one tile (mirrors `anyseq_core::tile`).
pub struct GpuTileIo<'a> {
    /// `H(i0−1, j0−1..=j1)`, length `w+1`; becomes the bottom stripe.
    pub h_row: &'a mut [Score],
    /// `E(i0−1, j0..=j1)`, length `w` (affine only); becomes bottom `E`.
    pub e_row: &'a mut [Score],
    /// `H(i0..=i1, j0−1)`, length `h`; becomes the right stripe.
    pub h_col: &'a mut [Score],
    /// `F(i0..=i1, j0−1)`, length `h` (affine only); becomes right `F`.
    pub f_col: &'a mut [Score],
}

/// Relaxes one tile with the striped block kernel, updating `io` in
/// place and charging costs to `stats`.
#[allow(clippy::too_many_arguments)]
pub fn striped_tile_kernel<G, S>(
    device: &Device,
    shape: &KernelShape,
    gap: &G,
    subst: &S,
    q_tile: &[u8],
    s_tile: &[u8],
    io: GpuTileIo<'_>,
    stats: &mut GpuStats,
    mem: &mut MemTracker,
) where
    G: GapModel,
    S: SubstScore,
{
    let th = q_tile.len();
    let tw = s_tile.len();
    assert!(th > 0 && tw > 0);
    assert_eq!(io.h_row.len(), tw + 1);
    assert_eq!(io.h_col.len(), th);
    if G::AFFINE {
        assert_eq!(io.e_row.len(), tw);
        assert_eq!(io.f_col.len(), th);
    }

    let sh_max = shape.block_threads.min(th);
    let warp = device.warp_size;

    // --- Shared memory plan (checked against the device budget) -------
    let mut shared = SharedMem::new();
    shared.alloc(tw); // subject segment (paper: "segments of the input
                      // sequences ... stored in block-local shared memory")
    shared.alloc(sh_max); // query segment per stripe
    shared.alloc(4 * (tw + 1)); // H row buffer (top -> bottom reuse)
    if G::AFFINE {
        shared.alloc(4 * tw); // E row buffer
    }
    shared.alloc(4 * 4 * sh_max); // per-thread a_h/b_h/a_e/f registers spilled
    assert!(
        shared.peak() <= device.shared_bytes,
        "tile {}×{} exceeds shared memory: {} > {}",
        th,
        tw,
        shared.peak(),
        device.shared_bytes
    );
    stats.peak_shared_bytes = stats.peak_shared_bytes.max(shared.peak());

    // --- Global traffic: border + sequence loads -----------------------
    if shape.coalesced {
        mem.bulk_access(0, tw + 1, 4); // top H stripe
        mem.bulk_access(0, th, 4); // left H stripe
        mem.bulk_access(0, tw, 1); // subject chars
        mem.bulk_access(0, th, 1); // query chars
        if G::AFFINE {
            mem.bulk_access(0, tw, 4);
            mem.bulk_access(0, th, 4);
        }
    } else {
        mem.strided_access(tw + 1);
        mem.strided_access(th);
        mem.bulk_access(0, tw, 1);
        mem.bulk_access(0, th, 1);
        if G::AFFINE {
            mem.strided_access(tw);
            mem.strided_access(th);
        }
    }

    // --- Functional stripe loop ----------------------------------------
    // Snapshot the bottom-left input corner H(i1, j0−1) before the right
    // border overwrites h_col in place: it becomes the bottom stripe's
    // corner element (same handoff as the scalar tile kernel).
    let bottom_left_in = io.h_col[th - 1];
    // Per-thread "registers" (one slot per stripe row).
    let mut a_h = vec![0 as Score; sh_max]; // H(row, latest column)
    let mut b_h = vec![0 as Score; sh_max]; // H(row, latest column − 1)
    let mut a_e = vec![0 as Score; if G::AFFINE { sh_max } else { 0 }];
    let mut f_reg = vec![0 as Score; if G::AFFINE { sh_max } else { 0 }];

    let ext = gap.extend();
    let open = gap.open();

    let mut r0 = 0usize;
    while r0 < th {
        let sh = sh_max.min(th - r0);

        // The corner of the *next* stripe is this stripe's last input
        // left-border value — capture it before the right border
        // overwrites h_col in place.
        let next_corner = io.h_col[r0 + sh - 1];

        // Stripe init: thread r starts at "column −1" with the left
        // border values (the real kernel reads them from global memory
        // into registers).
        for r in 0..sh {
            a_h[r] = io.h_col[r0 + r];
            if G::AFFINE {
                f_reg[r] = io.f_col[r0 + r];
                a_e[r] = NEG_INF; // never read before first assignment
            }
            b_h[r] = 0; // never read before first assignment
        }

        // Thread 0's diagonal register: each step's "up" value becomes
        // the next step's diagonal (the real kernel shifts it through a
        // register, so the reused row buffer is only ever read one
        // position ahead of the bottom-row writes).
        let mut diag0 = io.h_row[0];

        let steps = sh + tw - 1;
        for d in 0..steps {
            let r_lo = d.saturating_sub(tw - 1);
            let r_hi = d.min(sh - 1);
            let active = r_hi - r_lo + 1;

            let (pre_up, pre_e) = if r_lo == 0 {
                (io.h_row[d + 1], if G::AFFINE { io.e_row[d] } else { 0 })
            } else {
                (0, 0)
            };

            // Cost: phased kernels issue ceil(active/warp) warps; the
            // unphased variant predicates over the whole block width.
            let issued = if shape.phased {
                active.div_ceil(warp)
            } else {
                sh.div_ceil(warp)
            };
            stats.warp_steps += issued as u64;
            stats.cycles += issued as f64
                * (device.cell_cycles
                    + if G::AFFINE {
                        device.affine_extra_cycles
                    } else {
                        0.0
                    })
                + device.sync_cycles;

            // Lockstep emulation: descending r keeps neighbour reads at
            // their previous-step values (barrier semantics).
            for r in (r_lo..=r_hi).rev() {
                let c = d - r;
                let global_row = r0 + r;
                let (up_h, diag_h, up_e) = if r == 0 {
                    (pre_up, diag0, pre_e)
                } else {
                    (
                        a_h[r - 1],
                        b_h[r - 1],
                        if G::AFFINE { a_e[r - 1] } else { 0 },
                    )
                };
                let left_h = a_h[r];

                let e = if G::AFFINE {
                    (up_e + ext).max(up_h + open + ext)
                } else {
                    up_h + ext
                };
                let f = if G::AFFINE {
                    (f_reg[r] + ext).max(left_h + open + ext)
                } else {
                    left_h + ext
                };
                let mut h = diag_h + subst.score(q_tile[global_row], s_tile[c]);
                if e > h {
                    h = e;
                }
                if f > h {
                    h = f;
                }

                b_h[r] = a_h[r];
                a_h[r] = h;
                if G::AFFINE {
                    a_e[r] = e;
                    f_reg[r] = f;
                }

                // Bottom row of the stripe republishes into the (dead)
                // prefix of the row buffer — the Fig. 4 memory reuse.
                if r == sh - 1 {
                    io.h_row[c + 1] = h;
                    if G::AFFINE {
                        io.e_row[c] = e;
                    }
                }
                // Rightmost column feeds the right border.
                if c == tw - 1 {
                    io.h_col[global_row] = h;
                    if G::AFFINE {
                        io.f_col[global_row] = f;
                    }
                }
            }
            if r_lo == 0 {
                diag0 = pre_up;
            }
        }
        stats.cells += (sh * tw) as u64;
        // Refresh the row buffer's corner element for the next stripe
        // (H(stripe_last_row, j0−1)); after the final stripe this leaves
        // the bottom border's corner in place.
        io.h_row[0] = next_corner;
        r0 += sh;
    }
    debug_assert_eq!(io.h_row[0], bottom_left_in);

    // --- Border write-back traffic --------------------------------------
    if shape.coalesced {
        mem.bulk_access(0, tw + 1, 4);
        mem.bulk_access(0, th, 4);
        if G::AFFINE {
            mem.bulk_access(0, tw, 4);
            mem.bulk_access(0, th, 4);
        }
    } else {
        mem.strided_access(tw + 1);
        mem.strided_access(th);
        if G::AFFINE {
            mem.strided_access(tw);
            mem.strided_access(th);
        }
    }
    stats.blocks += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::kind::Global;
    use anyseq_core::pass::{init_left_f, init_left_h, init_top_e, init_top_h};
    use anyseq_core::scoring::{simple, AffineGap, LinearGap};
    use anyseq_core::tile::{relax_tile, NoSink, TileIn, TileOut};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_vs_scalar<G: GapModel + Copy>(
        gap: G,
        th: usize,
        tw: usize,
        threads: usize,
        seed: u64,
    ) {
        let subst = simple(2, -1);
        let mut rng = StdRng::seed_from_u64(seed);
        let q: Vec<u8> = (0..th).map(|_| rng.gen_range(0..4)).collect();
        let s: Vec<u8> = (0..tw).map(|_| rng.gen_range(0..4)).collect();

        let top_h = init_top_h::<Global, G>(&gap, tw);
        let top_e = init_top_e::<Global, G>(&gap, tw);
        let left_h = init_left_h::<Global, G>(&gap, th, gap.open());
        let left_f = init_left_f::<G>(th);

        // Scalar reference.
        let mut out = TileOut::new();
        relax_tile::<Global, G, _, _>(
            &gap,
            &subst,
            &q,
            &s,
            (1, 1),
            (th, tw),
            TileIn {
                top_h: &top_h,
                top_e: &top_e,
                left_h: &left_h,
                left_f: &left_f,
            },
            &mut out,
            &mut NoSink,
        );

        // GPU kernel in place.
        let device = Device::titan_v();
        let shape = KernelShape {
            block_threads: threads,
            phased: true,
            coalesced: true,
        };
        let mut h_row = top_h.clone();
        let mut e_row = top_e.clone();
        let mut h_col = left_h.clone();
        let mut f_col = left_f.clone();
        let mut stats = GpuStats::default();
        let mut mem = MemTracker::new();
        striped_tile_kernel(
            &device,
            &shape,
            &gap,
            &subst,
            &q,
            &s,
            GpuTileIo {
                h_row: &mut h_row,
                e_row: &mut e_row,
                h_col: &mut h_col,
                f_col: &mut f_col,
            },
            &mut stats,
            &mut mem,
        );
        assert_eq!(h_row, out.bot_h, "bottom H ({th}x{tw} t{threads})");
        assert_eq!(h_col, out.right_h, "right H");
        if G::AFFINE {
            assert_eq!(e_row, out.bot_e, "bottom E");
            assert_eq!(f_col, out.right_f, "right F");
        }
        assert_eq!(stats.cells, (th * tw) as u64);
        assert!(mem.transactions() > 0);
    }

    #[test]
    fn striped_kernel_bit_exact_linear() {
        for (th, tw, t) in [(7, 9, 4), (64, 64, 32), (100, 37, 16), (33, 129, 64)] {
            check_vs_scalar(LinearGap { gap: -1 }, th, tw, t, th as u64);
        }
    }

    #[test]
    fn striped_kernel_bit_exact_affine() {
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        for (th, tw, t) in [(8, 8, 8), (65, 127, 32), (128, 128, 64), (50, 200, 33)] {
            check_vs_scalar(gap, th, tw, t, tw as u64);
        }
    }

    #[test]
    fn single_thread_stripe_works() {
        check_vs_scalar(LinearGap { gap: -2 }, 10, 10, 1, 99);
    }

    #[test]
    fn unphased_costs_more_warp_steps() {
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let device = Device::titan_v();
        let q = vec![0u8; 64];
        let s = vec![1u8; 64];
        let run = |phased: bool| {
            let top_h = init_top_h::<Global, _>(&gap, 64);
            let left_h = init_left_h::<Global, _>(&gap, 64, gap.open());
            let mut h_row = top_h;
            let mut e_row = Vec::new();
            let mut h_col = left_h;
            let mut f_col = Vec::new();
            let mut stats = GpuStats::default();
            let mut mem = MemTracker::new();
            striped_tile_kernel(
                &device,
                &KernelShape {
                    block_threads: 64,
                    phased,
                    coalesced: true,
                },
                &gap,
                &subst,
                &q,
                &s,
                GpuTileIo {
                    h_row: &mut h_row,
                    e_row: &mut e_row,
                    h_col: &mut h_col,
                    f_col: &mut f_col,
                },
                &mut stats,
                &mut mem,
            );
            (stats, h_row)
        };
        let (phased, row_a) = run(true);
        let (unphased, row_b) = run(false);
        assert_eq!(row_a, row_b, "phasing must not change values");
        assert!(
            unphased.warp_steps > phased.warp_steps,
            "divergence must cost extra warp steps: {} vs {}",
            unphased.warp_steps,
            phased.warp_steps
        );
    }
}
