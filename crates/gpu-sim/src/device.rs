//! GPU device descriptions and the analytic cost model.
//!
//! The paper evaluates on an NVIDIA Titan V. Without CUDA hardware we
//! execute the *same kernel structure* functionally (see
//! [`crate::kernel`]) and charge each operation to an analytic cycle
//! model whose constants are documented here. Absolute GCUPS therefore
//! depend on the calibration constants, but the *relative* effects the
//! paper reports — striping and coalescing win, affine costs extra
//! memory traffic, 32-bit arithmetic on the GPU — emerge from the
//! executed structure, not from the constants.

/// Overlap factor for global-memory transactions: the cost model charges
/// `transactions × transaction_cycles / MEMORY_PARALLELISM`, i.e. this
/// many transactions are assumed in flight concurrently device-wide.
pub const MEMORY_PARALLELISM: f64 = 8.0;

/// A modeled CUDA-class device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Human-readable name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Resident blocks per SM (occupancy).
    pub blocks_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Shared-memory capacity per block in bytes.
    pub shared_bytes: usize,
    /// Issue cycles charged per warp per DP cell update (the fused
    /// max/add chain of the relaxation; ~8 instructions on Volta).
    pub cell_cycles: f64,
    /// Extra issue cycles per warp per cell for affine gap models
    /// (the E/F updates double the arithmetic + shared traffic).
    pub affine_extra_cycles: f64,
    /// Cycles per 32-byte global-memory transaction (amortized
    /// latency/bandwidth cost at high occupancy).
    pub transaction_cycles: f64,
    /// Cycles per block-wide synchronization (one per diagonal step).
    pub sync_cycles: f64,
    /// Host-side kernel launch overhead in cycles (one per wavefront
    /// diagonal — the paper's host "starts a GPU kernel for each
    /// diagonal").
    pub launch_cycles: f64,
}

impl Device {
    /// A Titan V-like device (80 SMs, 1.455 GHz boost, 96 KiB shared per
    /// SM of which 48 KiB usable per block by default).
    pub fn titan_v() -> Device {
        Device {
            name: "TitanV-sim".to_string(),
            sm_count: 80,
            blocks_per_sm: 2,
            warp_size: 32,
            clock_ghz: 1.455,
            shared_bytes: 48 * 1024,
            cell_cycles: 8.0,
            affine_extra_cycles: 4.0,
            transaction_cycles: 8.0,
            sync_cycles: 20.0,
            launch_cycles: 6000.0,
        }
    }

    /// Concurrent blocks the device can run.
    pub fn concurrent_blocks(&self) -> usize {
        self.sm_count * self.blocks_per_sm
    }
}

/// Aggregate execution statistics of a simulated GPU computation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuStats {
    /// DP cells relaxed.
    pub cells: u64,
    /// Modeled device cycles.
    pub cycles: f64,
    /// Global-memory transactions (32-byte segments).
    pub transactions: u64,
    /// Kernel launches (one per tile diagonal).
    pub launches: u64,
    /// Block executions.
    pub blocks: u64,
    /// Warp-step work items issued (incl. divergence waste).
    pub warp_steps: u64,
    /// Peak shared memory used by any block, in bytes.
    pub peak_shared_bytes: usize,
}

impl GpuStats {
    /// Merges another stats record (e.g. from a second pass).
    pub fn merge(&mut self, o: &GpuStats) {
        self.cells += o.cells;
        self.cycles += o.cycles;
        self.transactions += o.transactions;
        self.launches += o.launches;
        self.blocks += o.blocks;
        self.warp_steps += o.warp_steps;
        self.peak_shared_bytes = self.peak_shared_bytes.max(o.peak_shared_bytes);
    }

    /// Modeled wall time in seconds on `device`.
    pub fn seconds(&self, device: &Device) -> f64 {
        self.cycles / (device.clock_ghz * 1e9)
    }

    /// Modeled giga cell updates per second.
    pub fn gcups(&self, device: &Device) -> f64 {
        let t = self.seconds(device);
        if t <= 0.0 {
            0.0
        } else {
            self.cells as f64 / t / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_plausible() {
        let d = Device::titan_v();
        assert_eq!(d.concurrent_blocks(), 160);
        assert!(d.shared_bytes >= 32 * 1024);
    }

    #[test]
    fn stats_merge_and_gcups() {
        let d = Device::titan_v();
        let mut a = GpuStats {
            cells: 1_000_000,
            cycles: 1e6,
            transactions: 10,
            launches: 1,
            blocks: 2,
            warp_steps: 100,
            peak_shared_bytes: 1024,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.cells, 2_000_000);
        assert_eq!(a.launches, 2);
        // 2e6 cells in 2e6 cycles at 1.455 GHz = 1.455 GCUPS.
        assert!((a.gcups(&d) - 1.455).abs() < 1e-9);
    }
}
