//! Cell-update accounting — the single definition of "cells" and GCUPS
//! shared by the engine's batch statistics and the benchmark harness
//! (`anyseq-bench` computes its `Measurement` through these functions,
//! so both layers count work identically).

use anyseq_obs::{Span, Stage};
use anyseq_seq::Seq;
use std::collections::BTreeMap;

/// Cell multiplier for traceback (Hirschberg recomputes ≈2× the cells
/// of a score-only pass — the convention the paper's Fig. 5 traceback
/// rows use). Shared so the engine's `BatchStats` and the bench
/// binaries count traceback work identically.
pub const TRACEBACK_CELL_FACTOR: u64 = 2;

/// DP cells relaxed by a score-only pass over one pair: `|q| · |s|`.
#[inline]
pub fn cells_for(q: &Seq, s: &Seq) -> u64 {
    q.len() as u64 * s.len() as u64
}

/// DP cells relaxed by score-only passes over a whole batch.
pub fn pair_cells(pairs: &[(Seq, Seq)]) -> u64 {
    pairs.iter().map(|(q, s)| cells_for(q, s)).sum()
}

/// Giga cell updates per second — the paper's throughput metric.
/// Returns 0 for degenerate timings so callers can't divide by zero.
#[inline]
pub fn gcups(cells: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        cells as f64 / seconds / 1e9
    } else {
        0.0
    }
}

/// Apportions a batch-level duration to one request by its cell share:
/// `total_ns · cells / batch_cells`, in u128 so the product cannot
/// overflow. Returns 0 when `batch_cells` is 0 (nothing to attribute).
/// This is the serving layer's attribution rule: when several requests
/// coalesce into one engine batch, each is charged kernel time in
/// proportion to the DP cells it contributed — the same work measure
/// GCUPS uses — rather than by pair count, so one long pair is not
/// charged like sixty-four short ones.
#[inline]
pub fn cell_share_ns(total_ns: u64, cells: u64, batch_cells: u64) -> u64 {
    if batch_cells == 0 {
        return 0;
    }
    ((total_ns as u128 * cells as u128) / batch_cells as u128) as u64
}

/// Work one backend performed inside a batch run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendUse {
    /// Backend name (matches `Caps::name`).
    pub backend: &'static str,
    /// Pairs this backend scored/aligned.
    pub pairs: u64,
    /// DP cells this backend relaxed.
    pub cells: u64,
    /// Summed busy time across workers (can exceed wall time).
    pub busy_seconds: f64,
}

impl BackendUse {
    /// Backend-local throughput.
    pub fn gcups(&self) -> f64 {
        gcups(self.cells, self.busy_seconds)
    }
}

/// Per-batch execution statistics reported by the scheduler.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Pairs in the batch.
    pub pairs: u64,
    /// Total DP cells across the batch (score-only accounting).
    pub cells: u64,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Length bins the batch was split into.
    pub bins: u64,
    /// Work units handed to the pool (chunks of bins).
    pub units: u64,
    /// Times a backend declined a unit and the next candidate ran.
    pub fallbacks: u64,
    /// Per-backend breakdown. The scheduler sorts this by backend
    /// name before returning, so the order is deterministic across
    /// runs regardless of which worker recorded first.
    pub per_backend: Vec<BackendUse>,
    /// Named backend-internal counters, drained from each engine after
    /// every unit (`Engine::drain_counters`) and summed here — e.g.
    /// the SIMD traceback's `simd.band_overflows` /
    /// `simd.band_widenings` band telemetry. The `BTreeMap` keeps the
    /// report order deterministic.
    pub counters: BTreeMap<&'static str, u64>,
    /// Stage-timing spans drained from the tracer at batch end, sorted
    /// by `(worker, start_ns)`. Empty unless the dispatch was built
    /// with observability enabled (`DispatchPolicy::observe`). Their
    /// per-stage totals are also folded into `counters` as
    /// `stage.<name>_ns`, so summaries and bench reports work from the
    /// counter map alone; the raw spans feed the Chrome-trace exporter.
    pub spans: Vec<Span>,
}

impl BatchStats {
    /// Whole-batch throughput over wall time.
    pub fn gcups(&self) -> f64 {
        gcups(self.cells, self.wall_seconds)
    }

    /// Fraction of the pool's capacity that was busy: total backend
    /// busy time over `threads × wall`. 1.0 means perfect overlap.
    pub fn utilization(&self, threads: usize) -> f64 {
        let capacity = threads.max(1) as f64 * self.wall_seconds;
        if capacity > 0.0 {
            self.per_backend.iter().map(|b| b.busy_seconds).sum::<f64>() / capacity
        } else {
            0.0
        }
    }

    /// Adds `cells`/`busy` work attributed to `backend`.
    pub fn record(&mut self, backend: &'static str, pairs: u64, cells: u64, busy_seconds: f64) {
        if let Some(b) = self.per_backend.iter_mut().find(|b| b.backend == backend) {
            b.pairs += pairs;
            b.cells += cells;
            b.busy_seconds += busy_seconds;
        } else {
            self.per_backend.push(BackendUse {
                backend,
                pairs,
                cells,
                busy_seconds,
            });
        }
    }

    /// Adds a named backend-internal counter. Counters are additive,
    /// with one exception: names containing `.peak_` are high-water
    /// marks and combine by maximum — summing peak memory across
    /// drains or workers would report a working set nothing ever held.
    pub fn record_counter(&mut self, name: &'static str, value: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        if name.contains(".peak_") {
            *slot = (*slot).max(value);
        } else {
            *slot += value;
        }
    }

    /// Wall nanoseconds this batch spent in `stage`, read from the
    /// `stage.<name>_ns` counter the scheduler folds span durations
    /// into. 0 when the batch ran without observability or never
    /// entered the stage.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.counters.get(stage.counter_key()).copied().unwrap_or(0)
    }

    /// Total sequence bytes copied below the batch view this run — the
    /// sum of every `<source>.bytes_copied` counter (the scheduler's
    /// gather tripwire plus substrate-required copies such as the SIMD
    /// lane transpose), plus a bare un-prefixed `bytes_copied` if a
    /// foreign `Engine` reports one without a source prefix (prefixed
    /// names are still the convention — the bare form is matched so
    /// such copies are never silently dropped from the total). The
    /// single definition of the counter-name convention; benches and
    /// tests read copies through this.
    pub fn bytes_copied(&self) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| **name == "bytes_copied" || name.ends_with(".bytes_copied"))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Merges another accumulator. Every field is additive: worker
    /// locals carry zeros for the batch-level fields (`pairs`, `cells`,
    /// `bins`, `units`, `wall_seconds`), so merging them is a no-op
    /// there, while merging two *complete* batch stats (e.g. a serving
    /// layer aggregating sequential batches) sums the real totals.
    /// `wall_seconds` is summed too — correct for sequential batches,
    /// an overcount for concurrent ones (utilization/GCUPS of a merged
    /// concurrent aggregate are not meaningful).
    pub fn merge(&mut self, other: &BatchStats) {
        self.pairs += other.pairs;
        self.cells += other.cells;
        self.wall_seconds += other.wall_seconds;
        self.bins += other.bins;
        self.units += other.units;
        self.fallbacks += other.fallbacks;
        for b in &other.per_backend {
            self.record(b.backend, b.pairs, b.cells, b.busy_seconds);
        }
        for (&name, &value) in &other.counters {
            self.record_counter(name, value);
        }
        self.spans.extend_from_slice(&other.spans);
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} pairs, {} bins, {} units, {:.3}s wall, {:.2} GCUPS",
            self.pairs,
            self.bins,
            self.units,
            self.wall_seconds,
            self.gcups()
        );
        for b in &self.per_backend {
            line.push_str(&format!(
                "; {}: {} pairs {:.2} GCUPS",
                b.backend,
                b.pairs,
                b.gcups()
            ));
        }
        if self.fallbacks > 0 {
            line.push_str(&format!("; {} fallbacks", self.fallbacks));
        }
        for (name, value) in &self.counters {
            line.push_str(&format!("; {name}={value}"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_accounting() {
        let q = Seq::from_ascii(b"ACGT").unwrap();
        let s = Seq::from_ascii(b"ACGTAC").unwrap();
        assert_eq!(cells_for(&q, &s), 24);
        assert_eq!(pair_cells(&[(q.clone(), s.clone()), (s, q)]), 48);
    }

    #[test]
    fn gcups_guards_division() {
        assert_eq!(gcups(1_000_000_000, 1.0), 1.0);
        assert_eq!(gcups(1, 0.0), 0.0);
    }

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = BatchStats::default();
        a.record("simd", 10, 1000, 0.5);
        a.record("simd", 5, 500, 0.25);
        let mut b = BatchStats {
            fallbacks: 2,
            ..BatchStats::default()
        };
        b.record("scalar", 1, 100, 0.1);
        b.record_counter("simd.band_overflows", 3);
        a.record_counter("simd.band_overflows", 1);
        a.merge(&b);
        assert_eq!(a.per_backend.len(), 2);
        assert_eq!(a.per_backend[0].pairs, 15);
        assert_eq!(a.fallbacks, 2);
        assert_eq!(a.counters["simd.band_overflows"], 4);
        assert!(a.summary().contains("fallbacks"));
        assert!(a.summary().contains("simd.band_overflows=4"));
    }

    #[test]
    fn merge_accumulates_every_field() {
        // Regression: merge used to accumulate only fallbacks,
        // per_backend, and counters — pairs/cells/bins/units (and
        // wall) were silently dropped, so aggregating complete batch
        // stats undercounted work.
        let mut a = BatchStats {
            pairs: 10,
            cells: 1_000,
            wall_seconds: 0.5,
            bins: 2,
            units: 3,
            fallbacks: 1,
            ..BatchStats::default()
        };
        let b = BatchStats {
            pairs: 4,
            cells: 500,
            wall_seconds: 0.25,
            bins: 1,
            units: 2,
            fallbacks: 0,
            ..BatchStats::default()
        };
        a.merge(&b);
        assert_eq!(a.pairs, 14);
        assert_eq!(a.cells, 1_500);
        assert_eq!(a.bins, 3);
        assert_eq!(a.units, 5);
        assert_eq!(a.fallbacks, 1);
        assert!((a.wall_seconds - 0.75).abs() < 1e-12);
    }

    #[test]
    fn peak_counters_merge_by_maximum() {
        let mut a = BatchStats::default();
        a.record_counter("wavefront.peak_shard_mb", 40);
        a.record_counter("wavefront.peak_shard_mb", 25);
        assert_eq!(a.counters["wavefront.peak_shard_mb"], 40);
        let mut b = BatchStats::default();
        b.record_counter("wavefront.peak_shard_mb", 60);
        b.record_counter("sched.shards", 3);
        a.record_counter("sched.shards", 2);
        a.merge(&b);
        assert_eq!(a.counters["wavefront.peak_shard_mb"], 60);
        assert_eq!(a.counters["sched.shards"], 5, "plain counters still sum");
    }

    #[test]
    fn bytes_copied_sums_the_convention() {
        let mut s = BatchStats::default();
        assert_eq!(s.bytes_copied(), 0);
        s.record_counter("sched.bytes_copied", 0);
        s.record_counter("simd.bytes_copied", 640);
        s.record_counter("simd.band_cells", 999);
        assert_eq!(s.bytes_copied(), 640);
    }

    #[test]
    fn bytes_copied_counts_bare_unprefixed_counters() {
        // Regression: a foreign Engine reporting a bare `bytes_copied`
        // (no `<source>.` prefix) used to be silently dropped from the
        // total — copies must never disappear from the accounting.
        let mut s = BatchStats::default();
        s.record_counter("bytes_copied", 128);
        assert_eq!(s.bytes_copied(), 128);
        s.record_counter("simd.bytes_copied", 64);
        assert_eq!(s.bytes_copied(), 192);
        // Names that merely *contain* the suffix words don't count.
        s.record_counter("cache.ingest_bytes", 999);
        s.record_counter("not_bytes_copied_total", 7);
        assert_eq!(s.bytes_copied(), 192);
    }

    #[test]
    fn cell_share_apportions_exactly_and_never_overflows() {
        assert_eq!(cell_share_ns(1_000, 0, 0), 0);
        assert_eq!(cell_share_ns(1_000, 250, 1_000), 250);
        assert_eq!(cell_share_ns(1_000, 1_000, 1_000), 1_000);
        // Shares across a batch sum to at most the total (floor division).
        let total = 999u64;
        let cells = [3u64, 5, 7];
        let batch: u64 = cells.iter().sum();
        let sum: u64 = cells.iter().map(|&c| cell_share_ns(total, c, batch)).sum();
        assert!(sum <= total && sum >= total - cells.len() as u64);
        // Giant inputs would overflow u64 multiplication; u128 holds.
        assert_eq!(
            cell_share_ns(u64::MAX, u64::MAX / 2, u64::MAX),
            u64::MAX / 2
        );
    }

    #[test]
    fn stage_ns_reads_the_folded_counter() {
        let mut s = BatchStats::default();
        assert_eq!(s.stage_ns(Stage::Kernel), 0);
        s.record_counter(Stage::Kernel.counter_key(), 1_234);
        s.record_counter(Stage::Kernel.counter_key(), 766);
        assert_eq!(s.stage_ns(Stage::Kernel), 2_000);
        assert_eq!(s.stage_ns(Stage::Merge), 0);
    }

    #[test]
    fn utilization_bounded() {
        let mut s = BatchStats {
            wall_seconds: 1.0,
            ..Default::default()
        };
        s.record("scalar", 1, 1, 4.0);
        assert!((s.utilization(4) - 1.0).abs() < 1e-9);
    }
}
