//! The [`Engine`] trait: one batch-execution contract every backend
//! implements, plus the capability descriptor dispatch uses to route
//! work.
//!
//! ## Trait contract
//!
//! * **Bit-exact**: a backend's scores must equal `Scheme::score` for
//!   every input it accepts, and every alignment it returns must carry
//!   that exact score with an operation sequence that replays to it
//!   (`Alignment::validate`). Tie-breaks in the traceback may differ
//!   between backends — equally optimal paths are interchangeable;
//!   wrong scores or non-replaying CIGARs are not. The scalar engine
//!   is the reference; `tests/cross_engine.rs` enforces this.
//! * **Order-stable**: results come back in input order.
//! * **Honest refusal**: a backend that cannot run a request returns
//!   [`EngineError::Unsupported`] instead of approximating — the
//!   dispatch layer falls back to the next candidate (the scalar
//!   engine accepts everything, so a batch always completes).
//! * **Thread budget**: `threads` is the parallelism the caller grants.
//!   Pool workers call engines with `threads = 1`; device-style
//!   engines that parallelize *inside* one pair (wavefront) are run
//!   exclusively and receive the whole budget.

use crate::spec::{KindSpec, SchemeSpec};
use anyseq_core::relax::BestCell;
use anyseq_core::score::Score;
use anyseq_core::Alignment;
use anyseq_seq::PairRef;
use anyseq_wavefront::ShardSeam;

/// Static capability flags a backend advertises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Caps {
    /// Backend name (stable; used in stats and CLI flags).
    pub name: &'static str,
    /// Alignment kinds `score_batch` accepts.
    pub score_kinds: &'static [KindSpec],
    /// Alignment kinds `align_batch` accepts (empty ⇒ score-only).
    pub align_kinds: &'static [KindSpec],
    /// Alphabet the backend understands (all current backends share
    /// the 4-letter DNA code + N).
    pub alphabet: &'static str,
    /// Advisory upper bound on `|q| + |s|` the backend handles
    /// natively; longer pairs are still legal — backends fall back to
    /// a scalar path internally — so dispatch does **not** consult
    /// this for routing (`None` ⇒ unbounded). For the SIMD backend
    /// the per-spec exact bound is `anyseq_simd::max_block_extent`.
    pub max_native_extent: Option<usize>,
    /// Whether one call amortizes setup across many pairs (true for
    /// lane-packed SIMD and the GPU device queue). Batch-native
    /// engines are sharded across the pool; the rest run exclusively
    /// with the full thread budget.
    pub batch_native: bool,
    /// Hard upper bound on DP cells per executed unit (`None` ⇒
    /// unbounded). Unlike [`Caps::max_native_extent`] this is a
    /// *refusal* bound, not an advisory one: a backend configured with
    /// it returns [`EngineError::UnitTooLarge`] for any pair whose
    /// resident unit — the whole matrix, or one slab when a shard plan
    /// applies — would exceed it, instead of risking an OOM kill.
    pub max_unit_cells: Option<u64>,
}

impl Caps {
    /// Whether `score_batch` accepts this spec.
    pub fn supports_score(&self, spec: &SchemeSpec) -> bool {
        self.score_kinds.contains(&spec.kind)
    }

    /// Whether `align_batch` accepts this spec.
    pub fn supports_align(&self, spec: &SchemeSpec) -> bool {
        self.align_kinds.contains(&spec.kind)
    }
}

/// Why a backend declined a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request is outside this backend's capabilities.
    Unsupported {
        /// Declining backend.
        backend: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A single pair exceeds the backend's [`Caps::max_unit_cells`]
    /// and no shard plan brings its resident unit under the bound.
    /// Unlike [`EngineError::Unsupported`] this refusal is *terminal*:
    /// falling back to another backend would execute the very
    /// allocation the bound exists to prevent, so the scheduler
    /// surfaces it instead of degrading to scalar.
    UnitTooLarge {
        /// Refusing backend.
        backend: &'static str,
        /// DP cells of the offending unit.
        cells: u64,
        /// The backend's advertised per-unit bound.
        max_unit_cells: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Unsupported { backend, reason } => {
                write!(f, "backend {backend} cannot run this batch: {reason}")
            }
            EngineError::UnitTooLarge {
                backend,
                cells,
                max_unit_cells,
            } => {
                write!(
                    f,
                    "backend {backend} refuses a {cells}-cell unit: exceeds max_unit_cells \
                     {max_unit_cells} and no shard plan applies (raise the bound or lower \
                     --shard-cells)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// Convenience constructor.
    pub fn unsupported(backend: &'static str, reason: impl Into<String>) -> EngineError {
        EngineError::Unsupported {
            backend,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for the oversized-unit refusal.
    pub fn unit_too_large(backend: &'static str, cells: u64, max_unit_cells: u64) -> EngineError {
        EngineError::UnitTooLarge {
            backend,
            cells,
            max_unit_cells,
        }
    }
}

/// One subject slab of a sharded score pass, handed to
/// [`Engine::score_shard`] by the scheduler's shard chain. The slab
/// covers absolute subject columns `cols.0+1..=cols.1` of the full
/// pair `(q, s)`; `seam` is the frontier imported from the previous
/// shard (`None` for the first).
#[derive(Debug, Clone, Copy)]
pub struct ShardTask<'a> {
    /// Full query codes.
    pub q: &'a [u8],
    /// Full subject codes (the slab slices out its own columns).
    pub s: &'a [u8],
    /// Half-open column range `(consumed, last)` — see
    /// [`anyseq_wavefront::plan_columns`].
    pub cols: (usize, usize),
    /// Frontier at column `cols.0`, from the previous shard.
    pub seam: Option<&'a ShardSeam>,
    /// Running best cell merged over all previous shards.
    pub best: BestCell,
    /// Whether this is the final shard (the executor then finalizes
    /// the kind's optimum and returns the score).
    pub last: bool,
}

/// What one shard execution returns.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Frontier at the slab's last column — input for the next shard.
    pub seam: ShardSeam,
    /// Running best including this shard.
    pub best: BestCell,
    /// The finalized pair score; `Some` iff the task was the last
    /// shard.
    pub score: Option<Score>,
}

/// A batch-execution backend.
///
/// Requests are **borrowed**: a slice of [`PairRef`]s (`&[u8]` code
/// slices into storage the caller keeps alive — a
/// [`SeqStore`](anyseq_seq::SeqStore) arena, a `Vec<(Seq, Seq)>`, …).
/// Implementations must not clone sequence bytes except where the
/// substrate genuinely requires a different layout (the lane-transposed
/// SIMD buffers); such copies should be reported through
/// [`Engine::drain_counters`] as a `<name>.bytes_copied` counter.
pub trait Engine: Send + Sync {
    /// Capability flags.
    fn caps(&self) -> Caps;

    /// Scores every pair, results in input order.
    ///
    /// ```
    /// use anyseq_engine::{Engine, ScalarEngine, SchemeSpec};
    /// use anyseq_seq::{BatchView, Seq};
    ///
    /// let spec = SchemeSpec::global_linear(2, -1, -1);
    /// let pairs = vec![(
    ///     Seq::from_ascii(b"ACGTACGT").unwrap(),
    ///     Seq::from_ascii(b"ACGTTACGT").unwrap(),
    /// )];
    /// let view = BatchView::from_pairs(&pairs);
    /// let scores = ScalarEngine.score_batch(&spec, view.refs(), 1).unwrap();
    /// assert_eq!(scores, vec![15]);
    /// ```
    fn score_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        threads: usize,
    ) -> Result<Vec<Score>, EngineError>;

    /// Aligns every pair with traceback, results in input order.
    ///
    /// Scores must equal `Scheme::align`; the operation sequence must
    /// replay to exactly that score (`Alignment::validate`), though
    /// tie-breaks may differ from the scalar Hirschberg traceback.
    fn align_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        threads: usize,
    ) -> Result<Vec<Alignment>, EngineError>;

    /// Returns and resets backend-internal execution counters
    /// accumulated since the last drain (e.g. the SIMD backend's
    /// band-width/overflow telemetry). The scheduler drains after
    /// every unit and merges the values into `BatchStats::counters`
    /// under the returned names; counters are additive across drains.
    ///
    /// The default implementation reports nothing — counters are an
    /// optional part of the contract.
    fn drain_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Scores one subject slab of a sharded pair, importing the seam
    /// frontier from the previous shard and exporting the next one —
    /// the building block of the scheduler's pipelined shard chain.
    /// Results must be bit-identical to the same columns of an
    /// unsharded pass. Backends without intra-pair tiling decline
    /// (the default); the scheduler then tries the next candidate or
    /// runs the pair unsharded.
    fn score_shard(
        &self,
        spec: &SchemeSpec,
        task: &ShardTask<'_>,
        threads: usize,
    ) -> Result<ShardOutcome, EngineError> {
        let _ = (task, threads);
        Err(EngineError::unsupported(
            self.caps().name,
            format!(
                "no sharded execution path for kind {} (intra-pair tiling required)",
                spec.kind.name()
            ),
        ))
    }
}

/// All four kinds — capability list for fully generic backends.
pub const ALL_KINDS: &[KindSpec] = &[
    KindSpec::Global,
    KindSpec::Local,
    KindSpec::SemiGlobal,
    KindSpec::FreeEnd,
];

/// Global only (the GPU simulator's device queue, whose border-tracked
/// optimum excludes `Local`).
pub const GLOBAL_ONLY: &[KindSpec] = &[KindSpec::Global];

/// Kinds the lane-packed inter-sequence SIMD batcher implements
/// natively: the corner optimum plus the border/anywhere optima its
/// kind-generic striped kernel tracks in-register. `FreeEnd` is the
/// one hold-out (no striped kernel yet).
pub const SIMD_KINDS: &[KindSpec] = &[KindSpec::Global, KindSpec::SemiGlobal, KindSpec::Local];
