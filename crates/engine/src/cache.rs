//! Content-addressed result caching for repeated-read workloads.
//!
//! Real read-mapping traffic is heavily duplicated: PCR duplicates,
//! resequenced reads and repeated query/subject pairs mean the same
//! `(scheme, q, s)` DP problem is solved many times per run. The
//! [`ResultCache`] is a sharded, byte-budgeted LRU over finished batch
//! results, consulted by the
//! [`BatchScheduler`](crate::BatchScheduler) *before* work units are
//! formed — cached pairs never reach a backend at all — and filled
//! from unit results after execution.
//!
//! ## Key derivation
//!
//! Entries are keyed on the full request identity ([`CacheKey`]):
//!
//! * [`SchemeSpec::fingerprint`] — a stable FNV-1a hash of the scheme
//!   (kind, substitution scores, gap model),
//! * [`content_hash`] of the query and the
//!   subject codes (the same FNV-1a identity a
//!   [`SeqStore`](anyseq_seq::SeqStore) computes at ingest),
//! * both sequence lengths,
//! * the request kind ([`ReqKind::Score`] vs [`ReqKind::Align`]).
//!
//! ## Collision policy
//!
//! FNV-1a is fast, not cryptographic; two different sequences *can*
//! share a hash. A hit is therefore only served after the stored entry
//! is verified against the probing pair: all key fields must match
//! (lengths + scheme fingerprint + hashes) **and** the stored code
//! bytes must equal the borrowed [`PairRef`]'s bytes. A mismatch is
//! counted as a collision ([`ResultCache::collisions`], reported as
//! `cache.collisions` when non-zero) and treated as a miss — a hash
//! collision can never return a wrong score or alignment.
//!
//! ## Zero-copy interaction
//!
//! Probing hashes the borrowed code slices in place and copies
//! nothing. Inserting retains one copy of the pair's code bytes (the
//! verification material) inside the cache — a deliberate second
//! ingest point, like the `SeqStore` arena copy, accounted separately
//! as the `cache.ingest_bytes` counter and in the resident
//! `cache.bytes` gauge; it is *not* part of the `*.bytes_copied`
//! dispatch-path convention, which stays zero.

use crate::spec::SchemeSpec;
use anyseq_core::score::Score;
use anyseq_core::Alignment;
use anyseq_seq::{content_hash, PairRef};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// `BatchStats::counters` name: pairs served from the cache (including
/// in-batch duplicates served from their leader's fresh result).
pub const CACHE_HITS: &str = "cache.hits";
/// `BatchStats::counters` name: pairs that had to be computed.
/// `cache.hits + cache.misses == pairs` on every cache-enabled run.
pub const CACHE_MISSES: &str = "cache.misses";
/// `BatchStats::counters` name: resident cache bytes after the run
/// (a gauge snapshot, not an additive counter).
pub const CACHE_BYTES: &str = "cache.bytes";
/// `BatchStats::counters` name: entries evicted by the byte budget
/// during the run.
pub const CACHE_EVICTIONS: &str = "cache.evictions";
/// `BatchStats::counters` name: verified-hash-collision rejections
/// during the run (only present when non-zero — expected never).
pub const CACHE_COLLISIONS: &str = "cache.collisions";
/// `BatchStats::counters` name: sequence bytes retained by cache
/// inserts this run (the cache's own ingest copy; distinct from the
/// dispatch-path `*.bytes_copied` convention, which stays zero).
pub const CACHE_INGEST_BYTES: &str = "cache.ingest_bytes";

/// Fixed per-entry bookkeeping estimate (key, links, map slot) added
/// to each entry's accounted bytes.
const ENTRY_OVERHEAD: usize = 128;

/// Sentinel for "no node" in the intrusive LRU lists.
const NIL: usize = usize::MAX;

/// What a cached entry answers: a score-only request or a full
/// alignment (traceback) request. Part of the key — the two never
/// alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// `score_batch` results.
    Score,
    /// `align_batch` results.
    Align,
}

/// The full identity of one cached result. Equality compares every
/// field, so a content-hash collision alone can never alias two keys
/// with different lengths or schemes; the byte-level verification
/// against the stored sequences closes the remaining window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`SchemeSpec::fingerprint`] of the request's scheme.
    pub scheme: u64,
    /// FNV-1a content hash of the query codes.
    pub q_hash: u64,
    /// FNV-1a content hash of the subject codes.
    pub s_hash: u64,
    /// Query length in bases.
    pub q_len: u64,
    /// Subject length in bases.
    pub s_len: u64,
    /// Score-only or alignment request.
    pub kind: ReqKind,
}

impl CacheKey {
    /// Derives the key for one borrowed pair under an already-computed
    /// scheme fingerprint (hashes the code slices in place; copies
    /// nothing).
    pub fn new(scheme: u64, pair: &PairRef<'_>, kind: ReqKind) -> CacheKey {
        CacheKey {
            scheme,
            q_hash: content_hash(pair.q),
            s_hash: content_hash(pair.s),
            q_len: pair.q.len() as u64,
            s_len: pair.s.len() as u64,
            kind,
        }
    }

    /// Derives the key for one borrowed pair under a scheme spec.
    pub fn for_pair(spec: &SchemeSpec, pair: &PairRef<'_>, kind: ReqKind) -> CacheKey {
        CacheKey::new(spec.fingerprint(), pair, kind)
    }

    /// Stable shard selector: mixes the key fields with FNV-style
    /// multiplies so shard load stays balanced even for keys that
    /// share a scheme or length.
    fn shard_seed(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [
            self.scheme,
            self.q_hash,
            self.s_hash,
            self.q_len,
            self.s_len,
            match self.kind {
                ReqKind::Score => 1,
                ReqKind::Align => 2,
            },
        ] {
            h ^= w;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

/// A cached result value — one variant per [`ReqKind`].
#[derive(Debug, Clone)]
pub enum CachedValue {
    /// A score-only result.
    Score(Score),
    /// A full alignment.
    Align(Alignment),
}

/// Result types the cache can store: implemented for [`Score`] and
/// [`Alignment`]. Sealed in practice — the scheduler is generic over
/// this.
pub trait CacheableResult: Clone + Send {
    /// The request kind this type answers.
    const KIND: ReqKind;

    /// Wraps the value for storage.
    fn to_cached(&self) -> CachedValue;

    /// Unwraps a stored value (fails on a kind mismatch, which the
    /// keying already prevents).
    fn from_cached(value: &CachedValue) -> Option<Self>;

    /// Approximate heap footprint, for the byte budget.
    fn result_bytes(&self) -> usize;
}

impl CacheableResult for Score {
    const KIND: ReqKind = ReqKind::Score;

    fn to_cached(&self) -> CachedValue {
        CachedValue::Score(*self)
    }

    fn from_cached(value: &CachedValue) -> Option<Score> {
        match value {
            CachedValue::Score(s) => Some(*s),
            CachedValue::Align(_) => None,
        }
    }

    fn result_bytes(&self) -> usize {
        std::mem::size_of::<Score>()
    }
}

impl CacheableResult for Alignment {
    const KIND: ReqKind = ReqKind::Align;

    fn to_cached(&self) -> CachedValue {
        CachedValue::Align(self.clone())
    }

    fn from_cached(value: &CachedValue) -> Option<Alignment> {
        match value {
            CachedValue::Align(a) => Some(a.clone()),
            CachedValue::Score(_) => None,
        }
    }

    fn result_bytes(&self) -> usize {
        std::mem::size_of::<Alignment>() + self.ops.len()
    }
}

/// One resident entry: the full key, the verification bytes, the
/// value, and its intrusive LRU links.
struct Node {
    key: CacheKey,
    q: Box<[u8]>,
    s: Box<[u8]>,
    value: CachedValue,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One lock-guarded shard: a hash map into a slab of nodes threaded on
/// an intrusive most-recent-first list.
struct Shard {
    map: HashMap<CacheKey, usize>,
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    /// Verified hits served by this shard (cumulative; survives
    /// `clear`-free lifetimes, reset by [`Shard::clear`]). Tracked per
    /// shard so the observability layer can expose skew between shards
    /// — a hot shard means the key mix hashes unevenly.
    hits: u64,
    /// Entries this shard evicted to stay inside its byte budget.
    evictions: u64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            hits: 0,
            evictions: 0,
        }
    }

    fn node(&self, idx: usize) -> &Node {
        self.nodes[idx].as_ref().expect("live node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node {
        self.nodes[idx].as_mut().expect("live node")
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.node(idx);
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.node_mut(n).prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(idx);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Removes the least-recently-used entry; returns whether one
    /// existed.
    fn evict_tail(&mut self) -> bool {
        let idx = self.tail;
        if idx == NIL {
            return false;
        }
        self.unlink(idx);
        let node = self.nodes[idx].take().expect("live tail");
        self.map.remove(&node.key);
        self.bytes -= node.bytes;
        self.free.push(idx);
        true
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = Some(node);
                idx
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
        self.hits = 0;
        self.evictions = 0;
    }
}

/// A point-in-time view of one cache shard, for per-shard gauges.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Resident bytes (entries + bookkeeping estimate).
    pub bytes: u64,
    /// Live entries.
    pub entries: u64,
    /// Cumulative verified hits served by this shard.
    pub hits: u64,
    /// Cumulative LRU evictions performed by this shard.
    pub evictions: u64,
}

/// A sharded, byte-budgeted LRU over finished batch results, keyed on
/// content hashes — see the module docs for the key derivation and
/// collision policy.
///
/// Thread-safe: shards lock independently, so concurrent workers
/// inserting fresh results rarely contend.
///
/// ```
/// use anyseq_engine::cache::{CacheKey, ReqKind, ResultCache};
/// use anyseq_engine::SchemeSpec;
/// use anyseq_seq::PairRef;
///
/// let cache = ResultCache::with_budget(1 << 20);
/// let spec = SchemeSpec::global_linear(2, -1, -1);
/// let (q, s) = ([0u8, 1, 2, 3], [0u8, 1, 2]);
/// let pair = PairRef::new(&q, &s);
/// let key = CacheKey::for_pair(&spec, &pair, ReqKind::Score);
/// assert_eq!(cache.get::<i32>(&key, &pair), None);
/// cache.insert(&key, &pair, &42i32);
/// assert_eq!(cache.get::<i32>(&key, &pair), Some(42));
/// ```
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    budget: usize,
    evictions: AtomicU64,
    collisions: AtomicU64,
}

impl ResultCache {
    /// Number of independently locked shards.
    pub const SHARDS: usize = 16;

    /// A cache bounded to roughly `bytes` of resident entries
    /// (sequence copies + values + bookkeeping), split evenly across
    /// [`ResultCache::SHARDS`] shards. A zero budget caches nothing
    /// (every insert immediately evicts itself).
    pub fn with_budget(bytes: usize) -> ResultCache {
        ResultCache {
            shards: (0..Self::SHARDS)
                .map(|_| Mutex::new(Shard::new()))
                .collect(),
            shard_budget: bytes / Self::SHARDS,
            budget: bytes,
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.shard_seed() % Self::SHARDS as u64) as usize]
    }

    /// Looks up `key`, verifying the stored bytes against `pair`
    /// before serving (see the collision policy in the module docs).
    /// A verified hit refreshes the entry's LRU position.
    pub fn get<T: CacheableResult>(&self, key: &CacheKey, pair: &PairRef<'_>) -> Option<T> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let idx = *shard.map.get(key)?;
        {
            let node = shard.node(idx);
            if &*node.q != pair.q || &*node.s != pair.s {
                // A full-key match with different bytes: a genuine
                // content-hash collision. Never serve it.
                self.collisions.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        shard.touch(idx);
        shard.hits += 1;
        T::from_cached(&shard.node(idx).value)
    }

    /// Inserts (or replaces) the result for `key`, retaining a copy of
    /// the pair's code bytes as verification material, then enforces
    /// the shard's byte budget by evicting least-recently-used
    /// entries. Returns the sequence bytes this insert retained.
    pub fn insert<T: CacheableResult>(
        &self,
        key: &CacheKey,
        pair: &PairRef<'_>,
        value: &T,
    ) -> usize {
        debug_assert_eq!(key.kind, T::KIND, "key kind must match the result type");
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if let Some(&idx) = shard.map.get(key) {
            // Replace in place (collision overwrite keeps the newest
            // bytes; benign duplicate insert refreshes recency).
            let fresh_bytes = pair.q.len() + pair.s.len() + value.result_bytes() + ENTRY_OVERHEAD;
            let node = shard.node_mut(idx);
            let old_bytes = node.bytes;
            node.q = pair.q.into();
            node.s = pair.s.into();
            node.value = value.to_cached();
            node.bytes = fresh_bytes;
            shard.bytes = shard.bytes - old_bytes + fresh_bytes;
            shard.touch(idx);
        } else {
            let bytes = pair.q.len() + pair.s.len() + value.result_bytes() + ENTRY_OVERHEAD;
            let idx = shard.alloc(Node {
                key: *key,
                q: pair.q.into(),
                s: pair.s.into(),
                value: value.to_cached(),
                bytes,
                prev: NIL,
                next: NIL,
            });
            shard.push_front(idx);
            shard.map.insert(*key, idx);
            shard.bytes += bytes;
        }
        let mut evicted = 0u64;
        while shard.bytes > self.shard_budget && shard.evict_tail() {
            evicted += 1;
        }
        if evicted > 0 {
            shard.evictions += evicted;
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        pair.q.len() + pair.s.len()
    }

    /// Per-shard occupancy and traffic, in shard-index order — the
    /// source for the `anyseq_cache_shard_*` gauges.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard poisoned");
                ShardStats {
                    bytes: shard.bytes as u64,
                    entries: shard.map.len() as u64,
                    hits: shard.hits,
                    evictions: shard.evictions,
                }
            })
            .collect()
    }

    /// Total resident bytes across all shards (entries + bookkeeping
    /// estimate).
    pub fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes as u64)
            .sum()
    }

    /// Number of resident entries.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// The configured total byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Entries evicted by the byte budget since construction (or the
    /// last [`ResultCache::clear`]).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hash-collision rejections since construction (or the last
    /// [`ResultCache::clear`]) — a probe whose key matched but whose
    /// bytes did not.
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Drops every entry and resets the eviction/collision totals.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
        self.evictions.store(0, Ordering::Relaxed);
        self.collisions.store(0, Ordering::Relaxed);
    }
}

impl fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ResultCache({} entries, {}/{} bytes, {} evictions)",
            self.entries(),
            self.bytes(),
            self.budget,
            self.evictions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_key(spec: &SchemeSpec, q: &[u8], s: &[u8], kind: ReqKind) -> CacheKey {
        CacheKey::for_pair(spec, &PairRef::new(q, s), kind)
    }

    #[test]
    fn score_and_align_round_trip_without_aliasing() {
        let cache = ResultCache::with_budget(1 << 20);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let (q, s) = ([0u8, 1, 2, 3], [0u8, 1, 2, 3]);
        let pair = PairRef::new(&q, &s);

        let score_key = pair_key(&spec, &q, &s, ReqKind::Score);
        let align_key = pair_key(&spec, &q, &s, ReqKind::Align);
        assert_ne!(score_key, align_key, "request kinds never alias");

        cache.insert(&score_key, &pair, &8i32);
        let aln = Alignment::empty(8);
        cache.insert(&align_key, &pair, &aln);
        assert_eq!(cache.get::<Score>(&score_key, &pair), Some(8));
        assert_eq!(cache.get::<Alignment>(&align_key, &pair).unwrap().score, 8);
        assert_eq!(cache.entries(), 2);
        assert!(cache.bytes() > 0);
        assert_eq!(cache.collisions(), 0);
    }

    #[test]
    fn different_schemes_never_alias() {
        let cache = ResultCache::with_budget(1 << 20);
        let a = SchemeSpec::global_linear(2, -1, -1);
        let b = SchemeSpec::global_linear(2, -1, -2);
        let (q, s) = ([0u8, 1], [1u8, 1]);
        let pair = PairRef::new(&q, &s);
        cache.insert(&pair_key(&a, &q, &s, ReqKind::Score), &pair, &3i32);
        assert_eq!(
            cache.get::<Score>(&pair_key(&b, &q, &s, ReqKind::Score), &pair),
            None
        );
    }

    #[test]
    fn forced_hash_collision_is_rejected_by_the_byte_check() {
        // Two different byte strings with — by construction — the same
        // full key (same hashes, same lengths, same scheme): exactly
        // what a real FNV-1a collision would look like. The cache must
        // refuse to serve the stored value for the colliding probe.
        let cache = ResultCache::with_budget(1 << 20);
        let stored = [0u8, 1, 2, 3];
        let collider = [3u8, 2, 1, 0];
        let subject = [1u8, 1, 1];
        let key = CacheKey {
            scheme: 0xdead_beef,
            q_hash: 42, // forged: "both" queries hash to 42
            s_hash: content_hash(&subject),
            q_len: 4,
            s_len: 3,
            kind: ReqKind::Score,
        };
        cache.insert(&key, &PairRef::new(&stored, &subject), &10i32);

        // The colliding pair: same key, different query bytes.
        assert_eq!(
            cache.get::<Score>(&key, &PairRef::new(&collider, &subject)),
            None,
            "a hash collision must never return a cached result"
        );
        assert_eq!(cache.collisions(), 1);

        // The genuine pair still hits.
        assert_eq!(
            cache.get::<Score>(&key, &PairRef::new(&stored, &subject)),
            Some(10)
        );
        assert_eq!(cache.collisions(), 1);

        // Subject-side collisions are caught the same way.
        let other_subject = [2u8, 2, 2];
        let mut s_forged = key;
        s_forged.s_hash = content_hash(&other_subject);
        cache.insert(&s_forged, &PairRef::new(&stored, &other_subject), &11i32);
        assert_eq!(
            cache.get::<Score>(&s_forged, &PairRef::new(&stored, &subject)),
            None
        );
        assert_eq!(cache.collisions(), 2);
    }

    #[test]
    fn warm_entries_never_serve_a_different_kind() {
        use crate::spec::KindSpec;
        // Property sweep: for many pseudo-random pairs, a warm Global
        // entry must never answer a SemiGlobal/Local/FreeEnd probe for
        // the *same* pair — the alignment kind changes the optimum, so
        // serving across kinds would silently corrupt scores. The kind
        // lives in the scheme fingerprint; this pins that derivation.
        let cache = ResultCache::with_budget(1 << 20);
        let base = SchemeSpec::global_linear(2, -1, -1);
        let kinds = [
            KindSpec::Global,
            KindSpec::SemiGlobal,
            KindSpec::Local,
            KindSpec::FreeEnd,
        ];
        let mut state = 0x243f_6a88_85a3_08d3u64;
        for trial in 0..200 {
            let mut bytes = |n: usize| -> Vec<u8> {
                (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 33) as u8 % 5
                    })
                    .collect()
            };
            let q = bytes(16 + trial % 48);
            let s = bytes(16 + (trial * 7) % 48);
            let pair = PairRef::new(&q, &s);
            let global_key = pair_key(&base, &q, &s, ReqKind::Score);
            cache.insert(&global_key, &pair, &(trial as i32));
            for kind in kinds.iter().skip(1) {
                let probe = pair_key(&base.with_kind(*kind), &q, &s, ReqKind::Score);
                assert_ne!(
                    probe, global_key,
                    "trial {trial}: {kind:?} key aliases Global"
                );
                assert_eq!(
                    cache.get::<Score>(&probe, &pair),
                    None,
                    "trial {trial}: a warm Global entry served a {kind:?} probe"
                );
            }
            // The Global entry itself still hits.
            assert_eq!(cache.get::<Score>(&global_key, &pair), Some(trial as i32));
        }
        // Kinds never collide even forged-key-style: hand-build a
        // SemiGlobal probe that copies every field of the warm Global
        // key *except* the scheme fingerprint (the field the kind
        // perturbs) — the map lookup alone must reject it.
        let q = [0u8, 1, 2, 3];
        let s = [3u8, 2, 1];
        let pair = PairRef::new(&q, &s);
        let global_key = pair_key(&base, &q, &s, ReqKind::Score);
        cache.insert(&global_key, &pair, &99i32);
        let mut semi_probe = global_key;
        semi_probe.scheme = base.with_kind(KindSpec::SemiGlobal).fingerprint();
        assert_eq!(cache.get::<Score>(&semi_probe, &pair), None);
        assert_eq!(
            cache.collisions(),
            0,
            "kind misses are clean, not collisions"
        );
    }

    #[test]
    fn lru_budget_evicts_oldest_first() {
        // Budget for a handful of entries per shard; same shard is
        // guaranteed by using one key with varying value only — so
        // craft keys that all land in shard 0 is fragile. Instead use
        // a tiny total budget and many entries: evictions must occur,
        // resident bytes must respect the budget, and the most recent
        // entry must survive.
        let budget = ResultCache::SHARDS * 1024;
        let cache = ResultCache::with_budget(budget);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let seqs: Vec<Vec<u8>> = (0..200u8)
            .map(|k| (0..64).map(|j| (k as usize + j) as u8 % 5).collect())
            .collect();
        let mut last_key = None;
        let mut last_pair_idx = 0;
        for (k, q) in seqs.iter().enumerate() {
            let pair = PairRef::new(q, q);
            let key = CacheKey::for_pair(&spec, &pair, ReqKind::Score);
            cache.insert(&key, &pair, &(k as i32));
            last_key = Some(key);
            last_pair_idx = k;
        }
        assert!(cache.evictions() > 0, "budget must have forced evictions");
        assert!(
            cache.bytes() <= budget as u64,
            "resident {} > budget {budget}",
            cache.bytes()
        );
        // The most recently inserted entry is never the eviction
        // victim of its own insert.
        let q = &seqs[last_pair_idx];
        let pair = PairRef::new(q, q);
        assert_eq!(
            cache.get::<Score>(&last_key.unwrap(), &pair),
            Some(last_pair_idx as i32)
        );
    }

    #[test]
    fn touch_protects_recently_used_entries() {
        // One shard's worth of keys: keep entry 0 hot by re-probing it
        // between inserts; it must outlive colder entries.
        let cache = ResultCache::with_budget(ResultCache::SHARDS * 600);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let hot: Vec<u8> = vec![1; 32];
        let hot_pair = PairRef::new(&hot, &hot);
        let hot_key = CacheKey::for_pair(&spec, &hot_pair, ReqKind::Score);
        cache.insert(&hot_key, &hot_pair, &7i32);
        let colds: Vec<Vec<u8>> = (0..64u8)
            .map(|k| (0..32).map(|j| (k as usize * 7 + j) as u8 % 5).collect())
            .collect();
        for cold in &colds {
            let pair = PairRef::new(cold, cold);
            let key = CacheKey::for_pair(&spec, &pair, ReqKind::Score);
            cache.insert(&key, &pair, &1i32);
            // Touch the hot entry so it never becomes the LRU tail.
            assert_eq!(cache.get::<Score>(&hot_key, &hot_pair), Some(7));
        }
        assert!(cache.evictions() > 0);
        assert_eq!(cache.get::<Score>(&hot_key, &hot_pair), Some(7));
    }

    #[test]
    fn replacing_an_entry_updates_bytes_not_entries() {
        let cache = ResultCache::with_budget(1 << 20);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let q = [0u8, 1, 2];
        let pair = PairRef::new(&q, &q);
        let key = CacheKey::for_pair(&spec, &pair, ReqKind::Score);
        cache.insert(&key, &pair, &1i32);
        let before = cache.bytes();
        cache.insert(&key, &pair, &2i32);
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.bytes(), before);
        assert_eq!(cache.get::<Score>(&key, &pair), Some(2));
    }

    #[test]
    fn clear_resets_everything() {
        let cache = ResultCache::with_budget(ResultCache::SHARDS * 512);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        for k in 0..50u8 {
            let q = vec![k % 5; 24];
            let pair = PairRef::new(&q, &q);
            let key = CacheKey::for_pair(&spec, &pair, ReqKind::Score);
            cache.insert(&key, &pair, &(k as i32));
        }
        assert!(cache.entries() > 0);
        cache.clear();
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.collisions(), 0);
    }

    #[test]
    fn shard_stats_track_hits_and_evictions() {
        let cache = ResultCache::with_budget(ResultCache::SHARDS * 600);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), ResultCache::SHARDS);
        assert!(stats.iter().all(|s| *s == ShardStats::default()));
        for k in 0..64u8 {
            let q: Vec<u8> = (0..32).map(|j| (k as usize * 7 + j) as u8 % 5).collect();
            let pair = PairRef::new(&q, &q);
            let key = CacheKey::for_pair(&spec, &pair, ReqKind::Score);
            cache.insert(&key, &pair, &(k as i32));
            cache.get::<Score>(&key, &pair);
        }
        let stats = cache.shard_stats();
        let hits: u64 = stats.iter().map(|s| s.hits).sum();
        let evictions: u64 = stats.iter().map(|s| s.evictions).sum();
        let entries: u64 = stats.iter().map(|s| s.entries).sum();
        let bytes: u64 = stats.iter().map(|s| s.bytes).sum();
        assert!(hits > 0, "every surviving insert was re-read");
        assert_eq!(evictions, cache.evictions(), "shard sums match totals");
        assert_eq!(entries, cache.entries() as u64);
        assert_eq!(bytes, cache.bytes());
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let cache = ResultCache::with_budget(0);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let q = [0u8, 1];
        let pair = PairRef::new(&q, &q);
        let key = CacheKey::for_pair(&spec, &pair, ReqKind::Score);
        cache.insert(&key, &pair, &5i32);
        assert_eq!(cache.get::<Score>(&key, &pair), None);
        assert_eq!(cache.entries(), 0);
    }
}
