//! Backend selection policy.
//!
//! A [`Dispatch`] owns the registered engines and decides, per length
//! bin, which backend should run it — either a fixed user choice or
//! the `Auto` heuristic (SIMD lanes for short-read-shaped global,
//! semi-global and local bins, the wavefront for huge pairs, scalar
//! otherwise). Selection returns
//! a *candidate chain* ending in the scalar engine, so a backend that
//! refuses a unit (unsupported kind, score-only, …) degrades
//! gracefully instead of failing the batch.

use crate::backends::{GpuSimEngine, ScalarEngine, SimdEngine, WavefrontEngine};
use crate::cache::ResultCache;
use crate::engine::Engine;
use crate::spec::SchemeSpec;
use anyseq_obs::MetricsRegistry;

/// Stable identifiers for the built-in backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendId {
    /// Per-pair scalar kernels (reference; always available).
    Scalar,
    /// Inter-sequence SIMD lanes (scores + banded traceback;
    /// global, semi-global and local).
    Simd,
    /// Tiled wavefront (intra-pair threading).
    Wavefront,
    /// GPU execution-model simulator (global).
    GpuSim,
}

impl BackendId {
    /// Stable lower-case name (CLI flag values, stats labels).
    pub fn name(self) -> &'static str {
        match self {
            BackendId::Scalar => "scalar",
            BackendId::Simd => "simd",
            BackendId::Wavefront => "wavefront",
            BackendId::GpuSim => "gpu-sim",
        }
    }

    /// The `BatchStats` counter bumped when this backend declines a
    /// unit and the chain moves on (`dispatch.declined.<backend>`).
    pub fn declined_counter(self) -> &'static str {
        match self {
            BackendId::Scalar => "dispatch.declined.scalar",
            BackendId::Simd => "dispatch.declined.simd",
            BackendId::Wavefront => "dispatch.declined.wavefront",
            BackendId::GpuSim => "dispatch.declined.gpu-sim",
        }
    }

    /// Parses a CLI-style name.
    pub fn parse(text: &str) -> Option<BackendId> {
        match text {
            "scalar" => Some(BackendId::Scalar),
            "simd" => Some(BackendId::Simd),
            "wavefront" => Some(BackendId::Wavefront),
            "gpu-sim" | "gpu" | "gpusim" => Some(BackendId::GpuSim),
            _ => None,
        }
    }
}

/// How the scheduler picks a backend for each bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Heuristic per-bin choice (see [`Dispatch::candidates`]).
    Auto,
    /// Route everything to one backend (scalar fallback still applies
    /// when it refuses).
    Fixed(BackendId),
}

/// Default per-pair DP size (cells) above which `Auto` prefers
/// intra-pair wavefront parallelism over lane batching: ~2048², the
/// scale where the tile queue saturates a pool while lane packing
/// stops helping. Tunable per dispatch through
/// [`DispatchPolicy::auto_crossover`] (CLI: `--auto-crossover`).
pub const AUTO_WAVEFRONT_MIN_CELLS: u64 = 1 << 22;

/// Smallest meaningful shard budget: one default 512×512 wavefront
/// tile. A smaller budget would cut slabs thinner than a single tile,
/// all scheduling overhead and no memory win, so
/// [`DispatchPolicy::shard_cells`] clamps nonzero requests up to this.
pub const MIN_SHARD_CELLS: u64 = 1 << 18;

/// Builder for a [`Dispatch`]: selection policy plus the tuning knobs
/// the `Auto` heuristic consults.
///
/// ```
/// use anyseq_engine::{BackendId, DispatchPolicy, SchemeSpec};
///
/// // Route every pair below 1024² cells to the SIMD lanes, larger
/// // ones to the wavefront.
/// let dispatch = DispatchPolicy::auto().auto_crossover(1 << 20).standard();
/// let spec = SchemeSpec::global_linear(2, -1, -1);
/// assert_eq!(dispatch.candidates(&spec, 1 << 21, false)[0], BackendId::Wavefront);
/// assert_eq!(dispatch.candidates(&spec, 1 << 19, false)[0], BackendId::Simd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPolicy {
    /// Backend selection policy.
    pub policy: Policy,
    /// Per-pair DP size (cells) at which `Auto` crosses over from the
    /// SIMD lanes to the exclusive wavefront. Always ≥ 1: a crossover
    /// of 0 would classify *every* pair — even empty ones — as
    /// wavefront-sized and serialize the whole batch through the
    /// exclusive path ([`DispatchPolicy::auto_crossover`] documents
    /// the clamp).
    pub auto_crossover: u64,
    /// Result-cache budget in MiB; 0 disables caching (the default).
    /// See [`DispatchPolicy::cache_mb`].
    pub cache_mb: usize,
    /// X-drop threshold the built SIMD backend applies on the score
    /// path for semi-global/local bins; 0 (the default) keeps every
    /// path bit-exact. See [`DispatchPolicy::xdrop`].
    pub xdrop: i32,
    /// Whether the built dispatch carries an observability substrate
    /// (span tracer + metrics registry); off by default so the
    /// recorder stays a no-op. See [`DispatchPolicy::observe`].
    pub observe: bool,
    /// Shard budget in DP cells for the exclusive path: pairs larger
    /// than this are decomposed into subject slabs with seam hand-off,
    /// bounding peak border memory per pair. 0 (the default) disables
    /// sharding; nonzero values are clamped to ≥ [`MIN_SHARD_CELLS`].
    /// See [`DispatchPolicy::shard_cells`].
    pub shard_cells: u64,
}

impl Default for DispatchPolicy {
    fn default() -> DispatchPolicy {
        DispatchPolicy::auto()
    }
}

impl DispatchPolicy {
    /// The `Auto` heuristic with default tuning.
    pub fn auto() -> DispatchPolicy {
        DispatchPolicy {
            policy: Policy::Auto,
            auto_crossover: AUTO_WAVEFRONT_MIN_CELLS,
            cache_mb: 0,
            xdrop: 0,
            observe: false,
            shard_cells: 0,
        }
    }

    /// A fixed-backend policy (scalar fallback still applies).
    pub fn fixed(id: BackendId) -> DispatchPolicy {
        DispatchPolicy {
            policy: Policy::Fixed(id),
            ..DispatchPolicy::auto()
        }
    }

    /// An explicit [`Policy`] with default tuning.
    pub fn new(policy: Policy) -> DispatchPolicy {
        DispatchPolicy {
            policy,
            ..DispatchPolicy::auto()
        }
    }

    /// Overrides the SIMD→wavefront crossover (per-pair DP cells).
    ///
    /// Degenerate values are clamped to 1: the crossover means "a pair
    /// at least this large prefers the exclusive wavefront", so 0
    /// would send every pair — including empty ones (0 cells ≥ 0) —
    /// to the wavefront and serialize the whole batch through the
    /// exclusive phase. At the clamped minimum, every non-empty global
    /// pair still routes to the wavefront *when its `Caps` accept the
    /// request*; for kinds the wavefront cannot run, `Auto` picks the
    /// next candidate, and the scalar reference terminates every chain
    /// — the fallback semantics are unchanged by the knob.
    pub fn auto_crossover(mut self, cells: u64) -> DispatchPolicy {
        self.auto_crossover = cells.max(1);
        self
    }

    /// Enables X-drop early termination on the built SIMD backend's
    /// score path: a lane whose row maximum falls more than `x` below
    /// its running best retires with the best-so-far as its score.
    /// Inexact by design (a late-recovering alignment may be missed),
    /// so it is opt-in and never applies to global bins, tracebacks or
    /// the scalar reference.
    ///
    /// Degenerate values are clamped to 1: a threshold of 0 would
    /// retire every lane at the first row below the running best and
    /// return scores that are wrong on essentially every input —
    /// "off" is expressed by not calling this knob, mirroring
    /// [`DispatchPolicy::auto_crossover`]'s clamp semantics. The CLI
    /// rejects `--xdrop 0` outright for the same reason.
    pub fn xdrop(mut self, x: i32) -> DispatchPolicy {
        self.xdrop = x.max(1);
        self
    }

    /// Sets the shard budget for chromosome-scale pairs: any pair
    /// whose DP matrix exceeds `cells` runs as a chain of subject
    /// slabs stitched through serializable seam frontiers, so peak
    /// resident border + grid memory stays bounded by one slab no
    /// matter how long the subject is.
    ///
    /// Degenerate values are clamped to [`MIN_SHARD_CELLS`] (one
    /// default wavefront tile): a budget below one tile would slice
    /// slabs thinner than the kernel's own granularity — pure
    /// scheduling overhead with no memory benefit — mirroring the
    /// [`DispatchPolicy::auto_crossover`] / [`DispatchPolicy::xdrop`]
    /// clamp semantics. "Off" is expressed by not calling the knob
    /// (or passing 0); the CLI rejects `--shard-cells 0` outright.
    pub fn shard_cells(mut self, cells: u64) -> DispatchPolicy {
        self.shard_cells = if cells == 0 {
            0
        } else {
            cells.max(MIN_SHARD_CELLS)
        };
        self
    }

    /// Gives the built dispatch a content-hash [`ResultCache`] bounded
    /// to `mb` MiB (0 disables caching). Cached pairs are recognized
    /// by the scheduler *before* work units form, so repeated reads
    /// never reach a backend; see [`crate::cache`] for the key
    /// derivation and collision policy.
    pub fn cache_mb(mut self, mb: usize) -> DispatchPolicy {
        self.cache_mb = mb;
        self
    }

    /// Enables observability on the built dispatch: the scheduler
    /// records stage-timing spans into [`crate::BatchStats::spans`]
    /// and folds per-`(backend, bin, stage)` latency histograms plus
    /// batch counters into the dispatch's [`MetricsRegistry`]
    /// ([`Dispatch::metrics`]). Costs ≤3% throughput on the standard
    /// bench config (asserted by `batch_throughput`); the default is
    /// off, where every instrumentation site is a no-op.
    pub fn observe(mut self, on: bool) -> DispatchPolicy {
        self.observe = on;
        self
    }

    /// Builds the standard four-backend registry under this policy.
    pub fn standard(self) -> Dispatch {
        let simd = if self.xdrop > 0 {
            SimdEngine::avx2().with_xdrop(self.xdrop)
        } else {
            SimdEngine::avx2()
        };
        // Defensive re-clamp (the field is public, like auto_crossover).
        let shard_cells = if self.shard_cells == 0 {
            0
        } else {
            self.shard_cells.max(MIN_SHARD_CELLS)
        };
        Dispatch {
            engines: vec![
                (BackendId::Scalar, Box::new(ScalarEngine) as Box<dyn Engine>),
                (BackendId::Simd, Box::new(simd)),
                (
                    BackendId::Wavefront,
                    Box::new(WavefrontEngine::default().with_shard_cells(shard_cells)),
                ),
                (BackendId::GpuSim, Box::new(GpuSimEngine::titan_v())),
            ],
            policy: self.policy,
            // Defensive re-clamp: the field is public, so a literal
            // construction can still smuggle a 0 in.
            auto_crossover: self.auto_crossover.max(1),
            shard_cells,
            // Saturate rather than shift: `mb << 20` could wrap to 0
            // on 32-bit targets and silently disable caching.
            cache: (self.cache_mb > 0)
                .then(|| ResultCache::with_budget(self.cache_mb.saturating_mul(1 << 20))),
            metrics: self.observe.then(MetricsRegistry::new),
        }
    }
}

/// The engine registry plus selection policy.
///
/// ```
/// use anyseq_engine::{BackendId, Dispatch, Policy, SchemeSpec};
///
/// let dispatch = Dispatch::standard(Policy::Auto);
/// let spec = SchemeSpec::global_linear(2, -1, -1);
/// // Short-read alignment batches stay on the SIMD lanes end to end
/// // (banded traceback), with the scalar reference closing the chain.
/// let chain = dispatch.candidates(&spec, 150 * 150, true);
/// assert_eq!(chain, vec![BackendId::Simd, BackendId::Scalar]);
/// // Huge pairs go to the intra-pair wavefront instead.
/// let chain = dispatch.candidates(&spec, 5000 * 5000, true);
/// assert_eq!(chain[0], BackendId::Wavefront);
/// ```
pub struct Dispatch {
    engines: Vec<(BackendId, Box<dyn Engine>)>,
    /// Selection policy applied per bin.
    pub policy: Policy,
    /// `Auto`'s SIMD→wavefront crossover, in per-pair DP cells.
    auto_crossover: u64,
    /// Shard budget for the exclusive path (0 = sharding off).
    shard_cells: u64,
    /// Optional content-hash result cache the scheduler consults.
    cache: Option<ResultCache>,
    /// Optional metrics registry; present iff observability is on.
    metrics: Option<MetricsRegistry>,
}

impl Dispatch {
    /// The standard four-backend registry (scalar, AVX2-shaped SIMD,
    /// wavefront, Titan-V-modeled GPU simulator) with default tuning —
    /// use [`DispatchPolicy`] to customize.
    pub fn standard(policy: Policy) -> Dispatch {
        DispatchPolicy::new(policy).standard()
    }

    /// A registry with only the scalar reference backend.
    pub fn scalar_only() -> Dispatch {
        Dispatch {
            engines: vec![(BackendId::Scalar, Box::new(ScalarEngine) as Box<dyn Engine>)],
            policy: Policy::Fixed(BackendId::Scalar),
            auto_crossover: AUTO_WAVEFRONT_MIN_CELLS,
            shard_cells: 0,
            cache: None,
            metrics: None,
        }
    }

    /// The configured shard budget in DP cells (0 = sharding off).
    pub fn shard_cells(&self) -> u64 {
        self.shard_cells
    }

    /// The configured `Auto` SIMD→wavefront crossover (DP cells).
    pub fn auto_crossover(&self) -> u64 {
        self.auto_crossover
    }

    /// The result cache the scheduler should consult, if caching is
    /// enabled ([`DispatchPolicy::cache_mb`] /
    /// [`Dispatch::with_result_cache`]).
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Attaches (or replaces) a result cache on an existing dispatch.
    pub fn with_result_cache(mut self, cache: ResultCache) -> Dispatch {
        self.cache = Some(cache);
        self
    }

    /// The metrics registry, when observability is on
    /// ([`DispatchPolicy::observe`]). The scheduler folds spans and
    /// batch counters into it after every run; export it with
    /// [`anyseq_obs::prometheus_text`]. Registries accumulate across
    /// batches on the same dispatch — exactly what a scrape endpoint
    /// wants.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Enables observability on an existing dispatch (fresh registry).
    pub fn with_metrics(mut self) -> Dispatch {
        self.metrics = Some(MetricsRegistry::new());
        self
    }

    /// Replaces or registers a backend implementation.
    pub fn with_engine(mut self, id: BackendId, engine: Box<dyn Engine>) -> Dispatch {
        if let Some(slot) = self.engines.iter_mut().find(|(eid, _)| *eid == id) {
            slot.1 = engine;
        } else {
            self.engines.push((id, engine));
        }
        self
    }

    /// Looks up a registered backend.
    pub fn engine(&self, id: BackendId) -> Option<&dyn Engine> {
        self.engines
            .iter()
            .find(|(eid, _)| *eid == id)
            .map(|(_, e)| e.as_ref())
    }

    /// Registered backends in registration order.
    pub fn backends(&self) -> impl Iterator<Item = (BackendId, &dyn Engine)> {
        self.engines.iter().map(|(id, e)| (*id, e.as_ref()))
    }

    /// Whether `id` must run exclusively (gets the whole thread budget
    /// and is not sharded into the worker pool).
    pub fn is_exclusive(&self, id: BackendId) -> bool {
        id != BackendId::Scalar
            && self
                .engine(id)
                .map(|e| !e.caps().batch_native)
                .unwrap_or(false)
    }

    /// The ordered candidate chain for one bin: the policy's pick
    /// first, the scalar reference last (deduplicated). `max_cells`
    /// is the largest per-pair DP size in the bin; `align` selects the
    /// traceback capability.
    pub fn candidates(&self, spec: &SchemeSpec, max_cells: u64, align: bool) -> Vec<BackendId> {
        let primary = match self.policy {
            Policy::Fixed(id) => id,
            Policy::Auto => self.auto_choice(spec, max_cells, align),
        };
        let mut chain = vec![primary];
        if primary != BackendId::Scalar {
            chain.push(BackendId::Scalar);
        }
        chain.retain(|id| self.engine(*id).is_some());
        if chain.is_empty() {
            // A registry without the requested backend nor scalar is a
            // construction error; still, never return an empty chain.
            chain.extend(self.engines.first().map(|(id, _)| *id));
        }
        chain
    }

    fn auto_choice(&self, spec: &SchemeSpec, max_cells: u64, align: bool) -> BackendId {
        let caps_allow = |id: BackendId| {
            self.engine(id)
                .map(|e| {
                    if align {
                        e.caps().supports_align(spec)
                    } else {
                        e.caps().supports_score(spec)
                    }
                })
                .unwrap_or(false)
        };
        // `max(1)` guards literal `DispatchPolicy` constructions that
        // bypass the builder's clamp: an effective crossover of 0
        // would route even empty pairs to the exclusive wavefront.
        if max_cells >= self.auto_crossover.max(1) && caps_allow(BackendId::Wavefront) {
            return BackendId::Wavefront;
        }
        // Score *and* alignment requests ride the lanes: the banded
        // traceback keeps short-read bins vectorized end to end, and
        // band overflows are rescued inside the backend without
        // leaving the chain.
        if caps_allow(BackendId::Simd) {
            return BackendId::Simd;
        }
        BackendId::Scalar
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::KindSpec;

    #[test]
    fn auto_routes_by_shape() {
        let d = Dispatch::standard(Policy::Auto);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        // Short-read bins: SIMD lanes.
        assert_eq!(d.candidates(&spec, 150 * 150, false)[0], BackendId::Simd);
        // Huge pairs: wavefront.
        assert_eq!(
            d.candidates(&spec, 5000 * 5000, false)[0],
            BackendId::Wavefront
        );
        // Local and semi-global kinds ride the lanes too since the
        // kernel went kind-generic.
        let local = spec.with_kind(KindSpec::Local);
        assert_eq!(d.candidates(&local, 150 * 150, false)[0], BackendId::Simd);
        let semi = spec.with_kind(KindSpec::SemiGlobal);
        assert_eq!(d.candidates(&semi, 150 * 150, false)[0], BackendId::Simd);
        // Alignment requests for short-read bins also stay on the SIMD
        // lanes (banded traceback)…
        assert_eq!(d.candidates(&spec, 150 * 150, true)[0], BackendId::Simd);
        assert_eq!(d.candidates(&local, 150 * 150, true)[0], BackendId::Simd);
        // …but free-end bins still fall through to scalar.
        let free_end = spec.with_kind(KindSpec::FreeEnd);
        assert_eq!(
            d.candidates(&free_end, 150 * 150, true)[0],
            BackendId::Scalar
        );
        // Huge alignment bins prefer intra-pair wavefront parallelism.
        assert_eq!(
            d.candidates(&spec, 5000 * 5000, true)[0],
            BackendId::Wavefront
        );
    }

    #[test]
    fn fixed_policy_keeps_scalar_fallback() {
        let d = Dispatch::standard(Policy::Fixed(BackendId::GpuSim));
        let spec = SchemeSpec::global_linear(2, -1, -1);
        assert_eq!(
            d.candidates(&spec, 100, false),
            vec![BackendId::GpuSim, BackendId::Scalar]
        );
        let s = Dispatch::standard(Policy::Fixed(BackendId::Scalar));
        assert_eq!(s.candidates(&spec, 100, false), vec![BackendId::Scalar]);
    }

    #[test]
    fn backend_names_round_trip() {
        for id in [
            BackendId::Scalar,
            BackendId::Simd,
            BackendId::Wavefront,
            BackendId::GpuSim,
        ] {
            assert_eq!(BackendId::parse(id.name()), Some(id));
        }
        assert_eq!(BackendId::parse("tpu"), None);
    }

    #[test]
    fn auto_crossover_is_configurable() {
        let spec = SchemeSpec::global_linear(2, -1, -1);
        // A tiny crossover sends even short reads to the wavefront…
        let low = DispatchPolicy::auto().auto_crossover(100).standard();
        assert_eq!(
            low.candidates(&spec, 150 * 150, false)[0],
            BackendId::Wavefront
        );
        // …a huge one keeps genome-scale pairs on the lanes.
        let high = DispatchPolicy::auto().auto_crossover(u64::MAX).standard();
        assert_eq!(
            high.candidates(&spec, 5000 * 5000, false)[0],
            BackendId::Simd
        );
        assert_eq!(high.auto_crossover(), u64::MAX);
        // Fixed policies are unaffected by the crossover knob.
        let fixed = DispatchPolicy::fixed(BackendId::GpuSim)
            .auto_crossover(1)
            .standard();
        assert_eq!(
            fixed.candidates(&spec, 150 * 150, false)[0],
            BackendId::GpuSim
        );
    }

    #[test]
    fn degenerate_crossover_is_clamped_and_falls_back() {
        let spec = SchemeSpec::global_linear(2, -1, -1);
        // The builder clamps 0 to 1…
        let d = DispatchPolicy::auto().auto_crossover(0).standard();
        assert_eq!(d.auto_crossover(), 1);
        // …so empty pairs (0 cells) never reach the exclusive
        // wavefront path, while every non-empty pair does.
        assert_eq!(d.candidates(&spec, 0, false)[0], BackendId::Simd);
        assert_eq!(d.candidates(&spec, 1, false)[0], BackendId::Wavefront);
        // A literal construction bypassing the builder is re-clamped
        // when the dispatch is built, and auto_choice guards besides.
        let raw = DispatchPolicy {
            policy: Policy::Auto,
            auto_crossover: 0,
            cache_mb: 0,
            xdrop: 0,
            observe: false,
            shard_cells: 0,
        }
        .standard();
        assert_eq!(raw.auto_crossover(), 1);
        assert_eq!(raw.candidates(&spec, 0, false)[0], BackendId::Simd);
        // At the minimum crossover the fallback chain still engages:
        // every non-scalar pick keeps the scalar reference behind it…
        let chain = d.candidates(&spec, 1, true);
        assert_eq!(chain, vec![BackendId::Wavefront, BackendId::Scalar]);
        // …and kinds outside a backend's caps are never routed to it —
        // the wavefront accepts all kinds, so `Auto` still picks it
        // for free-end pairs, but caps-restricted backends (SIMD) are
        // skipped by the same check that the crossover feeds into.
        let free_end = spec.with_kind(KindSpec::FreeEnd);
        let chain = d.candidates(&free_end, 1, true);
        assert_eq!(chain, vec![BackendId::Wavefront, BackendId::Scalar]);
        let high = DispatchPolicy::auto().auto_crossover(u64::MAX).standard();
        assert_eq!(high.candidates(&free_end, 1, true)[0], BackendId::Scalar);
    }

    #[test]
    fn xdrop_knob_clamps_like_the_crossover() {
        assert_eq!(DispatchPolicy::auto().xdrop, 0, "off by default");
        assert_eq!(DispatchPolicy::auto().xdrop(20).xdrop, 20);
        // 0 would retire every lane immediately; the builder clamps it
        // to the smallest meaningful threshold (the CLI rejects it).
        assert_eq!(DispatchPolicy::auto().xdrop(0).xdrop, 1);
        assert_eq!(DispatchPolicy::auto().xdrop(-5).xdrop, 1);
        // The knob builds a dispatch without disturbing routing.
        let d = DispatchPolicy::auto().xdrop(20).standard();
        let semi = SchemeSpec::global_linear(2, -1, -1).with_kind(KindSpec::SemiGlobal);
        assert_eq!(d.candidates(&semi, 150 * 150, false)[0], BackendId::Simd);
    }

    #[test]
    fn shard_cells_knob_clamps_to_one_tile() {
        assert_eq!(DispatchPolicy::auto().shard_cells, 0, "off by default");
        assert_eq!(
            DispatchPolicy::auto().standard().shard_cells(),
            0,
            "off propagates into the dispatch"
        );
        // 0 stays off (the CLI rejects it); nonzero clamps up to one
        // default tile, mirroring the crossover/xdrop clamp semantics.
        assert_eq!(DispatchPolicy::auto().shard_cells(0).shard_cells, 0);
        assert_eq!(
            DispatchPolicy::auto().shard_cells(1).shard_cells,
            MIN_SHARD_CELLS
        );
        assert_eq!(
            DispatchPolicy::auto().shard_cells(1 << 24).shard_cells,
            1 << 24
        );
        // A literal construction smuggling a sub-tile budget in is
        // re-clamped when the dispatch is built.
        let raw = DispatchPolicy {
            shard_cells: 7,
            ..DispatchPolicy::auto()
        }
        .standard();
        assert_eq!(raw.shard_cells(), MIN_SHARD_CELLS);
        // The built dispatch wires the budget into its wavefront
        // backend so alignment units shard internally too.
        let d = DispatchPolicy::auto().shard_cells(1 << 20).standard();
        assert_eq!(d.shard_cells(), 1 << 20);
    }

    #[test]
    fn cache_knob_builds_a_cache() {
        let off = DispatchPolicy::auto().standard();
        assert!(off.cache().is_none(), "caching defaults to off");
        let on = DispatchPolicy::auto().cache_mb(2).standard();
        let cache = on.cache().expect("cache_mb enables the cache");
        assert_eq!(cache.budget(), 2 << 20);
        let zero = DispatchPolicy::auto().cache_mb(0).standard();
        assert!(zero.cache().is_none(), "0 MiB means disabled");
        assert!(Dispatch::scalar_only().cache().is_none());
    }

    #[test]
    fn observe_knob_builds_a_registry() {
        assert!(DispatchPolicy::auto().standard().metrics().is_none());
        assert!(DispatchPolicy::auto()
            .observe(true)
            .standard()
            .metrics()
            .is_some());
        assert!(Dispatch::scalar_only().with_metrics().metrics().is_some());
    }

    #[test]
    fn exclusive_marks_wavefront_only() {
        let d = Dispatch::standard(Policy::Auto);
        assert!(d.is_exclusive(BackendId::Wavefront));
        assert!(!d.is_exclusive(BackendId::Scalar));
        assert!(!d.is_exclusive(BackendId::Simd));
        assert!(!d.is_exclusive(BackendId::GpuSim));
    }
}
