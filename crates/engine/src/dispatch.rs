//! Backend selection policy.
//!
//! A [`Dispatch`] owns the registered engines and decides, per length
//! bin, which backend should run it — either a fixed user choice or
//! the `Auto` heuristic (SIMD lanes for short-read-shaped global bins,
//! the wavefront for huge pairs, scalar otherwise). Selection returns
//! a *candidate chain* ending in the scalar engine, so a backend that
//! refuses a unit (unsupported kind, score-only, …) degrades
//! gracefully instead of failing the batch.

use crate::backends::{GpuSimEngine, ScalarEngine, SimdEngine, WavefrontEngine};
use crate::engine::Engine;
use crate::spec::SchemeSpec;

/// Stable identifiers for the built-in backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendId {
    /// Per-pair scalar kernels (reference; always available).
    Scalar,
    /// Inter-sequence SIMD lanes (scores + banded traceback, global).
    Simd,
    /// Tiled wavefront (intra-pair threading).
    Wavefront,
    /// GPU execution-model simulator (global).
    GpuSim,
}

impl BackendId {
    /// Stable lower-case name (CLI flag values, stats labels).
    pub fn name(self) -> &'static str {
        match self {
            BackendId::Scalar => "scalar",
            BackendId::Simd => "simd",
            BackendId::Wavefront => "wavefront",
            BackendId::GpuSim => "gpu-sim",
        }
    }

    /// Parses a CLI-style name.
    pub fn parse(text: &str) -> Option<BackendId> {
        match text {
            "scalar" => Some(BackendId::Scalar),
            "simd" => Some(BackendId::Simd),
            "wavefront" => Some(BackendId::Wavefront),
            "gpu-sim" | "gpu" | "gpusim" => Some(BackendId::GpuSim),
            _ => None,
        }
    }
}

/// How the scheduler picks a backend for each bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Heuristic per-bin choice (see [`Dispatch::candidates`]).
    Auto,
    /// Route everything to one backend (scalar fallback still applies
    /// when it refuses).
    Fixed(BackendId),
}

/// Default per-pair DP size (cells) above which `Auto` prefers
/// intra-pair wavefront parallelism over lane batching: ~2048², the
/// scale where the tile queue saturates a pool while lane packing
/// stops helping. Tunable per dispatch through
/// [`DispatchPolicy::auto_crossover`] (CLI: `--auto-crossover`).
pub const AUTO_WAVEFRONT_MIN_CELLS: u64 = 1 << 22;

/// Builder for a [`Dispatch`]: selection policy plus the tuning knobs
/// the `Auto` heuristic consults.
///
/// ```
/// use anyseq_engine::{BackendId, DispatchPolicy, SchemeSpec};
///
/// // Route every pair below 1024² cells to the SIMD lanes, larger
/// // ones to the wavefront.
/// let dispatch = DispatchPolicy::auto().auto_crossover(1 << 20).standard();
/// let spec = SchemeSpec::global_linear(2, -1, -1);
/// assert_eq!(dispatch.candidates(&spec, 1 << 21, false)[0], BackendId::Wavefront);
/// assert_eq!(dispatch.candidates(&spec, 1 << 19, false)[0], BackendId::Simd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPolicy {
    /// Backend selection policy.
    pub policy: Policy,
    /// Per-pair DP size (cells) at which `Auto` crosses over from the
    /// SIMD lanes to the exclusive wavefront.
    pub auto_crossover: u64,
}

impl Default for DispatchPolicy {
    fn default() -> DispatchPolicy {
        DispatchPolicy::auto()
    }
}

impl DispatchPolicy {
    /// The `Auto` heuristic with default tuning.
    pub fn auto() -> DispatchPolicy {
        DispatchPolicy {
            policy: Policy::Auto,
            auto_crossover: AUTO_WAVEFRONT_MIN_CELLS,
        }
    }

    /// A fixed-backend policy (scalar fallback still applies).
    pub fn fixed(id: BackendId) -> DispatchPolicy {
        DispatchPolicy {
            policy: Policy::Fixed(id),
            ..DispatchPolicy::auto()
        }
    }

    /// An explicit [`Policy`] with default tuning.
    pub fn new(policy: Policy) -> DispatchPolicy {
        DispatchPolicy {
            policy,
            ..DispatchPolicy::auto()
        }
    }

    /// Overrides the SIMD→wavefront crossover (per-pair DP cells).
    pub fn auto_crossover(mut self, cells: u64) -> DispatchPolicy {
        self.auto_crossover = cells;
        self
    }

    /// Builds the standard four-backend registry under this policy.
    pub fn standard(self) -> Dispatch {
        Dispatch {
            engines: vec![
                (BackendId::Scalar, Box::new(ScalarEngine) as Box<dyn Engine>),
                (BackendId::Simd, Box::new(SimdEngine::avx2())),
                (BackendId::Wavefront, Box::new(WavefrontEngine::default())),
                (BackendId::GpuSim, Box::new(GpuSimEngine::titan_v())),
            ],
            policy: self.policy,
            auto_crossover: self.auto_crossover,
        }
    }
}

/// The engine registry plus selection policy.
///
/// ```
/// use anyseq_engine::{BackendId, Dispatch, Policy, SchemeSpec};
///
/// let dispatch = Dispatch::standard(Policy::Auto);
/// let spec = SchemeSpec::global_linear(2, -1, -1);
/// // Short-read alignment batches stay on the SIMD lanes end to end
/// // (banded traceback), with the scalar reference closing the chain.
/// let chain = dispatch.candidates(&spec, 150 * 150, true);
/// assert_eq!(chain, vec![BackendId::Simd, BackendId::Scalar]);
/// // Huge pairs go to the intra-pair wavefront instead.
/// let chain = dispatch.candidates(&spec, 5000 * 5000, true);
/// assert_eq!(chain[0], BackendId::Wavefront);
/// ```
pub struct Dispatch {
    engines: Vec<(BackendId, Box<dyn Engine>)>,
    /// Selection policy applied per bin.
    pub policy: Policy,
    /// `Auto`'s SIMD→wavefront crossover, in per-pair DP cells.
    auto_crossover: u64,
}

impl Dispatch {
    /// The standard four-backend registry (scalar, AVX2-shaped SIMD,
    /// wavefront, Titan-V-modeled GPU simulator) with default tuning —
    /// use [`DispatchPolicy`] to customize.
    pub fn standard(policy: Policy) -> Dispatch {
        DispatchPolicy::new(policy).standard()
    }

    /// A registry with only the scalar reference backend.
    pub fn scalar_only() -> Dispatch {
        Dispatch {
            engines: vec![(BackendId::Scalar, Box::new(ScalarEngine) as Box<dyn Engine>)],
            policy: Policy::Fixed(BackendId::Scalar),
            auto_crossover: AUTO_WAVEFRONT_MIN_CELLS,
        }
    }

    /// The configured `Auto` SIMD→wavefront crossover (DP cells).
    pub fn auto_crossover(&self) -> u64 {
        self.auto_crossover
    }

    /// Replaces or registers a backend implementation.
    pub fn with_engine(mut self, id: BackendId, engine: Box<dyn Engine>) -> Dispatch {
        if let Some(slot) = self.engines.iter_mut().find(|(eid, _)| *eid == id) {
            slot.1 = engine;
        } else {
            self.engines.push((id, engine));
        }
        self
    }

    /// Looks up a registered backend.
    pub fn engine(&self, id: BackendId) -> Option<&dyn Engine> {
        self.engines
            .iter()
            .find(|(eid, _)| *eid == id)
            .map(|(_, e)| e.as_ref())
    }

    /// Registered backends in registration order.
    pub fn backends(&self) -> impl Iterator<Item = (BackendId, &dyn Engine)> {
        self.engines.iter().map(|(id, e)| (*id, e.as_ref()))
    }

    /// Whether `id` must run exclusively (gets the whole thread budget
    /// and is not sharded into the worker pool).
    pub fn is_exclusive(&self, id: BackendId) -> bool {
        id != BackendId::Scalar
            && self
                .engine(id)
                .map(|e| !e.caps().batch_native)
                .unwrap_or(false)
    }

    /// The ordered candidate chain for one bin: the policy's pick
    /// first, the scalar reference last (deduplicated). `max_cells`
    /// is the largest per-pair DP size in the bin; `align` selects the
    /// traceback capability.
    pub fn candidates(&self, spec: &SchemeSpec, max_cells: u64, align: bool) -> Vec<BackendId> {
        let primary = match self.policy {
            Policy::Fixed(id) => id,
            Policy::Auto => self.auto_choice(spec, max_cells, align),
        };
        let mut chain = vec![primary];
        if primary != BackendId::Scalar {
            chain.push(BackendId::Scalar);
        }
        chain.retain(|id| self.engine(*id).is_some());
        if chain.is_empty() {
            // A registry without the requested backend nor scalar is a
            // construction error; still, never return an empty chain.
            chain.extend(self.engines.first().map(|(id, _)| *id));
        }
        chain
    }

    fn auto_choice(&self, spec: &SchemeSpec, max_cells: u64, align: bool) -> BackendId {
        let caps_allow = |id: BackendId| {
            self.engine(id)
                .map(|e| {
                    if align {
                        e.caps().supports_align(spec)
                    } else {
                        e.caps().supports_score(spec)
                    }
                })
                .unwrap_or(false)
        };
        if max_cells >= self.auto_crossover && caps_allow(BackendId::Wavefront) {
            return BackendId::Wavefront;
        }
        // Score *and* alignment requests ride the lanes: the banded
        // traceback keeps short-read bins vectorized end to end, and
        // band overflows are rescued inside the backend without
        // leaving the chain.
        if caps_allow(BackendId::Simd) {
            return BackendId::Simd;
        }
        BackendId::Scalar
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::KindSpec;

    #[test]
    fn auto_routes_by_shape() {
        let d = Dispatch::standard(Policy::Auto);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        // Short-read bins: SIMD lanes.
        assert_eq!(d.candidates(&spec, 150 * 150, false)[0], BackendId::Simd);
        // Huge pairs: wavefront.
        assert_eq!(
            d.candidates(&spec, 5000 * 5000, false)[0],
            BackendId::Wavefront
        );
        // Local kind: SIMD refuses by caps, scalar picked directly.
        let local = spec.with_kind(KindSpec::Local);
        assert_eq!(d.candidates(&local, 150 * 150, false)[0], BackendId::Scalar);
        // Alignment requests for short-read global bins also stay on
        // the SIMD lanes (banded traceback)…
        assert_eq!(d.candidates(&spec, 150 * 150, true)[0], BackendId::Simd);
        // …but non-global kinds still fall through to scalar.
        assert_eq!(d.candidates(&local, 150 * 150, true)[0], BackendId::Scalar);
        // Huge alignment bins prefer intra-pair wavefront parallelism.
        assert_eq!(
            d.candidates(&spec, 5000 * 5000, true)[0],
            BackendId::Wavefront
        );
    }

    #[test]
    fn fixed_policy_keeps_scalar_fallback() {
        let d = Dispatch::standard(Policy::Fixed(BackendId::GpuSim));
        let spec = SchemeSpec::global_linear(2, -1, -1);
        assert_eq!(
            d.candidates(&spec, 100, false),
            vec![BackendId::GpuSim, BackendId::Scalar]
        );
        let s = Dispatch::standard(Policy::Fixed(BackendId::Scalar));
        assert_eq!(s.candidates(&spec, 100, false), vec![BackendId::Scalar]);
    }

    #[test]
    fn backend_names_round_trip() {
        for id in [
            BackendId::Scalar,
            BackendId::Simd,
            BackendId::Wavefront,
            BackendId::GpuSim,
        ] {
            assert_eq!(BackendId::parse(id.name()), Some(id));
        }
        assert_eq!(BackendId::parse("tpu"), None);
    }

    #[test]
    fn auto_crossover_is_configurable() {
        let spec = SchemeSpec::global_linear(2, -1, -1);
        // A tiny crossover sends even short reads to the wavefront…
        let low = DispatchPolicy::auto().auto_crossover(100).standard();
        assert_eq!(
            low.candidates(&spec, 150 * 150, false)[0],
            BackendId::Wavefront
        );
        // …a huge one keeps genome-scale pairs on the lanes.
        let high = DispatchPolicy::auto().auto_crossover(u64::MAX).standard();
        assert_eq!(
            high.candidates(&spec, 5000 * 5000, false)[0],
            BackendId::Simd
        );
        assert_eq!(high.auto_crossover(), u64::MAX);
        // Fixed policies are unaffected by the crossover knob.
        let fixed = DispatchPolicy::fixed(BackendId::GpuSim)
            .auto_crossover(1)
            .standard();
        assert_eq!(
            fixed.candidates(&spec, 150 * 150, false)[0],
            BackendId::GpuSim
        );
    }

    #[test]
    fn exclusive_marks_wavefront_only() {
        let d = Dispatch::standard(Policy::Auto);
        assert!(d.is_exclusive(BackendId::Wavefront));
        assert!(!d.is_exclusive(BackendId::Scalar));
        assert!(!d.is_exclusive(BackendId::Simd));
        assert!(!d.is_exclusive(BackendId::GpuSim));
    }
}
