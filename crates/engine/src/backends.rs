//! [`Engine`] adapters over the workspace's execution substrates.
//!
//! | backend     | scores | alignments | kinds             | shape                         |
//! |-------------|--------|------------|-------------------|-------------------------------|
//! | `scalar`    | ✓      | ✓          | all four          | per-pair scalar kernels       |
//! | `simd`      | ✓      | ✓          | global/semi/local | one alignment per 16-bit lane |
//! | `wavefront` | ✓      | ✓          | all four          | tiled intra-pair parallelism  |
//! | `gpu-sim`   | ✓      | ✓          | global            | device queue, modeled cycles  |
//!
//! Every adapter reduces to the same monomorphized kernels the typed
//! API uses ([`with_scheme!`](crate::with_scheme) bridges the runtime
//! [`SchemeSpec`] to them), so results stay bit-identical across
//! backends.

use crate::engine::{
    Caps, Engine, EngineError, ShardOutcome, ShardTask, ALL_KINDS, GLOBAL_ONLY, SIMD_KINDS,
};
use crate::spec::{GapSpec, SchemeSpec};
use crate::util::parallel_map;
use crate::{with_global_scheme, with_scheme, with_simd_scheme};
use anyseq_core::score::Score;
use anyseq_core::scoring::GapModel;
use anyseq_core::Alignment;
use anyseq_gpu_sim::{Device, GpuAligner, KernelShape};
use anyseq_obs::Stage;
use anyseq_seq::PairRef;
use anyseq_simd::{align_batch_simd, score_batch_simd_xdrop, BandCfg, TraceStats};
use anyseq_wavefront::{
    borders::BorderStore, finalize_score, slab_score_pass, ParallelCfg, ParallelExt, TileGrid,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pairs handed to one pool chunk when an adapter parallelizes
/// internally.
const MAP_CHUNK: usize = 64;

// ---------------------------------------------------------------- scalar

/// The reference backend: per-pair scalar kernels from `anyseq-core`,
/// optionally sharded across threads at alignment granularity.
/// Supports everything; never refuses — the dispatch layer's fallback
/// of last resort.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarEngine;

impl Engine for ScalarEngine {
    fn caps(&self) -> Caps {
        Caps {
            name: "scalar",
            score_kinds: ALL_KINDS,
            align_kinds: ALL_KINDS,
            alphabet: "dna4+n",
            max_native_extent: None,
            batch_native: false,
            max_unit_cells: None,
        }
    }

    fn score_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        threads: usize,
    ) -> Result<Vec<Score>, EngineError> {
        Ok(with_scheme!(spec, |scheme, _K| {
            anyseq_obs::span(Stage::Kernel, || {
                parallel_map(pairs, threads, MAP_CHUNK, |p| scheme.score_codes(p.q, p.s))
            })
        }))
    }

    fn align_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        threads: usize,
    ) -> Result<Vec<Alignment>, EngineError> {
        Ok(with_scheme!(spec, |scheme, _K| {
            anyseq_obs::span(Stage::Traceback, || {
                parallel_map(pairs, threads, MAP_CHUNK, |p| scheme.align_codes(p.q, p.s))
            })
        }))
    }
}

// ------------------------------------------------------------------ simd

/// Lane widths the SIMD batcher supports (16-bit score lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdLanes {
    /// 128-bit registers.
    L8,
    /// 256-bit registers (AVX2).
    #[default]
    L16,
    /// 512-bit registers (AVX512).
    L32,
}

impl SimdLanes {
    /// Number of 16-bit lanes per vector (transpose buffers copy
    /// `(|q| + |s|) × count` bytes per lane group).
    pub fn count(self) -> usize {
        match self {
            SimdLanes::L8 => 8,
            SimdLanes::L16 => 16,
            SimdLanes::L32 => 32,
        }
    }
}

/// Inter-sequence SIMD batching: one whole alignment per vector lane,
/// pairs bucketed by matrix dimensions (`anyseq_simd::batch`). Scores
/// *and* banded-traceback alignments for global, semi-global and local
/// specs (`FreeEnd` is the one refusal); oversized pairs and band
/// overflows take the internal scalar fallback, so acceptance is still
/// unconditional for supported kinds.
///
/// Band telemetry from the traceback path accumulates in internal
/// atomic counters, drained by the scheduler into
/// `BatchStats::counters` after every unit.
#[derive(Debug, Default)]
pub struct SimdEngine {
    /// Vector width to run with.
    pub lanes: SimdLanes,
    /// Adaptive-band tuning for the traceback path.
    pub band: BandCfg,
    /// X-drop threshold for the score path: lanes whose row maximum
    /// falls more than this below the running best retire early.
    /// `0` (the default) disables early termination and keeps scores
    /// bit-exact; ignored for global specs and the align path, which
    /// are always exact.
    pub xdrop: i32,
    counters: SimdCounters,
}

/// Drainable telemetry for [`SimdEngine`] (see
/// [`anyseq_simd::TraceStats`] for the per-run struct these sum).
#[derive(Debug, Default)]
struct SimdCounters {
    lane_pairs: AtomicU64,
    scalar_pairs: AtomicU64,
    band_widenings: AtomicU64,
    band_overflows: AtomicU64,
    band_cells: AtomicU64,
    bytes_copied: AtomicU64,
    xdrop_retired: AtomicU64,
}

impl SimdCounters {
    fn add(&self, t: &TraceStats) {
        self.lane_pairs.fetch_add(t.lane_pairs, Ordering::Relaxed);
        self.scalar_pairs
            .fetch_add(t.scalar_pairs, Ordering::Relaxed);
        self.band_widenings
            .fetch_add(t.band_widenings, Ordering::Relaxed);
        self.band_overflows
            .fetch_add(t.band_overflows, Ordering::Relaxed);
        self.band_cells.fetch_add(t.band_cells, Ordering::Relaxed);
        self.bytes_copied
            .fetch_add(t.bytes_copied, Ordering::Relaxed);
        self.xdrop_retired
            .fetch_add(t.xdrop_retired, Ordering::Relaxed);
    }
}

impl SimdEngine {
    /// AVX2-shaped default (16 × 16-bit lanes).
    pub fn avx2() -> SimdEngine {
        SimdEngine {
            lanes: SimdLanes::L16,
            ..SimdEngine::default()
        }
    }

    /// AVX512-shaped variant (32 lanes).
    pub fn avx512() -> SimdEngine {
        SimdEngine {
            lanes: SimdLanes::L32,
            ..SimdEngine::default()
        }
    }

    /// Same engine with a custom traceback band configuration.
    pub fn with_band(mut self, band: BandCfg) -> SimdEngine {
        self.band = band;
        self
    }

    /// Same engine with an X-drop threshold for the score path
    /// (clamped to ≥ 1; use the default engine for the exact path).
    pub fn with_xdrop(mut self, xdrop: i32) -> SimdEngine {
        self.xdrop = xdrop.max(1);
        self
    }
}

impl Engine for SimdEngine {
    fn caps(&self) -> Caps {
        Caps {
            name: "simd",
            score_kinds: SIMD_KINDS,
            align_kinds: SIMD_KINDS,
            alphabet: "dna4+n",
            // The 16-bit differential budget under the default ±2
            // scoring; per-spec the exact bound is
            // `anyseq_simd::max_block_extent`.
            max_native_extent: Some(6000),
            batch_native: true,
            max_unit_cells: None,
        }
    }

    fn score_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        threads: usize,
    ) -> Result<Vec<Score>, EngineError> {
        with_simd_scheme!(
            spec,
            |scheme, _K| {
                let (scores, trace) = match self.lanes {
                    SimdLanes::L8 => {
                        score_batch_simd_xdrop::<_, _, _, 8>(&scheme, pairs, threads, self.xdrop)
                    }
                    SimdLanes::L16 => {
                        score_batch_simd_xdrop::<_, _, _, 16>(&scheme, pairs, threads, self.xdrop)
                    }
                    SimdLanes::L32 => {
                        score_batch_simd_xdrop::<_, _, _, 32>(&scheme, pairs, threads, self.xdrop)
                    }
                };
                // Full telemetry: lane/scalar split, transpose bytes and
                // X-drop retirements (band fields are zero on the score
                // path and filtered out by drain_counters).
                self.counters.add(&trace);
                Ok(scores)
            },
            {
                Err(EngineError::unsupported(
                    "simd",
                    format!(
                        "the striped kernel covers global/semiglobal/local; kind {} needs \
                         another backend",
                        spec.kind.name()
                    ),
                ))
            }
        )
    }

    fn align_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        threads: usize,
    ) -> Result<Vec<Alignment>, EngineError> {
        with_simd_scheme!(
            spec,
            |scheme, _K| {
                // X-drop never applies here: tracebacks stay exact.
                let (alns, trace) = match self.lanes {
                    SimdLanes::L8 => {
                        align_batch_simd::<_, _, _, 8>(&scheme, pairs, threads, self.band)
                    }
                    SimdLanes::L16 => {
                        align_batch_simd::<_, _, _, 16>(&scheme, pairs, threads, self.band)
                    }
                    SimdLanes::L32 => {
                        align_batch_simd::<_, _, _, 32>(&scheme, pairs, threads, self.band)
                    }
                };
                self.counters.add(&trace);
                Ok(alns)
            },
            {
                Err(EngineError::unsupported(
                    "simd",
                    format!(
                        "the banded lane traceback covers global/semiglobal/local; kind {} \
                         needs another backend",
                        spec.kind.name()
                    ),
                ))
            }
        )
    }

    fn drain_counters(&self) -> Vec<(&'static str, u64)> {
        [
            ("simd.lane_pairs", &self.counters.lane_pairs),
            ("simd.scalar_pairs", &self.counters.scalar_pairs),
            ("simd.band_widenings", &self.counters.band_widenings),
            ("simd.band_overflows", &self.counters.band_overflows),
            ("simd.band_cells", &self.counters.band_cells),
            ("simd.bytes_copied", &self.counters.bytes_copied),
            ("simd.xdrop_retired", &self.counters.xdrop_retired),
        ]
        .into_iter()
        .filter_map(|(name, cell)| {
            let v = cell.swap(0, Ordering::Relaxed);
            (v != 0).then_some((name, v))
        })
        .collect()
    }
}

// ------------------------------------------------------------- wavefront

/// Tiled wavefront backend: parallelism *inside* each pair (dynamic
/// tile queue), pairs processed one after another. The right shape for
/// batches of few, huge pairs — the scheduler runs it exclusively with
/// the whole thread budget instead of sharding it into the pool.
///
/// Telemetry: `wavefront.pairs` (pairs executed),
/// `wavefront.border_bytes` (boundary-stripe bytes the tiled passes
/// kept resident, summed over pairs — the O(n + m) working set that
/// replaces an O(n·m) matrix), and `wavefront.peak_shard_mb` (high
/// water mark of the resident border + seam working set of sharded
/// executions, in MiB — the number the shard budget bounds). Drained
/// by the scheduler after each unit like the SIMD band counters.
#[derive(Debug)]
pub struct WavefrontEngine {
    /// Tile edge for the DP grid.
    pub tile: usize,
    /// Shard budget in DP cells: pairs larger than this run their
    /// tiled passes (including every Hirschberg half-pass of an
    /// alignment) as a chain of subject slabs with seam hand-off,
    /// bounding peak border memory to one slab. 0 disables sharding.
    pub shard_cells: u64,
    /// Per-unit DP-cell refusal bound advertised through
    /// [`Caps::max_unit_cells`]; `None` = unbounded.
    pub max_unit_cells: Option<u64>,
    pairs: AtomicU64,
    border_bytes: AtomicU64,
    peak_shard_bytes: AtomicU64,
}

impl Default for WavefrontEngine {
    fn default() -> WavefrontEngine {
        WavefrontEngine {
            tile: 512,
            shard_cells: 0,
            max_unit_cells: None,
            pairs: AtomicU64::new(0),
            border_bytes: AtomicU64::new(0),
            peak_shard_bytes: AtomicU64::new(0),
        }
    }
}

impl WavefrontEngine {
    /// Engine with a custom tile edge.
    pub fn with_tile(tile: usize) -> WavefrontEngine {
        WavefrontEngine {
            tile,
            ..WavefrontEngine::default()
        }
    }

    /// Same engine with a shard budget (0 disables sharding).
    pub fn with_shard_cells(mut self, cells: u64) -> WavefrontEngine {
        self.shard_cells = cells;
        self
    }

    /// Same engine with a hard per-unit cell bound (refuses instead of
    /// executing anything bigger — see [`Caps::max_unit_cells`]).
    pub fn with_max_unit_cells(mut self, cells: u64) -> WavefrontEngine {
        self.max_unit_cells = Some(cells);
        self
    }

    fn cfg(&self, threads: usize) -> ParallelCfg {
        ParallelCfg::threads(threads.max(1))
            .with_tile(self.tile)
            .with_shard_cells(self.shard_cells)
    }

    /// Width (in subject columns) of one slab under the shard plan.
    fn slab_width(&self, q: usize, s: usize) -> usize {
        ((self.shard_cells / q.max(1) as u64).max(1) as usize).min(s)
    }

    /// Checks one pair against the advertised per-unit bound: the
    /// resident unit is the whole matrix, or one slab when the shard
    /// plan applies.
    fn check_unit(&self, q: usize, s: usize) -> Result<(), EngineError> {
        let Some(max) = self.max_unit_cells else {
            return Ok(());
        };
        let cells = q as u64 * s as u64;
        if cells <= max {
            return Ok(());
        }
        if self.shard_cells > 0 && q > 0 && s > 1 {
            let slab = q as u64 * self.slab_width(q, s) as u64;
            if slab <= max {
                return Ok(());
            }
        }
        Err(EngineError::unit_too_large("wavefront", cells, max))
    }

    /// Accounts one executed pair's boundary working set.
    fn record_pair(&self, q: usize, s: usize, affine: bool) {
        self.pairs.fetch_add(1, Ordering::Relaxed);
        if q > 0 && s > 0 {
            let sharded = self.shard_cells > 0 && q as u64 * s as u64 > self.shard_cells && s > 1;
            let (grid_s, seam) = if sharded {
                // Resident at any instant: one slab's borders plus the
                // incoming and outgoing seam frontiers (H + F rows).
                (
                    self.slab_width(q, s),
                    2 * 2 * q * std::mem::size_of::<Score>(),
                )
            } else {
                (s, 0)
            };
            let grid = TileGrid::new(q, grid_s, self.tile);
            let bytes = (BorderStore::estimated_bytes(&grid, affine) + seam) as u64;
            self.border_bytes.fetch_add(bytes, Ordering::Relaxed);
            if sharded {
                self.peak_shard_bytes.fetch_max(bytes, Ordering::Relaxed);
            }
        }
    }
}

impl Engine for WavefrontEngine {
    fn caps(&self) -> Caps {
        Caps {
            name: "wavefront",
            score_kinds: ALL_KINDS,
            align_kinds: ALL_KINDS,
            alphabet: "dna4+n",
            max_native_extent: None,
            batch_native: false,
            max_unit_cells: self.max_unit_cells,
        }
    }

    fn score_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        threads: usize,
    ) -> Result<Vec<Score>, EngineError> {
        for p in pairs {
            self.check_unit(p.q.len(), p.s.len())?;
        }
        let cfg = self.cfg(threads);
        let affine = matches!(spec.gap, GapSpec::Affine { .. });
        Ok(with_scheme!(spec, |scheme, _K| {
            pairs
                .iter()
                .map(|p| {
                    self.record_pair(p.q.len(), p.s.len(), affine);
                    anyseq_obs::span(Stage::Kernel, || {
                        scheme.score_parallel_codes(p.q, p.s, &cfg)
                    })
                })
                .collect()
        }))
    }

    fn align_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        threads: usize,
    ) -> Result<Vec<Alignment>, EngineError> {
        for p in pairs {
            self.check_unit(p.q.len(), p.s.len())?;
        }
        let cfg = self.cfg(threads);
        let affine = matches!(spec.gap, GapSpec::Affine { .. });
        Ok(with_scheme!(spec, |scheme, _K| {
            pairs
                .iter()
                .map(|p| {
                    self.record_pair(p.q.len(), p.s.len(), affine);
                    anyseq_obs::span(Stage::Traceback, || {
                        scheme.align_parallel_codes(p.q, p.s, &cfg)
                    })
                })
                .collect()
        }))
    }

    fn score_shard(
        &self,
        spec: &SchemeSpec,
        task: &ShardTask<'_>,
        threads: usize,
    ) -> Result<ShardOutcome, EngineError> {
        let (n, (c0, c1)) = (task.q.len(), task.cols);
        if n == 0 || c0 >= c1 || c1 > task.s.len() {
            return Err(EngineError::unsupported(
                "wavefront",
                format!("degenerate shard columns {:?}", task.cols),
            ));
        }
        if let Some(max) = self.max_unit_cells {
            let cells = n as u64 * (c1 - c0) as u64;
            if cells > max {
                return Err(EngineError::unit_too_large("wavefront", cells, max));
            }
        }
        // One slab is the unit here; never re-shard inside it.
        let cfg = ParallelCfg::threads(threads.max(1)).with_tile(self.tile);
        let affine = matches!(spec.gap, GapSpec::Affine { .. });
        // Peak accounting: the slab's borders plus both seam frontiers.
        let grid = TileGrid::new(n, c1 - c0, self.tile);
        let seam_bytes = 2 * 2 * n * std::mem::size_of::<Score>();
        let bytes = (BorderStore::estimated_bytes(&grid, affine) + seam_bytes) as u64;
        self.border_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.peak_shard_bytes.fetch_max(bytes, Ordering::Relaxed);
        if task.last {
            self.pairs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(with_scheme!(spec, |scheme, K| {
            let slab = anyseq_obs::span(Stage::Kernel, || {
                slab_score_pass::<K, _, _>(
                    scheme.gap(),
                    scheme.subst(),
                    task.q,
                    task.s,
                    task.cols,
                    scheme.gap().open(),
                    task.seam,
                    &cfg,
                )
            });
            let mut best = task.best;
            best.merge(&slab.best);
            let score = task.last.then(|| {
                finalize_score::<K, _>(
                    scheme.gap(),
                    best,
                    n,
                    task.s.len(),
                    scheme.gap().open(),
                    *slab.last_h.last().expect("slab last row is never empty"),
                )
                .0
            });
            ShardOutcome {
                seam: slab.seam,
                best,
                score,
            }
        }))
    }

    fn drain_counters(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = [
            ("wavefront.pairs", &self.pairs),
            ("wavefront.border_bytes", &self.border_bytes),
        ]
        .into_iter()
        .filter_map(|(name, cell)| {
            let v = cell.swap(0, Ordering::Relaxed);
            (v != 0).then_some((name, v))
        })
        .collect();
        let peak = self.peak_shard_bytes.swap(0, Ordering::Relaxed);
        if peak != 0 {
            // Reported in MiB (rounded up) — `.peak_` counters merge by
            // maximum in `BatchStats`, not by sum.
            out.push(("wavefront.peak_shard_mb", peak.div_ceil(1 << 20).max(1)));
        }
        out
    }
}

// --------------------------------------------------------------- gpu-sim

/// GPU device-queue backend over the execution-model simulator: one
/// thread-block per alignment, NVBio-style inter-sequence batching.
/// Scores are bit-exact; modeled cycles accumulate in the aligner's
/// stats and can be read for capacity planning. Global-only (the
/// border-tracked optimum excludes local), and single-device — the
/// scheduler treats it as batch-native but it ignores the thread hint.
pub struct GpuSimEngine {
    aligner: GpuAligner,
}

impl GpuSimEngine {
    /// Titan-V-modeled device, AnySeq kernel shape.
    pub fn titan_v() -> GpuSimEngine {
        GpuSimEngine {
            aligner: GpuAligner::new(Device::titan_v()),
        }
    }

    /// Custom device/kernel shape.
    pub fn new(device: Device, shape: KernelShape, tile: usize) -> GpuSimEngine {
        GpuSimEngine {
            aligner: GpuAligner::new(device).with_shape(shape).with_tile(tile),
        }
    }

    /// The modeled device's accumulated statistics.
    pub fn aligner(&self) -> &GpuAligner {
        &self.aligner
    }
}

impl Engine for GpuSimEngine {
    fn caps(&self) -> Caps {
        Caps {
            name: "gpu-sim",
            score_kinds: GLOBAL_ONLY,
            align_kinds: GLOBAL_ONLY,
            alphabet: "dna4+n",
            max_native_extent: None,
            batch_native: true,
            max_unit_cells: None,
        }
    }

    fn score_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        _threads: usize,
    ) -> Result<Vec<Score>, EngineError> {
        with_global_scheme!(
            spec,
            |scheme| {
                Ok(anyseq_obs::span(Stage::Kernel, || {
                    self.aligner.score_batch(&scheme, pairs).0
                }))
            },
            {
                Err(EngineError::unsupported(
                    "gpu-sim",
                    format!(
                        "device kernels track border optima; kind {} is CPU-only",
                        spec.kind.name()
                    ),
                ))
            }
        )
    }

    fn align_batch(
        &self,
        spec: &SchemeSpec,
        pairs: &[PairRef<'_>],
        _threads: usize,
    ) -> Result<Vec<Alignment>, EngineError> {
        with_global_scheme!(
            spec,
            |scheme| {
                Ok(anyseq_obs::span(Stage::Traceback, || {
                    pairs
                        .iter()
                        .map(|p| self.aligner.align(&scheme, p.q, p.s).0)
                        .collect()
                }))
            },
            {
                Err(EngineError::unsupported(
                    "gpu-sim",
                    format!(
                        "device traceback is global-only; kind {} is CPU-only",
                        spec.kind.name()
                    ),
                ))
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::KindSpec;
    use anyseq_seq::testsupport::read_pairs;
    use anyseq_seq::{BatchView, Seq};

    #[test]
    fn all_backends_score_identically_global() {
        let pairs = read_pairs(60, 3);
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let expected: Vec<Score> = pairs.iter().map(|(q, s)| spec.score_scalar(q, s)).collect();
        let backends: Vec<Box<dyn Engine>> = vec![
            Box::new(ScalarEngine),
            Box::new(SimdEngine::avx2()),
            Box::new(WavefrontEngine::default()),
            Box::new(GpuSimEngine::titan_v()),
        ];
        for engine in &backends {
            let got = engine.score_batch(&spec, view.refs(), 4).unwrap();
            assert_eq!(got, expected, "{}", engine.caps().name);
        }
    }

    #[test]
    fn align_backends_match_scalar_ops() {
        let pairs = read_pairs(12, 5);
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);
        let reference = ScalarEngine.align_batch(&spec, view.refs(), 1).unwrap();
        for engine in [
            Box::new(WavefrontEngine::default()) as Box<dyn Engine>,
            Box::new(GpuSimEngine::titan_v()),
        ] {
            let got = engine.align_batch(&spec, view.refs(), 4).unwrap();
            for (k, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(a.score, b.score, "{} pair {k}", engine.caps().name);
                assert_eq!(a.ops, b.ops, "{} pair {k}", engine.caps().name);
            }
        }
    }

    #[test]
    fn simd_alignments_carry_exact_scores_and_replay() {
        use anyseq_core::kind::Global;
        let pairs = read_pairs(40, 13);
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);
        let engine = SimdEngine::avx2();
        let got = engine.align_batch(&spec, view.refs(), 4).unwrap();
        for (k, (q, s)) in pairs.iter().enumerate() {
            let reference = spec.align_scalar(q, s);
            assert_eq!(got[k].score, reference.score, "pair {k}");
            crate::with_scheme!(&spec, |scheme, _K| {
                got[k]
                    .validate::<Global, _, _>(q, s, scheme.gap(), scheme.subst())
                    .unwrap_or_else(|e| panic!("pair {k}: {e}"));
            });
        }
        let counters = engine.drain_counters();
        assert!(
            counters
                .iter()
                .any(|&(n, v)| n == "simd.lane_pairs" && v > 0),
            "lane traceback must have run: {counters:?}"
        );
        assert!(engine.drain_counters().is_empty(), "drain resets");
    }

    #[test]
    fn wavefront_counters_drain_and_reset() {
        let pairs = read_pairs(30, 4);
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);
        let engine = WavefrontEngine::default();
        engine.score_batch(&spec, view.refs(), 2).unwrap();
        let counters = engine.drain_counters();
        assert!(
            counters
                .iter()
                .any(|&(n, v)| n == "wavefront.pairs" && v == pairs.len() as u64),
            "pair count: {counters:?}"
        );
        assert!(
            counters
                .iter()
                .any(|&(n, v)| n == "wavefront.border_bytes" && v > 0),
            "border bytes: {counters:?}"
        );
        assert!(engine.drain_counters().is_empty(), "drain resets");
    }

    #[test]
    fn restricted_backends_refuse_unsupported_kinds() {
        let pairs = read_pairs(4, 7);
        let view = BatchView::from_pairs(&pairs);
        let refs = view.refs();
        let local = SchemeSpec::global_linear(2, -1, -1).with_kind(KindSpec::Local);
        // The kind-generic striped kernel covers local lanes now…
        assert!(SimdEngine::avx2().score_batch(&local, refs, 1).is_ok());
        assert!(SimdEngine::avx2().align_batch(&local, refs, 1).is_ok());
        // …the GPU simulator's device queue does not.
        assert!(GpuSimEngine::titan_v()
            .score_batch(&local, refs, 1)
            .is_err());
        // FreeEnd is the one kind the SIMD lanes still refuse.
        let free_end = SchemeSpec::global_linear(2, -1, -1).with_kind(KindSpec::FreeEnd);
        assert!(SimdEngine::avx2().score_batch(&free_end, refs, 1).is_err());
        assert!(SimdEngine::avx2().align_batch(&free_end, refs, 1).is_err());
        // The generic engines accept all kinds.
        assert!(ScalarEngine.score_batch(&free_end, refs, 1).is_ok());
        assert!(WavefrontEngine::default()
            .score_batch(&free_end, refs, 2)
            .is_ok());
    }

    #[test]
    fn caps_reflect_contract() {
        assert!(Caps::supports_score(
            &ScalarEngine.caps(),
            &SchemeSpec::global_linear(2, -1, -1).with_kind(KindSpec::Local)
        ));
        assert!(SimdEngine::avx2()
            .caps()
            .supports_align(&SchemeSpec::global_linear(2, -1, -1)));
        assert!(SimdEngine::avx2()
            .caps()
            .supports_align(&SchemeSpec::global_linear(2, -1, -1).with_kind(KindSpec::Local)));
        assert!(SimdEngine::avx2()
            .caps()
            .supports_score(&SchemeSpec::global_linear(2, -1, -1).with_kind(KindSpec::SemiGlobal)));
        assert!(!SimdEngine::avx2()
            .caps()
            .supports_align(&SchemeSpec::global_linear(2, -1, -1).with_kind(KindSpec::FreeEnd)));
        assert!(SimdEngine::avx2().caps().batch_native);
        assert!(!WavefrontEngine::default().caps().batch_native);
    }

    #[test]
    fn simd_nonglobal_scores_match_scalar() {
        let pairs = read_pairs(60, 9);
        let view = BatchView::from_pairs(&pairs);
        for kind in [KindSpec::SemiGlobal, KindSpec::Local] {
            let spec = SchemeSpec::global_affine(2, -3, -3, -1).with_kind(kind);
            let expected: Vec<Score> = pairs.iter().map(|(q, s)| spec.score_scalar(q, s)).collect();
            let engine = SimdEngine::avx2();
            let got = engine.score_batch(&spec, view.refs(), 4).unwrap();
            assert_eq!(got, expected, "{kind:?}");
            let counters = engine.drain_counters();
            assert!(
                counters
                    .iter()
                    .any(|&(n, v)| n == "simd.lane_pairs" && v > 0),
                "{kind:?}: lanes must have run: {counters:?}"
            );
            assert!(
                !counters.iter().any(|&(n, _)| n == "simd.xdrop_retired"),
                "{kind:?}: the exact path must not retire lanes: {counters:?}"
            );
        }
    }

    #[test]
    fn simd_xdrop_retires_and_counts() {
        // Prefix-divergence pairs: a matched prefix then pure mismatch,
        // so the running best flatlines and every lane crosses the
        // threshold long before the last row.
        let q = Seq::from_ascii(&[b"A".repeat(10), b"C".repeat(60)].concat()).unwrap();
        let s = Seq::from_ascii(&[b"A".repeat(10), b"G".repeat(60)].concat()).unwrap();
        let pairs: Vec<(Seq, Seq)> = (0..32).map(|_| (q.clone(), s.clone())).collect();
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_linear(2, -3, -2).with_kind(KindSpec::SemiGlobal);
        let engine = SimdEngine::avx2().with_xdrop(20);
        engine.score_batch(&spec, view.refs(), 1).unwrap();
        let counters = engine.drain_counters();
        assert!(
            counters
                .iter()
                .any(|&(n, v)| n == "simd.xdrop_retired" && v == 32),
            "every lane should retire: {counters:?}"
        );
        // Global requests ignore the threshold entirely.
        let engine = SimdEngine::avx2().with_xdrop(20);
        let got = engine
            .score_batch(&SchemeSpec::global_linear(2, -3, -2), view.refs(), 1)
            .unwrap();
        assert_eq!(
            got[0],
            spec.with_kind(KindSpec::Global).score_scalar(&q, &s)
        );
        assert!(!engine
            .drain_counters()
            .iter()
            .any(|&(n, _)| n == "simd.xdrop_retired"));
    }
}
