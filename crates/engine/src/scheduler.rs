//! Length-binned batch scheduling over borrowed [`BatchView`]s.
//!
//! ## Request model
//!
//! The scheduler consumes a [`BatchView`]: an ordered list of
//! [`PairRef`]s into storage the caller keeps alive (a
//! [`SeqStore`](anyseq_seq::SeqStore), a `Vec<(Seq, Seq)>` through the
//! [`BatchScheduler::score_pairs`]/[`BatchScheduler::align_pairs`]
//! shims, …). Work units carry *indices into the view*; the
//! just-in-time gather that hands a unit to a backend materializes a
//! `Vec<PairRef>` — 32 bytes of pointers per pair, never sequence
//! bytes. The only sequence copy anywhere below the view is the SIMD
//! backend's lane transpose, which it reports as `simd.bytes_copied`;
//! the scheduler's own `sched.bytes_copied` counter (always present in
//! [`BatchStats::counters`]) records gather-time sequence copies and
//! is structurally zero — it exists as a regression tripwire and so
//! benchmark reports can prove the zero-copy property.
//!
//! ## Binning strategy
//!
//! Pairs are grouped by their dimensions rounded up to a quantum
//! (default 16 bases): pairs in one bin have near-identical DP
//! matrices, which is exactly what the inter-sequence SIMD backend
//! needs for dense lane occupancy and what keeps tile padding waste
//! low everywhere else. Within a bin, pairs are sorted by exact
//! dimensions so equal-size runs sit adjacently — the SIMD bucketer
//! then fills whole lane groups instead of leftovers.
//!
//! Bins are cut into bounded work units, ordered longest-first (LPT),
//! and pulled by a pool of `threads` workers over a shared counter.
//! Each worker runs the dispatch-selected backend with a thread budget
//! of 1; backends that parallelize *inside* a pair (wavefront) are
//! instead run exclusively with the whole budget. Results are written
//! straight into their input positions, so reassembly is free and the
//! output order is always the input order.
//!
//! ## Result caching
//!
//! When the dispatch carries a [`ResultCache`](crate::cache::ResultCache)
//! ([`DispatchPolicy::cache_mb`](crate::DispatchPolicy::cache_mb)),
//! every pair is probed *before* units are formed: verified hits are
//! written straight into their output slots, in-batch duplicates of a
//! missing pair are deduplicated onto one leader computation, and only
//! the remaining unique misses are binned and dispatched. Fresh unit
//! results are inserted back into the cache as they complete (workers
//! insert concurrently; shards lock independently). `cache.hits` +
//! `cache.misses` always equals the batch's pair count; duplicates
//! served from their leader's fresh result count as hits. With hits in
//! play, [`BatchStats::cells`] keeps counting the batch's *logical*
//! cells — the whole-batch GCUPS becomes effective throughput (the
//! paid-for speedup), while `per_backend` only accounts cells that
//! actually ran.

use crate::cache::{
    CacheKey, CacheableResult, CACHE_BYTES, CACHE_COLLISIONS, CACHE_EVICTIONS, CACHE_HITS,
    CACHE_INGEST_BYTES, CACHE_MISSES,
};
use crate::dispatch::Dispatch;
use crate::engine::{Engine, EngineError, ShardTask};
use crate::spec::SchemeSpec;
use crate::stats::{self, BatchStats};
use crate::util::IndexedOut;
use anyseq_core::relax::BestCell;
use anyseq_core::score::Score;
use anyseq_core::Alignment;
use anyseq_obs as obs;
use anyseq_obs::Stage;
use anyseq_seq::{BatchView, PairRef, Seq};
use anyseq_wavefront::{plan_columns, ShardSeam};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Name of the scheduler's gather-copy counter in
/// [`BatchStats::counters`]. Always reported; a non-zero value means a
/// code path re-introduced per-pair sequence cloning on the dispatch
/// hot path.
pub const SCHED_BYTES_COPIED: &str = "sched.bytes_copied";

/// Name of the counter bumped when a backend declines a unit because
/// its [`Caps`](crate::engine::Caps) exclude the request's alignment
/// *kind* (as opposed to score-only/alphabet refusals). A non-zero
/// value under `Auto` means the router proposed a backend whose
/// capability table it should have consulted — with the kind-generic
/// SIMD kernels, short non-global bins route to the lanes directly and
/// this counter stays 0 outside `Fixed` policies that force a
/// mismatched backend.
pub const FALLBACK_KIND_UNSUPPORTED: &str = "dispatch.fallback_kind_unsupported";

/// Name of the counter recording how many subject slabs the exclusive
/// phase's shard planner cut oversized pairs into (the planned count in
/// align mode, where the engine shards internally under Hirschberg;
/// the executed chain length in score mode). Absent when no pair
/// exceeded [`DispatchPolicy::shard_cells`](crate::DispatchPolicy::shard_cells).
pub const SCHED_SHARDS: &str = "sched.shards";

/// Name of the counter recording serialized [`ShardSeam`] bytes handed
/// between consecutive shards of the score chain. The hand-off goes
/// through the seam's wire form even in-process — the value is exactly
/// what a multi-node deployment would put on the network, and the
/// round-trip keeps the serializer honest on the production path.
pub const SCHED_SEAM_BYTES: &str = "sched.seam_bytes";

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchCfg {
    /// Worker threads (also the budget handed to exclusive backends).
    pub threads: usize,
    /// Length rounding for bin keys, in bases.
    pub bin_quantum: usize,
    /// Maximum pairs per work unit.
    pub chunk_pairs: usize,
}

impl Default for BatchCfg {
    fn default() -> BatchCfg {
        BatchCfg {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            bin_quantum: 16,
            chunk_pairs: 512,
        }
    }
}

impl BatchCfg {
    /// Default configuration with an explicit thread count.
    pub fn threads(threads: usize) -> BatchCfg {
        BatchCfg {
            threads: threads.max(1),
            ..BatchCfg::default()
        }
    }
}

/// The batch scheduler: bins, shards, dispatches, reassembles.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchScheduler {
    /// Tuning knobs.
    pub cfg: BatchCfg,
}

/// Results plus execution statistics for one batch run.
#[derive(Debug, Clone)]
pub struct BatchRun<T> {
    /// Per-pair results, in input order.
    pub results: Vec<T>,
    /// What ran where, and how fast.
    pub stats: BatchStats,
}

/// One schedulable chunk of a bin.
struct Unit {
    /// View positions of the unit's pairs.
    indices: Vec<usize>,
    /// Total DP cells in the unit.
    cells: u64,
    /// Largest single-pair DP size (drives backend choice).
    max_cells: u64,
    /// Index into the batch's bin-label table (span/metric tag).
    bin: u32,
    /// Batch-unique unit id (span tag).
    id: u32,
}

impl BatchScheduler {
    /// Scheduler with the given config.
    pub fn new(cfg: BatchCfg) -> BatchScheduler {
        BatchScheduler { cfg }
    }

    /// Scores every pair of the view through the dispatch policy.
    ///
    /// Legacy shim over [`BatchScheduler::try_score_batch`]: panics on
    /// a terminal refusal ([`EngineError::UnitTooLarge`], or a foreign
    /// candidate chain that declined everything). The standard
    /// registry without `max_unit_cells` never refuses, so existing
    /// callers keep their infallible signature.
    pub fn score_batch(
        &self,
        dispatch: &Dispatch,
        spec: &SchemeSpec,
        view: &BatchView<'_>,
    ) -> BatchRun<Score> {
        self.try_score_batch(dispatch, spec, view)
            .unwrap_or_else(|e| panic!("batch scoring failed: {e}"))
    }

    /// Aligns (with traceback) every pair of the view through the
    /// dispatch policy.
    ///
    /// Legacy shim over [`BatchScheduler::try_align_batch`]; see
    /// [`BatchScheduler::score_batch`] for the panic contract.
    pub fn align_batch(
        &self,
        dispatch: &Dispatch,
        spec: &SchemeSpec,
        view: &BatchView<'_>,
    ) -> BatchRun<Alignment> {
        self.try_align_batch(dispatch, spec, view)
            .unwrap_or_else(|e| panic!("batch alignment failed: {e}"))
    }

    /// Scores every pair of the view, surfacing terminal refusals.
    ///
    /// With [`DispatchPolicy::shard_cells`](crate::DispatchPolicy::shard_cells)
    /// set, pairs whose DP matrix exceeds the budget run as a pipelined
    /// chain of subject slabs through [`Engine::score_shard`]: each
    /// shard imports the previous shard's border frontier (a
    /// [`ShardSeam`], serialized across the hand-off) and exports the
    /// next, so only one slab's tile borders are ever resident.
    /// Results are bit-identical to the unsharded pass.
    pub fn try_score_batch<'v>(
        &self,
        dispatch: &Dispatch,
        spec: &SchemeSpec,
        view: &BatchView<'v>,
    ) -> Result<BatchRun<Score>, EngineError> {
        self.run(
            dispatch,
            spec,
            view,
            false,
            |engine, unit, threads| engine.score_batch(spec, unit, threads),
            Some(
                |engine: &dyn Engine,
                 p: &PairRef<'_>,
                 plan: &[(usize, usize)],
                 threads: usize,
                 stats: &mut BatchStats| {
                    score_shard_chain(engine, spec, p, plan, threads, stats)
                },
            ),
        )
    }

    /// Aligns every pair of the view, surfacing terminal refusals.
    ///
    /// Oversized pairs stay whole here — stitching per-shard CIGARs is
    /// the Hirschberg recursion's job, and the wavefront engine's
    /// internal shard dispatch already bounds every half-pass to one
    /// slab — but the shard planner still records the planned
    /// [`SCHED_SHARDS`] count so align-mode telemetry matches.
    pub fn try_align_batch<'v>(
        &self,
        dispatch: &Dispatch,
        spec: &SchemeSpec,
        view: &BatchView<'v>,
    ) -> Result<BatchRun<Alignment>, EngineError> {
        self.run(
            dispatch,
            spec,
            view,
            true,
            |engine, unit, threads| engine.align_batch(spec, unit, threads),
            None::<
                fn(
                    &dyn Engine,
                    &PairRef<'v>,
                    &[(usize, usize)],
                    usize,
                    &mut BatchStats,
                ) -> Result<Alignment, EngineError>,
            >,
        )
    }

    /// Convenience shim over [`BatchScheduler::score_batch`] for owned
    /// pair batches (borrows them; copies no sequence bytes).
    pub fn score_pairs(
        &self,
        dispatch: &Dispatch,
        spec: &SchemeSpec,
        pairs: &[(Seq, Seq)],
    ) -> BatchRun<Score> {
        self.score_batch(dispatch, spec, &BatchView::from_pairs(pairs))
    }

    /// Convenience shim over [`BatchScheduler::align_batch`] for owned
    /// pair batches (borrows them; copies no sequence bytes).
    pub fn align_pairs(
        &self,
        dispatch: &Dispatch,
        spec: &SchemeSpec,
        pairs: &[(Seq, Seq)],
    ) -> BatchRun<Alignment> {
        self.align_batch(dispatch, spec, &BatchView::from_pairs(pairs))
    }

    fn run<'v, T, F, SX>(
        &self,
        dispatch: &Dispatch,
        spec: &SchemeSpec,
        view: &BatchView<'v>,
        align: bool,
        exec: F,
        shard_exec: Option<SX>,
    ) -> Result<BatchRun<T>, EngineError>
    where
        T: CacheableResult,
        F: Fn(&dyn Engine, &[PairRef<'v>], usize) -> Result<Vec<T>, EngineError> + Sync,
        SX: Fn(
            &dyn Engine,
            &PairRef<'v>,
            &[(usize, usize)],
            usize,
            &mut BatchStats,
        ) -> Result<T, EngineError>,
    {
        let started = Instant::now();
        // Traceback recomputes ≈2× the cells of a score-only pass; use
        // the shared convention so GCUPS here matches the bench's.
        let cell_factor = if align {
            stats::TRACEBACK_CELL_FACTOR
        } else {
            1
        };
        let mut batch_stats = BatchStats {
            pairs: view.len() as u64,
            cells: view.total_cells() * cell_factor,
            ..BatchStats::default()
        };
        // The gather below moves PairRefs, never sequence bytes; the
        // counter is recorded unconditionally so every report carries
        // the proof (and any future cloning path would show up here).
        batch_stats.record_counter(SCHED_BYTES_COPIED, 0);

        // Observability rides on the dispatch: with a metrics registry
        // present, a per-batch tracer collects stage spans (per-worker
        // thread-local buffers, drained at batch end) and the registry
        // accumulates histograms/gauges across batches. Without one,
        // every obs:: call below is a no-op behind one TLS read.
        let registry = dispatch.metrics();
        let tracer = registry.map(|_| obs::BatchTracer::new());
        let main_guard = tracer.as_ref().map(|t| t.worker(0));
        if tracer.is_some() {
            // Pre-seed all stage counters so observed runs always
            // report the full `stage.*_ns` key set, active or not.
            for stage in Stage::ALL {
                batch_stats.record_counter(stage.counter_key(), 0);
            }
        }

        let mut out = IndexedOut::new(view.len());
        let writer = out.writer();

        // Cache probe phase (before any unit forms): verified hits are
        // written straight into their slots; in-batch duplicates of a
        // miss are deduplicated onto one leader computation. Only
        // unique misses proceed to binning, so cached and duplicated
        // pairs never reach a backend.
        //
        // Key derivation hashes every pair's bytes and a verified hit
        // memcmps them — the only O(sequence-bytes) work on the probe
        // path — so the probe fans out across the worker budget in
        // contiguous chunks (the cache's shards lock independently);
        // only the O(misses) duplicate dedup below stays serial.
        let cache = dispatch.cache();
        let cache_baseline = cache.map(|c| (c.evictions(), c.collisions()));
        let mut keys: Vec<CacheKey> = Vec::new();
        let mut followers: HashMap<usize, Vec<usize>> = HashMap::new();
        let compute: Vec<usize> = if let Some(cache) = cache {
            let fingerprint = spec.fingerprint();
            let n = view.len();
            keys = vec![
                CacheKey {
                    scheme: 0,
                    q_hash: 0,
                    s_hash: 0,
                    q_len: 0,
                    s_len: 0,
                    kind: T::KIND,
                };
                n
            ];
            // Two passes per chunk, not one interleaved loop, so the
            // span boundary is honest: key derivation (the `hash`
            // stage) is pure CPU over sequence bytes, probing (the
            // `cache_probe` stage) is shard-locked map traffic.
            let probe = |start: usize, key_slots: &mut [CacheKey]| -> Vec<usize> {
                let t_hash = obs::timer();
                for (i, slot) in key_slots.iter_mut().enumerate() {
                    *slot = CacheKey::new(fingerprint, &view.get(start + i), T::KIND);
                }
                obs::commit(Stage::Hash, t_hash);
                let t_probe = obs::timer();
                let mut misses = Vec::new();
                for (i, slot) in key_slots.iter().enumerate() {
                    let k = start + i;
                    if let Some(value) = cache.get::<T>(slot, &view.get(k)) {
                        // SAFETY: hit slots belong to no unit and no
                        // leader; each is written exactly once, here.
                        unsafe { writer.write(k, value) };
                    } else {
                        misses.push(k);
                    }
                }
                obs::commit(Stage::CacheProbe, t_probe);
                misses
            };
            let chunk = n.div_ceil(self.cfg.threads.max(1)).max(64);
            let misses: Vec<usize> = if n <= chunk {
                probe(0, &mut keys)
            } else {
                let probe = &probe;
                let tracer = &tracer;
                let t_wait = obs::timer();
                let misses = std::thread::scope(|sc| {
                    let handles: Vec<_> = keys
                        .chunks_mut(chunk)
                        .enumerate()
                        .map(|(c, key_slots)| {
                            sc.spawn(move || {
                                // Probe chunks reuse the pool's worker
                                // lanes (1-based; the phases never
                                // overlap in time).
                                let _g = tracer.as_ref().map(|t| t.worker(c as u32 + 1));
                                probe(c * chunk, key_slots)
                            })
                        })
                        .collect();
                    // Chunks are contiguous input ranges, so joining in
                    // spawn order preserves input order in the misses.
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("cache probe worker panicked"))
                        .collect()
                });
                obs::commit(Stage::QueueWait, t_wait);
                misses
            };
            // In-batch duplicate dedup over the misses: the first miss
            // of each distinct key leads; later ones ride its
            // computation (served through the cache path, so they
            // count as hits). Same collision policy as a cache hit: a
            // key match alone never merges two pairs — the bytes must
            // match too, or the "duplicate" computes independently.
            let mut leaders: HashMap<CacheKey, usize> = HashMap::new();
            let mut compute = Vec::new();
            for k in misses {
                match leaders.get(&keys[k]) {
                    Some(&leader)
                        if view.get(leader).q == view.get(k).q
                            && view.get(leader).s == view.get(k).s =>
                    {
                        followers.entry(leader).or_default().push(k);
                    }
                    _ => {
                        leaders.insert(keys[k], k);
                        compute.push(k);
                    }
                }
            }
            batch_stats.record_counter(CACHE_HITS, (n - compute.len()) as u64);
            batch_stats.record_counter(CACHE_MISSES, compute.len() as u64);
            compute
        } else {
            (0..view.len()).collect()
        };

        let (units, bin_labels) = self.build_units(view, &compute);
        batch_stats.bins = bin_labels.len() as u64;
        batch_stats.units = units.len() as u64;

        // Resolve each unit's candidate chain once; it drives both the
        // pooled/exclusive classification and execution.
        let chains: Vec<Vec<crate::dispatch::BackendId>> = units
            .iter()
            .map(|unit| dispatch.candidates(spec, unit.max_cells, align))
            .collect();

        // Split by execution mode: exclusive backends own the machine
        // for their units; pooled units share the worker pool.
        let mut pooled: Vec<(&Unit, &[crate::dispatch::BackendId])> = Vec::new();
        let mut exclusive: Vec<(&Unit, &[crate::dispatch::BackendId])> = Vec::new();
        for (unit, chain) in units.iter().zip(&chains) {
            if dispatch.is_exclusive(chain[0]) {
                exclusive.push((unit, chain));
            } else {
                pooled.push((unit, chain));
            }
        }
        // Longest-processing-time-first keeps the pool tail short.
        pooled.sort_by_key(|(unit, _)| std::cmp::Reverse(unit.cells));

        let keys = &keys;
        let followers = &followers;
        let bin_labels = &bin_labels;
        let run_unit = |unit: &Unit,
                        chain: &[crate::dispatch::BackendId],
                        threads: usize,
                        local: &mut BatchStats|
         -> Result<(), EngineError> {
            obs::set_context("sched", unit.bin, unit.id);
            // Gather the unit's pair *references* contiguously
            // just-in-time: 32 bytes of pointers per pair. The sequence
            // bytes stay where the caller put them — for an exclusive
            // unit holding a multi-Mbp genome this is the difference
            // between a dispatch and a deep copy.
            let unit_pairs: Vec<PairRef<'v>> = obs::span(Stage::Gather, || {
                unit.indices.iter().map(|&k| view.get(k)).collect()
            });
            let mut last_refusal = None;
            for (k, id) in chain.iter().enumerate() {
                let engine = dispatch
                    .engine(*id)
                    .expect("candidates only returns registered backends");
                // Spans the engine emits (kernel, transpose, traceback)
                // must attribute to the engine that actually executes,
                // not the chain's first pick.
                obs::set_context(engine.caps().name, unit.bin, unit.id);
                let t0 = Instant::now();
                match exec(engine, &unit_pairs, threads) {
                    Ok(values) => {
                        // Hard check: the unsafe indexed writes below rely
                        // on one value per pair even from foreign Engine
                        // impls.
                        assert_eq!(
                            values.len(),
                            unit.indices.len(),
                            "{} returned {} results for {} pairs",
                            engine.caps().name,
                            values.len(),
                            unit.indices.len()
                        );
                        let t_insert = obs::timer();
                        let mut unit_ingest = 0u64;
                        for (slot, value) in unit.indices.iter().zip(values) {
                            if let Some(cache) = cache {
                                // Fresh result: retain it (and its
                                // verification bytes) for future
                                // batches, and fan it out to this
                                // batch's deduplicated followers.
                                unit_ingest +=
                                    cache.insert(&keys[*slot], &view.get(*slot), &value) as u64;
                                if let Some(dups) = followers.get(slot) {
                                    for &dup in dups {
                                        // SAFETY: follower slots belong
                                        // to no unit and exactly one
                                        // leader; written once, here.
                                        unsafe { writer.write(dup, value.clone()) };
                                    }
                                }
                            }
                            // SAFETY: units partition the computed
                            // indices; each slot is written exactly once.
                            unsafe { writer.write(*slot, value) };
                        }
                        if cache.is_some() {
                            // Without a cache the write-out above is a
                            // plain move loop — only insert traffic is
                            // worth a span.
                            obs::commit(Stage::CacheInsert, t_insert);
                            local.record_counter(CACHE_INGEST_BYTES, unit_ingest);
                        }
                        if let Some(reg) = registry {
                            let labels = obs::labels(&[
                                ("backend", engine.caps().name),
                                ("kind", spec.kind.name()),
                                ("bin", &bin_labels[unit.bin as usize]),
                            ]);
                            reg.observe(
                                "anyseq_unit_pairs",
                                labels.clone(),
                                unit.indices.len() as u64,
                            );
                            reg.observe("anyseq_unit_cells", labels, unit.cells * cell_factor);
                        }
                        local.fallbacks += k as u64;
                        // Backend-internal telemetry (e.g. the SIMD
                        // traceback's band counters and its transpose
                        // byte count) rides along with the unit that
                        // produced it.
                        for (name, value) in engine.drain_counters() {
                            local.record_counter(name, value);
                        }
                        // Busy time records granted capacity: an
                        // exclusive backend holds `threads` workers'
                        // worth of the machine for its wall time.
                        local.record(
                            engine.caps().name,
                            unit.indices.len() as u64,
                            unit.cells * cell_factor,
                            t0.elapsed().as_secs_f64() * threads.max(1) as f64,
                        );
                        return Ok(());
                    }
                    Err(err @ EngineError::Unsupported { .. }) => {
                        // A declining engine may still have accumulated
                        // internal counters (capability probes, partial
                        // setup). Drain them *now* so they attribute to
                        // this unit instead of silently leaking into
                        // whichever unit this engine executes next.
                        for (name, value) in engine.drain_counters() {
                            local.record_counter(name, value);
                        }
                        local.record_counter(id.declined_counter(), 1);
                        // Distinguish kind-capability refusals from the
                        // rest: the capability table already knew this
                        // backend cannot run the kind, so the chain paid
                        // a probe it could have skipped.
                        let caps = engine.caps();
                        let kind_refused = if align {
                            !caps.supports_align(spec)
                        } else {
                            !caps.supports_score(spec)
                        };
                        if kind_refused {
                            local.record_counter(FALLBACK_KIND_UNSUPPORTED, 1);
                        }
                        last_refusal = Some(err);
                        continue;
                    }
                    // UnitTooLarge is terminal: falling back would
                    // execute the very allocation the bound prevents.
                    Err(err) => return Err(err),
                }
            }
            // The standard registry's scalar backend accepts
            // everything; only a foreign chain can exhaust itself.
            Err(last_refusal.expect("empty candidate chain"))
        };

        // Pooled phase: shared-counter pull, thread budget 1 per call.
        let pool_threads = self.cfg.threads.clamp(1, pooled.len().max(1));
        if !pooled.is_empty() {
            let next = AtomicUsize::new(0);
            let pooled = &pooled;
            let run_unit = &run_unit;
            let tracer = &tracer;
            let t_wait = obs::timer();
            let worker_stats: Vec<(BatchStats, Option<EngineError>)> = {
                let next = &next;
                std::thread::scope(|sc| {
                    let handles: Vec<_> = (0..pool_threads)
                        .map(|w| {
                            sc.spawn(move || {
                                let _g = tracer.as_ref().map(|t| t.worker(w as u32 + 1));
                                let mut local = BatchStats::default();
                                let mut failed = None;
                                loop {
                                    // The wait span opens at the top of
                                    // every pull so worker lanes stay
                                    // contiguous; it closes only when a
                                    // unit was actually drawn (the final
                                    // empty pull just drops the timer).
                                    let t_idle = obs::timer();
                                    let k = next.fetch_add(1, Ordering::Relaxed);
                                    if k >= pooled.len() {
                                        break;
                                    }
                                    let (unit, chain) = pooled[k];
                                    obs::set_context("sched", unit.bin, unit.id);
                                    obs::commit(Stage::QueueWait, t_idle);
                                    if let Err(e) = run_unit(unit, chain, 1, &mut local) {
                                        // Terminal refusal: stop this
                                        // worker; the batch errors out
                                        // after the joins.
                                        failed = Some(e);
                                        break;
                                    }
                                }
                                (local, failed)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("batch worker panicked"))
                        .collect()
                })
            };
            // The coordinator lane spent the pooled phase blocked on
            // the join — account it as queue wait so its lane has no
            // unexplained hole in the trace.
            obs::commit(Stage::QueueWait, t_wait);
            let t_merge = obs::timer();
            for (local, _) in &worker_stats {
                batch_stats.merge(local);
            }
            obs::commit(Stage::Merge, t_merge);
            if let Some(err) = worker_stats.into_iter().find_map(|(_, e)| e) {
                return Err(err);
            }
        }

        // Exclusive phase: serial over units, full budget inside each.
        // A shard planner peels chromosome-scale pairs off every unit
        // first: a pair whose DP matrix exceeds the dispatch's
        // `shard_cells` budget is cut into subject slabs
        // (`plan_columns`) and — in score mode — executed as a
        // pipelined chain through `Engine::score_shard`, each shard
        // importing the previous shard's serialized seam frontier.
        // Align-mode pairs stay whole (the engine shards internally
        // under Hirschberg, which stitches the per-shard CIGARs); only
        // the planned shard count is recorded for them.
        let mut exclusive_stats = BatchStats::default();
        let shard_cells = dispatch.shard_cells();
        for (unit, chain) in &exclusive {
            let mut rest: Vec<usize> = Vec::with_capacity(unit.indices.len());
            for &pos in &unit.indices {
                let p = view.get(pos);
                let oversized =
                    shard_cells > 0 && p.cells() > shard_cells && !p.q.is_empty() && p.s.len() > 1;
                if !oversized {
                    rest.push(pos);
                    continue;
                }
                let plan = plan_columns(p.q.len(), p.s.len(), shard_cells);
                exclusive_stats.record_counter(SCHED_SHARDS, plan.len() as u64);
                let Some(sx) = &shard_exec else {
                    rest.push(pos);
                    continue;
                };
                let mut ran = false;
                for (ci, id) in chain.iter().enumerate() {
                    let engine = dispatch
                        .engine(*id)
                        .expect("candidates only returns registered backends");
                    obs::set_context(engine.caps().name, unit.bin, unit.id);
                    let t0 = Instant::now();
                    match sx(engine, &p, &plan, self.cfg.threads, &mut exclusive_stats) {
                        Ok(value) => {
                            let cells = p.cells() * cell_factor;
                            if let Some(cache) = cache {
                                let ingest = cache.insert(&keys[pos], &p, &value) as u64;
                                exclusive_stats.record_counter(CACHE_INGEST_BYTES, ingest);
                                if let Some(dups) = followers.get(&pos) {
                                    for &dup in dups {
                                        // SAFETY: follower slots belong
                                        // to no unit and exactly one
                                        // leader; written once, here.
                                        unsafe { writer.write(dup, value.clone()) };
                                    }
                                }
                            }
                            // SAFETY: `pos` was peeled out of its
                            // unit's residual index set, so this slot
                            // is written exactly once, here.
                            unsafe { writer.write(pos, value) };
                            if let Some(reg) = registry {
                                let labels = obs::labels(&[
                                    ("backend", engine.caps().name),
                                    ("kind", spec.kind.name()),
                                    ("bin", &bin_labels[unit.bin as usize]),
                                ]);
                                reg.observe("anyseq_unit_pairs", labels.clone(), 1);
                                reg.observe("anyseq_unit_cells", labels, cells);
                            }
                            exclusive_stats.fallbacks += ci as u64;
                            for (name, value) in engine.drain_counters() {
                                exclusive_stats.record_counter(name, value);
                            }
                            exclusive_stats.record(
                                engine.caps().name,
                                1,
                                cells,
                                t0.elapsed().as_secs_f64() * self.cfg.threads.max(1) as f64,
                            );
                            ran = true;
                            break;
                        }
                        Err(EngineError::Unsupported { .. }) => {
                            // No sharded path on this backend; counters
                            // drain now so they attribute here.
                            for (name, value) in engine.drain_counters() {
                                exclusive_stats.record_counter(name, value);
                            }
                            exclusive_stats.record_counter(id.declined_counter(), 1);
                            continue;
                        }
                        // UnitTooLarge: even one slab busts the
                        // backend's bound — terminal, like run_unit.
                        Err(err) => return Err(err),
                    }
                }
                if !ran {
                    // No shard-capable backend in the chain: the pair
                    // runs unsharded with its unit (an engine with
                    // internal shard dispatch still bounds its own
                    // memory through its pass config).
                    rest.push(pos);
                }
            }
            if rest.len() == unit.indices.len() {
                run_unit(unit, chain, self.cfg.threads, &mut exclusive_stats)?;
            } else if !rest.is_empty() {
                let per_pair = rest.iter().map(|&k| view.get(k).cells());
                let cells = per_pair.clone().sum();
                let max_cells = per_pair.max().unwrap_or(0);
                let residual = Unit {
                    indices: rest,
                    cells,
                    max_cells,
                    bin: unit.bin,
                    id: unit.id,
                };
                run_unit(&residual, chain, self.cfg.threads, &mut exclusive_stats)?;
            }
        }
        let t_merge = obs::timer();
        batch_stats.merge(&exclusive_stats);
        obs::commit(Stage::Merge, t_merge);

        if let (Some(cache), Some((evictions0, collisions0))) = (cache, cache_baseline) {
            // `cache.bytes` is a resident-size gauge snapshot; the
            // eviction/collision counters are per-run deltas.
            batch_stats.record_counter(CACHE_BYTES, cache.bytes());
            batch_stats.record_counter(
                CACHE_EVICTIONS,
                cache.evictions().saturating_sub(evictions0),
            );
            let collisions = cache.collisions().saturating_sub(collisions0);
            if collisions > 0 {
                batch_stats.record_counter(CACHE_COLLISIONS, collisions);
            }
        }

        // SAFETY: cache hits and followers were written during probe /
        // unit completion, pooled ∪ exclusive covers every computed
        // unit, units partition the remaining indices, and all workers
        // have been joined.
        let results = unsafe { out.finish() };
        // Which worker recorded first is a race; sort so the breakdown
        // is deterministic across runs.
        batch_stats.per_backend.sort_by_key(|b| b.backend);
        batch_stats.wall_seconds = started.elapsed().as_secs_f64();

        // Drain the tracer: fold every span into the additive
        // `stage.*_ns` counters, feed the registry's per-(stage,
        // backend, bin) latency histograms, and keep the raw spans on
        // the stats for the Chrome-trace exporter.
        drop(main_guard);
        if let Some(tracer) = tracer {
            let spans = tracer.finish();
            for span in &spans {
                batch_stats.record_counter(span.stage.counter_key(), span.dur_ns);
            }
            if let Some(reg) = registry {
                for span in &spans {
                    let bin = if span.bin == obs::NO_ID {
                        "-"
                    } else {
                        &bin_labels[span.bin as usize]
                    };
                    let labels = obs::labels(&[
                        ("stage", span.stage.name()),
                        ("backend", span.backend),
                        ("bin", bin),
                    ]);
                    reg.observe("anyseq_stage_duration_ns", labels, span.dur_ns);
                }
                reg.inc("anyseq_batches_total", String::new(), 1);
                reg.inc("anyseq_batch_pairs_total", String::new(), batch_stats.pairs);
                reg.inc("anyseq_batch_cells_total", String::new(), batch_stats.cells);
                reg.inc(
                    "anyseq_batch_fallbacks_total",
                    String::new(),
                    batch_stats.fallbacks,
                );
                let counter = |name: &str| batch_stats.counters.get(name).copied().unwrap_or(0);
                reg.inc(
                    "anyseq_batch_shards_total",
                    String::new(),
                    counter(SCHED_SHARDS),
                );
                reg.inc(
                    "anyseq_batch_seam_bytes_total",
                    String::new(),
                    counter(SCHED_SEAM_BYTES),
                );
                if let Some(cache) = cache {
                    for (i, shard) in cache.shard_stats().iter().enumerate() {
                        let l = obs::labels(&[("shard", &i.to_string())]);
                        reg.set_gauge("anyseq_cache_shard_bytes", l.clone(), shard.bytes as f64);
                        reg.set_gauge(
                            "anyseq_cache_shard_entries",
                            l.clone(),
                            shard.entries as f64,
                        );
                        reg.set_gauge("anyseq_cache_shard_hits", l.clone(), shard.hits as f64);
                        reg.set_gauge("anyseq_cache_shard_evictions", l, shard.evictions as f64);
                    }
                }
            }
            batch_stats.spans = spans;
        }
        Ok(BatchRun {
            results,
            stats: batch_stats,
        })
    }

    /// Bins the given view positions (the whole view without a cache;
    /// only the unique cache misses with one) by quantized dimensions,
    /// sorts bins for lane density, and cuts them into bounded units.
    ///
    /// The chunk size shrinks below `chunk_pairs` when the batch is
    /// small relative to the pool, so a batch never collapses into
    /// fewer units than there are workers (idle-core guard); a floor
    /// of 32 pairs keeps SIMD lane groups dense.
    /// Returns the units plus one label per bin (`"<q>x<s>"`, the
    /// quantized dimensions in bases) — the `bin` tag vocabulary for
    /// spans and metrics.
    fn build_units(&self, view: &BatchView<'_>, indices: &[usize]) -> (Vec<Unit>, Vec<String>) {
        let quantum = self.cfg.bin_quantum.max(1);
        let fill_chunk = indices.len().div_ceil(self.cfg.threads.max(1)).max(32);
        let chunk = self.cfg.chunk_pairs.max(1).min(fill_chunk);
        // Cut units at lane-group boundaries: a unit whose pair count
        // is a multiple of the widest SIMD lane group (32) leaves no
        // leftover pairs for the backend's scalar tail, which runs
        // ~4× slower per cell than the lanes and dominates small
        // batches otherwise. Rounding down keeps the idle-core guard
        // intact (the unit count can only grow).
        let chunk = if chunk > 32 {
            chunk - chunk % 32
        } else {
            chunk
        };
        let round = |len: usize| len.div_ceil(quantum);

        let mut bins: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for &k in indices {
            let p = view.get(k);
            bins.entry((round(p.q.len()), round(p.s.len())))
                .or_default()
                .push(k);
        }
        let mut bin_labels = Vec::with_capacity(bins.len());
        let mut units = Vec::new();
        for ((qk, sk), mut indices) in bins {
            let bin = bin_labels.len() as u32;
            bin_labels.push(format!("{}x{}", qk * quantum, sk * quantum));
            // Exact-dimension order maximizes full SIMD lane groups.
            indices.sort_by_key(|&k| (view.get(k).q.len(), view.get(k).s.len(), k));
            for piece in indices.chunks(chunk) {
                let per_pair = piece.iter().map(|&k| view.get(k).cells());
                let cells = per_pair.clone().sum();
                let max_cells = per_pair.max().unwrap_or(0);
                units.push(Unit {
                    indices: piece.to_vec(),
                    cells,
                    max_cells,
                    bin,
                    id: units.len() as u32,
                });
            }
        }
        (units, bin_labels)
    }
}

/// Runs one oversized pair as a pipelined chain of subject slabs over
/// `engine`, handing the border frontier forward between shards.
///
/// The seam crosses each hand-off in its serialized wire form — the
/// recorded [`SCHED_SEAM_BYTES`] are exactly what a multi-node
/// deployment would ship, and the round-trip exercises the
/// serializer on the production path. Any shard error aborts the chain
/// (partial work is discarded; the caller decides whether to retry the
/// pair unsharded on another candidate).
fn score_shard_chain(
    engine: &dyn Engine,
    spec: &SchemeSpec,
    p: &PairRef<'_>,
    plan: &[(usize, usize)],
    threads: usize,
    stats: &mut BatchStats,
) -> Result<Score, EngineError> {
    let mut seam: Option<ShardSeam> = None;
    let mut best = BestCell::empty();
    let mut score = None;
    let last = plan.len() - 1;
    for (i, &cols) in plan.iter().enumerate() {
        let task = ShardTask {
            q: p.q,
            s: p.s,
            cols,
            seam: seam.as_ref(),
            best,
            last: i == last,
        };
        let out = engine.score_shard(spec, &task, threads)?;
        best = out.best;
        score = out.score;
        if i < last {
            let bytes = out.seam.to_bytes();
            stats.record_counter(SCHED_SEAM_BYTES, bytes.len() as u64);
            seam =
                Some(ShardSeam::from_bytes(&bytes).expect("a just-serialized seam deserializes"));
        }
    }
    Ok(score.expect("the last shard finalizes the score"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{BackendId, Policy};
    use crate::spec::KindSpec;
    use anyseq_seq::genome::GenomeSim;
    use anyseq_seq::testsupport::read_pairs;

    fn scheduler(threads: usize) -> BatchScheduler {
        BatchScheduler::new(BatchCfg {
            threads,
            bin_quantum: 16,
            chunk_pairs: 64,
        })
    }

    #[test]
    fn scores_match_scalar_in_input_order() {
        let pairs = read_pairs(200, 1);
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let dispatch = Dispatch::standard(Policy::Auto);
        let run = scheduler(4).score_batch(&dispatch, &spec, &view);
        assert_eq!(run.results.len(), pairs.len());
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(run.results[k], spec.score_scalar(q, s), "pair {k}");
        }
        assert_eq!(run.stats.pairs, 200);
        assert!(run.stats.gcups() > 0.0);
        assert!(run.stats.per_backend.iter().any(|b| b.backend == "simd"));
        // The gather copies no sequence bytes — the counter is present
        // and zero.
        assert_eq!(run.stats.counters[SCHED_BYTES_COPIED], 0);
    }

    #[test]
    fn alignments_match_scalar_scores_and_replay() {
        use anyseq_core::kind::Global;
        let pairs = read_pairs(60, 2);
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);
        let dispatch = Dispatch::standard(Policy::Auto);
        let run = scheduler(4).align_batch(&dispatch, &spec, &view);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(
                run.results[k].score,
                spec.align_scalar(q, s).score,
                "pair {k}"
            );
            crate::with_scheme!(&spec, |scheme, _K| {
                run.results[k]
                    .validate::<Global, _, _>(q, s, scheme.gap(), scheme.subst())
                    .unwrap_or_else(|e| panic!("pair {k}: {e}"));
            });
        }
        // Short-read alignment batches now stay on the SIMD lanes: no
        // dispatch-level fallbacks, and the band telemetry shows up.
        assert_eq!(run.stats.fallbacks, 0);
        assert!(run.stats.per_backend.iter().any(|b| b.backend == "simd"));
        assert!(
            run.stats
                .counters
                .get("simd.lane_pairs")
                .copied()
                .unwrap_or(0)
                > 0
        );
        // The lane transpose is the only sequence copy and is reported.
        assert!(
            run.stats
                .counters
                .get("simd.bytes_copied")
                .copied()
                .unwrap_or(0)
                > 0
        );
        assert_eq!(run.stats.counters[SCHED_BYTES_COPIED], 0);
    }

    #[test]
    fn owned_pair_shims_match_view_runs() {
        let pairs = read_pairs(80, 6);
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let dispatch = Dispatch::standard(Policy::Auto);
        let sched = scheduler(3);
        let via_view = sched.score_batch(&dispatch, &spec, &view);
        let via_shim = sched.score_pairs(&dispatch, &spec, &pairs);
        assert_eq!(via_view.results, via_shim.results);
        let aln_view = sched.align_batch(&dispatch, &spec, &view);
        let aln_shim = sched.align_pairs(&dispatch, &spec, &pairs);
        assert_eq!(
            aln_view.results.iter().map(|a| a.score).collect::<Vec<_>>(),
            aln_shim.results.iter().map(|a| a.score).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fixed_unsupported_backend_falls_back() {
        let pairs = read_pairs(40, 3);
        // Free-end kind on the SIMD backend (the one kind its lanes
        // still refuse): every unit must fall back.
        let spec = SchemeSpec::global_linear(2, -1, -1).with_kind(KindSpec::FreeEnd);
        let dispatch = Dispatch::standard(Policy::Fixed(BackendId::Simd));
        let run = scheduler(2).score_pairs(&dispatch, &spec, &pairs);
        assert!(run.stats.fallbacks > 0);
        assert!(run.stats.per_backend.iter().all(|b| b.backend == "scalar"));
        // Every fallback here is a kind-capability refusal, and the
        // dedicated counter says so.
        assert_eq!(
            run.stats.counters[FALLBACK_KIND_UNSUPPORTED],
            run.stats.fallbacks
        );
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(run.results[k], spec.score_scalar(q, s), "pair {k}");
        }
    }

    #[test]
    fn kind_unsupported_counter_is_zero_for_auto_nonglobal_bins() {
        // Before the kind-generic SIMD kernels, every short semi-global
        // or local bin bounced off the lanes' caps; now `Auto` routes
        // them to SIMD directly and the kind-refusal counter stays
        // absent (additive counters are only recorded when bumped).
        let pairs = read_pairs(60, 17);
        let sched = scheduler(2);
        for kind in [KindSpec::SemiGlobal, KindSpec::Local] {
            let spec = SchemeSpec::global_linear(2, -1, -1).with_kind(kind);
            let auto = Dispatch::standard(Policy::Auto);
            let run = sched.score_pairs(&auto, &spec, &pairs);
            assert_eq!(run.stats.fallbacks, 0, "{kind:?}");
            assert!(
                !run.stats.counters.contains_key(FALLBACK_KIND_UNSUPPORTED),
                "{kind:?}: {:?}",
                run.stats.counters
            );
            assert!(
                run.stats.per_backend.iter().any(|b| b.backend == "simd"),
                "{kind:?}: {:?}",
                run.stats.per_backend
            );
            // A fixed policy forcing the kind onto the device queue
            // still fires it — the counter tracks capability mismatch,
            // not kind support in general.
            let forced = Dispatch::standard(Policy::Fixed(BackendId::GpuSim));
            let run = sched.score_pairs(&forced, &spec, &pairs);
            assert!(
                run.stats.counters[FALLBACK_KIND_UNSUPPORTED] > 0,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn large_pairs_take_the_exclusive_wavefront_path() {
        let mut sim = GenomeSim::new(9);
        let a = sim.generate(2600);
        let b = sim.mutate(&a, 0.05);
        let c = sim.generate(2400);
        let d = sim.mutate(&c, 0.10);
        let pairs = vec![(a, b), (c, d)];
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);
        let dispatch = Dispatch::standard(Policy::Auto);
        let run = scheduler(4).score_batch(&dispatch, &spec, &view);
        assert!(run
            .stats
            .per_backend
            .iter()
            .any(|u| u.backend == "wavefront"));
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(run.results[k], spec.score_scalar(q, s), "pair {k}");
        }
        // Exclusive wavefront units ride the zero-copy path end to end.
        assert_eq!(run.stats.counters[SCHED_BYTES_COPIED], 0);
        assert!(!run.stats.counters.contains_key("wavefront.bytes_copied"));
    }

    #[test]
    fn oversized_pairs_score_through_the_shard_chain() {
        use crate::dispatch::DispatchPolicy;
        let mut sim = GenomeSim::new(21);
        let a = sim.generate(1200);
        let b = sim.mutate(&a, 0.08);
        let c = sim.generate(300);
        let d = sim.mutate(&c, 0.05);
        // One chromosome-scale pair (sharded) and one under the budget
        // (runs whole) in the same batch.
        let pairs = vec![(a, b), (c, d)];
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);
        let sharded = DispatchPolicy::fixed(BackendId::Wavefront)
            .shard_cells(1 << 18)
            .standard();
        let run = scheduler(4).score_batch(&sharded, &spec, &view);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(run.results[k], spec.score_scalar(q, s), "pair {k}");
        }
        // ~1.4M cells over a 256Ki budget → at least 5 slabs, each
        // hand-off shipping a serialized seam.
        assert!(
            run.stats.counters[SCHED_SHARDS] >= 5,
            "{:?}",
            run.stats.counters
        );
        assert!(run.stats.counters[SCHED_SEAM_BYTES] > 0);
        // The resident-footprint gauge rides along from the backend.
        assert!(run.stats.counters["wavefront.peak_shard_mb"] >= 1);
        assert!(run
            .stats
            .per_backend
            .iter()
            .any(|u| u.backend == "wavefront" && u.pairs == 2));
    }

    #[test]
    fn sharded_aligns_match_unsharded_and_record_planned_shards() {
        use crate::dispatch::DispatchPolicy;
        let mut sim = GenomeSim::new(33);
        let a = sim.generate(1000);
        let b = sim.mutate(&a, 0.07);
        let pairs = vec![(a, b)];
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);
        let plain = DispatchPolicy::fixed(BackendId::Wavefront).standard();
        let sharded = DispatchPolicy::fixed(BackendId::Wavefront)
            .shard_cells(1 << 18)
            .standard();
        let sched = scheduler(4);
        let base = sched.align_batch(&plain, &spec, &view);
        let run = sched.align_batch(&sharded, &spec, &view);
        // Hirschberg stitches the per-shard half-passes: score AND ops
        // bit-identical to the unsharded run.
        assert_eq!(run.results[0].score, base.results[0].score);
        assert_eq!(run.results[0].ops, base.results[0].ops);
        // Align mode records the planned shard count (the engine
        // shards internally under the recursion).
        assert!(
            run.stats.counters[SCHED_SHARDS] >= 3,
            "{:?}",
            run.stats.counters
        );
        assert!(!base.stats.counters.contains_key(SCHED_SHARDS));
    }

    #[test]
    fn unit_too_large_is_a_terminal_refusal() {
        use crate::backends::WavefrontEngine;
        let mut sim = GenomeSim::new(7);
        let a = sim.generate(300);
        let b = sim.mutate(&a, 0.05);
        let pairs = vec![(a.clone(), b.clone())];
        let view = BatchView::from_pairs(&pairs);
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);
        // A 90k-cell pair against a 10k-cell bound with no shard plan:
        // the refusal must surface instead of degrading to scalar (the
        // fallback would execute the very allocation the bound caps).
        let dispatch = Dispatch::standard(Policy::Fixed(BackendId::Wavefront)).with_engine(
            BackendId::Wavefront,
            Box::new(WavefrontEngine::default().with_max_unit_cells(10_000)),
        );
        let err = scheduler(2)
            .try_score_batch(&dispatch, &spec, &view)
            .unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::UnitTooLarge {
                    backend: "wavefront",
                    ..
                }
            ),
            "{err}"
        );
        // A shard plan under the bound lifts the refusal: the same
        // pair runs as a slab chain whose resident unit fits.
        let ok = Dispatch::standard(Policy::Fixed(BackendId::Wavefront)).with_engine(
            BackendId::Wavefront,
            Box::new(
                WavefrontEngine::default()
                    .with_shard_cells(8_192)
                    .with_max_unit_cells(10_000),
            ),
        );
        let run = scheduler(2).try_score_batch(&ok, &spec, &view).unwrap();
        assert_eq!(run.results[0], spec.score_scalar(&a, &b));
    }

    #[test]
    fn empty_and_degenerate_batches() {
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let dispatch = Dispatch::standard(Policy::Auto);
        let sched = scheduler(4);
        let run = sched.score_batch(&dispatch, &spec, &BatchView::default());
        assert!(run.results.is_empty());
        assert_eq!(run.stats.pairs, 0);
        assert_eq!(run.stats.counters[SCHED_BYTES_COPIED], 0);

        let q = Seq::from_ascii(b"ACGT").unwrap();
        let pairs = vec![(q.clone(), Seq::new()), (q.clone(), q)];
        let run = sched.score_pairs(&dispatch, &spec, &pairs);
        assert_eq!(run.results, vec![-4, 8]);
    }

    #[test]
    fn gpu_policy_scores_whole_batch_on_device() {
        let pairs = read_pairs(30, 4);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let dispatch = Dispatch::standard(Policy::Fixed(BackendId::GpuSim));
        let run = scheduler(2).score_pairs(&dispatch, &spec, &pairs);
        assert!(run
            .stats
            .per_backend
            .iter()
            .any(|b| b.backend == "gpu-sim" && b.pairs == 30));
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(run.results[k], spec.score_scalar(q, s), "pair {k}");
        }
    }

    #[test]
    fn binning_is_deterministic_and_covers_input() {
        let pairs = read_pairs(150, 5);
        let view = BatchView::from_pairs(&pairs);
        let sched = scheduler(3);
        let all: Vec<usize> = (0..view.len()).collect();
        let (units, bin_labels) = sched.build_units(&view, &all);
        assert!(!bin_labels.is_empty());
        for unit in &units {
            assert!((unit.bin as usize) < bin_labels.len());
        }
        let ids: Vec<u32> = units.iter().map(|u| u.id).collect();
        assert_eq!(ids, (0..units.len() as u32).collect::<Vec<_>>());
        let mut seen: Vec<usize> = units.iter().flat_map(|u| u.indices.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..pairs.len()).collect::<Vec<_>>());
        for unit in &units {
            assert!(unit.indices.len() <= sched.cfg.chunk_pairs);
            let cells: u64 = unit
                .indices
                .iter()
                .map(|&k| (pairs[k].0.len() * pairs[k].1.len()) as u64)
                .sum();
            assert_eq!(unit.cells, cells);
        }
    }

    #[test]
    fn cache_serves_duplicates_and_repeat_batches() {
        use crate::cache::{CACHE_BYTES, CACHE_HITS, CACHE_INGEST_BYTES, CACHE_MISSES};
        use crate::dispatch::DispatchPolicy;
        // 120 unique reads plus one duplicate of each: the cold run
        // must dedupe in-batch, the warm run must not compute at all.
        let unique = read_pairs(120, 21);
        let mut pairs = unique.clone();
        pairs.extend(unique.iter().cloned());
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let dispatch = DispatchPolicy::auto().cache_mb(8).standard();
        let sched = scheduler(4);

        let cold = sched.score_pairs(&dispatch, &spec, &pairs);
        assert_eq!(cold.stats.counters[CACHE_HITS], 120, "in-batch duplicates");
        assert_eq!(cold.stats.counters[CACHE_MISSES], 120);
        assert_eq!(
            cold.stats.counters[CACHE_HITS] + cold.stats.counters[CACHE_MISSES],
            cold.stats.pairs
        );
        assert!(cold.stats.counters[CACHE_BYTES] > 0);
        assert!(cold.stats.counters[CACHE_INGEST_BYTES] > 0);
        // The dispatch hot path still copies nothing.
        assert_eq!(cold.stats.counters[SCHED_BYTES_COPIED], 0);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(cold.results[k], spec.score_scalar(q, s), "pair {k}");
        }

        let warm = sched.score_pairs(&dispatch, &spec, &pairs);
        assert_eq!(warm.stats.counters[CACHE_HITS], warm.stats.pairs);
        assert_eq!(warm.stats.counters[CACHE_MISSES], 0);
        assert!(
            warm.stats.per_backend.is_empty(),
            "a fully warm batch computes nothing: {:?}",
            warm.stats.per_backend
        );
        assert_eq!(warm.results, cold.results, "warm run is bit-identical");

        // Alignment requests key separately from score requests…
        let aln_cold = sched.align_pairs(&dispatch, &spec, &pairs);
        assert_eq!(aln_cold.stats.counters[CACHE_MISSES], 120);
        let aln_warm = sched.align_pairs(&dispatch, &spec, &pairs);
        assert_eq!(aln_warm.stats.counters[CACHE_HITS], aln_warm.stats.pairs);
        // …and served alignments are bit-identical, CIGARs included.
        for (k, (a, b)) in aln_cold.results.iter().zip(&aln_warm.results).enumerate() {
            assert_eq!(a.score, b.score, "pair {k}");
            assert_eq!(a.ops, b.ops, "pair {k}");
        }
        // In-batch duplicates carry their leader's exact alignment.
        for k in 0..120 {
            assert_eq!(aln_cold.results[k].ops, aln_cold.results[k + 120].ops);
        }
    }

    #[test]
    fn cache_counters_cover_empty_and_degenerate_batches() {
        use crate::cache::{CACHE_HITS, CACHE_MISSES};
        use crate::dispatch::DispatchPolicy;
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let dispatch = DispatchPolicy::auto().cache_mb(1).standard();
        let sched = scheduler(2);
        let run = sched.score_batch(&dispatch, &spec, &BatchView::default());
        assert!(run.results.is_empty());
        assert_eq!(run.stats.counters[CACHE_HITS], 0);
        assert_eq!(run.stats.counters[CACHE_MISSES], 0);

        // Empty sequences cache like any other content.
        let q = Seq::from_ascii(b"ACGT").unwrap();
        let pairs = vec![
            (q.clone(), Seq::new()),
            (q.clone(), q),
            (Seq::new(), Seq::new()),
        ];
        let cold = sched.score_pairs(&dispatch, &spec, &pairs);
        assert_eq!(cold.results, vec![-4, 8, 0]);
        let warm = sched.score_pairs(&dispatch, &spec, &pairs);
        assert_eq!(warm.results, cold.results);
        assert_eq!(warm.stats.counters[CACHE_HITS], 3);
    }

    #[test]
    fn seq_store_view_runs_without_owned_pairs() {
        use anyseq_seq::SeqStore;
        // The arena path: ingest once, dispatch borrowed views forever.
        let pairs = read_pairs(50, 11);
        let mut store = SeqStore::new();
        let ids: Vec<_> = pairs
            .iter()
            .map(|(q, s)| (store.push(q).unwrap(), store.push(s).unwrap()))
            .collect();
        drop(pairs);
        let view = store.view(&ids);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let dispatch = Dispatch::standard(Policy::Auto);
        let run = scheduler(2).score_batch(&dispatch, &spec, &view);
        assert_eq!(run.results.len(), 50);
        for (k, &(q, s)) in ids.iter().enumerate() {
            crate::with_scheme!(&spec, |scheme, _K| {
                assert_eq!(
                    run.results[k],
                    scheme.score_codes(store.get(q), store.get(s)),
                    "pair {k}"
                );
            });
        }
    }
}
