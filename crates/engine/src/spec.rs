//! Runtime scheme description.
//!
//! The core library expresses alignment behaviour as *types*
//! (`Scheme<K, G, S>`), which is what makes every combination compile
//! into a dedicated kernel. A batch engine, however, must be chosen at
//! *runtime* (CLI flags, service requests), so this module provides the
//! value-level mirror [`SchemeSpec`] plus the
//! [`with_scheme!`](crate::with_scheme) /
//! [`with_simd_scheme!`](crate::with_simd_scheme) /
//! [`with_global_scheme!`](crate::with_global_scheme) macros that
//! lower a spec onto the
//! monomorphized kernels — the runtime↔compile-time bridge every
//! backend adapter uses.

use anyseq_core::score::Score;
use anyseq_core::Alignment;
use anyseq_seq::Seq;

/// Value-level alignment kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KindSpec {
    /// Needleman–Wunsch: both sequences end to end.
    Global,
    /// Smith–Waterman: best-scoring subsequences.
    Local,
    /// Free end gaps on both sequence ends.
    SemiGlobal,
    /// Anchored start, free end.
    FreeEnd,
}

impl KindSpec {
    /// Stable lower-case name (CLI flag values).
    pub fn name(self) -> &'static str {
        match self {
            KindSpec::Global => "global",
            KindSpec::Local => "local",
            KindSpec::SemiGlobal => "semiglobal",
            KindSpec::FreeEnd => "free-end",
        }
    }

    /// Parses a CLI-style name.
    pub fn parse(text: &str) -> Option<KindSpec> {
        match text {
            "global" => Some(KindSpec::Global),
            "local" => Some(KindSpec::Local),
            "semiglobal" => Some(KindSpec::SemiGlobal),
            "free-end" | "freeend" | "free_end" => Some(KindSpec::FreeEnd),
            _ => None,
        }
    }
}

/// Value-level gap model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GapSpec {
    /// One price per gapped base.
    Linear {
        /// Per-base gap score (≤ 0).
        gap: i32,
    },
    /// Gotoh affine gaps.
    Affine {
        /// Gap-open score (≤ 0).
        open: i32,
        /// Gap-extension score (≤ 0).
        extend: i32,
    },
}

/// A fully value-level alignment scheme: what a request carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemeSpec {
    /// Alignment kind.
    pub kind: KindSpec,
    /// Match reward (simple substitution scoring).
    pub match_score: i32,
    /// Mismatch penalty (simple substitution scoring).
    pub mismatch: i32,
    /// Gap model.
    pub gap: GapSpec,
}

impl SchemeSpec {
    /// Global + linear gaps — the paper's §V default parameterization.
    pub fn global_linear(match_score: i32, mismatch: i32, gap: i32) -> SchemeSpec {
        SchemeSpec {
            kind: KindSpec::Global,
            match_score,
            mismatch,
            gap: GapSpec::Linear { gap },
        }
    }

    /// Global + affine gaps.
    pub fn global_affine(match_score: i32, mismatch: i32, open: i32, extend: i32) -> SchemeSpec {
        SchemeSpec {
            kind: KindSpec::Global,
            match_score,
            mismatch,
            gap: GapSpec::Affine { open, extend },
        }
    }

    /// Same spec with a different kind.
    pub fn with_kind(mut self, kind: KindSpec) -> SchemeSpec {
        self.kind = kind;
        self
    }

    /// Stable FNV-1a fingerprint of the whole scheme — the
    /// scheme-identity component of a result-cache key
    /// ([`crate::cache::CacheKey`]). Stable across runs and platforms
    /// (unlike `std::hash::DefaultHasher`), and injective over the
    /// spec's fields short of a 64-bit hash collision: every kind, gap
    /// model and score parameter perturbs it.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(match self.kind {
            KindSpec::Global => 1,
            KindSpec::Local => 2,
            KindSpec::SemiGlobal => 3,
            KindSpec::FreeEnd => 4,
        });
        mix(self.match_score as u32 as u64);
        mix(self.mismatch as u32 as u64);
        match self.gap {
            GapSpec::Linear { gap } => {
                mix(1);
                mix(gap as u32 as u64);
            }
            GapSpec::Affine { open, extend } => {
                mix(2);
                mix(open as u32 as u64);
                mix(extend as u32 as u64);
            }
        }
        h
    }

    /// Reference scalar score for one pair (the oracle every backend
    /// must reproduce bit-exactly).
    pub fn score_scalar(&self, q: &Seq, s: &Seq) -> Score {
        crate::with_scheme!(self, |scheme, _K| { scheme.score(q, s) })
    }

    /// Reference scalar alignment for one pair.
    pub fn align_scalar(&self, q: &Seq, s: &Seq) -> Alignment {
        crate::with_scheme!(self, |scheme, _K| { scheme.align(q, s) })
    }
}

/// Lowers a [`SchemeSpec`] onto a concrete `Scheme<K, G, SimpleSubst>`.
///
/// `$body` is expanded once per kind × gap combination with `$scheme`
/// bound to the monomorphized scheme value and `$kind` aliased to the
/// kind type, so the body gets fully specialized kernels exactly like
/// statically typed callers do.
#[macro_export]
macro_rules! with_scheme {
    ($spec:expr, |$scheme:ident, $kind:ident| $body:block) => {{
        let __spec: &$crate::spec::SchemeSpec = &$spec;
        let __subst = ::anyseq_core::scoring::simple(__spec.match_score, __spec.mismatch);
        match (__spec.kind, __spec.gap) {
            ($crate::spec::KindSpec::Global, $crate::spec::GapSpec::Linear { gap }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::Global;
                let $scheme =
                    ::anyseq_core::scheme::global(::anyseq_core::scoring::linear(__subst, gap));
                $body
            }
            ($crate::spec::KindSpec::Global, $crate::spec::GapSpec::Affine { open, extend }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::Global;
                let $scheme = ::anyseq_core::scheme::global(::anyseq_core::scoring::affine(
                    __subst, open, extend,
                ));
                $body
            }
            ($crate::spec::KindSpec::Local, $crate::spec::GapSpec::Linear { gap }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::Local;
                let $scheme =
                    ::anyseq_core::scheme::local(::anyseq_core::scoring::linear(__subst, gap));
                $body
            }
            ($crate::spec::KindSpec::Local, $crate::spec::GapSpec::Affine { open, extend }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::Local;
                let $scheme = ::anyseq_core::scheme::local(::anyseq_core::scoring::affine(
                    __subst, open, extend,
                ));
                $body
            }
            ($crate::spec::KindSpec::SemiGlobal, $crate::spec::GapSpec::Linear { gap }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::SemiGlobal;
                let $scheme =
                    ::anyseq_core::scheme::semiglobal(::anyseq_core::scoring::linear(__subst, gap));
                $body
            }
            (
                $crate::spec::KindSpec::SemiGlobal,
                $crate::spec::GapSpec::Affine { open, extend },
            ) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::SemiGlobal;
                let $scheme = ::anyseq_core::scheme::semiglobal(::anyseq_core::scoring::affine(
                    __subst, open, extend,
                ));
                $body
            }
            ($crate::spec::KindSpec::FreeEnd, $crate::spec::GapSpec::Linear { gap }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::FreeEnd;
                let $scheme =
                    ::anyseq_core::scheme::free_end(::anyseq_core::scoring::linear(__subst, gap));
                $body
            }
            ($crate::spec::KindSpec::FreeEnd, $crate::spec::GapSpec::Affine { open, extend }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::FreeEnd;
                let $scheme = ::anyseq_core::scheme::free_end(::anyseq_core::scoring::affine(
                    __subst, open, extend,
                ));
                $body
            }
        }
    }};
}

/// Like [`with_scheme!`](crate::with_scheme) but only for
/// [`KindSpec::Global`] specs; the
/// fallback arm `$other` runs for every other kind (the GPU simulator's
/// device queue only implements the corner-optimum kind).
#[macro_export]
macro_rules! with_global_scheme {
    ($spec:expr, |$scheme:ident| $body:block, $other:block) => {{
        let __spec: &$crate::spec::SchemeSpec = &$spec;
        let __subst = ::anyseq_core::scoring::simple(__spec.match_score, __spec.mismatch);
        match (__spec.kind, __spec.gap) {
            ($crate::spec::KindSpec::Global, $crate::spec::GapSpec::Linear { gap }) => {
                let $scheme =
                    ::anyseq_core::scheme::global(::anyseq_core::scoring::linear(__subst, gap));
                $body
            }
            ($crate::spec::KindSpec::Global, $crate::spec::GapSpec::Affine { open, extend }) => {
                let $scheme = ::anyseq_core::scheme::global(::anyseq_core::scoring::affine(
                    __subst, open, extend,
                ));
                $body
            }
            _ => $other,
        }
    }};
}

/// Like [`with_scheme!`](crate::with_scheme) but only for the kinds the
/// inter-sequence SIMD batcher implements natively — [`KindSpec::Global`],
/// [`KindSpec::SemiGlobal`] and [`KindSpec::Local`]. Binds both `$scheme`
/// (the monomorphized scheme value) and `$kind` (the kind type alias);
/// the fallback arm `$other` runs for every other kind (`FreeEnd` has no
/// striped kernel yet).
#[macro_export]
macro_rules! with_simd_scheme {
    ($spec:expr, |$scheme:ident, $kind:ident| $body:block, $other:block) => {{
        let __spec: &$crate::spec::SchemeSpec = &$spec;
        let __subst = ::anyseq_core::scoring::simple(__spec.match_score, __spec.mismatch);
        match (__spec.kind, __spec.gap) {
            ($crate::spec::KindSpec::Global, $crate::spec::GapSpec::Linear { gap }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::Global;
                let $scheme =
                    ::anyseq_core::scheme::global(::anyseq_core::scoring::linear(__subst, gap));
                $body
            }
            ($crate::spec::KindSpec::Global, $crate::spec::GapSpec::Affine { open, extend }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::Global;
                let $scheme = ::anyseq_core::scheme::global(::anyseq_core::scoring::affine(
                    __subst, open, extend,
                ));
                $body
            }
            ($crate::spec::KindSpec::SemiGlobal, $crate::spec::GapSpec::Linear { gap }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::SemiGlobal;
                let $scheme =
                    ::anyseq_core::scheme::semiglobal(::anyseq_core::scoring::linear(__subst, gap));
                $body
            }
            (
                $crate::spec::KindSpec::SemiGlobal,
                $crate::spec::GapSpec::Affine { open, extend },
            ) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::SemiGlobal;
                let $scheme = ::anyseq_core::scheme::semiglobal(::anyseq_core::scoring::affine(
                    __subst, open, extend,
                ));
                $body
            }
            ($crate::spec::KindSpec::Local, $crate::spec::GapSpec::Linear { gap }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::Local;
                let $scheme =
                    ::anyseq_core::scheme::local(::anyseq_core::scoring::linear(__subst, gap));
                $body
            }
            ($crate::spec::KindSpec::Local, $crate::spec::GapSpec::Affine { open, extend }) => {
                #[allow(non_camel_case_types, dead_code)]
                type $kind = ::anyseq_core::kind::Local;
                let $scheme = ::anyseq_core::scheme::local(::anyseq_core::scoring::affine(
                    __subst, open, extend,
                ));
                $body
            }
            _ => $other,
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_lowers_to_matching_scalar_scheme() {
        let q = Seq::from_ascii(b"ACGTACGT").unwrap();
        let s = Seq::from_ascii(b"ACGTTACGT").unwrap();
        let spec = SchemeSpec::global_linear(2, -1, -1);
        // The doc example score from the core crate.
        assert_eq!(spec.score_scalar(&q, &s), 15);
        assert_eq!(spec.align_scalar(&q, &s).score, 15);
    }

    #[test]
    fn all_kind_gap_combinations_lower() {
        let q = Seq::from_ascii(b"TTACGTACGTTT").unwrap();
        let s = Seq::from_ascii(b"ACGTACG").unwrap();
        for kind in [
            KindSpec::Global,
            KindSpec::Local,
            KindSpec::SemiGlobal,
            KindSpec::FreeEnd,
        ] {
            for gap in [
                GapSpec::Linear { gap: -2 },
                GapSpec::Affine {
                    open: -2,
                    extend: -1,
                },
            ] {
                let spec = SchemeSpec {
                    kind,
                    match_score: 2,
                    mismatch: -1,
                    gap,
                };
                let aln = spec.align_scalar(&q, &s);
                assert_eq!(aln.score, spec.score_scalar(&q, &s), "{kind:?} {gap:?}");
            }
        }
    }

    #[test]
    fn fingerprints_distinguish_every_field() {
        let base = SchemeSpec::global_linear(2, -1, -1);
        let variants = [
            base,
            base.with_kind(KindSpec::Local),
            base.with_kind(KindSpec::SemiGlobal),
            base.with_kind(KindSpec::FreeEnd),
            SchemeSpec::global_linear(3, -1, -1),
            SchemeSpec::global_linear(2, -2, -1),
            SchemeSpec::global_linear(2, -1, -2),
            SchemeSpec::global_affine(2, -1, -1, 0),
            SchemeSpec::global_affine(2, -1, -2, -1),
            SchemeSpec::global_affine(2, -1, -1, -2),
        ];
        for (i, a) in variants.iter().enumerate() {
            // Stability: the same spec always fingerprints identically.
            assert_eq!(a.fingerprint(), a.fingerprint());
            for (j, b) in variants.iter().enumerate() {
                if i != j {
                    assert_ne!(a.fingerprint(), b.fingerprint(), "{a:?} vs {b:?}");
                }
            }
        }
        // A linear gap is not the same scheme as affine open=0 with the
        // same extend cost — they score identically in the DP but the
        // key must stay conservative (distinct spec, distinct entry).
        assert_ne!(
            SchemeSpec::global_linear(2, -1, -1).fingerprint(),
            SchemeSpec::global_affine(2, -1, 0, -1).fingerprint()
        );
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            KindSpec::Global,
            KindSpec::Local,
            KindSpec::SemiGlobal,
            KindSpec::FreeEnd,
        ] {
            assert_eq!(KindSpec::parse(kind.name()), Some(kind));
        }
        assert_eq!(KindSpec::parse("bogus"), None);
    }
}
