//! Small concurrency helpers shared by the backends and the scheduler.

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An output buffer that workers fill by index, each slot written
/// exactly once, then assembled into a `Vec<T>` in input order.
pub struct IndexedOut<T> {
    slots: Vec<MaybeUninit<T>>,
}

/// Raw writer handle workers share (`&IndexedWriter` is `Sync`).
pub struct IndexedWriter<T> {
    ptr: *mut MaybeUninit<T>,
}

// SAFETY: workers write disjoint indices; synchronization is provided
// by the thread scope join before `finish` reads the slots.
unsafe impl<T: Send> Send for IndexedWriter<T> {}
unsafe impl<T: Send> Sync for IndexedWriter<T> {}

impl<T> IndexedOut<T> {
    /// Allocates `len` uninitialized slots.
    pub fn new(len: usize) -> IndexedOut<T> {
        let mut slots = Vec::with_capacity(len);
        // SAFETY: MaybeUninit contents may be left uninitialized.
        unsafe { slots.set_len(len) };
        IndexedOut { slots }
    }

    /// The shared writer for worker threads.
    pub fn writer(&mut self) -> IndexedWriter<T> {
        IndexedWriter {
            ptr: self.slots.as_mut_ptr(),
        }
    }

    /// Reclaims the buffer as a fully initialized vector.
    ///
    /// # Safety
    /// Every index in `0..len` must have been written exactly once via
    /// [`IndexedWriter::write`], and all writers must be dead (threads
    /// joined).
    pub unsafe fn finish(self) -> Vec<T> {
        let mut slots = self.slots;
        let ptr = slots.as_mut_ptr() as *mut T;
        let len = slots.len();
        let cap = slots.capacity();
        std::mem::forget(slots);
        // SAFETY: same allocation, identical layout, all slots init.
        unsafe { Vec::from_raw_parts(ptr, len, cap) }
    }
}

impl<T> IndexedWriter<T> {
    /// Stores `value` at `index`.
    ///
    /// # Safety
    /// `index` must be in bounds and written by exactly one worker.
    pub unsafe fn write(&self, index: usize, value: T) {
        // SAFETY: caller guarantees bounds and exclusivity.
        unsafe { (*self.ptr.add(index)).write(value) };
    }
}

/// Maps `f` over `items` with a pool of `threads` scoped workers,
/// preserving input order in the result. Work is handed out in chunks
/// through a shared counter (the same alignment-granularity scheduling
/// the wavefront batch path uses).
pub fn parallel_map<I, T, F>(items: &[I], threads: usize, chunk: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let chunk = chunk.max(1);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let mut out = IndexedOut::new(items.len());
    let writer = out.writer();
    let next = AtomicUsize::new(0);
    {
        let writer = &writer;
        let next = &next;
        let f = &f;
        std::thread::scope(|sc| {
            for _ in 0..threads {
                sc.spawn(move || loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (k, item) in items[start..end].iter().enumerate() {
                        // SAFETY: chunk ranges are disjoint across
                        // workers and cover each index once.
                        unsafe { writer.write(start + k, f(item)) };
                    }
                });
            }
        });
    }
    // SAFETY: the counter handed out every index exactly once and the
    // scope joined all writers.
    unsafe { out.finish() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = parallel_map(&items, 8, 7, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single_thread() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, 16, |&x| x).is_empty());
        let one = vec![41u32];
        assert_eq!(parallel_map(&one, 1, 16, |&x| x + 1), vec![42]);
    }

    #[test]
    fn parallel_map_non_copy_values() {
        let items: Vec<usize> = (0..100).collect();
        let strings = parallel_map(&items, 4, 3, |&x| format!("v{x}"));
        assert_eq!(strings[99], "v99");
        assert_eq!(strings.len(), 100);
    }
}
