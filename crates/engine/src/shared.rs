//! A `Send + Sync` dispatcher handle for serving layers.
//!
//! [`Dispatch`] and [`BatchScheduler`] are already shareable by
//! reference (every [`Engine`](crate::Engine) is `Send + Sync`), but a
//! daemon that runs many batches over one dispatch used to be on its
//! own for cross-batch accounting: each [`BatchRun`] carries the stats
//! of *that* batch, and callers had to thread a mutable
//! [`BatchStats`] accumulator and call [`BatchStats::merge`] by hand —
//! easy to forget, impossible from `&self`. [`SharedDispatcher`] bundles
//! the dispatch, a scheduler, and an internally synchronized cumulative
//! accumulator behind one handle that can sit in an `Arc` and be hit
//! from every connection thread.
//!
//! Per-batch spans are *not* retained in the cumulative accumulator
//! (they would grow without bound on a long-lived daemon); their
//! per-stage wall totals survive as the `stage.<name>_ns` counters the
//! scheduler folds in, so cross-batch stage accounting stays exact.

use crate::dispatch::Dispatch;
use crate::scheduler::{BatchCfg, BatchRun, BatchScheduler};
use crate::spec::SchemeSpec;
use crate::stats::BatchStats;
use anyseq_core::score::Score;
use anyseq_core::Alignment;
use anyseq_seq::BatchView;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A shareable dispatcher: one [`Dispatch`] + [`BatchScheduler`] pair
/// with cumulative cross-batch statistics maintained internally.
///
/// ```
/// use anyseq_engine::{BatchCfg, DispatchPolicy, SharedDispatcher};
/// use anyseq_seq::{BatchView, Seq};
/// use std::sync::Arc;
///
/// let shared = Arc::new(SharedDispatcher::new(
///     DispatchPolicy::auto().standard(),
///     BatchCfg::threads(2),
/// ));
/// let pairs = vec![(Seq::from_ascii(b"ACGT").unwrap(), Seq::from_ascii(b"ACGA").unwrap())];
/// let spec = anyseq_engine::SchemeSpec::global_linear(2, -1, -1);
/// let run = shared.score_batch(&spec, &BatchView::from_pairs(&pairs));
/// assert_eq!(run.results, vec![5]);
/// // The handle kept the books: no manual `BatchStats::merge` needed.
/// assert_eq!(shared.batches(), 1);
/// assert_eq!(shared.cumulative().pairs, 1);
/// ```
pub struct SharedDispatcher {
    dispatch: Dispatch,
    scheduler: BatchScheduler,
    batches: AtomicU64,
    cumulative: Mutex<BatchStats>,
}

impl SharedDispatcher {
    /// Wraps a dispatch with a scheduler of the given configuration.
    pub fn new(dispatch: Dispatch, cfg: BatchCfg) -> SharedDispatcher {
        SharedDispatcher {
            dispatch,
            scheduler: BatchScheduler::new(cfg),
            batches: AtomicU64::new(0),
            cumulative: Mutex::new(BatchStats::default()),
        }
    }

    /// The wrapped dispatch (cache, metrics registry, policy).
    pub fn dispatch(&self) -> &Dispatch {
        &self.dispatch
    }

    /// The scheduler configuration batches run under.
    pub fn cfg(&self) -> BatchCfg {
        self.scheduler.cfg
    }

    /// Scores a batch and folds its stats into the cumulative snapshot.
    pub fn score_batch(&self, spec: &SchemeSpec, view: &BatchView<'_>) -> BatchRun<Score> {
        let run = self.scheduler.score_batch(&self.dispatch, spec, view);
        self.absorb(&run.stats);
        run
    }

    /// Aligns a batch and folds its stats into the cumulative snapshot.
    pub fn align_batch(&self, spec: &SchemeSpec, view: &BatchView<'_>) -> BatchRun<Alignment> {
        let run = self.scheduler.align_batch(&self.dispatch, spec, view);
        self.absorb(&run.stats);
        run
    }

    /// Number of batches dispatched through this handle.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// A copy of the cumulative cross-batch statistics: every additive
    /// [`BatchStats`] field summed over all batches run through this
    /// handle (counters including `stage.*_ns` and `cache.*`,
    /// per-backend usage, pairs/cells/bins/units/fallbacks).
    /// `wall_seconds` is the *sum* of per-batch walls — meaningful for
    /// sequential batches, an overcount for concurrent ones (see
    /// [`BatchStats::merge`]). `spans` is always empty here.
    pub fn cumulative(&self) -> BatchStats {
        self.cumulative
            .lock()
            .expect("cumulative stats poisoned")
            .clone()
    }

    fn absorb(&self, stats: &BatchStats) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let mut acc = self.cumulative.lock().expect("cumulative stats poisoned");
        acc.merge(stats);
        // Spans are per-batch artifacts (Chrome traces); retaining them
        // forever would leak on a daemon. Their stage totals already
        // merged via the `stage.<name>_ns` counters.
        acc.spans.clear();
    }
}

impl std::fmt::Debug for SharedDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDispatcher")
            .field("batches", &self.batches())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::DispatchPolicy;
    use anyseq_seq::testsupport::read_pairs;
    use std::sync::Arc;

    /// Cross-batch counters — including the observability-derived
    /// `stage.*_ns` wall totals and the result-cache `cache.*` series —
    /// must accumulate exactly: cumulative == Σ per-run stats.
    #[test]
    fn cumulative_matches_manual_merge_exactly() {
        let shared = SharedDispatcher::new(
            DispatchPolicy::auto().cache_mb(4).observe(true).standard(),
            BatchCfg::threads(2),
        );
        let batch_a = read_pairs(12, 7);
        let batch_b = read_pairs(9, 8);
        // Re-run batch_a so the second pass hits the shared cache and
        // the `cache.hits` counter has cross-batch content to check.
        let mut expected = BatchStats::default();
        for pairs in [&batch_a, &batch_b, &batch_a] {
            let run = shared.align_batch(
                &SchemeSpec::global_linear(2, -1, -1),
                &BatchView::from_pairs(pairs),
            );
            expected.merge(&run.stats);
        }
        assert_eq!(shared.batches(), 3);
        let got = shared.cumulative();
        assert_eq!(got.pairs, expected.pairs);
        assert_eq!(got.cells, expected.cells);
        assert_eq!(got.bins, expected.bins);
        assert_eq!(got.units, expected.units);
        assert_eq!(got.fallbacks, expected.fallbacks);
        assert_eq!(got.counters, expected.counters, "counter maps must match");
        assert!(got.counters.keys().any(|k| k.starts_with("stage.")));
        assert!(got.counters["cache.hits"] >= batch_a.len() as u64);
        assert_eq!(got.per_backend, expected.per_backend);
        assert!((got.wall_seconds - expected.wall_seconds).abs() < 1e-12);
        assert!(got.spans.is_empty(), "spans must not accumulate");
    }

    #[test]
    fn handle_is_shareable_across_threads() {
        let shared = Arc::new(SharedDispatcher::new(
            DispatchPolicy::auto().standard(),
            BatchCfg::threads(1),
        ));
        let pairs = read_pairs(6, 3);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let baseline = shared
            .score_batch(&spec, &BatchView::from_pairs(&pairs))
            .results;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                let pairs = &pairs;
                let baseline = &baseline;
                scope.spawn(move || {
                    let run = shared.score_batch(&spec, &BatchView::from_pairs(pairs));
                    assert_eq!(&run.results, baseline);
                });
            }
        });
        assert_eq!(shared.batches(), 5);
        assert_eq!(shared.cumulative().pairs, 5 * pairs.len() as u64);
    }
}
