//! # anyseq-engine — unified multi-backend batch execution
//!
//! The AnySeq paper gets its speed from specializing one generic DP
//! core into dedicated kernels per target; this crate turns that
//! *collection of kernels* into one schedulable system:
//!
//! * [`Engine`] — the batch-execution contract (score/align a batch,
//!   capability flags) with adapters for the scalar core, the
//!   inter-sequence SIMD batcher, the tiled wavefront and the GPU
//!   execution-model simulator ([`backends`]),
//! * [`BatchScheduler`] — length-bins a batch to minimize SIMD lane
//!   divergence and tile padding waste, shards bins across a worker
//!   pool (std threads + a shared counter, no external deps) and
//!   reassembles results in input order ([`scheduler`]),
//! * [`Dispatch`] — the policy layer: auto or explicit backend
//!   selection with graceful per-unit fallback, plus per-batch
//!   statistics (cells, GCUPS, backend utilization — [`stats`]),
//! * [`ResultCache`] — optional content-hash result caching for
//!   repeated-read workloads ([`DispatchPolicy::cache_mb`]): repeated
//!   `(scheme, q, s)` pairs — PCR duplicates, resequenced reads — are
//!   recognized before work units form and never reach a backend
//!   ([`cache`]).
//!
//! Requests are **zero-copy**: the scheduler consumes a
//! [`BatchView`](anyseq_seq::BatchView) of borrowed
//! [`PairRef`](anyseq_seq::PairRef)s (build one over owned pairs, or
//! over a [`SeqStore`](anyseq_seq::SeqStore) arena) and work units
//! carry indices into it — no sequence bytes are cloned between the
//! caller and the kernels (the SIMD lane transpose is the one
//! substrate-required copy, reported as `simd.bytes_copied`).
//!
//! ```
//! use anyseq_engine::{BatchCfg, BatchScheduler, Dispatch, Policy, SchemeSpec};
//! use anyseq_seq::{BatchView, Seq};
//!
//! let pairs = vec![
//!     (Seq::from_ascii(b"ACGTACGT").unwrap(), Seq::from_ascii(b"ACGTTACGT").unwrap()),
//!     (Seq::from_ascii(b"TTTT").unwrap(), Seq::from_ascii(b"TTAT").unwrap()),
//! ];
//! let view = BatchView::from_pairs(&pairs);
//! let spec = SchemeSpec::global_linear(2, -1, -1);
//! let dispatch = Dispatch::standard(Policy::Auto);
//! let run = BatchScheduler::new(BatchCfg::threads(2)).score_batch(&dispatch, &spec, &view);
//! assert_eq!(run.results, vec![15, 5]);
//! assert_eq!(run.stats.counters["sched.bytes_copied"], 0);
//! println!("{}", run.stats.summary());
//! ```
//!
//! ## Adding a backend
//!
//! 1. Implement [`Engine`] for your substrate. Use
//!    [`with_scheme!`]/[`with_simd_scheme!`]/[`with_global_scheme!`]
//!    to lower the runtime
//!    [`SchemeSpec`] onto monomorphized kernels; return
//!    [`EngineError::Unsupported`] for anything you cannot run
//!    bit-exactly — never approximate.
//! 2. Describe yourself honestly in [`Caps`]: supported kinds for
//!    score/align, native extent, and whether one call amortizes
//!    across pairs (`batch_native`; `false` means the scheduler runs
//!    you exclusively with the whole thread budget).
//! 3. Register it: `Dispatch::standard(policy).with_engine(id, Box::new(you))`.
//!    The scalar reference stays last in every candidate chain, so a
//!    refusal degrades gracefully instead of failing the batch.
//! 4. Extend `tests/cross_engine.rs` — every backend must reproduce
//!    `Scheme::score` exactly, and every alignment it returns must
//!    carry that exact score with ops that replay to it
//!    (`Alignment::validate`); traceback tie-breaks may differ from
//!    the scalar reference.
//!
//! The full walkthrough (with the dispatch flow and the SIMD banded
//! traceback design) lives in `docs/ARCHITECTURE.md`.

#![deny(missing_docs)]

pub mod backends;
pub mod cache;
pub mod dispatch;
#[allow(clippy::module_inception)]
pub mod engine;
pub mod report;
pub mod scheduler;
pub mod shared;
pub mod spec;
pub mod stats;
pub mod util;

pub use backends::{GpuSimEngine, ScalarEngine, SimdEngine, SimdLanes, WavefrontEngine};
pub use cache::{CacheKey, ReqKind, ResultCache, ShardStats};
pub use dispatch::{BackendId, Dispatch, DispatchPolicy, Policy, MIN_SHARD_CELLS};
pub use engine::{Caps, Engine, EngineError, ShardOutcome, ShardTask};
pub use report::{stats_json, summary_with_utilization};
pub use scheduler::{
    BatchCfg, BatchRun, BatchScheduler, FALLBACK_KIND_UNSUPPORTED, SCHED_BYTES_COPIED,
    SCHED_SEAM_BYTES, SCHED_SHARDS,
};
pub use shared::SharedDispatcher;
pub use spec::{GapSpec, KindSpec, SchemeSpec};
pub use stats::{cell_share_ns, BackendUse, BatchStats};

pub use anyseq_wavefront::ShardSeam;

/// Convenience re-exports for applications.
pub mod prelude {
    pub use crate::backends::{GpuSimEngine, ScalarEngine, SimdEngine, SimdLanes, WavefrontEngine};
    pub use crate::cache::{CacheKey, ReqKind, ResultCache};
    pub use crate::dispatch::{BackendId, Dispatch, DispatchPolicy, Policy, MIN_SHARD_CELLS};
    pub use crate::engine::{Caps, Engine, EngineError, ShardOutcome, ShardTask};
    pub use crate::report::{stats_json, summary_with_utilization};
    pub use crate::scheduler::{
        BatchCfg, BatchRun, BatchScheduler, FALLBACK_KIND_UNSUPPORTED, SCHED_BYTES_COPIED,
        SCHED_SEAM_BYTES, SCHED_SHARDS,
    };
    pub use crate::shared::SharedDispatcher;
    pub use crate::spec::{GapSpec, KindSpec, SchemeSpec};
    pub use crate::stats::{BackendUse, BatchStats};
    pub use anyseq_wavefront::ShardSeam;
}
