//! The one renderer for batch-run reports — the CLI's stderr summary,
//! the bench binaries' per-backend lines, and the machine-readable
//! `--stats-json` dump all come from here, so the three can never
//! drift apart on format or key names.
//!
//! Two surfaces:
//!
//! * [`summary_with_utilization`] — the human two-liner (the
//!   [`BatchStats::summary`] line plus pool utilization),
//! * [`stats_json`] — a stable-keyed JSON object. Key order is fixed
//!   (scalars first, then `per_backend` and `counters`, each sorted by
//!   name via the underlying `BTreeMap`s), so saved reports diff
//!   cleanly run over run.

use crate::stats::BatchStats;
use std::fmt::Write;

/// Human summary: the [`BatchStats::summary`] line, then
/// `utilization: NN% of T threads`. Both `anyseq batch` and the bench
/// binaries print exactly this.
pub fn summary_with_utilization(stats: &BatchStats, threads: usize) -> String {
    format!(
        "{}\nutilization: {:.0}% of {} threads",
        stats.summary(),
        100.0 * stats.utilization(threads),
        threads
    )
}

/// Serializes one batch run as a stable-keyed JSON object:
/// `pairs`, `cells`, `bins`, `units`, `fallbacks`, `wall_seconds`,
/// `gcups`, `utilization` and `threads` scalars, then `per_backend`
/// (name → `{pairs, cells, busy_seconds, gcups}`) and `counters`
/// (name → value), both name-sorted. Spans are *not* embedded — the
/// Chrome-trace exporter ([`anyseq_obs::chrome_trace`]) owns that
/// format.
pub fn stats_json(stats: &BatchStats, threads: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"pairs\": {},", stats.pairs);
    let _ = writeln!(out, "  \"cells\": {},", stats.cells);
    let _ = writeln!(out, "  \"bins\": {},", stats.bins);
    let _ = writeln!(out, "  \"units\": {},", stats.units);
    let _ = writeln!(out, "  \"fallbacks\": {},", stats.fallbacks);
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"wall_seconds\": {},", json_f64(stats.wall_seconds));
    let _ = writeln!(out, "  \"gcups\": {},", json_f64(stats.gcups()));
    let _ = writeln!(
        out,
        "  \"utilization\": {},",
        json_f64(stats.utilization(threads))
    );
    out.push_str("  \"per_backend\": {");
    // `BatchStats::per_backend` arrives name-sorted from the
    // scheduler, but a hand-built stats value may not be — sort here
    // so the key order is a property of the format, not the caller.
    let mut backends: Vec<_> = stats.per_backend.iter().collect();
    backends.sort_by_key(|b| b.backend);
    for (k, b) in backends.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"pairs\": {}, \"cells\": {}, \"busy_seconds\": {}, \"gcups\": {}}}",
            json_str(b.backend),
            b.pairs,
            b.cells,
            json_f64(b.busy_seconds),
            json_f64(b.gcups())
        );
    }
    if !backends.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"counters\": {");
    for (k, (name, value)) in stats.counters.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {}", json_str(name), value);
    }
    if !stats.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// JSON number for an `f64`; non-finite values (not representable in
/// JSON) become 0.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// JSON string literal (counter names are controlled identifiers, but
/// a foreign `Engine` may report anything — escape, don't trust).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchStats {
        let mut s = BatchStats {
            pairs: 4,
            cells: 400,
            wall_seconds: 0.5,
            bins: 2,
            units: 2,
            fallbacks: 1,
            ..BatchStats::default()
        };
        s.record("simd", 3, 300, 0.4);
        s.record("scalar", 1, 100, 0.1);
        s.record_counter("stage.kernel_ns", 123);
        s.record_counter("simd.lane_pairs", 3);
        s
    }

    #[test]
    fn summary_carries_utilization() {
        let text = summary_with_utilization(&sample(), 2);
        assert!(text.contains("4 pairs"));
        assert!(text.ends_with("utilization: 50% of 2 threads"));
    }

    #[test]
    fn json_is_stable_keyed_and_sorted() {
        let text = stats_json(&sample(), 2);
        // Backends and counters appear name-sorted.
        let scalar = text.find("\"scalar\"").unwrap();
        let simd = text.find("\"simd\"").unwrap();
        assert!(scalar < simd);
        let lane = text.find("\"simd.lane_pairs\"").unwrap();
        let kernel = text.find("\"stage.kernel_ns\"").unwrap();
        assert!(lane < kernel);
        assert!(text.contains("\"pairs\": 4"));
        assert!(text.contains("\"utilization\": 0.5"));
        // Same stats, same bytes — the stability contract.
        assert_eq!(text, stats_json(&sample(), 2));
    }

    #[test]
    fn json_handles_empty_and_hostile_names() {
        let empty = stats_json(&BatchStats::default(), 1);
        assert!(empty.contains("\"per_backend\": {}"));
        assert!(empty.contains("\"counters\": {}"));
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\u000a\"");
        assert_eq!(json_f64(f64::NAN), "0");
    }
}
