//! Workspace-local, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `rand` it actually uses: a
//! seedable deterministic generator ([`rngs::StdRng`], splitmix64) and
//! the [`Rng`] convenience methods `gen`, `gen_bool` and `gen_range`.
//! Distribution quality matches splitmix64 (plenty for simulators and
//! tests); it makes no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full generator stream.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types `gen_range` can sample uniformly.
///
/// Mirrors rand's `SampleUniform` so the *blanket* [`SampleRange`]
/// impls below keep type inference working (`0..4` unifies with the
/// surrounding integer type exactly as with the real crate).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let span = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    span + 1
                } else {
                    span
                };
                (lo as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range (panics if empty).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the whole domain of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Uniform value from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64). Stand-in for
    /// `rand::rngs::StdRng`; same API, different (but stable) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-mix so nearby seeds produce unrelated streams.
            let mut rng = StdRng {
                state: seed ^ 0x853C_49E6_748F_EA9B,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-6i32..0);
            assert!((-6..0).contains(&v));
            let w = rng.gen_range(2..=12usize);
            assert!((2..=12).contains(&w));
            let b = rng.gen_range(0..4u8);
            assert!(b < 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
