//! Workspace-local subset of the `crossbeam` API.
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the one primitive the workspace uses: [`deque::Injector`], the
//! shared FIFO work queue of the dynamic wavefront scheduler. The
//! implementation is a mutexed `VecDeque` rather than the lock-free
//! Chase–Lev structure — identical semantics, and the queue is far from
//! being the bottleneck at tile granularity.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One item was taken.
        Success(T),
        /// Transient contention; try again.
        Retry,
    }

    /// A shared FIFO injector queue (many producers, many consumers).
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty queue.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends an item at the back.
        pub fn push(&self, item: T) {
            self.lock().push_back(item);
        }

        /// Takes an item from the front.
        pub fn steal(&self) -> Steal<T> {
            match self.lock().pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Injector<T> {
            Injector::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = Injector::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.steal(), Steal::Success(1));
            assert_eq!(q.steal(), Steal::Success(2));
            assert_eq!(q.steal(), Steal::Empty);
        }

        #[test]
        fn concurrent_drain() {
            let q = Injector::new();
            for k in 0..1000 {
                q.push(k);
            }
            let count = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|sc| {
                for _ in 0..4 {
                    sc.spawn(|| loop {
                        match q.steal() {
                            Steal::Success(_) => {
                                count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Steal::Retry => continue,
                            Steal::Empty => break,
                        }
                    });
                }
            });
            assert_eq!(count.into_inner(), 1000);
        }
    }
}
