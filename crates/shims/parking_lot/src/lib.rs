//! Workspace-local subset of the `parking_lot` API layered over
//! `std::sync`.
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the pieces the workspace uses — [`Mutex`] with an infallible
//! `lock()`, and [`Condvar`] with `wait_for` taking `&mut` guard —
//! with `parking_lot` semantics (no poisoning: a poisoned std lock is
//! transparently recovered).

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex whose `lock` never returns a `Result` (parking_lot style).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[inline]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Ignores poisoning.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with the parking_lot calling convention
/// (`&mut MutexGuard` instead of guard-by-value).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |inner| match self.inner.wait(inner) {
            Ok(g) => (g, false),
            Err(p) => (p.into_inner(), false),
        });
    }

    /// Blocks on the guard until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let timed_out = self.replace_guard(guard, |inner| {
            match self.inner.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r.timed_out()),
                Err(p) => {
                    let (g, r) = p.into_inner();
                    (g, r.timed_out())
                }
            }
        });
        WaitTimeoutResult { timed_out }
    }

    /// Runs a std wait primitive that consumes the guard, writing the
    /// reacquired guard back in place.
    fn replace_guard<T, R>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        wait: impl FnOnce(std::sync::MutexGuard<'_, T>) -> (std::sync::MutexGuard<'_, T>, R),
    ) -> R {
        // While the guard is moved out, an unwind would let the caller
        // drop `guard.inner` a second time (std's wait can panic, e.g.
        // when a condvar is used with two mutexes). Abort instead of
        // risking a double drop.
        struct AbortOnUnwind;
        impl Drop for AbortOnUnwind {
            fn drop(&mut self) {
                eprintln!("parking_lot shim: panic while a guard was detached; aborting");
                std::process::abort();
            }
        }
        // SAFETY: `inner` is moved out and a valid reacquired guard is
        // written back before returning; if `wait` unwinds in between,
        // the bomb above turns it into an abort rather than UB.
        unsafe {
            let taken = std::ptr::read(&guard.inner);
            let bomb = AbortOnUnwind;
            let (back, result) = wait(taken);
            std::mem::forget(bomb);
            std::ptr::write(&mut guard.inner, back);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let done = AtomicBool::new(false);
        std::thread::scope(|sc| {
            sc.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    cv.wait_for(&mut g, Duration::from_millis(1));
                }
                done.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(10));
            *m.lock() = true;
            cv.notify_all();
        });
        assert!(done.load(Ordering::SeqCst));
    }
}
