//! Workspace-local subset of the `criterion` benchmarking API.
//!
//! The build environment cannot reach crates.io, so this shim keeps the
//! workspace's `benches/` targets compiling and runnable: it implements
//! `Criterion::benchmark_group`, `bench_function`, `Bencher::iter`, the
//! `Throughput` hint and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple warmup + timed-batch median (no
//! statistics engine, no HTML reports); throughput is reported as
//! elements/s so GCUPS comparisons still read directly off the output.

use std::time::{Duration, Instant};

/// Throughput hint attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Work items processed per iteration (DP cells here ⇒ GCUPS).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing throughput/measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time for each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{}: no samples collected", self.name, id);
            return self;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(" {:>10.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    " {:>10.3} MiB/s",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{}: median {:>12.3?} over {} samples{}",
            self.name,
            id,
            median,
            samples.len(),
            rate
        );
        self
    }

    /// Ends the group (printing happens per-benchmark).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Measures `f`, collecting up to the group's sample count within
    /// its time budget (one warmup call first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let started = Instant::now();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Collects benchmark functions into one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1000));
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0;
        group.bench_function("sum", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs >= 2, "warmup + at least one sample");
    }
}
