//! Value-generation strategies for the proptest shim.

use crate::test_runner::{Rng, TestRng};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy
/// is simply a deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among same-typed strategies (backs `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct OneOf<S: Strategy> {
    options: Vec<S>,
}

impl<S: Strategy> OneOf<S> {
    /// Builds from a non-empty list of alternatives.
    pub fn new(options: Vec<S>) -> OneOf<S> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let k = rng.gen_range(0..self.options.len());
        self.options[k].generate(rng)
    }
}
