//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::{Rng, TestRng};
use std::ops::Range;

/// Strategy for `Vec<E::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<E: Strategy> {
    element: E,
    size: Range<usize>,
}

/// Generates vectors whose length is uniform in `size` and whose
/// elements come from `element`.
pub fn vec<E: Strategy>(element: E, size: Range<usize>) -> VecStrategy<E> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
