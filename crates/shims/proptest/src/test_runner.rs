//! Deterministic per-case random source for the proptest shim.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::{Rng, RngCore};

/// The generator handed to strategies: splitmix64 seeded from the test
/// path and case number, so every run of the suite sees the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Generator for case `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u32) -> TestRng {
        // FNV-1a over the test path keeps distinct tests on distinct
        // streams even at the same case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64),
        }
    }
}

impl RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
