//! Workspace-local subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so this shim supplies
//! the slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! integer-range / tuple / `Just` / `prop_oneof!` /
//! `prop::collection::vec` strategies, and `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case
//! panics with the generating seed so it can be replayed. Generation is
//! deterministic per test (fixed base seed + case index), which keeps
//! CI stable.

#![allow(clippy::test_attr_in_doctest)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` (module-path strategies).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0i32..1000, b in 0i32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]: one plain `#[test]` fn per
/// property, looping over generated cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __run = || -> () { $body };
                __run();
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn byte_vec(max: usize) -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..4, 0..max)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(
            v in byte_vec(30),
            (a, b) in (1i32..6, -6i32..0),
            pick in prop_oneof![Just(8usize), Just(64), Just(1 << 18)],
            x in 0u64..1000,
        ) {
            prop_assert!(v.len() < 30);
            prop_assert!(v.iter().all(|&c| c < 4));
            prop_assert!((1..6).contains(&a));
            prop_assert!((-6..0).contains(&b));
            prop_assert!([8, 64, 1 << 18].contains(&pick));
            prop_assert!(x < 1000);
        }

        #[test]
        fn inclusive_ranges(y in -8i32..=0) {
            prop_assert!((-8..=0).contains(&y));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u8..4, 0..50);
        let a: Vec<Vec<u8>> = (0..10)
            .map(|c| strat.generate(&mut crate::test_runner::TestRng::for_case("t", c)))
            .collect();
        let b: Vec<Vec<u8>> = (0..10)
            .map(|c| strat.generate(&mut crate::test_runner::TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
