//! # anyseq-serve — the batch-serving daemon
//!
//! The engine's throughput story (SIMD lanes, worker pools, the result
//! cache) only materializes when batches are *full* — but real traffic
//! arrives as many small independent requests. This crate is the layer
//! in between: a thread-per-connection unix-socket daemon that
//! **coalesces concurrent requests into engine batches** with a
//! deadline micro-batching window, applies **admission control** when
//! queued bytes exceed a budget (typed `Overloaded` refusal, never
//! unbounded buffering), and streams per-request results back **in
//! each connection's submission order**.
//!
//! * [`proto`] — the length-prefixed wire protocol (strict decode,
//!   typed errors),
//! * [`clock`] — injected time ([`SystemClock`] in production,
//!   [`FakeClock`] in the deterministic concurrency tests),
//! * [`batcher`] — the `(scheme, mode)`-keyed micro-batching window:
//!   flush on deadline, pair-count target, or byte budget — whichever
//!   first — with the queue-budget backpressure gate,
//! * `session` (private) — per-connection reader/writer pair with a
//!   FIFO reply queue (ordering + fault containment),
//! * [`server`] — the accept + dispatcher loops around one shared
//!   [`SharedDispatcher`](anyseq_engine::SharedDispatcher) (one result
//!   cache, one engine metrics registry for the whole daemon; the
//!   `STATS` verb returns the Prometheus exposition),
//! * [`client`] — the pipelining blocking client the tests, bench, and
//!   `anyseq serve` round-trip example use.
//!
//! ```
//! use anyseq_serve::{ReqKind, SchemeSpec, Server, ServeClient, ServeConfig, SystemClock};
//! use anyseq_serve::proto::Results;
//! use std::sync::Arc;
//!
//! let sock = std::env::temp_dir().join(format!("anyseq-serve-doc-{}.sock", std::process::id()));
//! let server = Server::start(&sock, ServeConfig::default(), Arc::new(SystemClock::new())).unwrap();
//! let mut client = ServeClient::connect(&sock).unwrap();
//! let spec = SchemeSpec::global_linear(2, -1, -1);
//! let results = client
//!     .roundtrip(ReqKind::Score, spec, vec![(vec![0, 1, 2, 3], vec![0, 1, 3, 3])])
//!     .unwrap()
//!     .unwrap();
//! assert_eq!(results, Results::Scores(vec![5]));
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod batcher;
pub mod client;
pub mod clock;
pub mod proto;
pub mod server;
mod session;

pub use batcher::{MicroBatcher, SubmitError, WindowCfg, QUEUE_BYTES_GAUGE, QUEUE_DEPTH_GAUGE};
pub use client::{ServeClient, ServerReply};
pub use clock::{Clock, FakeClock, SystemClock};
pub use proto::{
    mint_request_id, CodePair, ErrCode, ErrorFrame, ProtoError, Request, Response, Results,
};
pub use server::{
    ServeConfig, Server, ServerHandle, SERVE_BATCHES_TOTAL, SERVE_BATCH_PAIRS_HIST,
    SERVE_BATCH_PAIRS_TOTAL, SERVE_MALFORMED_TOTAL, SERVE_REJECTED_TOTAL, SERVE_REQUESTS_TOTAL,
    SERVE_REQUEST_US_HIST, SERVE_REQ_P50_US, SERVE_REQ_P95_US, SERVE_REQ_P99_US, SERVE_SLOW_TOTAL,
    SERVE_WINDOW_OCCUPANCY,
};

// Re-exported so serve users don't need a direct engine dependency for
// the request vocabulary, nor an obs dependency for the request
// records the slow log / flight recorder accessors return.
pub use anyseq_engine::{GapSpec, KindSpec, ReqKind, SchemeSpec};
pub use anyseq_obs::RequestRecord;
