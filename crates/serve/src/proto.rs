//! The length-prefixed wire protocol.
//!
//! Every frame on the socket is `u32-LE payload length` + payload; the
//! payload's first byte is a verb tag. All integers are little-endian,
//! sequences travel as 2-bit-alphabet code bytes (`0..=4`, 4 = `N`) and
//! are validated on decode, and alignment ops travel one byte each.
//!
//! ```text
//! REQUEST    = 0x01 id:u64 mode:u8 kind:u8 match:i32 mismatch:i32
//!              gap_tag:u8 (0 ⇒ gap:i32 | 1 ⇒ open:i32 extend:i32)
//!              n_pairs:u32 { q_len:u32 s_len:u32 q:bytes s:bytes }*
//! RESPONSE   = 0x02 id:u64 mode:u8 n:u32
//!              { score:i32 }*                            (mode = score)
//!              { score:i32 q_start:u64 q_end:u64 s_start:u64 s_end:u64
//!                n_ops:u32 ops:bytes }*                  (mode = align)
//! ERROR      = 0x03 id:u64 code:u8 msg_len:u32 msg:utf8
//! STATS      = 0x04                                      (client → server)
//! STATS_TEXT = 0x05 len:u32 text:utf8                    (server → client)
//! HEALTH     = 0x06                                      (client → server)
//! DUMP       = 0x07                                      (client → server)
//! ```
//!
//! `HEALTH` and `DUMP` are both answered with a `STATS_TEXT` frame:
//! `HEALTH` carries a JSON health document (queue depth, window
//! occupancy, and the slow-request log — "SLOWLOG"), `DUMP` carries
//! the flight recorder's Chrome-trace JSON. Reusing the text-reply
//! verb keeps old clients decoding new servers' replies.
//!
//! Decoding is strict: unknown tags, truncated payloads, trailing
//! bytes, invalid sequence codes and bad UTF-8 all produce a typed
//! [`ProtoError`] — the session layer answers with an `ERROR` frame
//! (code [`ErrCode::Malformed`]) instead of hanging up, so one bad
//! client frame cannot silently desync into a dropped connection.

use anyseq_core::alignment::{AlignOp, Alignment};
use anyseq_core::score::Score;
use anyseq_engine::{GapSpec, KindSpec, ReqKind, SchemeSpec};
use std::io::{Read, Write};

/// Default cap on a single frame's payload (64 MiB). A frame above the
/// cap aborts the connection (the stream can no longer be trusted to
/// be frame-aligned), unlike in-frame decode errors which are typed.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

const VERB_REQUEST: u8 = 0x01;
const VERB_RESPONSE: u8 = 0x02;
const VERB_ERROR: u8 = 0x03;
const VERB_STATS: u8 = 0x04;
const VERB_STATS_TEXT: u8 = 0x05;
const VERB_HEALTH: u8 = 0x06;
const VERB_DUMP: u8 = 0x07;

/// Mints a process-unique server-side request id, starting at 1 and
/// strictly increasing. Minted at frame decode in the session layer,
/// the id names the request in the slow log, the flight recorder, and
/// trace lanes — identity the client-chosen [`Request::id`] cannot
/// provide, since clients pick ids independently.
pub fn mint_request_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One owned query/subject pair of validated sequence codes.
pub type CodePair = (Vec<u8>, Vec<u8>);

/// A client's alignment request: one scheme, one mode, many pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id echoed on the response; a client that
    /// pipelines keeps its own books with it (responses also arrive in
    /// submission order, so the id is a cross-check, not a necessity).
    pub id: u64,
    /// Score-only or full alignment.
    pub mode: ReqKind,
    /// The alignment scheme every pair of this request runs under.
    pub spec: SchemeSpec,
    /// Query/subject code pairs.
    pub pairs: Vec<CodePair>,
}

impl Request {
    /// Sequence payload bytes — the unit of queue-budget accounting.
    pub fn payload_bytes(&self) -> u64 {
        self.pairs
            .iter()
            .map(|(q, s)| (q.len() + s.len()) as u64)
            .sum()
    }
}

/// Per-pair results, shaped by the request's mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Results {
    /// Scores, in the request's pair order.
    Scores(Vec<Score>),
    /// Full alignments, in the request's pair order.
    Alignments(Vec<Alignment>),
}

impl Results {
    /// Number of per-pair results carried.
    pub fn len(&self) -> usize {
        match self {
            Results::Scores(v) => v.len(),
            Results::Alignments(v) => v.len(),
        }
    }

    /// Whether no results are carried.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A successful reply to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// Per-pair results in the request's pair order.
    pub results: Results,
}

/// Typed error classes a server can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Admission control refused the request (queue budget exhausted).
    /// Retry later; nothing was enqueued.
    Overloaded,
    /// The frame failed to decode; the connection stays usable.
    Malformed,
    /// The request decodes but asks for something the server cannot
    /// run.
    Unsupported,
    /// The server lost the ability to answer (e.g. shutdown mid-batch).
    Internal,
}

impl ErrCode {
    fn tag(self) -> u8 {
        match self {
            ErrCode::Overloaded => 1,
            ErrCode::Malformed => 2,
            ErrCode::Unsupported => 3,
            ErrCode::Internal => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<ErrCode> {
        match tag {
            1 => Some(ErrCode::Overloaded),
            2 => Some(ErrCode::Malformed),
            3 => Some(ErrCode::Unsupported),
            4 => Some(ErrCode::Internal),
            _ => None,
        }
    }
}

/// An error reply (`id` = 0 when the request id never decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The request id being refused, or 0 if unknown.
    pub id: u64,
    /// Error class.
    pub code: ErrCode,
    /// Human-readable detail.
    pub message: String,
}

/// Any decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A client request.
    Request(Request),
    /// A server response.
    Response(Response),
    /// A server error.
    Error(ErrorFrame),
    /// A client metrics scrape.
    Stats,
    /// The Prometheus text exposition answering a scrape.
    StatsText(String),
    /// A client health probe (queue depth + slow-request log); the
    /// server answers with a JSON document in a `StatsText` frame.
    Health,
    /// A client flight-recorder dump request; the server answers with
    /// Chrome-trace JSON in a `StatsText` frame.
    Dump,
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before a field completed.
    Truncated,
    /// Bytes remained after the message ended.
    Trailing(usize),
    /// Unknown verb tag.
    UnknownVerb(u8),
    /// Unknown mode tag.
    UnknownMode(u8),
    /// Unknown alignment-kind tag.
    UnknownKind(u8),
    /// Unknown gap-model tag.
    UnknownGap(u8),
    /// Unknown alignment-op tag.
    UnknownOp(u8),
    /// Unknown error-code tag.
    UnknownErrCode(u8),
    /// A sequence byte outside the `0..=4` code alphabet.
    BadCode {
        /// Offending byte value.
        code: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            ProtoError::UnknownVerb(t) => write!(f, "unknown verb tag {t:#04x}"),
            ProtoError::UnknownMode(t) => write!(f, "unknown mode tag {t}"),
            ProtoError::UnknownKind(t) => write!(f, "unknown alignment-kind tag {t}"),
            ProtoError::UnknownGap(t) => write!(f, "unknown gap-model tag {t}"),
            ProtoError::UnknownOp(t) => write!(f, "unknown alignment-op tag {t}"),
            ProtoError::UnknownErrCode(t) => write!(f, "unknown error-code tag {t}"),
            ProtoError::BadCode { code } => {
                write!(f, "sequence byte {code} outside the 0..=4 code alphabet")
            }
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn mode_tag(mode: ReqKind) -> u8 {
    match mode {
        ReqKind::Score => 0,
        ReqKind::Align => 1,
    }
}

fn kind_tag(kind: KindSpec) -> u8 {
    match kind {
        KindSpec::Global => 0,
        KindSpec::Local => 1,
        KindSpec::SemiGlobal => 2,
        KindSpec::FreeEnd => 3,
    }
}

fn op_tag(op: AlignOp) -> u8 {
    match op {
        AlignOp::Match => 0,
        AlignOp::Mismatch => 1,
        AlignOp::GapS => 2,
        AlignOp::GapQ => 3,
    }
}

/// Encodes a request payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let seq_bytes: usize = req.pairs.iter().map(|(q, s)| q.len() + s.len()).sum();
    let mut out = Vec::with_capacity(32 + req.pairs.len() * 8 + seq_bytes);
    out.push(VERB_REQUEST);
    put_u64(&mut out, req.id);
    out.push(mode_tag(req.mode));
    out.push(kind_tag(req.spec.kind));
    put_i32(&mut out, req.spec.match_score);
    put_i32(&mut out, req.spec.mismatch);
    match req.spec.gap {
        GapSpec::Linear { gap } => {
            out.push(0);
            put_i32(&mut out, gap);
        }
        GapSpec::Affine { open, extend } => {
            out.push(1);
            put_i32(&mut out, open);
            put_i32(&mut out, extend);
        }
    }
    put_u32(&mut out, req.pairs.len() as u32);
    for (q, s) in &req.pairs {
        put_u32(&mut out, q.len() as u32);
        put_u32(&mut out, s.len() as u32);
        out.extend_from_slice(q);
        out.extend_from_slice(s);
    }
    out
}

/// Encodes a response payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + resp.results.len() * 8);
    out.push(VERB_RESPONSE);
    put_u64(&mut out, resp.id);
    match &resp.results {
        Results::Scores(scores) => {
            out.push(mode_tag(ReqKind::Score));
            put_u32(&mut out, scores.len() as u32);
            for &sc in scores {
                put_i32(&mut out, sc);
            }
        }
        Results::Alignments(alns) => {
            out.push(mode_tag(ReqKind::Align));
            put_u32(&mut out, alns.len() as u32);
            for aln in alns {
                put_i32(&mut out, aln.score);
                put_u64(&mut out, aln.q_start as u64);
                put_u64(&mut out, aln.q_end as u64);
                put_u64(&mut out, aln.s_start as u64);
                put_u64(&mut out, aln.s_end as u64);
                put_u32(&mut out, aln.ops.len() as u32);
                out.extend(aln.ops.iter().map(|&op| op_tag(op)));
            }
        }
    }
    out
}

/// Encodes an error payload (no length prefix).
pub fn encode_error(err: &ErrorFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + err.message.len());
    out.push(VERB_ERROR);
    put_u64(&mut out, err.id);
    out.push(err.code.tag());
    put_u32(&mut out, err.message.len() as u32);
    out.extend_from_slice(err.message.as_bytes());
    out
}

/// Encodes a metrics-scrape payload (no length prefix).
pub fn encode_stats() -> Vec<u8> {
    vec![VERB_STATS]
}

/// Encodes a health-probe payload (no length prefix).
pub fn encode_health() -> Vec<u8> {
    vec![VERB_HEALTH]
}

/// Encodes a flight-recorder dump request payload (no length prefix).
pub fn encode_dump() -> Vec<u8> {
    vec![VERB_DUMP]
}

/// Encodes a metrics exposition payload (no length prefix).
pub fn encode_stats_text(text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + text.len());
    out.push(VERB_STATS_TEXT);
    put_u32(&mut out, text.len() as u32);
    out.extend_from_slice(text.as_bytes());
    out
}

// ---------------------------------------------------------------- decode

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, ProtoError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() > 0 {
            Err(ProtoError::Trailing(self.remaining()))
        } else {
            Ok(())
        }
    }
}

fn decode_mode(tag: u8) -> Result<ReqKind, ProtoError> {
    match tag {
        0 => Ok(ReqKind::Score),
        1 => Ok(ReqKind::Align),
        t => Err(ProtoError::UnknownMode(t)),
    }
}

fn decode_codes(r: &mut Reader<'_>, len: usize) -> Result<Vec<u8>, ProtoError> {
    let bytes = r.take(len)?;
    if let Some(&code) = bytes.iter().find(|&&b| b > 4) {
        return Err(ProtoError::BadCode { code });
    }
    Ok(bytes.to_vec())
}

/// Decodes one payload into a typed [`Message`].
pub fn decode_message(payload: &[u8]) -> Result<Message, ProtoError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let verb = r.u8()?;
    let msg = match verb {
        VERB_REQUEST => {
            let id = r.u64()?;
            let mode = decode_mode(r.u8()?)?;
            let kind = match r.u8()? {
                0 => KindSpec::Global,
                1 => KindSpec::Local,
                2 => KindSpec::SemiGlobal,
                3 => KindSpec::FreeEnd,
                t => return Err(ProtoError::UnknownKind(t)),
            };
            let match_score = r.i32()?;
            let mismatch = r.i32()?;
            let gap = match r.u8()? {
                0 => GapSpec::Linear { gap: r.i32()? },
                1 => GapSpec::Affine {
                    open: r.i32()?,
                    extend: r.i32()?,
                },
                t => return Err(ProtoError::UnknownGap(t)),
            };
            let n = r.u32()? as usize;
            // Capacity is clamped by what the payload could possibly
            // hold (≥8 bytes per pair), so a forged count cannot force
            // a huge allocation before truncation is detected.
            let mut pairs = Vec::with_capacity(n.min(r.remaining() / 8));
            for _ in 0..n {
                let q_len = r.u32()? as usize;
                let s_len = r.u32()? as usize;
                let q = decode_codes(&mut r, q_len)?;
                let s = decode_codes(&mut r, s_len)?;
                pairs.push((q, s));
            }
            Message::Request(Request {
                id,
                mode,
                spec: SchemeSpec {
                    kind,
                    match_score,
                    mismatch,
                    gap,
                },
                pairs,
            })
        }
        VERB_RESPONSE => {
            let id = r.u64()?;
            let mode = decode_mode(r.u8()?)?;
            let n = r.u32()? as usize;
            let results = match mode {
                ReqKind::Score => {
                    let mut scores = Vec::with_capacity(n.min(r.remaining() / 4));
                    for _ in 0..n {
                        scores.push(r.i32()?);
                    }
                    Results::Scores(scores)
                }
                ReqKind::Align => {
                    let mut alns = Vec::with_capacity(n.min(r.remaining() / 40));
                    for _ in 0..n {
                        let score = r.i32()?;
                        let q_start = r.u64()? as usize;
                        let q_end = r.u64()? as usize;
                        let s_start = r.u64()? as usize;
                        let s_end = r.u64()? as usize;
                        let n_ops = r.u32()? as usize;
                        let op_bytes = r.take(n_ops)?;
                        let mut ops = Vec::with_capacity(n_ops);
                        for &b in op_bytes {
                            ops.push(match b {
                                0 => AlignOp::Match,
                                1 => AlignOp::Mismatch,
                                2 => AlignOp::GapS,
                                3 => AlignOp::GapQ,
                                t => return Err(ProtoError::UnknownOp(t)),
                            });
                        }
                        alns.push(Alignment {
                            score,
                            ops,
                            q_start,
                            q_end,
                            s_start,
                            s_end,
                        });
                    }
                    Results::Alignments(alns)
                }
            };
            Message::Response(Response { id, results })
        }
        VERB_ERROR => {
            let id = r.u64()?;
            let code = ErrCode::from_tag(r.u8()?).ok_or_else(|| {
                // Re-read impossible here; the tag was consumed. Report
                // the value via the error variant instead.
                ProtoError::UnknownErrCode(payload[9])
            })?;
            let len = r.u32()? as usize;
            let message =
                String::from_utf8(r.take(len)?.to_vec()).map_err(|_| ProtoError::BadUtf8)?;
            Message::Error(ErrorFrame { id, code, message })
        }
        VERB_STATS => Message::Stats,
        VERB_HEALTH => Message::Health,
        VERB_DUMP => Message::Dump,
        VERB_STATS_TEXT => {
            let len = r.u32()? as usize;
            let text = String::from_utf8(r.take(len)?.to_vec()).map_err(|_| ProtoError::BadUtf8)?;
            Message::StatsText(text)
        }
        t => return Err(ProtoError::UnknownVerb(t)),
    };
    r.finish()?;
    Ok(msg)
}

// --------------------------------------------------------------- framing

/// Writes one `u32-LE length` + payload frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` is a clean EOF (the peer
/// closed between frames); EOF inside a frame, or a length above
/// `max_bytes`, is an error — the stream is no longer frame-aligned.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_bytes {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_bytes}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            id: 7,
            mode: ReqKind::Align,
            spec: SchemeSpec::global_affine(2, -1, -2, -1),
            pairs: vec![(vec![0, 1, 2, 3], vec![0, 1, 3, 3, 4]), (vec![2], vec![])],
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        assert_eq!(req.payload_bytes(), 10);
        let payload = encode_request(&req);
        assert_eq!(decode_message(&payload), Ok(Message::Request(req)));
        // Linear gaps and score mode take the other branches.
        let req = Request {
            id: u64::MAX,
            mode: ReqKind::Score,
            spec: SchemeSpec::global_linear(1, -3, -2),
            pairs: vec![],
        };
        let payload = encode_request(&req);
        assert_eq!(decode_message(&payload), Ok(Message::Request(req)));
    }

    #[test]
    fn response_round_trips() {
        let scores = Response {
            id: 1,
            results: Results::Scores(vec![5, -17, i32::MIN]),
        };
        assert_eq!(
            decode_message(&encode_response(&scores)),
            Ok(Message::Response(scores))
        );
        let alns = Response {
            id: 2,
            results: Results::Alignments(vec![Alignment {
                score: -4,
                ops: vec![
                    AlignOp::Match,
                    AlignOp::GapS,
                    AlignOp::Mismatch,
                    AlignOp::GapQ,
                ],
                q_start: 0,
                q_end: 3,
                s_start: 1,
                s_end: 4,
            }]),
        };
        assert_eq!(
            decode_message(&encode_response(&alns)),
            Ok(Message::Response(alns))
        );
    }

    #[test]
    fn error_and_stats_round_trip() {
        let err = ErrorFrame {
            id: 9,
            code: ErrCode::Overloaded,
            message: "queued 128 B over the 64 B budget".into(),
        };
        assert_eq!(decode_message(&encode_error(&err)), Ok(Message::Error(err)));
        assert_eq!(decode_message(&encode_stats()), Ok(Message::Stats));
        assert_eq!(decode_message(&encode_health()), Ok(Message::Health));
        assert_eq!(decode_message(&encode_dump()), Ok(Message::Dump));
        // Single-byte verbs reject trailing bytes like every frame.
        assert_eq!(
            decode_message(&[encode_health()[0], 0]),
            Err(ProtoError::Trailing(1))
        );
        assert_eq!(
            decode_message(&encode_stats_text("serve_requests_total 3\n")),
            Ok(Message::StatsText("serve_requests_total 3\n".into()))
        );
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(decode_message(&[]), Err(ProtoError::Truncated));
        assert_eq!(decode_message(&[0x7f]), Err(ProtoError::UnknownVerb(0x7f)));
        let mut ok = encode_request(&sample_request());
        // Truncation anywhere inside the payload is detected.
        for cut in [1, 10, ok.len() - 1] {
            assert_eq!(decode_message(&ok[..cut]), Err(ProtoError::Truncated));
        }
        // Trailing garbage is rejected, not ignored.
        ok.push(0);
        assert_eq!(decode_message(&ok), Err(ProtoError::Trailing(1)));
        ok.pop();
        // A sequence byte outside the code alphabet is rejected.
        let bad_code_at = ok.len() - 1;
        let saved = ok[bad_code_at];
        ok[bad_code_at] = 9;
        assert_eq!(decode_message(&ok), Err(ProtoError::BadCode { code: 9 }));
        ok[bad_code_at] = saved;
        // Unknown mode/kind/gap tags are rejected.
        let mut bad = ok.clone();
        bad[9] = 7;
        assert_eq!(decode_message(&bad), Err(ProtoError::UnknownMode(7)));
        let mut bad = ok.clone();
        bad[10] = 9;
        assert_eq!(decode_message(&bad), Err(ProtoError::UnknownKind(9)));
        let mut bad = ok;
        bad[19] = 5;
        assert_eq!(decode_message(&bad), Err(ProtoError::UnknownGap(5)));
        // A forged pair count larger than the payload cannot allocate
        // unboundedly and is reported as truncation.
        let mut forged = encode_request(&Request {
            id: 0,
            mode: ReqKind::Score,
            spec: SchemeSpec::global_linear(2, -1, -1),
            pairs: vec![],
        });
        let n_off = forged.len() - 4;
        forged[n_off..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_message(&forged), Err(ProtoError::Truncated));
    }

    #[test]
    fn minted_request_ids_are_unique_and_increasing() {
        let a = mint_request_id();
        let b = mint_request_id();
        assert!(b > a && a >= 1);
        let from_threads: Vec<u64> = (0..4)
            .map(|_| std::thread::spawn(|| (0..100).map(|_| mint_request_id()).collect::<Vec<_>>()))
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        let mut sorted = from_threads.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), from_threads.len(), "ids must never collide");
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_stats()).unwrap();
        write_frame(&mut wire, &encode_stats_text("x 1\n")).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some(encode_stats().as_slice())
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap().as_deref(),
            Some(encode_stats_text("x 1\n").as_slice())
        );
        // Clean EOF between frames.
        assert_eq!(read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap(), None);
    }

    #[test]
    fn oversized_and_split_frames_are_io_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        let err = read_frame(&mut std::io::Cursor::new(&wire), 10).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // EOF mid-header and mid-payload are not clean EOFs.
        let err = read_frame(&mut std::io::Cursor::new(&wire[..2]), 1024).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        let err = read_frame(&mut std::io::Cursor::new(&wire[..30]), 1024).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
