//! The daemon: unix-socket accept loop + the batch dispatcher.
//!
//! [`Server::start`] binds the socket and spawns two long-lived
//! threads — an accept loop (one detached session per connection, see
//! the private `session` module) and the *dispatcher loop*, the single consumer
//! of the [`MicroBatcher`]: it takes each flushed window, builds one
//! zero-copy [`BatchView`] over every coalesced request's codes, runs
//! it through the shared [`SharedDispatcher`] (one engine registry,
//! one [`ResultCache`](anyseq_engine::ResultCache), one metrics
//! registry for the whole daemon), and splits the results back per
//! request in admission order.
//!
//! Serving metrics live in their own registry (names below, all
//! pre-seeded so a scrape never misses a key); the `STATS` verb
//! returns its Prometheus exposition concatenated with the engine
//! registry's (stage histograms, cache gauges) when observability is
//! on.

use crate::batcher::{Batch, MicroBatcher, WindowCfg};
use crate::clock::Clock;
use crate::proto::{Results, MAX_FRAME_BYTES};
use crate::session::run_session;
use anyseq_engine::{cell_share_ns, BatchCfg, DispatchPolicy, ReqKind, SharedDispatcher};
use anyseq_obs::{
    flight_trace, labels, prometheus_text, FlightRecorder, MetricsRegistry, MetricsSnapshot,
    RequestRecord, SlowLog, Stage,
};
use anyseq_seq::{BatchView, PairRef};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Counter: requests received (admitted or not).
pub const SERVE_REQUESTS_TOTAL: &str = "anyseq_serve_requests_total";
/// Counter: requests refused by admission control.
pub const SERVE_REJECTED_TOTAL: &str = "anyseq_serve_rejected_total";
/// Counter: frames that failed to decode (answered with a typed error).
pub const SERVE_MALFORMED_TOTAL: &str = "anyseq_serve_malformed_total";
/// Counter: engine batches formed by the micro-batcher.
pub const SERVE_BATCHES_TOTAL: &str = "anyseq_serve_batches_total";
/// Counter: pairs dispatched across all batches.
pub const SERVE_BATCH_PAIRS_TOTAL: &str = "anyseq_serve_batch_pairs_total";
/// Histogram: per-batch pair counts (the occupancy distribution).
pub const SERVE_BATCH_PAIRS_HIST: &str = "anyseq_serve_batch_pairs";
/// Gauge: mean pairs per batch so far — the coalescing figure of
/// merit (≥4× the single-request size under concurrent load is the
/// acceptance bar).
pub const SERVE_WINDOW_OCCUPANCY: &str = "anyseq_serve_window_occupancy";
/// Counter: completed requests slower than the `--slow-ms` threshold.
pub const SERVE_SLOW_TOTAL: &str = "anyseq_serve_slow_total";
/// Histogram: end-to-end request latency in µs, labelled
/// `{kind, scheme, verb}` (log₂ buckets; merge across labels for
/// aggregate quantiles).
pub const SERVE_REQUEST_US_HIST: &str = "anyseq_serve_request_us";
/// Gauge: p50 request latency in µs, labelled `{verb}`; refreshed from
/// the merged latency histogram on every `STATS` render.
pub const SERVE_REQ_P50_US: &str = "anyseq_serve_req_p50_us";
/// Gauge: p95 request latency in µs, labelled `{verb}`.
pub const SERVE_REQ_P95_US: &str = "anyseq_serve_req_p95_us";
/// Gauge: p99 request latency in µs, labelled `{verb}`.
pub const SERVE_REQ_P99_US: &str = "anyseq_serve_req_p99_us";

/// The two request verbs as exposition label values.
pub(crate) const VERBS: [&str; 2] = ["score", "align"];

pub(crate) fn verb_name(mode: ReqKind) -> &'static str {
    match mode {
        ReqKind::Score => "score",
        ReqKind::Align => "align",
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Micro-batching window (flush triggers + queue budget).
    pub window: WindowCfg,
    /// Engine worker threads; 0 means all available cores.
    pub threads: usize,
    /// Dispatch policy for the shared engine. The default enables
    /// observability (the `STATS` verb is half the point of a daemon)
    /// and a 32 MiB result cache shared across all connections.
    pub policy: DispatchPolicy,
    /// Per-frame payload cap for client connections.
    pub max_frame_bytes: usize,
    /// Slow-request threshold in milliseconds (`--slow-ms`): completed
    /// requests slower than this end to end enter the slow log and
    /// bump [`SERVE_SLOW_TOTAL`].
    pub slow_ms: u64,
    /// Request-scoped tracing (records, latency histograms, slow log,
    /// flight recorder). On by default; the throughput bench turns it
    /// off to measure its overhead.
    pub request_obs: bool,
    /// Completed requests the flight recorder retains.
    pub flight_requests: usize,
    /// Dispatched batches (with engine spans) the flight recorder
    /// retains.
    pub flight_batches: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            window: WindowCfg::default(),
            threads: 0,
            policy: DispatchPolicy::auto().observe(true).cache_mb(32),
            max_frame_bytes: MAX_FRAME_BYTES,
            slow_ms: 100,
            request_obs: true,
            flight_requests: 256,
            flight_batches: 64,
        }
    }
}

/// Request-tracing sinks, present iff `ServeConfig::request_obs`.
pub(crate) struct RequestObs {
    /// The always-on ring of recent requests + batches.
    pub flight: FlightRecorder,
    /// The bounded over-threshold request log.
    pub slow: SlowLog,
}

/// State shared by the accept loop, every session, and the dispatcher.
pub(crate) struct Shared {
    /// The micro-batching queue sessions submit into.
    pub batcher: MicroBatcher,
    /// The one engine handle every batch runs through.
    pub engine: SharedDispatcher,
    /// The serving-layer metrics registry.
    pub metrics: Arc<MetricsRegistry>,
    /// Per-frame payload cap.
    pub max_frame: usize,
    /// The daemon clock — every request-lifecycle stamp reads it, so a
    /// fake clock makes the whole decomposition deterministic.
    pub clock: Arc<dyn Clock>,
    /// Request-tracing sinks; `None` disables per-request stamps,
    /// histograms, slow log, and flight recorder in one check.
    pub reqobs: Option<RequestObs>,
}

impl Shared {
    /// Renders the `STATS` exposition: serving metrics first (with the
    /// latency quantile gauges freshly derived), then the engine
    /// registry (when the dispatch observes).
    pub(crate) fn render_stats(&self) -> String {
        self.refresh_latency_gauges();
        let mut text = prometheus_text(&self.metrics.snapshot());
        if let Some(reg) = self.engine.dispatch().metrics() {
            text.push_str(&prometheus_text(&reg.snapshot()));
        }
        text
    }

    /// Recomputes the per-verb p50/p95/p99 gauges from the merged
    /// request-latency histogram. Quantiles are derived on scrape, not
    /// on completion — the hot path only pays one histogram observe.
    pub(crate) fn refresh_latency_gauges(&self) {
        for verb in VERBS {
            let filter = format!("verb=\"{verb}\"");
            let h = self
                .metrics
                .merged_histogram(SERVE_REQUEST_US_HIST, &filter);
            let l = labels(&[("verb", verb)]);
            for (name, q) in [
                (SERVE_REQ_P50_US, 0.5),
                (SERVE_REQ_P95_US, 0.95),
                (SERVE_REQ_P99_US, 0.99),
            ] {
                self.metrics
                    .set_gauge(name, l.clone(), h.quantile(q) as f64);
            }
        }
    }

    /// Finalizes a completed request record: latency histogram, slow
    /// log, flight recorder. Called by the session writer after the
    /// reply frame is on the wire (`done_ns` stamped).
    pub(crate) fn complete(&self, rec: Box<RequestRecord>) {
        let Some(obs) = &self.reqobs else { return };
        let scheme = rec.scheme_hex();
        let l = labels(&[("kind", rec.kind), ("scheme", &scheme), ("verb", rec.verb)]);
        self.metrics
            .observe(SERVE_REQUEST_US_HIST, l, rec.total_ns() / 1_000);
        if obs.slow.offer(&rec) {
            self.metrics.inc(SERVE_SLOW_TOTAL, String::new(), 1);
        }
        obs.flight.record_request(*rec);
    }

    /// Renders the `HEALTH` JSON document: queue levels, window
    /// occupancy, and the slow-request log ("SLOWLOG"), newest last.
    pub(crate) fn render_health(&self) -> String {
        use std::fmt::Write as _;
        let occupancy = self
            .metrics
            .snapshot()
            .gauges
            .get(&(SERVE_WINDOW_OCCUPANCY, String::new()))
            .copied()
            .unwrap_or(0.0);
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"request_obs\":{},\"queued_bytes\":{},\"queued_requests\":{},\
             \"peak_queued_bytes\":{},\"window_occupancy\":{occupancy}",
            self.reqobs.is_some(),
            self.batcher.queued_bytes(),
            self.batcher.queued_requests(),
            self.batcher.peak_queued_bytes(),
        );
        if let Some(obs) = &self.reqobs {
            let _ = write!(
                out,
                ",\"slow_threshold_ms\":{},\"slow_total\":{},\"slowlog\":[",
                obs.slow.threshold_ns() / 1_000_000,
                obs.slow.total(),
            );
            for (i, r) in obs.slow.entries().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"id\":{},\"client_id\":{},\"verb\":\"{}\",\"kind\":\"{}\",\
                     \"scheme\":\"{}\",\"pairs\":{},\"cells\":{},\"batch\":{},\
                     \"total_us\":{},\"decode_us\":{},\"window_wait_us\":{},\
                     \"queue_wait_us\":{},\"dispatch_us\":{},\"kernel_share_us\":{},\
                     \"reply_write_us\":{}}}",
                    r.id,
                    r.client_id,
                    r.verb,
                    r.kind,
                    r.scheme_hex(),
                    r.pairs,
                    r.cells,
                    r.batch_seq,
                    r.total_ns() / 1_000,
                    r.decode_ns() / 1_000,
                    r.window_wait_ns() / 1_000,
                    r.queue_wait_ns() / 1_000,
                    r.dispatch_ns() / 1_000,
                    r.kernel_share_ns / 1_000,
                    r.reply_write_ns() / 1_000,
                );
            }
            out.push(']');
        } else {
            out.push_str(",\"slowlog\":[]");
        }
        out.push_str("}\n");
        out
    }

    /// Renders the `DUMP` reply: the flight recorder as Chrome-trace
    /// JSON (an empty event array when request tracing is off).
    pub(crate) fn render_flight(&self) -> String {
        match &self.reqobs {
            Some(obs) => flight_trace(&obs.flight.snapshot()),
            None => String::from("[\n]\n"),
        }
    }
}

/// The serve daemon (constructor namespace; see [`Server::start`]).
pub struct Server;

impl Server {
    /// Binds `path` (replacing a stale socket file) and starts the
    /// accept + dispatcher threads. The returned handle owns the
    /// daemon: [`ServerHandle::shutdown`] flushes and joins it, and
    /// dropping the handle does the same best-effort.
    pub fn start(
        path: impl AsRef<Path>,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<ServerHandle> {
        let path = path.as_ref().to_path_buf();
        // A leftover socket file from a dead daemon would fail the
        // bind with AddrInUse; a *live* daemon also holds no lock on
        // the file, so replacing is the conventional unix-socket move.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;

        let metrics = Arc::new(MetricsRegistry::new());
        // Pre-seed every serving metric so scrapes (and the report
        // checker) always see the full key set, zeros included. A cold
        // scrape therefore exposes stable zero-valued keys for every
        // counter, gauge, and histogram the daemon will ever emit
        // (per-verb latency histograms are seeded with placeholder
        // kind/scheme labels — real traffic adds its own series).
        for name in [
            SERVE_REQUESTS_TOTAL,
            SERVE_REJECTED_TOTAL,
            SERVE_MALFORMED_TOTAL,
            SERVE_BATCHES_TOTAL,
            SERVE_BATCH_PAIRS_TOTAL,
            SERVE_SLOW_TOTAL,
        ] {
            metrics.inc(name, String::new(), 0);
        }
        metrics.set_gauge(SERVE_WINDOW_OCCUPANCY, String::new(), 0.0);
        metrics.add_gauge(crate::batcher::QUEUE_BYTES_GAUGE, String::new(), 0.0);
        metrics.add_gauge(crate::batcher::QUEUE_DEPTH_GAUGE, String::new(), 0.0);
        metrics.ensure_histogram(SERVE_BATCH_PAIRS_HIST, String::new());
        for verb in VERBS {
            metrics.ensure_histogram(
                SERVE_REQUEST_US_HIST,
                labels(&[("kind", "-"), ("scheme", "-"), ("verb", verb)]),
            );
            let l = labels(&[("verb", verb)]);
            for name in [SERVE_REQ_P50_US, SERVE_REQ_P95_US, SERVE_REQ_P99_US] {
                metrics.set_gauge(name, l.clone(), 0.0);
            }
        }

        let threads = if cfg.threads == 0 {
            BatchCfg::default()
        } else {
            BatchCfg::threads(cfg.threads)
        };
        let reqobs = cfg.request_obs.then(|| RequestObs {
            flight: FlightRecorder::new(cfg.flight_requests, cfg.flight_batches),
            slow: SlowLog::new(cfg.slow_ms.saturating_mul(1_000_000), 64),
        });
        let shared = Arc::new(Shared {
            batcher: MicroBatcher::new(cfg.window, Arc::clone(&clock))
                .with_metrics(Arc::clone(&metrics)),
            engine: SharedDispatcher::new(cfg.policy.standard(), threads),
            metrics,
            max_frame: cfg.max_frame_bytes,
            clock,
            reqobs,
        });
        // The engine registry gets the same cold-scrape treatment for
        // the sharded-execution totals: the keys must exist before the
        // first chromosome-scale pair ever arrives, so dashboards and
        // the report checker see a stable key set from scrape one.
        if let Some(reg) = shared.engine.dispatch().metrics() {
            reg.inc("anyseq_batch_shards_total", String::new(), 0);
            reg.inc("anyseq_batch_seam_bytes_total", String::new(), 0);
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatcher_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(listener, &shared, &shutdown))
        };
        Ok(ServerHandle {
            path,
            shared,
            shutdown,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        })
    }
}

fn accept_loop(listener: UnixListener, shared: &Arc<Shared>, shutdown: &AtomicBool) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Sessions are detached: they end when their client hangs up,
        // and shutdown flushes their admitted work first.
        std::thread::spawn(move || run_session(stream, shared));
    }
}

/// The single batch consumer: coalesced window → one engine run →
/// per-request result slices, in admission order. With request
/// tracing on, it also stamps each request's dispatch interval,
/// apportions the batch's kernel time by cell share, and files the
/// batch (with its engine spans) in the flight recorder.
fn dispatcher_loop(shared: &Arc<Shared>) {
    let mut batches = 0u64;
    let mut pairs_total = 0u64;
    while let Some(batch) = shared.batcher.next_batch() {
        let pair_count = batch.pair_count() as u64;
        let t_start = shared.clock.now_ns();
        let (results, kernel_ns, spans) = run_batch(shared, &batch);
        let t_end = shared.clock.now_ns();
        let batch_seq = shared.reqobs.as_ref().map_or(0, |obs| {
            let cells: u64 = batch
                .requests
                .iter()
                .filter_map(|r| r.rec.as_ref().map(|rec| rec.cells))
                .sum();
            obs.flight
                .record_batch(verb_name(batch.mode), t_start, pair_count, cells, spans)
        });
        // Count the batch *before* handing out its results: a client
        // that scrapes STATS right after its last reply must already
        // see this batch in the counters and the occupancy gauge.
        batches += 1;
        pairs_total += pair_count;
        shared.metrics.inc(SERVE_BATCHES_TOTAL, String::new(), 1);
        shared
            .metrics
            .inc(SERVE_BATCH_PAIRS_TOTAL, String::new(), pair_count);
        shared
            .metrics
            .observe(SERVE_BATCH_PAIRS_HIST, String::new(), pair_count);
        shared.metrics.set_gauge(
            SERVE_WINDOW_OCCUPANCY,
            String::new(),
            pairs_total as f64 / batches as f64,
        );
        distribute(batch, results, t_start, t_end, kernel_ns, batch_seq);
    }
}

fn run_batch(shared: &Arc<Shared>, batch: &Batch) -> (Results, u64, Vec<anyseq_obs::Span>) {
    // One borrowed view over every request's codes — the engine sees a
    // single coalesced batch; no sequence bytes are copied here.
    let refs: Vec<PairRef<'_>> = batch
        .requests
        .iter()
        .flat_map(|r| r.pairs.iter().map(|(q, s)| PairRef::new(q, s)))
        .collect();
    let view = BatchView::from_refs(refs);
    match batch.mode {
        ReqKind::Score => {
            let mut run = shared.engine.score_batch(&batch.spec, &view);
            let kernel_ns = run.stats.stage_ns(Stage::Kernel);
            let spans = std::mem::take(&mut run.stats.spans);
            (Results::Scores(run.results), kernel_ns, spans)
        }
        ReqKind::Align => {
            let mut run = shared.engine.align_batch(&batch.spec, &view);
            let kernel_ns = run.stats.stage_ns(Stage::Kernel);
            let spans = std::mem::take(&mut run.stats.spans);
            (Results::Alignments(run.results), kernel_ns, spans)
        }
    }
}

fn distribute(
    batch: Batch,
    results: Results,
    t_start: u64,
    t_end: u64,
    kernel_ns: u64,
    batch_seq: u64,
) {
    let batch_cells: u64 = batch
        .requests
        .iter()
        .filter_map(|r| r.rec.as_ref().map(|rec| rec.cells))
        .sum();
    let mut offset = 0;
    for req in batch.requests {
        let n = req.pairs.len();
        let chunk = match &results {
            Results::Scores(v) => Results::Scores(v[offset..offset + n].to_vec()),
            Results::Alignments(v) => Results::Alignments(v[offset..offset + n].to_vec()),
        };
        offset += n;
        let mut rec = req.rec;
        if let Some(rec) = &mut rec {
            rec.dispatch_start_ns = t_start;
            rec.dispatch_end_ns = t_end;
            rec.kernel_share_ns = cell_share_ns(kernel_ns, rec.cells, batch_cells);
            rec.batch_seq = batch_seq;
        }
        // A disconnected client dropped its receiver; everyone else's
        // results are unaffected.
        let _ = req.tx.send((chunk, rec));
    }
}

/// Owns the running daemon's threads and socket path.
pub struct ServerHandle {
    path: PathBuf,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket path clients connect to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shared engine handle (cumulative cross-batch stats, cache,
    /// engine metrics registry).
    pub fn engine(&self) -> &SharedDispatcher {
        &self.shared.engine
    }

    /// A snapshot of the serving-layer metrics registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Sequence bytes currently queued in the batcher.
    pub fn queued_bytes(&self) -> u64 {
        self.shared.batcher.queued_bytes()
    }

    /// High-water mark of queued bytes (bounded by the queue budget).
    pub fn peak_queued_bytes(&self) -> u64 {
        self.shared.batcher.peak_queued_bytes()
    }

    /// The rendered `STATS` exposition (same text a client scrape gets).
    pub fn stats_text(&self) -> String {
        self.shared.render_stats()
    }

    /// The rendered `HEALTH` JSON (same text a client probe gets).
    pub fn health_text(&self) -> String {
        self.shared.render_health()
    }

    /// The rendered `DUMP` Chrome trace (same text a client gets).
    pub fn flight_trace_text(&self) -> String {
        self.shared.render_flight()
    }

    /// The slow-request log entries, oldest first (empty when request
    /// tracing is off).
    pub fn slow_log(&self) -> Vec<RequestRecord> {
        self.shared
            .reqobs
            .as_ref()
            .map_or_else(Vec::new, |obs| obs.slow.entries())
    }

    /// The flight recorder's completed-request ring, oldest first
    /// (empty when request tracing is off).
    pub fn flight_requests(&self) -> Vec<RequestRecord> {
        self.shared
            .reqobs
            .as_ref()
            .map_or_else(Vec::new, |obs| obs.flight.snapshot().requests)
    }

    /// Blocks until the accept loop exits — i.e. forever, until
    /// another thread (or a signal handler) shuts the process down.
    /// This is what the CLI daemon parks on.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Flushes admitted work, stops both threads, and removes the
    /// socket file. Idle connected clients keep their sessions until
    /// they hang up; everything admitted before shutdown is answered.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.accept.is_none() && self.dispatcher.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        self.shared.batcher.close();
        // The accept loop only re-checks its flag per connection; poke
        // it with a throwaway connect so it wakes and exits.
        let _ = UnixStream::connect(&self.path);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
