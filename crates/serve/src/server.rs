//! The daemon: unix-socket accept loop + the batch dispatcher.
//!
//! [`Server::start`] binds the socket and spawns two long-lived
//! threads — an accept loop (one detached session per connection, see
//! the private `session` module) and the *dispatcher loop*, the single consumer
//! of the [`MicroBatcher`]: it takes each flushed window, builds one
//! zero-copy [`BatchView`] over every coalesced request's codes, runs
//! it through the shared [`SharedDispatcher`] (one engine registry,
//! one [`ResultCache`](anyseq_engine::ResultCache), one metrics
//! registry for the whole daemon), and splits the results back per
//! request in admission order.
//!
//! Serving metrics live in their own registry (names below, all
//! pre-seeded so a scrape never misses a key); the `STATS` verb
//! returns its Prometheus exposition concatenated with the engine
//! registry's (stage histograms, cache gauges) when observability is
//! on.

use crate::batcher::{Batch, MicroBatcher, WindowCfg};
use crate::clock::Clock;
use crate::proto::{Results, MAX_FRAME_BYTES};
use crate::session::run_session;
use anyseq_engine::{BatchCfg, DispatchPolicy, ReqKind, SharedDispatcher};
use anyseq_obs::{prometheus_text, MetricsRegistry, MetricsSnapshot};
use anyseq_seq::{BatchView, PairRef};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Counter: requests received (admitted or not).
pub const SERVE_REQUESTS_TOTAL: &str = "anyseq_serve_requests_total";
/// Counter: requests refused by admission control.
pub const SERVE_REJECTED_TOTAL: &str = "anyseq_serve_rejected_total";
/// Counter: frames that failed to decode (answered with a typed error).
pub const SERVE_MALFORMED_TOTAL: &str = "anyseq_serve_malformed_total";
/// Counter: engine batches formed by the micro-batcher.
pub const SERVE_BATCHES_TOTAL: &str = "anyseq_serve_batches_total";
/// Counter: pairs dispatched across all batches.
pub const SERVE_BATCH_PAIRS_TOTAL: &str = "anyseq_serve_batch_pairs_total";
/// Histogram: per-batch pair counts (the occupancy distribution).
pub const SERVE_BATCH_PAIRS_HIST: &str = "anyseq_serve_batch_pairs";
/// Gauge: mean pairs per batch so far — the coalescing figure of
/// merit (≥4× the single-request size under concurrent load is the
/// acceptance bar).
pub const SERVE_WINDOW_OCCUPANCY: &str = "anyseq_serve_window_occupancy";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Micro-batching window (flush triggers + queue budget).
    pub window: WindowCfg,
    /// Engine worker threads; 0 means all available cores.
    pub threads: usize,
    /// Dispatch policy for the shared engine. The default enables
    /// observability (the `STATS` verb is half the point of a daemon)
    /// and a 32 MiB result cache shared across all connections.
    pub policy: DispatchPolicy,
    /// Per-frame payload cap for client connections.
    pub max_frame_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            window: WindowCfg::default(),
            threads: 0,
            policy: DispatchPolicy::auto().observe(true).cache_mb(32),
            max_frame_bytes: MAX_FRAME_BYTES,
        }
    }
}

/// State shared by the accept loop, every session, and the dispatcher.
pub(crate) struct Shared {
    /// The micro-batching queue sessions submit into.
    pub batcher: MicroBatcher,
    /// The one engine handle every batch runs through.
    pub engine: SharedDispatcher,
    /// The serving-layer metrics registry.
    pub metrics: Arc<MetricsRegistry>,
    /// Per-frame payload cap.
    pub max_frame: usize,
}

impl Shared {
    /// Renders the `STATS` exposition: serving metrics first, then the
    /// engine registry (when the dispatch observes).
    pub(crate) fn render_stats(&self) -> String {
        let mut text = prometheus_text(&self.metrics.snapshot());
        if let Some(reg) = self.engine.dispatch().metrics() {
            text.push_str(&prometheus_text(&reg.snapshot()));
        }
        text
    }
}

/// The serve daemon (constructor namespace; see [`Server::start`]).
pub struct Server;

impl Server {
    /// Binds `path` (replacing a stale socket file) and starts the
    /// accept + dispatcher threads. The returned handle owns the
    /// daemon: [`ServerHandle::shutdown`] flushes and joins it, and
    /// dropping the handle does the same best-effort.
    pub fn start(
        path: impl AsRef<Path>,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<ServerHandle> {
        let path = path.as_ref().to_path_buf();
        // A leftover socket file from a dead daemon would fail the
        // bind with AddrInUse; a *live* daemon also holds no lock on
        // the file, so replacing is the conventional unix-socket move.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;

        let metrics = Arc::new(MetricsRegistry::new());
        // Pre-seed every serving metric so scrapes (and the report
        // checker) always see the full key set, zeros included.
        for name in [
            SERVE_REQUESTS_TOTAL,
            SERVE_REJECTED_TOTAL,
            SERVE_MALFORMED_TOTAL,
            SERVE_BATCHES_TOTAL,
            SERVE_BATCH_PAIRS_TOTAL,
        ] {
            metrics.inc(name, String::new(), 0);
        }
        metrics.set_gauge(SERVE_WINDOW_OCCUPANCY, String::new(), 0.0);
        metrics.add_gauge(crate::batcher::QUEUE_BYTES_GAUGE, String::new(), 0.0);
        metrics.add_gauge(crate::batcher::QUEUE_DEPTH_GAUGE, String::new(), 0.0);

        let threads = if cfg.threads == 0 {
            BatchCfg::default()
        } else {
            BatchCfg::threads(cfg.threads)
        };
        let shared = Arc::new(Shared {
            batcher: MicroBatcher::new(cfg.window, clock).with_metrics(Arc::clone(&metrics)),
            engine: SharedDispatcher::new(cfg.policy.standard(), threads),
            metrics,
            max_frame: cfg.max_frame_bytes,
        });

        let shutdown = Arc::new(AtomicBool::new(false));
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatcher_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(listener, &shared, &shutdown))
        };
        Ok(ServerHandle {
            path,
            shared,
            shutdown,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        })
    }
}

fn accept_loop(listener: UnixListener, shared: &Arc<Shared>, shutdown: &AtomicBool) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Sessions are detached: they end when their client hangs up,
        // and shutdown flushes their admitted work first.
        std::thread::spawn(move || run_session(stream, shared));
    }
}

/// The single batch consumer: coalesced window → one engine run →
/// per-request result slices, in admission order.
fn dispatcher_loop(shared: &Arc<Shared>) {
    let mut batches = 0u64;
    let mut pairs_total = 0u64;
    while let Some(batch) = shared.batcher.next_batch() {
        let pair_count = batch.pair_count() as u64;
        let results = run_batch(shared, &batch);
        distribute(batch, results);
        batches += 1;
        pairs_total += pair_count;
        shared.metrics.inc(SERVE_BATCHES_TOTAL, String::new(), 1);
        shared
            .metrics
            .inc(SERVE_BATCH_PAIRS_TOTAL, String::new(), pair_count);
        shared
            .metrics
            .observe(SERVE_BATCH_PAIRS_HIST, String::new(), pair_count);
        shared.metrics.set_gauge(
            SERVE_WINDOW_OCCUPANCY,
            String::new(),
            pairs_total as f64 / batches as f64,
        );
    }
}

fn run_batch(shared: &Arc<Shared>, batch: &Batch) -> Results {
    // One borrowed view over every request's codes — the engine sees a
    // single coalesced batch; no sequence bytes are copied here.
    let refs: Vec<PairRef<'_>> = batch
        .requests
        .iter()
        .flat_map(|r| r.pairs.iter().map(|(q, s)| PairRef::new(q, s)))
        .collect();
    let view = BatchView::from_refs(refs);
    match batch.mode {
        ReqKind::Score => Results::Scores(shared.engine.score_batch(&batch.spec, &view).results),
        ReqKind::Align => {
            Results::Alignments(shared.engine.align_batch(&batch.spec, &view).results)
        }
    }
}

fn distribute(batch: Batch, results: Results) {
    let mut offset = 0;
    for req in batch.requests {
        let n = req.pairs.len();
        let chunk = match &results {
            Results::Scores(v) => Results::Scores(v[offset..offset + n].to_vec()),
            Results::Alignments(v) => Results::Alignments(v[offset..offset + n].to_vec()),
        };
        offset += n;
        // A disconnected client dropped its receiver; everyone else's
        // results are unaffected.
        let _ = req.tx.send(chunk);
    }
}

/// Owns the running daemon's threads and socket path.
pub struct ServerHandle {
    path: PathBuf,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket path clients connect to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shared engine handle (cumulative cross-batch stats, cache,
    /// engine metrics registry).
    pub fn engine(&self) -> &SharedDispatcher {
        &self.shared.engine
    }

    /// A snapshot of the serving-layer metrics registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Sequence bytes currently queued in the batcher.
    pub fn queued_bytes(&self) -> u64 {
        self.shared.batcher.queued_bytes()
    }

    /// High-water mark of queued bytes (bounded by the queue budget).
    pub fn peak_queued_bytes(&self) -> u64 {
        self.shared.batcher.peak_queued_bytes()
    }

    /// The rendered `STATS` exposition (same text a client scrape gets).
    pub fn stats_text(&self) -> String {
        self.shared.render_stats()
    }

    /// Blocks until the accept loop exits — i.e. forever, until
    /// another thread (or a signal handler) shuts the process down.
    /// This is what the CLI daemon parks on.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Flushes admitted work, stops both threads, and removes the
    /// socket file. Idle connected clients keep their sessions until
    /// they hang up; everything admitted before shutdown is answered.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.accept.is_none() && self.dispatcher.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        self.shared.batcher.close();
        // The accept loop only re-checks its flag per connection; poke
        // it with a throwaway connect so it wakes and exits.
        let _ = UnixStream::connect(&self.path);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
