//! Injected time for the batching window.
//!
//! The micro-batcher never reads the system clock directly: every
//! "what time is it" and "how long may I park" question goes through a
//! [`Clock`]. Production uses [`SystemClock`]; the concurrency test
//! harness uses [`FakeClock`], whose time only moves when the test
//! calls [`FakeClock::advance`] — so a test can pile requests into a
//! window, prove nothing flushes, then advance past the deadline and
//! prove exactly one batch forms. Flush decisions depend only on
//! `now_ns()` and queue state, never on how often the flush loop woke
//! up, which is what makes the fake-clock runs outcome-deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock the batcher's flush loop polls.
pub trait Clock: Send + Sync + 'static {
    /// Monotonic nanoseconds since an arbitrary (per-clock) epoch.
    fn now_ns(&self) -> u64;

    /// Longest the flush loop may block on its condvar before
    /// re-checking state, given that the nearest deadline is `wait_ns`
    /// away (`None`: no window is open). Submissions always wake the
    /// loop early, so this is an upper bound, not a schedule.
    fn max_park(&self, wait_ns: Option<u64>) -> Duration;
}

/// Real time: parks until the nearest deadline.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock with its epoch at construction time.
    pub fn new() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn max_park(&self, wait_ns: Option<u64>) -> Duration {
        match wait_ns {
            // +1 ns so a park never wakes just *before* its deadline
            // and burns a spin iteration on rounding.
            Some(ns) => Duration::from_nanos(ns.saturating_add(1)),
            None => Duration::from_millis(100),
        }
    }
}

/// Test time: an atomic counter that only moves on [`FakeClock::advance`].
///
/// `max_park` returns a short real-time poll interval (fake time can
/// move between any two polls, and the advancing thread cannot notify
/// the batcher's condvar), so fake-clock runs trade a little idle
/// polling for fully controlled deadlines.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A fake clock at t=0.
    pub fn new() -> FakeClock {
        FakeClock::default()
    }

    /// Moves time forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn max_park(&self, _wait_ns: Option<u64>) -> Duration {
        Duration::from_millis(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert_eq!(c.max_park(Some(5)), Duration::from_nanos(6));
        assert!(c.max_park(None) > Duration::from_millis(1));
    }

    #[test]
    fn fake_clock_moves_only_on_advance() {
        let c = FakeClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        c.advance(1_000);
        assert_eq!(c.now_ns(), 1_000);
        c.advance(u64::from(u32::MAX));
        assert_eq!(c.now_ns(), 1_000 + u64::from(u32::MAX));
        assert_eq!(c.max_park(Some(1 << 40)), Duration::from_millis(1));
    }
}
