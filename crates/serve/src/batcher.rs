//! Deadline micro-batching with admission control.
//!
//! Requests from every connection funnel into one [`MicroBatcher`].
//! Requests are grouped by `(scheme, mode)` — the engine runs one
//! scheme and one mode per batch — and each group's *window* opens
//! when its first request arrives, with a flush deadline
//! `max_delay_ns` later. A group becomes ready to flush when **any**
//! of three triggers fires, whichever comes first:
//!
//! 1. **deadline** — `now ≥ first arrival + max_delay_ns`,
//! 2. **pair count** — the group holds ≥ `target_pairs` pairs,
//! 3. **byte budget** — the group holds ≥ `max_batch_bytes` sequence
//!    bytes.
//!
//! The count/byte triggers mark the group ready; the dispatcher takes
//! the *whole* group when it next asks, so while it is busy computing
//! a previous batch the group keeps absorbing arrivals (which is what
//! coalescing is for — the triggers are floors, not caps; the engine's
//! scheduler re-chunks internally).
//!
//! **Backpressure**: [`MicroBatcher::submit`] admits a request only if
//! the total queued sequence bytes stay within `queue_budget_bytes`;
//! otherwise it returns [`SubmitError::Overloaded`] *synchronously*
//! and enqueues nothing — the daemon never buffers unboundedly, and
//! the client gets a typed retry signal instead of a stalled socket.
//!
//! Time comes from an injected [`Clock`], so
//! tests drive the window deterministically with a fake clock. Queue
//! levels are mirrored into a metrics registry (when present) via
//! delta gauges — `anyseq_serve_queue_bytes` and
//! `anyseq_serve_queue_depth` — which return to exactly 0 when the
//! queue drains, regardless of thread interleaving.

use crate::clock::Clock;
use crate::proto::{CodePair, Results};
use anyseq_engine::{ReqKind, SchemeSpec};
use anyseq_obs::{MetricsRegistry, RequestRecord};
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

/// What the dispatcher sends back per request: the results slice plus
/// the request's observability record (None when request tracing is
/// disabled), carrying the dispatch stamps and kernel share for the
/// writer to finalize.
pub type RequestReply = (Results, Option<Box<RequestRecord>>);

/// Gauge name for queued sequence bytes awaiting a batch.
pub const QUEUE_BYTES_GAUGE: &str = "anyseq_serve_queue_bytes";
/// Gauge name for queued requests awaiting a batch.
pub const QUEUE_DEPTH_GAUGE: &str = "anyseq_serve_queue_depth";

/// Micro-batching window configuration.
#[derive(Debug, Clone, Copy)]
pub struct WindowCfg {
    /// Flush deadline measured from a window's first request.
    pub max_delay_ns: u64,
    /// Pair count at which a window becomes ready early.
    pub target_pairs: usize,
    /// Sequence-byte total at which a window becomes ready early.
    pub max_batch_bytes: u64,
    /// Admission-control budget: total sequence bytes that may be
    /// queued across all windows before submissions are rejected.
    pub queue_budget_bytes: u64,
}

impl Default for WindowCfg {
    fn default() -> WindowCfg {
        WindowCfg {
            max_delay_ns: 2_000_000, // 2 ms
            target_pairs: 512,
            max_batch_bytes: 8 << 20,
            queue_budget_bytes: 64 << 20,
        }
    }
}

/// One admitted request waiting in (or taken from) a window.
pub struct PendingRequest {
    /// The request's code pairs.
    pub pairs: Vec<CodePair>,
    /// Where the dispatcher sends this request's results. A send to a
    /// disconnected receiver (client went away) is ignored.
    pub tx: Sender<RequestReply>,
    /// The request's lifecycle record, boxed to keep the queue entry
    /// small; `None` when request tracing is disabled. The batcher
    /// stamps `ready_ns`/`taken_ns` when the window flushes.
    pub rec: Option<Box<RequestRecord>>,
}

/// A flushed window: one engine batch worth of requests.
pub struct Batch {
    /// The scheme all requests in this batch share.
    pub spec: SchemeSpec,
    /// Score or align — shared by all requests in this batch.
    pub mode: ReqKind,
    /// The coalesced requests, in admission order.
    pub requests: Vec<PendingRequest>,
}

impl Batch {
    /// Total pairs across the batch's requests.
    pub fn pair_count(&self) -> usize {
        self.requests.iter().map(|r| r.pairs.len()).sum()
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admitting the request would exceed the queue budget. Nothing
    /// was enqueued; the client should back off and retry.
    Overloaded {
        /// Bytes currently queued.
        queued_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
        /// The refused request's size.
        request_bytes: u64,
    },
    /// The batcher is shutting down; no new work is admitted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded {
                queued_bytes,
                budget_bytes,
                request_bytes,
            } => write!(
                f,
                "overloaded: {request_bytes} request bytes would push the queue \
                 ({queued_bytes} B) over its {budget_bytes} B budget"
            ),
            SubmitError::Closed => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Group {
    spec: SchemeSpec,
    mode: ReqKind,
    requests: Vec<PendingRequest>,
    pairs: usize,
    bytes: u64,
    deadline_ns: u64,
    /// Clock reading when the pair-count or byte trigger first made
    /// this window flushable (0 = neither has fired yet). Feeds the
    /// per-request `window_wait` / `queue_wait` split: time before
    /// this stamp is window coalescing, time after is waiting for the
    /// dispatcher.
    ready_ns: u64,
}

struct State {
    /// Open windows in creation order (deadlines are monotone, so the
    /// front window always has the nearest deadline).
    groups: VecDeque<Group>,
    queued_bytes: u64,
    queued_requests: u64,
    peak_queued_bytes: u64,
    open: bool,
}

/// The shared micro-batching queue (see the module docs).
pub struct MicroBatcher {
    cfg: WindowCfg,
    clock: Arc<dyn Clock>,
    metrics: Option<Arc<MetricsRegistry>>,
    state: Mutex<State>,
    cv: Condvar,
}

impl MicroBatcher {
    /// A batcher over the given window configuration and clock.
    pub fn new(cfg: WindowCfg, clock: Arc<dyn Clock>) -> MicroBatcher {
        MicroBatcher {
            cfg,
            clock,
            metrics: None,
            state: Mutex::new(State {
                groups: VecDeque::new(),
                queued_bytes: 0,
                queued_requests: 0,
                peak_queued_bytes: 0,
                open: true,
            }),
            cv: Condvar::new(),
        }
    }

    /// Mirrors queue levels into `registry` as delta gauges.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> MicroBatcher {
        self.metrics = Some(registry);
        self
    }

    /// The window configuration.
    pub fn cfg(&self) -> WindowCfg {
        self.cfg
    }

    /// Admits a request into its `(spec, mode)` window, or rejects it.
    /// On success the request's results will eventually arrive on `tx`
    /// (the dispatcher drains every admitted request, even during
    /// shutdown). `rec` is the request's lifecycle record (or `None`
    /// with tracing off); it rides the queue and comes back with the
    /// results, gaining window stamps along the way.
    pub fn submit(
        &self,
        spec: SchemeSpec,
        mode: ReqKind,
        pairs: Vec<CodePair>,
        tx: Sender<RequestReply>,
        rec: Option<Box<RequestRecord>>,
    ) -> Result<(), SubmitError> {
        let bytes: u64 = pairs.iter().map(|(q, s)| (q.len() + s.len()) as u64).sum();
        let now = self.clock.now_ns();
        let mut state = self.state.lock().expect("batcher state poisoned");
        if !state.open {
            return Err(SubmitError::Closed);
        }
        if state.queued_bytes.saturating_add(bytes) > self.cfg.queue_budget_bytes {
            return Err(SubmitError::Overloaded {
                queued_bytes: state.queued_bytes,
                budget_bytes: self.cfg.queue_budget_bytes,
                request_bytes: bytes,
            });
        }
        state.queued_bytes += bytes;
        state.queued_requests += 1;
        state.peak_queued_bytes = state.peak_queued_bytes.max(state.queued_bytes);
        let request = PendingRequest { pairs, tx, rec };
        let n_pairs = request.pairs.len();
        if let Some(group) = state
            .groups
            .iter_mut()
            .find(|g| g.spec == spec && g.mode == mode)
        {
            group.requests.push(request);
            group.pairs += n_pairs;
            group.bytes += bytes;
            if group.ready_ns == 0
                && (group.pairs >= self.cfg.target_pairs || group.bytes >= self.cfg.max_batch_bytes)
            {
                group.ready_ns = now;
            }
        } else {
            let deadline_ns = now.saturating_add(self.cfg.max_delay_ns);
            let ready_ns = if n_pairs >= self.cfg.target_pairs || bytes >= self.cfg.max_batch_bytes
            {
                now
            } else {
                0
            };
            state.groups.push_back(Group {
                spec,
                mode,
                requests: vec![request],
                pairs: n_pairs,
                bytes,
                deadline_ns,
                ready_ns,
            });
        }
        drop(state);
        if let Some(reg) = &self.metrics {
            reg.add_gauge(QUEUE_BYTES_GAUGE, String::new(), bytes as f64);
            reg.add_gauge(QUEUE_DEPTH_GAUGE, String::new(), 1.0);
        }
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks until a window is ready and returns it, or `None` once
    /// the batcher is closed *and* fully drained. Closing marks every
    /// remaining window ready, so shutdown flushes the queue instead
    /// of dropping it.
    pub fn next_batch(&self) -> Option<Batch> {
        let mut state = self.state.lock().expect("batcher state poisoned");
        loop {
            let now = self.clock.now_ns();
            let open = state.open;
            let ready = |g: &Group| {
                !open
                    || g.pairs >= self.cfg.target_pairs
                    || g.bytes >= self.cfg.max_batch_bytes
                    || now >= g.deadline_ns
            };
            if let Some(idx) = state.groups.iter().position(ready) {
                let mut group = state.groups.remove(idx).expect("position exists");
                state.queued_bytes -= group.bytes;
                state.queued_requests -= group.requests.len() as u64;
                drop(state);
                // When the window became flushable: the count/byte
                // trigger stamp if one fired, else the deadline (the
                // usual flush), else this very moment (close-flush).
                let ready_ns = if group.ready_ns != 0 {
                    group.ready_ns
                } else if now >= group.deadline_ns {
                    group.deadline_ns
                } else {
                    now
                };
                for req in &mut group.requests {
                    if let Some(rec) = &mut req.rec {
                        // A request admitted into an already-ready
                        // window never waited for the trigger.
                        rec.ready_ns = ready_ns.max(rec.admit_ns);
                        rec.taken_ns = now;
                    }
                }
                if let Some(reg) = &self.metrics {
                    reg.add_gauge(QUEUE_BYTES_GAUGE, String::new(), -(group.bytes as f64));
                    reg.add_gauge(
                        QUEUE_DEPTH_GAUGE,
                        String::new(),
                        -(group.requests.len() as f64),
                    );
                }
                return Some(Batch {
                    spec: group.spec,
                    mode: group.mode,
                    requests: group.requests,
                });
            }
            if state.groups.is_empty() && !state.open {
                return None;
            }
            let wait = state
                .groups
                .front()
                .map(|g| g.deadline_ns.saturating_sub(now));
            let park = self.clock.max_park(wait);
            let (s, _) = self
                .cv
                .wait_timeout(state, park)
                .expect("batcher state poisoned");
            state = s;
        }
    }

    /// Stops admitting work and marks every open window ready. The
    /// dispatcher drains the remaining windows and then sees `None`.
    pub fn close(&self) {
        self.state.lock().expect("batcher state poisoned").open = false;
        self.cv.notify_all();
    }

    /// Sequence bytes currently queued.
    pub fn queued_bytes(&self) -> u64 {
        self.state
            .lock()
            .expect("batcher state poisoned")
            .queued_bytes
    }

    /// Requests currently queued.
    pub fn queued_requests(&self) -> u64 {
        self.state
            .lock()
            .expect("batcher state poisoned")
            .queued_requests
    }

    /// High-water mark of queued bytes — bounded by the budget, which
    /// is the backpressure soak test's memory-ceiling assertion.
    pub fn peak_queued_bytes(&self) -> u64 {
        self.state
            .lock()
            .expect("batcher state poisoned")
            .peak_queued_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn cfg() -> WindowCfg {
        WindowCfg {
            max_delay_ns: 1_000_000,
            target_pairs: 4,
            max_batch_bytes: 1_000,
            queue_budget_bytes: 10_000,
        }
    }

    fn spec() -> SchemeSpec {
        SchemeSpec::global_linear(2, -1, -1)
    }

    fn pair(n: usize) -> CodePair {
        (vec![0; n], vec![1; n])
    }

    fn submit_pairs(b: &MicroBatcher, spec: SchemeSpec, mode: ReqKind, pairs: Vec<CodePair>) {
        // These tests are dispatcher-less: nothing ever sends on `tx`,
        // so dropping the receiver immediately is harmless.
        let (tx, _rx) = channel();
        b.submit(spec, mode, pairs, tx, None).expect("admitted");
    }

    /// Pulls the next batch from another thread so the test can assert
    /// both "nothing flushes yet" and "flushes after advance".
    fn pull(b: &Arc<MicroBatcher>) -> std::sync::mpsc::Receiver<Option<usize>> {
        let (tx, rx) = channel();
        let b = Arc::clone(b);
        std::thread::spawn(move || {
            let got = b.next_batch().map(|batch| batch.pair_count());
            let _ = tx.send(got);
        });
        rx
    }

    #[test]
    fn deadline_flush_waits_for_the_fake_clock() {
        let clock = Arc::new(FakeClock::new());
        let b = Arc::new(MicroBatcher::new(cfg(), clock.clone() as Arc<dyn Clock>));
        submit_pairs(&b, spec(), ReqKind::Score, vec![pair(5)]);
        submit_pairs(&b, spec(), ReqKind::Score, vec![pair(5)]);
        let rx = pull(&b);
        // Below target pairs/bytes and before the deadline: no flush,
        // no matter how much real time passes.
        assert!(rx.recv_timeout(Duration::from_millis(40)).is_err());
        clock.advance(1_000_000);
        let got = rx.recv_timeout(Duration::from_secs(5)).expect("flushed");
        assert_eq!(got, Some(2));
        assert_eq!(b.queued_bytes(), 0);
        assert_eq!(b.queued_requests(), 0);
    }

    #[test]
    fn pair_target_flushes_without_time_passing() {
        let clock = Arc::new(FakeClock::new());
        let b = MicroBatcher::new(cfg(), clock as Arc<dyn Clock>);
        submit_pairs(&b, spec(), ReqKind::Score, vec![pair(2); 4]);
        let batch = b.next_batch().expect("count trigger");
        assert_eq!(batch.pair_count(), 4);
        assert_eq!(batch.mode, ReqKind::Score);
    }

    #[test]
    fn byte_budget_flushes_without_time_passing() {
        let clock = Arc::new(FakeClock::new());
        let b = MicroBatcher::new(cfg(), clock as Arc<dyn Clock>);
        // One 600-byte pair is below both triggers; two cross 1000 B.
        submit_pairs(&b, spec(), ReqKind::Align, vec![pair(300)]);
        submit_pairs(&b, spec(), ReqKind::Align, vec![pair(300)]);
        let batch = b.next_batch().expect("byte trigger");
        assert_eq!(batch.pair_count(), 2);
    }

    #[test]
    fn windows_group_by_spec_and_mode() {
        let clock = Arc::new(FakeClock::new());
        let b = MicroBatcher::new(cfg(), clock.clone() as Arc<dyn Clock>);
        let other = SchemeSpec::global_linear(1, -2, -2);
        submit_pairs(&b, spec(), ReqKind::Score, vec![pair(1)]);
        submit_pairs(&b, other, ReqKind::Score, vec![pair(1)]);
        submit_pairs(&b, spec(), ReqKind::Align, vec![pair(1)]);
        submit_pairs(&b, spec(), ReqKind::Score, vec![pair(1)]);
        clock.advance(2_000_000);
        // Three windows: (spec, Score) ×2 requests, (other, Score),
        // (spec, Align) — flushed oldest-first.
        let first = b.next_batch().expect("first window");
        assert_eq!((first.spec, first.mode), (spec(), ReqKind::Score));
        assert_eq!(first.requests.len(), 2);
        let second = b.next_batch().expect("second window");
        assert_eq!((second.spec, second.mode), (other, ReqKind::Score));
        let third = b.next_batch().expect("third window");
        assert_eq!((third.spec, third.mode), (spec(), ReqKind::Align));
        assert_eq!(b.queued_requests(), 0);
    }

    #[test]
    fn overload_rejects_synchronously_and_recovers() {
        let clock = Arc::new(FakeClock::new());
        let b = MicroBatcher::new(
            WindowCfg {
                queue_budget_bytes: 100,
                ..cfg()
            },
            clock as Arc<dyn Clock>,
        );
        let (tx, _rx) = channel();
        b.submit(spec(), ReqKind::Score, vec![pair(30)], tx.clone(), None)
            .expect("60 B fits");
        let err = b
            .submit(spec(), ReqKind::Score, vec![pair(30)], tx.clone(), None)
            .expect_err("120 B total exceeds 100 B");
        assert_eq!(
            err,
            SubmitError::Overloaded {
                queued_bytes: 60,
                budget_bytes: 100,
                request_bytes: 60,
            }
        );
        assert!(err.to_string().contains("overloaded"));
        // Nothing was enqueued for the rejected request…
        assert_eq!(b.queued_bytes(), 60);
        assert_eq!(b.peak_queued_bytes(), 60);
        // …and draining restores admission.
        b.close();
        assert!(b.next_batch().is_some());
        assert!(b.next_batch().is_none());
        assert_eq!(
            b.submit(spec(), ReqKind::Score, vec![pair(30)], tx, None),
            Err(SubmitError::Closed)
        );
    }

    #[test]
    fn close_drains_then_ends() {
        let clock = Arc::new(FakeClock::new());
        let b = MicroBatcher::new(cfg(), clock as Arc<dyn Clock>);
        submit_pairs(&b, spec(), ReqKind::Score, vec![pair(1)]);
        submit_pairs(&b, spec(), ReqKind::Align, vec![]);
        b.close();
        // Both windows flush (deadlines unreached — close readies
        // them), including the zero-pair one, then the stream ends.
        assert_eq!(b.next_batch().expect("window 1").mode, ReqKind::Score);
        let empty = b.next_batch().expect("window 2");
        assert_eq!(empty.mode, ReqKind::Align);
        assert_eq!(empty.pair_count(), 0);
        assert!(b.next_batch().is_none());
        assert!(b.next_batch().is_none(), "None is sticky");
    }

    #[test]
    fn records_get_window_stamps_on_flush() {
        let clock = Arc::new(FakeClock::new());
        let b = Arc::new(MicroBatcher::new(cfg(), clock.clone() as Arc<dyn Clock>));
        let (tx, _rx) = channel();
        let rec = |admit: u64| {
            Some(Box::new(RequestRecord {
                admit_ns: admit,
                ..RequestRecord::default()
            }))
        };
        // Deadline flush: admitted at t=0, deadline at 1 ms, taken at
        // 3 ms — ready must be the deadline, not the take time.
        b.submit(spec(), ReqKind::Score, vec![pair(5)], tx.clone(), rec(0))
            .unwrap();
        clock.advance(3_000_000);
        let batch = b.next_batch().expect("deadline flush");
        let r = batch.requests[0].rec.as_ref().unwrap();
        assert_eq!(r.ready_ns, 1_000_000);
        assert_eq!(r.taken_ns, 3_000_000);
        // Count-trigger flush: the 4th pair arrives at 4 ms and makes
        // the window ready immediately; taken two fake ms later.
        clock.advance(1_000_000);
        b.submit(
            spec(),
            ReqKind::Score,
            vec![pair(2); 4],
            tx.clone(),
            rec(4_000_000),
        )
        .unwrap();
        clock.advance(2_000_000);
        let batch = b.next_batch().expect("count flush");
        let r = batch.requests[0].rec.as_ref().unwrap();
        assert_eq!(r.ready_ns, 4_000_000);
        assert_eq!(r.taken_ns, 6_000_000);
        // window_wait = ready - admit = 0; queue_wait starts at ready.
        assert_eq!(r.window_wait_ns(), 0);
    }

    #[test]
    fn queue_gauges_return_to_zero() {
        let reg = Arc::new(MetricsRegistry::new());
        let clock = Arc::new(FakeClock::new());
        let b = MicroBatcher::new(cfg(), clock as Arc<dyn Clock>).with_metrics(reg.clone());
        submit_pairs(&b, spec(), ReqKind::Score, vec![pair(10), pair(20)]);
        submit_pairs(&b, spec(), ReqKind::Align, vec![pair(5)]);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges[&(QUEUE_BYTES_GAUGE, String::new())], 70.0);
        assert_eq!(snap.gauges[&(QUEUE_DEPTH_GAUGE, String::new())], 2.0);
        b.close();
        while b.next_batch().is_some() {}
        let snap = reg.snapshot();
        assert_eq!(snap.gauges[&(QUEUE_BYTES_GAUGE, String::new())], 0.0);
        assert_eq!(snap.gauges[&(QUEUE_DEPTH_GAUGE, String::new())], 0.0);
    }
}
