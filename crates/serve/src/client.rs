//! A small blocking client for the serve protocol.
//!
//! Used by the tests, the bench harness, and
//! `examples/serve_roundtrip.rs`. The client supports *pipelining*:
//! [`ServeClient::submit`] only writes the request frame, so a caller
//! can queue many requests before reading any reply — the server
//! guarantees replies come back in submission order, and each carries
//! the submitted id as a cross-check. [`ServeClient::roundtrip`] is
//! the one-shot convenience wrapper.

use crate::proto::{
    decode_message, encode_dump, encode_health, encode_request, encode_stats, read_frame,
    write_frame, CodePair, ErrorFrame, Message, Request, Results, MAX_FRAME_BYTES,
};
use anyseq_engine::{ReqKind, SchemeSpec};
use anyseq_seq::Seq;
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One frame from the server, from the client's point of view.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerReply {
    /// A successful response (id + per-pair results).
    Response {
        /// The echoed request id.
        id: u64,
        /// Per-pair results in the request's pair order.
        results: Results,
    },
    /// A typed refusal.
    Error(ErrorFrame),
    /// The metrics exposition answering a `STATS` scrape.
    Stats(String),
}

/// A blocking connection to a serve daemon.
pub struct ServeClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    next_id: u64,
    max_frame: usize,
}

impl ServeClient {
    /// Connects to the daemon's unix socket.
    pub fn connect(path: impl AsRef<Path>) -> std::io::Result<ServeClient> {
        let writer = UnixStream::connect(path)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ServeClient {
            reader,
            writer,
            next_id: 1,
            max_frame: MAX_FRAME_BYTES,
        })
    }

    /// Sends one request frame without waiting for the reply, and
    /// returns the id it will come back under. Replies arrive in
    /// submission order via [`ServeClient::recv`].
    pub fn submit(
        &mut self,
        mode: ReqKind,
        spec: SchemeSpec,
        pairs: Vec<CodePair>,
    ) -> std::io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            mode,
            spec,
            pairs,
        };
        write_frame(&mut self.writer, &encode_request(&req))?;
        Ok(id)
    }

    /// [`ServeClient::submit`] over owned [`Seq`]s (copies the codes
    /// onto the wire — the client side of the socket is where the
    /// zero-copy domain ends).
    pub fn submit_seqs(
        &mut self,
        mode: ReqKind,
        spec: SchemeSpec,
        pairs: &[(Seq, Seq)],
    ) -> std::io::Result<u64> {
        let code_pairs = pairs
            .iter()
            .map(|(q, s)| (q.codes().to_vec(), s.codes().to_vec()))
            .collect();
        self.submit(mode, spec, code_pairs)
    }

    /// Sends a raw pre-framed payload — the fault-injection tests use
    /// this to put malformed frames on the wire.
    pub fn send_raw(&mut self, payload: &[u8]) -> std::io::Result<()> {
        write_frame(&mut self.writer, payload)
    }

    /// Reads the next server frame. An EOF here is an error: the
    /// caller asked for a reply it never got.
    pub fn recv(&mut self) -> std::io::Result<ServerReply> {
        let payload = read_frame(&mut self.reader, self.max_frame)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )
        })?;
        match decode_message(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
        {
            Message::Response(resp) => Ok(ServerReply::Response {
                id: resp.id,
                results: resp.results,
            }),
            Message::Error(err) => Ok(ServerReply::Error(err)),
            Message::StatsText(text) => Ok(ServerReply::Stats(text)),
            Message::Request(_) | Message::Stats | Message::Health | Message::Dump => {
                Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "client-side verb received from server",
                ))
            }
        }
    }

    /// Submit + recv in one call: `Ok(Ok(results))` on success,
    /// `Ok(Err(frame))` on a typed server refusal (e.g. `Overloaded`).
    pub fn roundtrip(
        &mut self,
        mode: ReqKind,
        spec: SchemeSpec,
        pairs: Vec<CodePair>,
    ) -> std::io::Result<Result<Results, ErrorFrame>> {
        let id = self.submit(mode, spec, pairs)?;
        match self.recv()? {
            ServerReply::Response { id: got, results } => {
                if got != id {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("response id {got} does not match request id {id}"),
                    ));
                }
                Ok(Ok(results))
            }
            ServerReply::Error(err) => Ok(Err(err)),
            ServerReply::Stats(_) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stats frame answering an alignment request",
            )),
        }
    }

    /// Scrapes the daemon's metrics (Prometheus text exposition).
    /// Queued behind any pipelined requests — replies are FIFO.
    pub fn stats(&mut self) -> std::io::Result<String> {
        self.text_verb(encode_stats())
    }

    /// Probes the daemon's health: a JSON document with queue levels,
    /// window occupancy, and the slow-request log.
    pub fn health(&mut self) -> std::io::Result<String> {
        self.text_verb(encode_health())
    }

    /// Dumps the daemon's flight recorder as Chrome-trace JSON.
    pub fn dump_flight(&mut self) -> std::io::Result<String> {
        self.text_verb(encode_dump())
    }

    fn text_verb(&mut self, payload: Vec<u8>) -> std::io::Result<String> {
        write_frame(&mut self.writer, &payload)?;
        match self.recv()? {
            ServerReply::Stats(text) => Ok(text),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected a text reply, got {other:?}"),
            )),
        }
    }
}
