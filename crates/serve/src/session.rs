//! Per-connection frame pump: decode → admit → reply in order.
//!
//! Each accepted connection gets one *reader* (the session thread
//! itself) and one *writer* thread, glued by a FIFO reply queue. The
//! reader decodes frames and — for admitted requests — enqueues a
//! pending slot holding the channel the dispatcher will answer on;
//! instant replies (overload rejections, protocol errors, `STATS`)
//! enqueue pre-encoded frames. The writer pops the FIFO and blocks on
//! each pending slot in turn, so **responses always leave the socket
//! in the order the requests arrived**, no matter how the dispatcher
//! interleaves batches.
//!
//! Fault containment: a client disconnecting mid-flight just ends both
//! loops — its pending result channels drop, the dispatcher's sends to
//! them fail silently, and nothing it queued stalls the window or
//! leaks budget (queue bytes are released when the batch is taken,
//! which happens regardless of who is still listening). A malformed
//! frame gets a typed [`ErrCode::Malformed`](crate::proto::ErrCode)
//! error and the connection stays open; only a frame the stream cannot
//! recover from (oversized length prefix, mid-frame EOF) closes it.

use crate::batcher::SubmitError;
use crate::proto::{
    decode_message, encode_error, encode_response, encode_stats_text, read_frame, write_frame,
    ErrCode, ErrorFrame, Message, Response, Results,
};
use crate::server::{Shared, SERVE_MALFORMED_TOTAL, SERVE_REJECTED_TOTAL, SERVE_REQUESTS_TOTAL};
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// One slot in the per-connection reply FIFO.
enum Reply {
    /// An already-encoded frame payload (errors, stats).
    Ready(Vec<u8>),
    /// A request awaiting its batch: the writer blocks on `rx`.
    Pending { id: u64, rx: Receiver<Results> },
}

/// Runs one connection to completion (reader loop; owns a writer
/// thread). Returns when the client disconnects or the stream breaks.
pub(crate) fn run_session(stream: UnixStream, shared: Arc<Shared>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = channel::<Reply>();
    let writer = std::thread::spawn(move || writer_loop(write_half, reply_rx));
    reader_loop(stream, &shared, &reply_tx);
    // Closing the FIFO lets the writer drain queued replies and exit;
    // every admitted request is eventually answered by the dispatcher
    // (even during shutdown, which flushes rather than drops), so the
    // join cannot hang.
    drop(reply_tx);
    let _ = writer.join();
}

fn reader_loop(stream: UnixStream, shared: &Arc<Shared>, reply_tx: &Sender<Reply>) {
    let mut reader = BufReader::new(stream);
    loop {
        let payload = match read_frame(&mut reader, shared.max_frame) {
            Ok(Some(p)) => p,
            // Clean EOF, unrecoverable framing, or a broken socket all
            // end the session; in-frame problems are handled below.
            Ok(None) | Err(_) => return,
        };
        let reply = match decode_message(&payload) {
            Ok(Message::Request(req)) => {
                shared.metrics.inc(SERVE_REQUESTS_TOTAL, String::new(), 1);
                let (tx, rx) = channel();
                match shared.batcher.submit(req.spec, req.mode, req.pairs, tx) {
                    Ok(()) => Reply::Pending { id: req.id, rx },
                    Err(err @ SubmitError::Overloaded { .. }) => {
                        shared.metrics.inc(SERVE_REJECTED_TOTAL, String::new(), 1);
                        Reply::Ready(encode_error(&ErrorFrame {
                            id: req.id,
                            code: ErrCode::Overloaded,
                            message: err.to_string(),
                        }))
                    }
                    Err(err @ SubmitError::Closed) => Reply::Ready(encode_error(&ErrorFrame {
                        id: req.id,
                        code: ErrCode::Internal,
                        message: err.to_string(),
                    })),
                }
            }
            Ok(Message::Stats) => Reply::Ready(encode_stats_text(&shared.render_stats())),
            Ok(_) => {
                // Response / Error / StatsText are server→client verbs;
                // a client sending one is protocol misuse, not a
                // connection-fatal condition.
                shared.metrics.inc(SERVE_MALFORMED_TOTAL, String::new(), 1);
                Reply::Ready(encode_error(&ErrorFrame {
                    id: 0,
                    code: ErrCode::Malformed,
                    message: "server-side verb sent by client".into(),
                }))
            }
            Err(err) => {
                shared.metrics.inc(SERVE_MALFORMED_TOTAL, String::new(), 1);
                Reply::Ready(encode_error(&ErrorFrame {
                    id: 0,
                    code: ErrCode::Malformed,
                    message: err.to_string(),
                }))
            }
        };
        if reply_tx.send(reply).is_err() {
            // Writer gone (socket broke): stop reading too.
            return;
        }
    }
}

fn writer_loop(mut stream: UnixStream, rx: Receiver<Reply>) {
    for reply in rx {
        let payload = match reply {
            Reply::Ready(p) => p,
            Reply::Pending { id, rx } => match rx.recv() {
                Ok(results) => encode_response(&Response { id, results }),
                // The dispatcher only drops a result channel if it
                // died before answering — surface that instead of
                // silently truncating the response stream.
                Err(_) => encode_error(&ErrorFrame {
                    id,
                    code: ErrCode::Internal,
                    message: "dispatcher exited before answering".into(),
                }),
            },
        };
        if write_frame(&mut stream, &payload).is_err() {
            // Client went away mid-stream: dropping the remaining
            // replies (and their pending receivers) detaches this
            // connection from the dispatcher — its sends fail silently
            // and other clients' results are untouched.
            return;
        }
    }
}
