//! Per-connection frame pump: decode → admit → reply in order.
//!
//! Each accepted connection gets one *reader* (the session thread
//! itself) and one *writer* thread, glued by a FIFO reply queue. The
//! reader decodes frames and — for admitted requests — enqueues a
//! pending slot holding the channel the dispatcher will answer on;
//! instant replies (overload rejections, protocol errors, `STATS` /
//! `HEALTH` / `DUMP`) enqueue pre-encoded frames. The writer pops the
//! FIFO and blocks on each pending slot in turn, so **responses always
//! leave the socket in the order the requests arrived**, no matter how
//! the dispatcher interleaves batches.
//!
//! This is also where a request's observability record begins and
//! ends: the reader mints the server-side `RequestId` at frame decode
//! and stamps `recv`/`admit`; the writer stamps `reply_start`/`done`
//! around the reply write and hands the finished record to
//! [`Shared::complete`] (latency histogram → slow log → flight
//! recorder). The stamps in between — window, queue, dispatch — are
//! added by the batcher and the dispatcher as the record rides the
//! queue with its request.
//!
//! Fault containment: a client disconnecting mid-flight just ends both
//! loops — its pending result channels drop, the dispatcher's sends to
//! them fail silently, and nothing it queued stalls the window or
//! leaks budget (queue bytes are released when the batch is taken,
//! which happens regardless of who is still listening). A malformed
//! frame gets a typed [`ErrCode::Malformed`](crate::proto::ErrCode)
//! error and the connection stays open; only a frame the stream cannot
//! recover from (oversized length prefix, mid-frame EOF) closes it.

use crate::batcher::{RequestReply, SubmitError};
use crate::proto::{
    decode_message, encode_error, encode_response, encode_stats_text, mint_request_id, read_frame,
    write_frame, ErrCode, ErrorFrame, Message, Response,
};
use crate::server::{
    verb_name, Shared, SERVE_MALFORMED_TOTAL, SERVE_REJECTED_TOTAL, SERVE_REQUESTS_TOTAL,
};
use anyseq_obs::RequestRecord;
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// One slot in the per-connection reply FIFO.
enum Reply {
    /// An already-encoded frame payload (errors, stats, health, dump).
    Ready(Vec<u8>),
    /// A request awaiting its batch: the writer blocks on `rx`.
    Pending { id: u64, rx: Receiver<RequestReply> },
}

/// Runs one connection to completion (reader loop; owns a writer
/// thread). Returns when the client disconnects or the stream breaks.
pub(crate) fn run_session(stream: UnixStream, shared: Arc<Shared>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (reply_tx, reply_rx) = channel::<Reply>();
    let writer = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || writer_loop(write_half, reply_rx, &shared))
    };
    reader_loop(stream, &shared, &reply_tx);
    // Closing the FIFO lets the writer drain queued replies and exit;
    // every admitted request is eventually answered by the dispatcher
    // (even during shutdown, which flushes rather than drops), so the
    // join cannot hang.
    drop(reply_tx);
    let _ = writer.join();
}

fn reader_loop(stream: UnixStream, shared: &Arc<Shared>, reply_tx: &Sender<Reply>) {
    let mut reader = BufReader::new(stream);
    loop {
        let payload = match read_frame(&mut reader, shared.max_frame) {
            Ok(Some(p)) => p,
            // Clean EOF, unrecoverable framing, or a broken socket all
            // end the session; in-frame problems are handled below.
            Ok(None) | Err(_) => return,
        };
        let recv_ns = shared.clock.now_ns();
        let reply = match decode_message(&payload) {
            Ok(Message::Request(req)) => {
                shared.metrics.inc(SERVE_REQUESTS_TOTAL, String::new(), 1);
                // The record is born at frame decode: identity, sizes,
                // and the first two stamps. Everything later is filled
                // in by the batcher, the dispatcher, and the writer.
                let rec = shared.reqobs.as_ref().map(|_| {
                    Box::new(RequestRecord {
                        id: mint_request_id(),
                        client_id: req.id,
                        verb: verb_name(req.mode),
                        kind: req.spec.kind.name(),
                        scheme: req.spec.fingerprint(),
                        pairs: req.pairs.len() as u64,
                        cells: req
                            .pairs
                            .iter()
                            .map(|(q, s)| q.len() as u64 * s.len() as u64)
                            .sum(),
                        recv_ns,
                        admit_ns: shared.clock.now_ns(),
                        ..RequestRecord::default()
                    })
                });
                let (tx, rx) = channel();
                match shared
                    .batcher
                    .submit(req.spec, req.mode, req.pairs, tx, rec)
                {
                    Ok(()) => Reply::Pending { id: req.id, rx },
                    Err(err @ SubmitError::Overloaded { .. }) => {
                        shared.metrics.inc(SERVE_REJECTED_TOTAL, String::new(), 1);
                        Reply::Ready(encode_error(&ErrorFrame {
                            id: req.id,
                            code: ErrCode::Overloaded,
                            message: err.to_string(),
                        }))
                    }
                    Err(err @ SubmitError::Closed) => Reply::Ready(encode_error(&ErrorFrame {
                        id: req.id,
                        code: ErrCode::Internal,
                        message: err.to_string(),
                    })),
                }
            }
            Ok(Message::Stats) => Reply::Ready(encode_stats_text(&shared.render_stats())),
            Ok(Message::Health) => Reply::Ready(encode_stats_text(&shared.render_health())),
            Ok(Message::Dump) => Reply::Ready(encode_stats_text(&shared.render_flight())),
            Ok(_) => {
                // Response / Error / StatsText are server→client verbs;
                // a client sending one is protocol misuse, not a
                // connection-fatal condition.
                shared.metrics.inc(SERVE_MALFORMED_TOTAL, String::new(), 1);
                Reply::Ready(encode_error(&ErrorFrame {
                    id: 0,
                    code: ErrCode::Malformed,
                    message: "server-side verb sent by client".into(),
                }))
            }
            Err(err) => {
                shared.metrics.inc(SERVE_MALFORMED_TOTAL, String::new(), 1);
                Reply::Ready(encode_error(&ErrorFrame {
                    id: 0,
                    code: ErrCode::Malformed,
                    message: err.to_string(),
                }))
            }
        };
        if reply_tx.send(reply).is_err() {
            // Writer gone (socket broke): stop reading too.
            return;
        }
    }
}

fn writer_loop(mut stream: UnixStream, rx: Receiver<Reply>, shared: &Arc<Shared>) {
    for reply in rx {
        let (payload, rec) = match reply {
            Reply::Ready(p) => (p, None),
            Reply::Pending { id, rx } => match rx.recv() {
                Ok((results, mut rec)) => {
                    if let Some(rec) = &mut rec {
                        rec.reply_start_ns = shared.clock.now_ns();
                    }
                    (encode_response(&Response { id, results }), rec)
                }
                // The dispatcher only drops a result channel if it
                // died before answering — surface that instead of
                // silently truncating the response stream.
                Err(_) => (
                    encode_error(&ErrorFrame {
                        id,
                        code: ErrCode::Internal,
                        message: "dispatcher exited before answering".into(),
                    }),
                    None,
                ),
            },
        };
        if write_frame(&mut stream, &payload).is_err() {
            // Client went away mid-stream: dropping the remaining
            // replies (and their pending receivers) detaches this
            // connection from the dispatcher — its sends fail silently
            // and other clients' results are untouched.
            return;
        }
        if let Some(mut rec) = rec {
            rec.done_ns = shared.clock.now_ns();
            shared.complete(rec);
        }
    }
}
