//! Inter-sequence SIMD batch scoring for short reads: each vector lane
//! carries one *whole* alignment (the classic inter-sequence scheme the
//! paper uses for the NGS use case (ii), with 16-bit in-lane scores).
//!
//! Lanes must share matrix dimensions, so pairs are bucketed by
//! `(|q|, |s|)` — for Illumina-style reads the dominant bucket is
//! `(150, 150)` and lane occupancy is near-perfect. Leftovers and
//! oversized problems fall back to the scalar engine.
//!
//! Input is borrowed: a slice of [`PairRef`]s (`&[u8]` query/subject
//! codes). The only sequence bytes this module copies are the
//! lane-*transposed* row/column buffers the vector kernel needs —
//! `(|q| + |s|) × L` bytes per lane group, reported as
//! [`TraceStats::bytes_copied`] so callers can verify the pipeline
//! above stayed zero-copy.

use crate::kernel::{block_kernel, from16, max_block_extent, to16, BlockBorders, SimdSubst};
use crate::lanes::I16s;
use crate::traceback::TraceStats;
use anyseq_core::kind::Global;
use anyseq_core::pass::{init_left_f, init_left_h, init_top_e, init_top_h};
use anyseq_core::scheme::Scheme;
use anyseq_core::score::Score;
use anyseq_core::scoring::GapModel;
use anyseq_obs::Stage;
use anyseq_seq::PairRef;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A batch split into full `L`-lane groups of equal-dimension pairs
/// plus the indices that must take the in-backend scalar path
/// (leftovers, empty sequences, pairs past the 16-bit extent budget).
/// Shared by the score and traceback paths so both fill lanes the
/// same way.
pub struct LaneGroups<const L: usize> {
    /// Input indices of each full lane group (equal `(|q|, |s|)`).
    pub groups: Vec<[usize; L]>,
    /// Input indices handled by per-pair scalar kernels.
    pub scalar_idx: Vec<usize>,
}

impl<const L: usize> LaneGroups<L> {
    /// Buckets `pairs` by matrix dimensions and cuts each bucket into
    /// full lane groups; everything else goes scalar.
    pub fn build(pairs: &[PairRef<'_>], extent_budget: usize) -> LaneGroups<L> {
        let mut buckets: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        let mut scalar_idx: Vec<usize> = Vec::new();
        for (k, p) in pairs.iter().enumerate() {
            let (n, m) = (p.q.len(), p.s.len());
            if n == 0 || m == 0 || n + m > extent_budget {
                scalar_idx.push(k);
            } else {
                buckets.entry((n, m)).or_default().push(k);
            }
        }
        let mut groups: Vec<[usize; L]> = Vec::new();
        for idx in buckets.into_values() {
            let full = idx.len() / L * L;
            for chunk in idx[..full].chunks_exact(L) {
                groups.push(std::array::from_fn(|l| chunk[l]));
            }
            scalar_idx.extend_from_slice(&idx[full..]);
        }
        LaneGroups { groups, scalar_idx }
    }
}

/// Scores a batch of independent pairs with `L`-lane SIMD and
/// `threads`-way parallelism; returns one global score per pair, in
/// input order (bit-identical to `scheme.score`).
pub fn score_batch_simd<G, SS, const L: usize>(
    scheme: &Scheme<Global, G, SS>,
    pairs: &[PairRef<'_>],
    threads: usize,
) -> Vec<Score>
where
    G: GapModel,
    SS: SimdSubst,
{
    score_batch_simd_stats::<G, SS, L>(scheme, pairs, threads).0
}

/// [`score_batch_simd`] returning the run's execution counters as well
/// (lane/scalar pair split and the transpose-buffer byte count — the
/// only sequence bytes the batch path copies).
pub fn score_batch_simd_stats<G, SS, const L: usize>(
    scheme: &Scheme<Global, G, SS>,
    pairs: &[PairRef<'_>],
    threads: usize,
) -> (Vec<Score>, TraceStats)
where
    G: GapModel,
    SS: SimdSubst,
{
    let gap = *scheme.gap();
    let subst = *scheme.subst();
    let extent_budget = max_block_extent(&gap, &subst);
    let LaneGroups { groups, scalar_idx } = LaneGroups::<L>::build(pairs, extent_budget);

    let mut scores = vec![0 as Score; pairs.len()];
    struct Out(*mut Score);
    unsafe impl Send for Out {}
    unsafe impl Sync for Out {}
    let out = Out(scores.as_mut_ptr());
    let next_group = AtomicUsize::new(0);
    let next_scalar = AtomicUsize::new(0);
    let bytes_copied = AtomicU64::new(0);
    let threads = threads.max(1);

    {
        let out = &out;
        let groups = &groups;
        let scalar_idx = &scalar_idx;
        let next_group = &next_group;
        let next_scalar = &next_scalar;
        let bytes_copied = &bytes_copied;
        let gap = &gap;
        let subst = &subst;
        let worker = move || {
            let mut local_bytes = 0u64;
            loop {
                let g = next_group.fetch_add(1, Ordering::Relaxed);
                if g >= groups.len() {
                    break;
                }
                let lanes = &groups[g];
                let p0 = pairs[lanes[0]];
                local_bytes += ((p0.q.len() + p0.s.len()) * L) as u64;
                let results = score_lane_group::<G, SS, L>(gap, subst, pairs, lanes);
                for (l, &idx) in lanes.iter().enumerate() {
                    // SAFETY: each pair index is written exactly once.
                    unsafe { *out.0.add(idx) = results[l] };
                }
            }
            bytes_copied.fetch_add(local_bytes, Ordering::Relaxed);
            loop {
                let k = next_scalar.fetch_add(1, Ordering::Relaxed);
                if k >= scalar_idx.len() {
                    break;
                }
                let idx = scalar_idx[k];
                let p = pairs[idx];
                let score = anyseq_obs::span(Stage::Kernel, || scheme.score_codes(p.q, p.s));
                unsafe { *out.0.add(idx) = score };
            }
        };
        if threads == 1 {
            // Inline: no spawn/join for a single-thread budget (the
            // scheduler pools units at 1 thread each), and stage spans
            // land on the caller's recorder instead of anonymous
            // threads.
            worker();
        } else {
            std::thread::scope(|sc| {
                for _ in 0..threads {
                    sc.spawn(worker);
                }
            });
        }
    }
    let stats = TraceStats {
        lane_pairs: (groups.len() * L) as u64,
        scalar_pairs: scalar_idx.len() as u64,
        bytes_copied: bytes_copied.load(Ordering::Relaxed),
        ..TraceStats::default()
    };
    (scores, stats)
}

/// Scores `L` equal-dimension pairs in one vector block.
fn score_lane_group<G, SS, const L: usize>(
    gap: &G,
    subst: &SS,
    pairs: &[PairRef<'_>],
    lanes: &[usize; L],
) -> [Score; L]
where
    G: GapModel,
    SS: SimdSubst,
{
    let n = pairs[lanes[0]].q.len();
    let m = pairs[lanes[0]].s.len();
    debug_assert!(lanes
        .iter()
        .all(|&k| pairs[k].q.len() == n && pairs[k].s.len() == m));

    // Global init stripes are lane-uniform (base 0).
    let top_h = init_top_h::<Global, G>(gap, m);
    let top_e = init_top_e::<Global, G>(gap, m);
    let left_h = init_left_h::<Global, G>(gap, n, gap.open());
    let left_f = init_left_f::<G>(n);
    let mut block = BlockBorders::<L> {
        top_h: top_h.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
        top_e: top_e.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
        left_h: left_h.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
        left_f: left_f.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
    };
    // The lane transpose: the only copy of sequence bytes on this path.
    let (q_rows, s_cols) = anyseq_obs::span(Stage::Transpose, || {
        let q_rows: Vec<[u8; L]> = (0..n)
            .map(|r| std::array::from_fn(|l| pairs[lanes[l]].q[r]))
            .collect();
        let s_cols: Vec<[u8; L]> = (0..m)
            .map(|c| std::array::from_fn(|l| pairs[lanes[l]].s[c]))
            .collect();
        (q_rows, s_cols)
    });

    anyseq_obs::span(Stage::Kernel, || {
        block_kernel(gap, subst, &q_rows, &s_cols, &mut block)
    });

    std::array::from_fn(|l| from16(block.top_h[m].0[l], 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::prelude::{affine, global, linear, simple};
    use anyseq_seq::testsupport::read_pairs;
    use anyseq_seq::{BatchView, Seq};

    #[test]
    fn batch_simd_matches_scalar_linear() {
        let pairs = read_pairs(300, 3);
        let view = BatchView::from_pairs(&pairs);
        let scheme = global(linear(simple(2, -1), -1));
        let (simd, stats) = score_batch_simd_stats::<_, _, 16>(&scheme, view.refs(), 8);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(simd[k], scheme.score(q, s), "pair {k}");
        }
        assert_eq!(stats.lane_pairs + stats.scalar_pairs, pairs.len() as u64);
        assert!(
            stats.bytes_copied > 0,
            "the transpose is the one copy and must be accounted"
        );
    }

    #[test]
    fn batch_simd_matches_scalar_affine() {
        let pairs = read_pairs(300, 5);
        let view = BatchView::from_pairs(&pairs);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let simd = score_batch_simd::<_, _, 8>(&scheme, view.refs(), 4);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(simd[k], scheme.score(q, s), "pair {k}");
        }
    }

    #[test]
    fn batch_simd_handles_empty_and_tiny() {
        let scheme = global(linear(simple(2, -1), -1));
        assert!(score_batch_simd::<_, _, 8>(&scheme, &[], 4).is_empty());
        let a = Seq::from_ascii(b"ACGT").unwrap();
        let empty = Seq::new();
        let pairs = vec![(a.clone(), a.clone()), (a.clone(), empty)];
        let view = BatchView::from_pairs(&pairs);
        let out = score_batch_simd::<_, _, 8>(&scheme, view.refs(), 2);
        assert_eq!(out[0], 8);
        assert_eq!(out[1], -4);
    }

    #[test]
    fn batch_simd_mixed_lengths_bucketed() {
        // Mix several distinct dimension buckets to exercise grouping.
        let mut pairs = read_pairs(100, 7);
        let mut extra = read_pairs(50, 8);
        for (q, _) in extra.iter_mut() {
            *q = q.subseq(0..q.len().min(100));
        }
        pairs.extend(extra);
        let view = BatchView::from_pairs(&pairs);
        let scheme = global(linear(simple(2, -1), -1));
        let simd = score_batch_simd::<_, _, 16>(&scheme, view.refs(), 6);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(simd[k], scheme.score(q, s), "pair {k}");
        }
    }
}
