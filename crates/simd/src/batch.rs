//! Inter-sequence SIMD batch scoring for short reads: each vector lane
//! carries one *whole* alignment (the classic inter-sequence scheme the
//! paper uses for the NGS use case (ii), with 16-bit in-lane scores).
//!
//! Lanes must share matrix dimensions, so pairs are bucketed by
//! `(|q|, |s|)` — for Illumina-style reads the dominant bucket is
//! `(150, 150)` and lane occupancy is near-perfect. Leftovers and
//! oversized problems fall back to the scalar engine.
//!
//! Input is borrowed: a slice of [`PairRef`]s (`&[u8]` query/subject
//! codes). The only sequence bytes this module copies are the
//! lane-*transposed* row/column buffers the vector kernel needs —
//! `(|q| + |s|) × L` bytes per lane group, reported as
//! [`TraceStats::bytes_copied`] so callers can verify the pipeline
//! above stayed zero-copy.

use crate::kernel::{block_kernel_kind, from16, max_block_extent, to16, BlockBorders, SimdSubst};
use crate::lanes::I16s;
use crate::traceback::TraceStats;
use anyseq_core::kind::{AlignKind, OptRegion};
use anyseq_core::pass::{init_left_f, init_left_h, init_top_e, init_top_h};
use anyseq_core::scheme::Scheme;
use anyseq_core::score::Score;
use anyseq_core::scoring::GapModel;
use anyseq_obs::Stage;
use anyseq_seq::PairRef;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A batch split into full `L`-lane groups of equal-dimension pairs
/// plus the indices that must take the in-backend scalar path
/// (leftovers, empty sequences, pairs past the 16-bit extent budget).
/// Shared by the score and traceback paths so both fill lanes the
/// same way.
pub struct LaneGroups<const L: usize> {
    /// Input indices of each full lane group (equal `(|q|, |s|)`).
    pub groups: Vec<[usize; L]>,
    /// Input indices handled by per-pair scalar kernels.
    pub scalar_idx: Vec<usize>,
}

impl<const L: usize> LaneGroups<L> {
    /// Buckets `pairs` by matrix dimensions and cuts each bucket into
    /// full lane groups; everything else goes scalar.
    pub fn build(pairs: &[PairRef<'_>], extent_budget: usize) -> LaneGroups<L> {
        let mut buckets: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        let mut scalar_idx: Vec<usize> = Vec::new();
        for (k, p) in pairs.iter().enumerate() {
            let (n, m) = (p.q.len(), p.s.len());
            if n == 0 || m == 0 || n + m > extent_budget {
                scalar_idx.push(k);
            } else {
                buckets.entry((n, m)).or_default().push(k);
            }
        }
        let mut groups: Vec<[usize; L]> = Vec::new();
        for idx in buckets.into_values() {
            let full = idx.len() / L * L;
            for chunk in idx[..full].chunks_exact(L) {
                groups.push(std::array::from_fn(|l| chunk[l]));
            }
            scalar_idx.extend_from_slice(&idx[full..]);
        }
        LaneGroups { groups, scalar_idx }
    }
}

/// Scores a batch of independent pairs with `L`-lane SIMD and
/// `threads`-way parallelism; returns one kind-`K` score per pair, in
/// input order (bit-identical to `scheme.score`).
pub fn score_batch_simd<K, G, SS, const L: usize>(
    scheme: &Scheme<K, G, SS>,
    pairs: &[PairRef<'_>],
    threads: usize,
) -> Vec<Score>
where
    K: AlignKind,
    G: GapModel,
    SS: SimdSubst,
{
    score_batch_simd_stats::<K, G, SS, L>(scheme, pairs, threads).0
}

/// [`score_batch_simd`] returning the run's execution counters as well
/// (lane/scalar pair split and the transpose-buffer byte count — the
/// only sequence bytes the batch path copies).
pub fn score_batch_simd_stats<K, G, SS, const L: usize>(
    scheme: &Scheme<K, G, SS>,
    pairs: &[PairRef<'_>],
    threads: usize,
) -> (Vec<Score>, TraceStats)
where
    K: AlignKind,
    G: GapModel,
    SS: SimdSubst,
{
    score_batch_simd_xdrop::<K, G, SS, L>(scheme, pairs, threads, 0)
}

/// [`score_batch_simd_stats`] with opt-in X-drop early termination.
///
/// `xdrop > 0` enables per-lane retirement for non-corner kinds: a lane
/// whose current-row maximum has dropped more than `xdrop` below its
/// running best stops relaxing and reports the best it has seen (see
/// [`block_kernel_kind`]). Retired-lane counts surface as
/// [`TraceStats::xdrop_retired`]. `xdrop == 0` (and any corner-optimum
/// kind, where the score lives at `(n, m)` and early exit is
/// meaningless) runs the bit-exact path.
pub fn score_batch_simd_xdrop<K, G, SS, const L: usize>(
    scheme: &Scheme<K, G, SS>,
    pairs: &[PairRef<'_>],
    threads: usize,
    xdrop: i32,
) -> (Vec<Score>, TraceStats)
where
    K: AlignKind,
    G: GapModel,
    SS: SimdSubst,
{
    let gap = *scheme.gap();
    let subst = *scheme.subst();
    let extent_budget = max_block_extent(&gap, &subst);
    let LaneGroups { groups, scalar_idx } = LaneGroups::<L>::build(pairs, extent_budget);
    // X-drop only applies where an optimum can be frozen early; corner
    // kinds always relax the full matrix. Clamp to the i16 block budget.
    let xdrop16 = if matches!(K::OPT, OptRegion::Corner) {
        0i16
    } else {
        xdrop.clamp(0, 12_000) as i16
    };

    let mut scores = vec![0 as Score; pairs.len()];
    struct Out(*mut Score);
    unsafe impl Send for Out {}
    unsafe impl Sync for Out {}
    let out = Out(scores.as_mut_ptr());
    let next_group = AtomicUsize::new(0);
    let next_scalar = AtomicUsize::new(0);
    let bytes_copied = AtomicU64::new(0);
    let lanes_retired = AtomicU64::new(0);
    let threads = threads.max(1);

    {
        let out = &out;
        let groups = &groups;
        let scalar_idx = &scalar_idx;
        let next_group = &next_group;
        let next_scalar = &next_scalar;
        let bytes_copied = &bytes_copied;
        let lanes_retired = &lanes_retired;
        let gap = &gap;
        let subst = &subst;
        let worker = move || {
            let mut local_bytes = 0u64;
            let mut local_retired = 0u64;
            loop {
                let g = next_group.fetch_add(1, Ordering::Relaxed);
                if g >= groups.len() {
                    break;
                }
                let lanes = &groups[g];
                let p0 = pairs[lanes[0]];
                local_bytes += ((p0.q.len() + p0.s.len()) * L) as u64;
                let (results, retired) =
                    score_lane_group::<K, G, SS, L>(gap, subst, pairs, lanes, xdrop16);
                local_retired += retired.count_ones() as u64;
                for (l, &idx) in lanes.iter().enumerate() {
                    // SAFETY: each pair index is written exactly once.
                    unsafe { *out.0.add(idx) = results[l] };
                }
            }
            bytes_copied.fetch_add(local_bytes, Ordering::Relaxed);
            lanes_retired.fetch_add(local_retired, Ordering::Relaxed);
            loop {
                let k = next_scalar.fetch_add(1, Ordering::Relaxed);
                if k >= scalar_idx.len() {
                    break;
                }
                let idx = scalar_idx[k];
                let p = pairs[idx];
                let score = anyseq_obs::span(Stage::Kernel, || scheme.score_codes(p.q, p.s));
                unsafe { *out.0.add(idx) = score };
            }
        };
        if threads == 1 {
            // Inline: no spawn/join for a single-thread budget (the
            // scheduler pools units at 1 thread each), and stage spans
            // land on the caller's recorder instead of anonymous
            // threads.
            worker();
        } else {
            std::thread::scope(|sc| {
                for _ in 0..threads {
                    sc.spawn(worker);
                }
            });
        }
    }
    let stats = TraceStats {
        lane_pairs: (groups.len() * L) as u64,
        scalar_pairs: scalar_idx.len() as u64,
        bytes_copied: bytes_copied.load(Ordering::Relaxed),
        xdrop_retired: lanes_retired.load(Ordering::Relaxed),
        ..TraceStats::default()
    };
    (scores, stats)
}

/// Scores `L` equal-dimension pairs in one vector block; returns the
/// per-lane scores plus the X-drop retirement mask (0 when disabled).
fn score_lane_group<K, G, SS, const L: usize>(
    gap: &G,
    subst: &SS,
    pairs: &[PairRef<'_>],
    lanes: &[usize; L],
    xdrop: i16,
) -> ([Score; L], u32)
where
    K: AlignKind,
    G: GapModel,
    SS: SimdSubst,
{
    let n = pairs[lanes[0]].q.len();
    let m = pairs[lanes[0]].s.len();
    debug_assert!(lanes
        .iter()
        .all(|&k| pairs[k].q.len() == n && pairs[k].s.len() == m));

    // Kind `K`'s init stripes are lane-uniform (base 0).
    let top_h = init_top_h::<K, G>(gap, m);
    let top_e = init_top_e::<K, G>(gap, m);
    let left_h = init_left_h::<K, G>(gap, n, gap.open());
    let left_f = init_left_f::<G>(n);
    let mut block = BlockBorders::<L> {
        top_h: top_h.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
        top_e: top_e.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
        left_h: left_h.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
        left_f: left_f.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
    };
    // The lane transpose: the only copy of sequence bytes on this path.
    let (q_rows, s_cols) = anyseq_obs::span(Stage::Transpose, || {
        let q_rows: Vec<[u8; L]> = (0..n)
            .map(|r| std::array::from_fn(|l| pairs[lanes[l]].q[r]))
            .collect();
        let s_cols: Vec<[u8; L]> = (0..m)
            .map(|c| std::array::from_fn(|l| pairs[lanes[l]].s[c]))
            .collect();
        (q_rows, s_cols)
    });

    let opt = anyseq_obs::span(Stage::Kernel, || {
        if xdrop > 0 {
            block_kernel_kind::<K, G, SS, true, L>(gap, subst, &q_rows, &s_cols, &mut block, xdrop)
        } else {
            block_kernel_kind::<K, G, SS, false, L>(gap, subst, &q_rows, &s_cols, &mut block, 0)
        }
    });

    (
        std::array::from_fn(|l| from16(opt.best.0[l], 0)),
        opt.retired,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::prelude::{affine, global, linear, local, semiglobal, simple};
    use anyseq_seq::testsupport::read_pairs;
    use anyseq_seq::{BatchView, Seq};

    #[test]
    fn batch_simd_matches_scalar_linear() {
        let pairs = read_pairs(300, 3);
        let view = BatchView::from_pairs(&pairs);
        let scheme = global(linear(simple(2, -1), -1));
        let (simd, stats) = score_batch_simd_stats::<_, _, _, 16>(&scheme, view.refs(), 8);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(simd[k], scheme.score(q, s), "pair {k}");
        }
        assert_eq!(stats.lane_pairs + stats.scalar_pairs, pairs.len() as u64);
        assert!(
            stats.bytes_copied > 0,
            "the transpose is the one copy and must be accounted"
        );
    }

    #[test]
    fn batch_simd_matches_scalar_affine() {
        let pairs = read_pairs(300, 5);
        let view = BatchView::from_pairs(&pairs);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let simd = score_batch_simd::<_, _, _, 8>(&scheme, view.refs(), 4);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(simd[k], scheme.score(q, s), "pair {k}");
        }
    }

    #[test]
    fn batch_simd_handles_empty_and_tiny() {
        let scheme = global(linear(simple(2, -1), -1));
        assert!(score_batch_simd::<_, _, _, 8>(&scheme, &[], 4).is_empty());
        let a = Seq::from_ascii(b"ACGT").unwrap();
        let empty = Seq::new();
        let pairs = vec![(a.clone(), a.clone()), (a.clone(), empty)];
        let view = BatchView::from_pairs(&pairs);
        let out = score_batch_simd::<_, _, _, 8>(&scheme, view.refs(), 2);
        assert_eq!(out[0], 8);
        assert_eq!(out[1], -4);
    }

    #[test]
    fn batch_simd_matches_scalar_semiglobal_and_local() {
        let pairs = read_pairs(200, 11);
        let view = BatchView::from_pairs(&pairs);
        let semi = semiglobal(affine(simple(2, -3), -3, -1));
        let (out, stats) = score_batch_simd_stats::<_, _, _, 16>(&semi, view.refs(), 4);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(out[k], semi.score(q, s), "semi pair {k}");
        }
        assert!(stats.lane_pairs > 0, "lanes must fill for uniform reads");
        assert_eq!(stats.xdrop_retired, 0, "x-drop is off by default");
        let loc = local(linear(simple(2, -3), -2));
        let out = score_batch_simd::<_, _, _, 8>(&loc, view.refs(), 4);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(out[k], loc.score(q, s), "local pair {k}");
        }
    }

    #[test]
    fn xdrop_huge_threshold_exact_tiny_threshold_retires() {
        // 32 identical prefix-then-divergence pairs fill two 16-lane
        // groups exactly.
        let q = Seq::from_ascii(&[b"A".repeat(10), b"C".repeat(60)].concat()).unwrap();
        let s = Seq::from_ascii(&[b"A".repeat(10), b"G".repeat(60)].concat()).unwrap();
        let pairs: Vec<(Seq, Seq)> = (0..32).map(|_| (q.clone(), s.clone())).collect();
        let view = BatchView::from_pairs(&pairs);
        let semi = semiglobal(linear(simple(2, -3), -2));
        let exact = score_batch_simd::<_, _, _, 16>(&semi, view.refs(), 2);
        let (huge, st_huge) = score_batch_simd_xdrop::<_, _, _, 16>(&semi, view.refs(), 2, 30_000);
        assert_eq!(huge, exact, "huge X must not change results");
        assert_eq!(st_huge.xdrop_retired, 0);
        let (_tiny, st_tiny) = score_batch_simd_xdrop::<_, _, _, 16>(&semi, view.refs(), 2, 20);
        assert_eq!(st_tiny.xdrop_retired, 32, "every lane diverges hard");
        // Corner kinds ignore the knob entirely.
        let glob = global(linear(simple(2, -3), -2));
        let (g_scores, g_stats) = score_batch_simd_xdrop::<_, _, _, 16>(&semi, view.refs(), 2, 0);
        assert_eq!(g_scores, exact);
        assert_eq!(g_stats.xdrop_retired, 0);
        let (gx, gs) = score_batch_simd_xdrop::<_, _, _, 16>(&glob, view.refs(), 2, 5);
        assert_eq!(gs.xdrop_retired, 0, "corner kinds never retire");
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(gx[k], glob.score(q, s), "global pair {k}");
        }
    }

    #[test]
    fn batch_simd_mixed_lengths_bucketed() {
        // Mix several distinct dimension buckets to exercise grouping.
        let mut pairs = read_pairs(100, 7);
        let mut extra = read_pairs(50, 8);
        for (q, _) in extra.iter_mut() {
            *q = q.subseq(0..q.len().min(100));
        }
        pairs.extend(extra);
        let view = BatchView::from_pairs(&pairs);
        let scheme = global(linear(simple(2, -1), -1));
        let simd = score_batch_simd::<_, _, _, 16>(&scheme, view.refs(), 6);
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(simd[k], scheme.score(q, s), "pair {k}");
        }
    }
}
