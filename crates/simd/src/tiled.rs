//! SIMD-accelerated tiled wavefront pass: vector lanes are filled with
//! `L` independent ready tiles popped from the dynamic work queue
//! (paper §IV-A + Fig. 3: "A thread only computes a vectorized block, if
//! l work items are enqueued ... In these cases threads will compute
//! single submatrices using the scalar method").

use crate::kernel::{block_kernel, from16, max_block_extent, to16, BlockBorders, SimdSubst};
use crate::lanes::I16s;
use anyseq_core::kind::{AlignKind, Global, OptRegion};
use anyseq_core::pass::{score_pass, PassOutput};
use anyseq_core::relax::BestCell;
use anyseq_core::score::Score;
use anyseq_core::scoring::GapModel;
use anyseq_core::tile::{relax_tile, NoSink, TileIn, TileOut};
use anyseq_wavefront::borders::BorderStore;
use anyseq_wavefront::grid::{TileGrid, TileId};
use anyseq_wavefront::pass::{finalize, ParallelCfg};
use anyseq_wavefront::scheduler::run_dynamic;

/// Per-worker scratch for the SIMD compute callback.
struct Scratch<const L: usize> {
    // Per-lane i32 stripes taken from the border store.
    top: Vec<crate::HStripeBuf>,
    left: Vec<crate::VStripeBuf>,
    base: [Score; L],
    // i16 block representation.
    block: BlockBorders<L>,
    q_rows: Vec<[u8; L]>,
    s_cols: Vec<[u8; L]>,
    // Scalar fallback buffers.
    out: TileOut,
}

/// Vectorized multithreaded score-only pass for **global** alignments.
///
/// `L` is the lane count: 16 reproduces the paper's AVX2 variant
/// (16 × 16-bit = 256 bit), 32 the AVX512 variant.
pub fn simd_tiled_score_pass<G, SS, const L: usize>(
    gap: &G,
    subst: &SS,
    q: &[u8],
    s: &[u8],
    tb: Score,
    cfg: &ParallelCfg,
) -> PassOutput
where
    G: GapModel,
    SS: SimdSubst,
{
    let n = q.len();
    let m = s.len();
    if n == 0 || m == 0 || n * m < cfg.min_parallel_area {
        return score_pass::<Global, G, SS>(gap, subst, q, s, tb);
    }
    // The i16 differential budget bounds the tile extent (paper §IV-A).
    let tile = cfg.tile.min(max_block_extent(gap, subst) / 2).max(16);

    let grid = TileGrid::new(n, m, tile);
    let borders = BorderStore::init::<Global, G>(&grid, gap, tb);

    let compute = |scr: &mut Scratch<L>, tiles: &[TileId]| {
        // Full blocks of L interior-size tiles go down the vector path;
        // everything else (short batches, edge tiles) is scalar.
        let (vec_tiles, scalar_tiles): (Vec<TileId>, Vec<TileId>) = if tiles.len() == L {
            tiles.iter().partition(|t| {
                let (_, th) = grid.rows(t.ti);
                let (_, tw) = grid.cols(t.tj);
                th == tile && tw == tile
            })
        } else {
            (Vec::new(), tiles.to_vec())
        };

        if vec_tiles.len() == L {
            compute_block::<G, SS, L>(gap, subst, q, s, &grid, &borders, &vec_tiles, scr, tile);
        } else {
            for t in vec_tiles {
                compute_scalar::<G, SS>(gap, subst, q, s, &grid, &borders, t, &mut scr.out);
            }
        }
        for t in scalar_tiles {
            compute_scalar::<G, SS>(gap, subst, q, s, &grid, &borders, t, &mut scr.out);
        }
    };

    run_dynamic(
        &grid,
        cfg.threads,
        L,
        || Scratch::<L> {
            top: (0..L).map(|_| Default::default()).collect(),
            left: (0..L).map(|_| Default::default()).collect(),
            base: [0; L],
            block: BlockBorders {
                top_h: Vec::new(),
                top_e: Vec::new(),
                left_h: Vec::new(),
                left_f: Vec::new(),
            },
            q_rows: Vec::new(),
            s_cols: Vec::new(),
            out: TileOut::new(),
        },
        compute,
    );

    let (last_h, last_e) = borders.assemble_last_rows(&grid);
    finalize::<Global, G>(gap, BestCell::empty(), n, m, tb, &last_h, last_e)
}

#[allow(clippy::too_many_arguments)]
fn compute_scalar<G: GapModel, SS: SimdSubst>(
    gap: &G,
    subst: &SS,
    q: &[u8],
    s: &[u8],
    grid: &TileGrid,
    borders: &BorderStore,
    t: TileId,
    out: &mut TileOut,
) {
    let (i0, th) = grid.rows(t.ti);
    let (j0, tw) = grid.cols(t.tj);
    let mut top = crate::HStripeBuf::default();
    let mut left = crate::VStripeBuf::default();
    {
        let mut slot = borders.col[t.tj as usize].lock();
        std::mem::swap(&mut top.h, &mut slot.h);
        std::mem::swap(&mut top.e, &mut slot.e);
    }
    {
        let mut slot = borders.row[t.ti as usize].lock();
        std::mem::swap(&mut left.h, &mut slot.h);
        std::mem::swap(&mut left.f, &mut slot.f);
    }
    relax_tile::<Global, G, SS, _>(
        gap,
        subst,
        &q[i0 - 1..i0 - 1 + th],
        &s[j0 - 1..j0 - 1 + tw],
        (i0, j0),
        (grid.n, grid.m),
        TileIn {
            top_h: &top.h,
            top_e: &top.e,
            left_h: &left.h,
            left_f: &left.f,
        },
        out,
        &mut NoSink,
    );
    {
        let mut slot = borders.col[t.tj as usize].lock();
        std::mem::swap(&mut slot.h, &mut out.bot_h);
        std::mem::swap(&mut slot.e, &mut out.bot_e);
    }
    {
        let mut slot = borders.row[t.ti as usize].lock();
        std::mem::swap(&mut slot.h, &mut out.right_h);
        std::mem::swap(&mut slot.f, &mut out.right_f);
    }
}

#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)]
fn compute_block<G: GapModel, SS: SimdSubst, const L: usize>(
    gap: &G,
    subst: &SS,
    q: &[u8],
    s: &[u8],
    grid: &TileGrid,
    borders: &BorderStore,
    tiles: &[TileId],
    scr: &mut Scratch<L>,
    tile: usize,
) {
    debug_assert_eq!(tiles.len(), L);
    // 1. Take all input stripes and record the per-lane rebase constant
    //    (the incoming corner H value).
    for (l, t) in tiles.iter().enumerate() {
        {
            let mut slot = borders.col[t.tj as usize].lock();
            std::mem::swap(&mut scr.top[l].h, &mut slot.h);
            std::mem::swap(&mut scr.top[l].e, &mut slot.e);
        }
        {
            let mut slot = borders.row[t.ti as usize].lock();
            std::mem::swap(&mut scr.left[l].h, &mut slot.h);
            std::mem::swap(&mut scr.left[l].f, &mut slot.f);
        }
        scr.base[l] = scr.top[l].h[0];
    }

    // 2. Convert to the interleaved i16 block representation.
    let w = tile;
    let h = tile;
    scr.block.top_h.clear();
    scr.block.top_h.extend((0..=w).map(|c| {
        let mut v = [0i16; L];
        for l in 0..L {
            v[l] = to16(scr.top[l].h[c], scr.base[l]);
        }
        I16s(v)
    }));
    scr.block.top_e.clear();
    if G::AFFINE {
        scr.block.top_e.extend((0..w).map(|c| {
            let mut v = [0i16; L];
            for l in 0..L {
                v[l] = to16(scr.top[l].e[c], scr.base[l]);
            }
            I16s(v)
        }));
    }
    scr.block.left_h.clear();
    scr.block.left_h.extend((0..h).map(|r| {
        let mut v = [0i16; L];
        for l in 0..L {
            v[l] = to16(scr.left[l].h[r], scr.base[l]);
        }
        I16s(v)
    }));
    scr.block.left_f.clear();
    if G::AFFINE {
        scr.block.left_f.extend((0..h).map(|r| {
            let mut v = [0i16; L];
            for l in 0..L {
                v[l] = to16(scr.left[l].f[r], scr.base[l]);
            }
            I16s(v)
        }));
    }
    scr.q_rows.clear();
    scr.q_rows.extend((0..h).map(|r| {
        std::array::from_fn(|l| {
            let (i0, _) = grid.rows(tiles[l].ti);
            q[i0 - 1 + r]
        })
    }));
    scr.s_cols.clear();
    scr.s_cols.extend((0..w).map(|c| {
        std::array::from_fn(|l| {
            let (j0, _) = grid.cols(tiles[l].tj);
            s[j0 - 1 + c]
        })
    }));

    // 3. Vector relaxation.
    block_kernel(gap, subst, &scr.q_rows, &scr.s_cols, &mut scr.block);

    // 4. Convert the output stripes back and publish them.
    for (l, t) in tiles.iter().enumerate() {
        let base = scr.base[l];
        for c in 0..=w {
            scr.top[l].h[c] = from16(scr.block.top_h[c].0[l], base);
        }
        if G::AFFINE {
            for c in 0..w {
                scr.top[l].e[c] = from16(scr.block.top_e[c].0[l], base);
            }
        }
        for r in 0..h {
            scr.left[l].h[r] = from16(scr.block.left_h[r].0[l], base);
        }
        if G::AFFINE {
            for r in 0..h {
                scr.left[l].f[r] = from16(scr.block.left_f[r].0[l], base);
            }
        }
        {
            let mut slot = borders.col[t.tj as usize].lock();
            std::mem::swap(&mut slot.h, &mut scr.top[l].h);
            std::mem::swap(&mut slot.e, &mut scr.top[l].e);
        }
        {
            let mut slot = borders.row[t.ti as usize].lock();
            std::mem::swap(&mut slot.h, &mut scr.left[l].h);
            std::mem::swap(&mut slot.f, &mut scr.left[l].f);
        }
    }
}

/// Pass provider combining the SIMD global pass with scalar-parallel
/// passes for the endpoint-locating kinds, pluggable into the Hirschberg
/// recursion.
#[derive(Debug, Clone, Copy)]
pub struct SimdPass<const L: usize> {
    /// Parallel execution parameters.
    pub cfg: ParallelCfg,
}

impl<G, SS, const L: usize> anyseq_core::hirschberg::HalfPass<G, SS> for SimdPass<L>
where
    G: GapModel,
    SS: SimdSubst,
{
    fn pass<K: AlignKind>(&self, gap: &G, subst: &SS, q: &[u8], s: &[u8], tb: Score) -> PassOutput {
        if matches!(K::OPT, OptRegion::Corner) {
            simd_tiled_score_pass::<G, SS, L>(gap, subst, q, s, tb, &self.cfg)
        } else {
            anyseq_wavefront::pass::tiled_score_pass::<K, G, SS>(gap, subst, q, s, tb, &self.cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::scoring::{simple, AffineGap, LinearGap};
    use anyseq_seq::genome::GenomeSim;

    fn cfg(threads: usize, tile: usize) -> ParallelCfg {
        ParallelCfg {
            threads,
            tile,
            min_parallel_area: 0,
            static_schedule: false,
            shard_cells: 0,
        }
    }

    #[test]
    fn simd_pass_matches_scalar_linear() {
        let mut sim = GenomeSim::new(21);
        let q = sim.generate(4000);
        let s = sim.mutate(&q, 0.07);
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let scalar = score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open());
        let out = simd_tiled_score_pass::<_, _, 8>(
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            gap.open(),
            &cfg(4, 64),
        );
        assert_eq!(out.score, scalar.score);
        assert_eq!(out.last_h, scalar.last_h);
    }

    #[test]
    fn simd_pass_matches_scalar_affine_various_lanes() {
        let mut sim = GenomeSim::new(23);
        let q = sim.generate(3000);
        let s = sim.mutate(&q, 0.12);
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let scalar = score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open());
        macro_rules! lanes {
            ($l:literal) => {{
                let out = simd_tiled_score_pass::<_, _, $l>(
                    &gap,
                    &subst,
                    q.codes(),
                    s.codes(),
                    gap.open(),
                    &cfg(6, 96),
                );
                assert_eq!(out.score, scalar.score, "L = {}", $l);
                assert_eq!(out.last_h, scalar.last_h, "L = {}", $l);
                assert_eq!(out.last_e, scalar.last_e, "L = {}", $l);
            }};
        }
        lanes!(4);
        lanes!(8);
        lanes!(16);
        lanes!(32);
    }

    #[test]
    fn simd_respects_hirschberg_tb() {
        let mut sim = GenomeSim::new(29);
        let q = sim.generate(1200);
        let s = sim.generate(900);
        let gap = AffineGap {
            open: -4,
            extend: -1,
        };
        let subst = simple(2, -1);
        let scalar = score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), 0);
        let out =
            simd_tiled_score_pass::<_, _, 8>(&gap, &subst, q.codes(), s.codes(), 0, &cfg(3, 64));
        assert_eq!(out.score, scalar.score);
        assert_eq!(out.last_e, scalar.last_e);
    }

    #[test]
    fn matrix_subst_gather_path() {
        use anyseq_core::scoring::MatrixSubst;
        let mut sim = GenomeSim::new(31);
        let q = sim.generate(2000);
        let s = sim.mutate(&q, 0.05);
        let gap = LinearGap { gap: -1 };
        let subst = MatrixSubst::dna(2, -1, -1);
        let scalar = score_pass::<Global, _, _>(&gap, &subst, q.codes(), s.codes(), gap.open());
        let out = simd_tiled_score_pass::<_, _, 16>(
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            gap.open(),
            &cfg(4, 80),
        );
        assert_eq!(out.score, scalar.score);
    }
}
