//! # anyseq-simd — portable SIMD kernels with 16-bit differential scores
//!
//! Reproduces the paper's CPU vectorization (§IV-A) without
//! architecture-specific intrinsics: lane-array arithmetic autovectorizes
//! under `-C target-cpu=native` (L = 16 ⇒ AVX2, L = 32 ⇒ AVX512, 16-bit
//! lanes). Two execution shapes:
//!
//! * [`simd_tiled_score_pass`] — long-genome intra-sequence: vector lanes
//!   are filled with independent tiles popped from the dynamic wavefront
//!   queue (paper Fig. 3), scalar fallback when fewer than `L` are ready,
//! * [`score_batch_simd`] — short-read inter-sequence: one whole
//!   alignment per lane, bucketed by matrix dimensions,
//! * [`align_batch_simd`] — inter-sequence with full tracebacks: a
//!   banded DP records 2 packed direction bits per lane per cell
//!   (plus affine extend bits), the band widens adaptively until each
//!   lane's corner matches its exact score, and lanes decode into
//!   per-pair CIGARs ([`traceback`]).
//!
//! Scores inside a block are 16-bit *differences to the block's incoming
//! corner* (paper: "only differences to the global score are relevant"),
//! with the block extent bounded by [`kernel::max_block_extent`].

pub mod batch;
pub mod kernel;
pub mod lanes;
pub mod tiled;
pub mod traceback;

pub use batch::{score_batch_simd, score_batch_simd_stats, score_batch_simd_xdrop, LaneGroups};
pub use kernel::{block_kernel_kind, max_block_extent, BlockBorders, KernelOpt, SimdSubst, SENT16};
pub use lanes::I16s;
pub use tiled::{simd_tiled_score_pass, SimdPass};
pub use traceback::{align_batch_simd, BandCfg, TraceStats};

// Internal aliases for the stripe buffers shared with the wavefront
// border store.
pub(crate) use anyseq_wavefront::borders::HStripe as HStripeBuf;
pub(crate) use anyseq_wavefront::borders::VStripe as VStripeBuf;

/// Lane count matching AVX2 (256-bit registers of 16-bit scores).
pub const LANES_AVX2: usize = 16;
/// Lane count matching AVX512 (512-bit registers of 16-bit scores).
pub const LANES_AVX512: usize = 32;
