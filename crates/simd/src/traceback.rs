//! Lane-packed banded traceback for the inter-sequence SIMD backend.
//!
//! The score path ([`crate::batch`]) keeps one whole alignment per
//! 16-bit vector lane; this module extends that shape to full
//! tracebacks so a short-read batch can produce CIGARs without ever
//! leaving the vector unit. Three ideas combine:
//!
//! * **Packed per-lane direction store** — each banded DP cell records
//!   2 direction bits per lane (`up`/`left` set ⇒ gap, both clear ⇒
//!   diagonal) plus, for affine schemes, one `E`-extend and one
//!   `F`-extend bit. Bits for all lanes of one cell live in a single
//!   `u32` bit-plane, so the store costs 4 `u32`s per band cell
//!   regardless of lane count (L ≤ 32).
//! * **Adaptive band** — directions are only recorded inside a
//!   diagonal band `j − i ∈ [dlo, dhi]` around the alignment corridor.
//!   The group's banded corner score is checked lane-by-lane against
//!   the exact score from the full-width score kernel; any mismatch
//!   means a lane's optimal path escaped the band, and the group is
//!   re-run with the band width doubled (up to [`BandCfg::max`]).
//!   Lanes that still overflow fall back to the scalar
//!   `Scheme::align` — bit-exactness is never traded for speed.
//! * **Exactness by construction** — a lane is only decoded when its
//!   banded corner equals the exact score, so the decoded path
//!   realizes precisely that score and the CIGAR replays to it
//!   (`Alignment::validate` enforces this in the cross-engine suite).
//!
//! Tie-breaking prefers diagonal over `E` (vertical) over `F`
//! (horizontal), and gap *extension* over gap *open* on equal values.
//! The latter is what keeps affine CIGARs consistent: an open step is
//! only ever taken when it is strictly better, which (with
//! `open ≤ 0`) implies the cell above/left is not itself gap-preferring,
//! so two DP gap runs can never silently merge into one CIGAR run.

use crate::batch::LaneGroups;
use crate::kernel::{
    block_kernel_kind, from16, max_block_extent, to16, BlockBorders, SimdSubst, SENT16,
};
use crate::lanes::I16s;
use anyseq_core::alignment::{AlignOp, Alignment};
use anyseq_core::kind::{AlignKind, OptRegion};
use anyseq_core::pass::{init_left_f, init_left_h, init_top_e, init_top_h};
use anyseq_core::scheme::Scheme;
use anyseq_core::score::Score;
use anyseq_core::scoring::GapModel;
use anyseq_obs::Stage;
use anyseq_seq::PairRef;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Adaptive-band tuning for the SIMD traceback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandCfg {
    /// Initial band half-width (diagonals each side of the corridor).
    pub initial: usize,
    /// Maximum half-width before a lane falls back to scalar traceback.
    pub max: usize,
}

impl Default for BandCfg {
    fn default() -> BandCfg {
        // 16 diagonals absorb Illumina-profile indels outright; 256
        // saturates a whole short-read matrix, so overflow fallbacks
        // only occur for long, structurally divergent pairs.
        BandCfg {
            initial: 16,
            max: 256,
        }
    }
}

/// Execution counters for one [`align_batch_simd`] run — the
/// band-width/overflow telemetry the engine layer threads into
/// `BatchStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Pairs aligned inside full SIMD lane groups.
    pub lane_pairs: u64,
    /// Leftover/oversized pairs aligned by the in-backend scalar path.
    pub scalar_pairs: u64,
    /// Banded passes that were re-run with a doubled band width.
    pub band_widenings: u64,
    /// Pairs whose optimal path escaped the maximum band and were
    /// rescued by scalar traceback.
    pub band_overflows: u64,
    /// Vector DP cells relaxed across all banded passes (retries
    /// included) — `rows × band width × lanes` per pass.
    pub band_cells: u64,
    /// Sequence bytes copied into lane-transposed row/column buffers —
    /// `(|q| + |s|) × L` per lane group, the *only* sequence copy on
    /// the batch path (everything above hands borrowed `PairRef`s
    /// through). Scalar-path pairs copy nothing.
    pub bytes_copied: u64,
    /// Widest band (in diagonals) any lane group ended up using.
    /// Direct-API telemetry only: the engine's additive
    /// `drain_counters` channel cannot carry max semantics, so this
    /// field intentionally does not flow into `BatchStats::counters`.
    pub max_band: u64,
    /// Lanes retired early by X-drop on the score path (always 0 when
    /// the knob is off or the kind is corner-optimum; the alignment
    /// path never retires — tracebacks stay exact).
    pub xdrop_retired: u64,
}

impl TraceStats {
    /// Accumulates another run's counters (sums; `max_band` by max).
    pub fn merge(&mut self, other: &TraceStats) {
        self.lane_pairs += other.lane_pairs;
        self.scalar_pairs += other.scalar_pairs;
        self.band_widenings += other.band_widenings;
        self.band_overflows += other.band_overflows;
        self.band_cells += other.band_cells;
        self.bytes_copied += other.bytes_copied;
        self.max_band = self.max_band.max(other.max_band);
        self.xdrop_retired += other.xdrop_retired;
    }
}

/// Packed per-lane direction bit-planes over the band cells of one
/// lane group: index `(i − 1) · band_width + p` for DP row `i ∈ 1..=n`
/// and band position `p` (diagonal `j − i = dlo + p`).
struct DirStore {
    /// Lane bit set ⇒ `H` came from `E` (vertical gap wins).
    up: Vec<u32>,
    /// Lane bit set ⇒ `H` came from `F` (horizontal gap wins).
    left: Vec<u32>,
    /// Lane bit set ⇒ `E` extended (else it opened). Affine only.
    e_ext: Vec<u32>,
    /// Lane bit set ⇒ `F` extended (else it opened). Affine only.
    f_ext: Vec<u32>,
    /// Lane bit set ⇒ the ν = 0 clamp fired (`H` would have gone
    /// negative): a local path *starts* here. `NU_ZERO` kinds only.
    stop: Vec<u32>,
}

impl DirStore {
    fn new(cells: usize, affine: bool, nu_zero: bool) -> DirStore {
        DirStore {
            up: vec![0; cells],
            left: vec![0; cells],
            e_ext: if affine { vec![0; cells] } else { Vec::new() },
            f_ext: if affine { vec![0; cells] } else { Vec::new() },
            stop: if nu_zero { vec![0; cells] } else { Vec::new() },
        }
    }
}

/// The diagonal band `j − i ∈ [dlo, dhi]` for an `n × m` problem at
/// half-width `w`, clamped to the matrix.
fn band_range(n: usize, m: usize, w: usize) -> (isize, isize) {
    let (n, m, w) = (n as isize, m as isize, w as isize);
    let skew = m - n;
    let dlo = (skew.min(0) - w).max(-n);
    let dhi = (skew.max(0) + w).min(m);
    (dlo, dhi)
}

/// Per-lane banded optimum: best value plus the 1-based DP cell it was
/// attained at (lane positions fit i16 — the extent budget caps n, m).
struct BandedOpt<const L: usize> {
    best: I16s<L>,
    bi: I16s<L>,
    bj: I16s<L>,
}

impl<const L: usize> BandedOpt<L> {
    /// Strict-greater candidate update at cell `(i, j)`. Candidates
    /// arrive in row-major order (seeds first), so first-max-wins
    /// reproduces the scalar `BestCell` tie-break: the smallest
    /// `(i, j)` among equal scores.
    #[inline(always)]
    fn update(&mut self, val: I16s<L>, i: usize, j: usize) {
        let better = val.gt_mask(self.best);
        self.best = val.blend(better, self.best);
        self.bi = I16s::splat(i as i16).blend(better, self.bi);
        self.bj = I16s::splat(j as i16).blend(better, self.bj);
    }
}

/// Relaxes one lane group over the band, recording packed directions.
/// Returns the per-lane kind-`K` optimum (differential base 0) and the
/// cell where it is attained.
///
/// Cells outside the band (or the matrix) read as the saturating
/// sentinel, exactly like the full-width kernel's −∞ stripes, so a
/// path that would profit from leaving the band simply scores lower
/// than the exact optimum — which the caller detects by comparison.
#[allow(clippy::too_many_arguments)]
fn banded_group_kernel<K, G, SS, const L: usize>(
    gap: &G,
    subst: &SS,
    q_rows: &[[u8; L]],
    s_cols: &[[u8; L]],
    dlo: isize,
    dhi: isize,
    store: &mut DirStore,
) -> BandedOpt<L>
where
    K: AlignKind,
    G: GapModel,
    SS: SimdSubst,
{
    let n = q_rows.len();
    let m = s_cols.len();
    let bw = (dhi - dlo + 1) as usize;
    let sent = I16s::<L>::splat(SENT16);
    let ext = gap.extend() as i16;
    let openext = (gap.open() + gap.extend()) as i16;

    // Lane-uniform kind-`K` init stripes (differential base 0).
    let top_h = init_top_h::<K, G>(gap, m);
    let top_e = init_top_e::<K, G>(gap, m);
    let left_h = init_left_h::<K, G>(gap, n, gap.open());
    let left_f = init_left_f::<G>(n);
    debug_assert!(left_f.iter().all(|&v| v <= SENT16 as Score));

    // Optimum seeds, in `BestCell` candidate order: border kinds can
    // end on the init stripes at (0, m) — the (n, 0) seed arrives in
    // row-major order below — and anywhere kinds always have the empty
    // alignment at the origin.
    let mut opt = match K::OPT {
        OptRegion::Corner => BandedOpt {
            best: sent,
            bi: I16s::splat(n as i16),
            bj: I16s::splat(m as i16),
        },
        OptRegion::Border => BandedOpt {
            best: I16s::splat(to16(top_h[m], 0)),
            bi: I16s::splat(0),
            bj: I16s::splat(m as i16),
        },
        OptRegion::Anywhere => BandedOpt {
            best: I16s::splat(0),
            bi: I16s::splat(0),
            bj: I16s::splat(0),
        },
    };

    // Row 0: band position p holds column j = dlo + p.
    let mut h = vec![sent; bw];
    let mut e = vec![sent; bw];
    for p in 0..bw {
        let j = dlo + p as isize;
        if (0..=m as isize).contains(&j) {
            h[p] = I16s::splat(to16(top_h[j as usize], 0));
            if G::AFFINE && j >= 1 {
                e[p] = I16s::splat(to16(top_e[j as usize - 1], 0));
            }
        }
    }

    for i in 1..=n {
        let qc = &q_rows[i - 1];
        let row_base = (i - 1) * bw;
        let mut f = sent;
        // In the sliding band layout, position p at row i is column
        // j = i + dlo + p; relative to row i−1 the same p is the
        // diagonal neighbour, p+1 is the vertical neighbour and the
        // freshly written p−1 is the horizontal neighbour.
        for p in 0..bw {
            let j = i as isize + dlo + p as isize;
            if j < 0 || j > m as isize {
                h[p] = sent;
                if G::AFFINE {
                    e[p] = sent;
                }
                continue;
            }
            if j == 0 {
                h[p] = I16s::splat(to16(left_h[i - 1], 0));
                if G::AFFINE {
                    e[p] = sent;
                }
                f = sent;
                // The (n, 0) border seed — skipping all of s.
                if matches!(K::OPT, OptRegion::Border) && i == n {
                    opt.update(h[p], n, 0);
                }
                continue;
            }
            let j = j as usize;
            let diag = h[p];
            let up = if p + 1 < bw { h[p + 1] } else { sent };
            let left = if p > 0 { h[p - 1] } else { sent };

            let (ecur, e_ext_mask) = if G::AFFINE {
                let extend = if p + 1 < bw { e[p + 1] } else { sent }.sat_adds(ext);
                let open = up.sat_adds(openext);
                (extend.max(open), extend.ge_mask(open))
            } else {
                (up.sat_adds(ext), 0)
            };
            let (fcur, f_ext_mask) = if G::AFFINE {
                let extend = f.sat_adds(ext);
                let open = left.sat_adds(openext);
                (extend.max(open), extend.ge_mask(open))
            } else {
                (left.sat_adds(ext), 0)
            };
            let dval = diag.sat_add(subst.lanes_score(qc, &s_cols[j - 1]));
            let mut hval = dval.max(ecur).max(fcur);

            // Direction masks come from the raw (pre-clamp) value: a
            // clamped cell's directions are dead — its `stop` bit makes
            // the decoder end the path there instead of reading them.
            let diag_mask = dval.eq_mask(hval);
            let up_mask = ecur.eq_mask(hval) & !diag_mask;
            let left_mask = fcur.eq_mask(hval) & !diag_mask & !up_mask;
            store.up[row_base + p] = up_mask;
            store.left[row_base + p] = left_mask;
            if K::NU_ZERO {
                store.stop[row_base + p] = I16s::splat(0).gt_mask(hval);
                hval = hval.maxs(0);
            }
            if G::AFFINE {
                store.e_ext[row_base + p] = e_ext_mask;
                store.f_ext[row_base + p] = f_ext_mask;
                e[p] = ecur;
            }
            f = fcur;
            h[p] = hval;

            match K::OPT {
                OptRegion::Corner => {}
                OptRegion::Border => {
                    if j == m || i == n {
                        opt.update(hval, i, j);
                    }
                }
                OptRegion::Anywhere => opt.update(hval, i, j),
            }
        }
    }

    if matches!(K::OPT, OptRegion::Corner) {
        let corner = (m as isize - n as isize - dlo) as usize;
        opt.best = h[corner];
    }
    opt
}

/// Walks one lane's packed directions from the end cell `(i_e, j_e)`
/// back to the path's start, emitting ops front-to-back after the
/// final reverse. Returns the ops plus the 0-based `(q_start, s_start)`
/// where the path begins.
///
/// `free_begin` kinds end the walk at the first border touch (the init
/// stripes are free); anchored kinds pad the remaining edge distance
/// with one gap run. `nu_zero` kinds additionally end the walk at the
/// first cell whose `stop` bit is set — the ν = 0 clamp restarted the
/// path there, so its recorded directions are dead.
#[allow(clippy::too_many_arguments)] // one DP coordinate frame, one call site
fn decode_lane(
    store: &DirStore,
    end: (usize, usize),
    dlo: isize,
    bw: usize,
    lane: usize,
    q: &[u8],
    s: &[u8],
    affine: bool,
    free_begin: bool,
    nu_zero: bool,
) -> (Vec<AlignOp>, usize, usize) {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        M,
        E,
        F,
    }
    let bit = 1u32 << lane;
    let (mut i, mut j) = end;
    let mut ops = Vec::with_capacity(i + j);
    let mut st = St::M;
    while i > 0 || j > 0 {
        // Boundary stripes carry no directions. For anchored kinds the
        // rest of the path runs along the matrix edge as one gap run
        // (its score is the init stripe's, exactly `gap(len)`); for
        // free-begin kinds the stripe is free and the path ends here.
        if i == 0 {
            if !free_begin {
                ops.extend(std::iter::repeat_n(AlignOp::GapQ, j));
                j = 0;
            }
            break;
        }
        if j == 0 {
            if !free_begin {
                ops.extend(std::iter::repeat_n(AlignOp::GapS, i));
                i = 0;
            }
            break;
        }
        let idx = (i - 1) * bw + (j as isize - i as isize - dlo) as usize;
        match st {
            St::M => {
                if nu_zero && store.stop[idx] & bit != 0 {
                    break;
                }
                if store.up[idx] & bit != 0 {
                    if affine {
                        st = St::E;
                    } else {
                        ops.push(AlignOp::GapS);
                        i -= 1;
                    }
                } else if store.left[idx] & bit != 0 {
                    if affine {
                        st = St::F;
                    } else {
                        ops.push(AlignOp::GapQ);
                        j -= 1;
                    }
                } else {
                    ops.push(if q[i - 1] == s[j - 1] {
                        AlignOp::Match
                    } else {
                        AlignOp::Mismatch
                    });
                    i -= 1;
                    j -= 1;
                }
            }
            St::E => {
                ops.push(AlignOp::GapS);
                if store.e_ext[idx] & bit == 0 {
                    st = St::M;
                }
                i -= 1;
            }
            St::F => {
                ops.push(AlignOp::GapQ);
                if store.f_ext[idx] & bit == 0 {
                    st = St::M;
                }
                j -= 1;
            }
        }
    }
    ops.reverse();
    (ops, i, j)
}

/// Aligns `L` equal-dimension pairs in one banded vector pass,
/// widening the band until every lane's corner matches its exact
/// score. Returns `None` for lanes that still overflow at
/// [`BandCfg::max`] (the caller rescues those with scalar traceback).
fn align_lane_group<K, G, SS, const L: usize>(
    gap: &G,
    subst: &SS,
    pairs: &[PairRef<'_>],
    lanes: &[usize; L],
    band: BandCfg,
    stats: &mut TraceStats,
) -> [Option<Alignment>; L]
where
    K: AlignKind,
    G: GapModel,
    SS: SimdSubst,
{
    let n = pairs[lanes[0]].q.len();
    let m = pairs[lanes[0]].s.len();
    debug_assert!(lanes
        .iter()
        .all(|&k| pairs[k].q.len() == n && pairs[k].s.len() == m));

    // The lane transpose: the only sequence-byte copy on this path
    // (built once per group; band retries reuse it).
    stats.bytes_copied += ((n + m) * L) as u64;
    let (q_rows, s_cols) = anyseq_obs::span(Stage::Transpose, || {
        let q_rows: Vec<[u8; L]> = (0..n)
            .map(|r| std::array::from_fn(|l| pairs[lanes[l]].q[r]))
            .collect();
        let s_cols: Vec<[u8; L]> = (0..m)
            .map(|c| std::array::from_fn(|l| pairs[lanes[l]].s[c]))
            .collect();
        (q_rows, s_cols)
    });

    // Exact kind-`K` optima from the full-width score kernel: the
    // oracle every banded lane must reproduce before it is decoded.
    let top_h = init_top_h::<K, G>(gap, m);
    let top_e = init_top_e::<K, G>(gap, m);
    let left_h = init_left_h::<K, G>(gap, n, gap.open());
    let left_f = init_left_f::<G>(n);
    let mut borders = BlockBorders::<L> {
        top_h: top_h.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
        top_e: top_e.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
        left_h: left_h.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
        left_f: left_f.iter().map(|&v| I16s::splat(to16(v, 0))).collect(),
    };
    let exact = anyseq_obs::span(Stage::Kernel, || {
        block_kernel_kind::<K, G, SS, false, L>(gap, subst, &q_rows, &s_cols, &mut borders, 0)
    })
    .best;

    let mut w = band.initial.max(1);
    loop {
        let (dlo, dhi) = band_range(n, m, w);
        let bw = (dhi - dlo + 1) as usize;
        let mut store = DirStore::new(n * bw, G::AFFINE, K::NU_ZERO);
        let banded = anyseq_obs::span(Stage::Kernel, || {
            banded_group_kernel::<K, G, SS, L>(gap, subst, &q_rows, &s_cols, dlo, dhi, &mut store)
        });
        stats.band_cells += (n * bw * L) as u64;
        stats.max_band = stats.max_band.max(bw as u64);

        let in_band = banded.best.eq_mask(exact);
        let full_matrix = dlo <= -(n as isize) && dhi >= m as isize;
        let all = if L == 32 { u32::MAX } else { (1u32 << L) - 1 };
        if in_band & all == all || full_matrix || w >= band.max {
            debug_assert!(!full_matrix || in_band & all == all);
            return anyseq_obs::span(Stage::Traceback, || {
                std::array::from_fn(|l| {
                    if in_band & (1 << l) == 0 {
                        stats.band_overflows += 1;
                        return None;
                    }
                    stats.lane_pairs += 1;
                    let p = pairs[lanes[l]];
                    let end = (banded.bi.0[l] as usize, banded.bj.0[l] as usize);
                    let (ops, q_start, s_start) = decode_lane(
                        &store,
                        end,
                        dlo,
                        bw,
                        l,
                        p.q,
                        p.s,
                        G::AFFINE,
                        K::FREE_BEGIN,
                        K::NU_ZERO,
                    );
                    Some(Alignment {
                        score: from16(exact.0[l], 0),
                        ops,
                        q_start,
                        q_end: end.0,
                        s_start,
                        s_end: end.1,
                    })
                })
            });
        }
        stats.band_widenings += 1;
        w = (w * 2).min(band.max);
    }
}

/// Aligns a batch of independent pairs with `L`-lane SIMD banded
/// traceback and `threads`-way parallelism; returns one kind-`K`
/// [`Alignment`] per pair, in input order, plus the run's band
/// telemetry. Scores are bit-identical to `scheme.align`; CIGARs are
/// guaranteed to replay to that score (ties may be broken differently
/// than the scalar Hirschberg traceback). X-drop never applies here —
/// tracebacks are always exact.
///
/// Pairs that cannot ride a full lane group (leftovers, empty or
/// oversized sequences) and lanes whose optimal path escapes the
/// maximum band are aligned by the scalar `Scheme::align` inside this
/// call — the result is complete either way.
pub fn align_batch_simd<K, G, SS, const L: usize>(
    scheme: &Scheme<K, G, SS>,
    pairs: &[PairRef<'_>],
    threads: usize,
    band: BandCfg,
) -> (Vec<Alignment>, TraceStats)
where
    K: AlignKind,
    G: GapModel,
    SS: SimdSubst,
{
    let gap = *scheme.gap();
    let subst = *scheme.subst();
    let extent_budget = max_block_extent(&gap, &subst);
    let LaneGroups { groups, scalar_idx } = LaneGroups::<L>::build(pairs, extent_budget);

    let mut results: Vec<Alignment> = vec![Alignment::empty(0); pairs.len()];
    struct Out(*mut Alignment);
    unsafe impl Send for Out {}
    unsafe impl Sync for Out {}
    let out = Out(results.as_mut_ptr());
    let next_group = AtomicUsize::new(0);
    let next_scalar = AtomicUsize::new(0);
    let threads = threads.max(1);
    let total = Mutex::new(TraceStats::default());

    {
        let out = &out;
        let groups = &groups;
        let scalar_idx = &scalar_idx;
        let next_group = &next_group;
        let next_scalar = &next_scalar;
        let total = &total;
        let gap = &gap;
        let subst = &subst;
        let worker = move || {
            let mut local = TraceStats::default();
            loop {
                let g = next_group.fetch_add(1, Ordering::Relaxed);
                if g >= groups.len() {
                    break;
                }
                let lanes = &groups[g];
                let alns =
                    align_lane_group::<K, G, SS, L>(gap, subst, pairs, lanes, band, &mut local);
                for (l, aln) in alns.into_iter().enumerate() {
                    let idx = lanes[l];
                    let aln = aln.unwrap_or_else(|| {
                        // Band overflow: scalar rescue for this
                        // lane only (already counted).
                        let p = pairs[idx];
                        anyseq_obs::span(Stage::Traceback, || scheme.align_codes(p.q, p.s))
                    });
                    // SAFETY: each pair index is written exactly once.
                    unsafe { *out.0.add(idx) = aln };
                }
            }
            loop {
                let k = next_scalar.fetch_add(1, Ordering::Relaxed);
                if k >= scalar_idx.len() {
                    break;
                }
                let idx = scalar_idx[k];
                let p = pairs[idx];
                local.scalar_pairs += 1;
                // SAFETY: scalar indices are disjoint from groups.
                unsafe {
                    *out.0.add(idx) =
                        anyseq_obs::span(Stage::Traceback, || scheme.align_codes(p.q, p.s))
                };
            }
            total.lock().unwrap().merge(&local);
        };
        if threads == 1 {
            // Inline: no spawn/join for a single-thread budget (the
            // scheduler pools units at 1 thread each), and stage spans
            // land on the caller's recorder instead of anonymous
            // threads.
            worker();
        } else {
            std::thread::scope(|sc| {
                for _ in 0..threads {
                    sc.spawn(worker);
                }
            });
        }
    }
    let stats = *total.lock().unwrap();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::prelude::{affine, global, linear, local, semiglobal, simple};
    use anyseq_seq::genome::GenomeSim;
    use anyseq_seq::testsupport::read_pairs;
    use anyseq_seq::{BatchView, Seq};

    /// Runs the traceback over a borrowed view of owned pairs.
    fn run<K: AlignKind, G: GapModel, SS: SimdSubst, const L: usize>(
        scheme: &Scheme<K, G, SS>,
        pairs: &[(Seq, Seq)],
        threads: usize,
        band: BandCfg,
    ) -> (Vec<Alignment>, TraceStats) {
        let view = BatchView::from_pairs(pairs);
        align_batch_simd::<K, G, SS, L>(scheme, view.refs(), threads, band)
    }

    fn check_all<K: AlignKind, G: GapModel, SS: SimdSubst>(
        scheme: &Scheme<K, G, SS>,
        pairs: &[(Seq, Seq)],
        alns: &[Alignment],
    ) {
        for (k, (q, s)) in pairs.iter().enumerate() {
            assert_eq!(alns[k].score, scheme.score(q, s), "pair {k} score");
            alns[k]
                .validate::<K, _, _>(q, s, scheme.gap(), scheme.subst())
                .unwrap_or_else(|e| panic!("pair {k}: {e}"));
        }
    }

    #[test]
    fn banded_traceback_matches_scalar_linear() {
        let pairs = read_pairs(300, 3);
        let scheme = global(linear(simple(2, -1), -1));
        let (alns, stats) = run::<_, _, _, 16>(&scheme, &pairs, 8, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
        assert!(stats.lane_pairs > 0, "lane groups must carry the batch");
        assert_eq!(stats.band_overflows, 0, "default band fits read indels");
    }

    #[test]
    fn banded_traceback_matches_scalar_affine() {
        let pairs = read_pairs(300, 5);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let (alns, stats) = run::<_, _, _, 8>(&scheme, &pairs, 4, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
        assert!(stats.lane_pairs > 0);
    }

    #[test]
    fn zero_open_affine_ties_stay_consistent() {
        // open = 0 maximizes open/extend ties in the E/F recurrences —
        // the adversarial case for gap-run bookkeeping.
        let pairs = read_pairs(200, 9);
        let scheme = global(affine(simple(2, -1), 0, -1));
        let (alns, _) = run::<_, _, _, 16>(&scheme, &pairs, 4, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
    }

    #[test]
    fn empty_and_tiny_pairs_take_the_scalar_path() {
        let scheme = global(linear(simple(2, -1), -1));
        let (alns, _) = align_batch_simd::<_, _, _, 8>(&scheme, &[], 4, BandCfg::default());
        assert!(alns.is_empty());

        let a = Seq::from_ascii(b"ACGT").unwrap();
        let empty = Seq::new();
        let pairs = vec![
            (a.clone(), a.clone()),
            (a.clone(), empty.clone()),
            (empty, a.clone()),
        ];
        let (alns, stats) = run::<_, _, _, 8>(&scheme, &pairs, 2, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
        assert_eq!(alns[0].cigar(), "4=");
        assert_eq!(alns[1].cigar(), "4I");
        assert_eq!(alns[2].cigar(), "4D");
        assert_eq!(stats.scalar_pairs, 3, "degenerate pairs go scalar");
    }

    #[test]
    fn identical_equal_length_pairs_fill_lanes() {
        let a = GenomeSim::new(17).generate(150);
        let pairs: Vec<(Seq, Seq)> = (0..32).map(|_| (a.clone(), a.clone())).collect();
        let scheme = global(affine(simple(2, -1), -2, -1));
        let (alns, stats) = run::<_, _, _, 16>(&scheme, &pairs, 2, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
        for aln in &alns {
            assert_eq!(aln.cigar(), "150=");
        }
        assert_eq!(stats.lane_pairs, 32);
        assert_eq!(stats.scalar_pairs, 0);
    }

    /// Fixed-dimension contained-read pairs (substitution-only noise so
    /// every pair lands in one `(150, 220)` lane bucket).
    fn contained_pairs(count: usize, seed: u64) -> Vec<(Seq, Seq)> {
        let mut sim = GenomeSim::new(seed);
        (0..count)
            .map(|k| {
                let window = sim.generate(220);
                let mut codes = window.subseq(30..180).codes().to_vec();
                for b in codes.iter_mut().step_by(29 + k % 7) {
                    *b = (*b + 1) % 4;
                }
                (Seq::from_codes(codes).unwrap(), window)
            })
            .collect()
    }

    #[test]
    fn banded_traceback_matches_scalar_semiglobal() {
        // Reads contained in longer windows: the semi-global sweet spot.
        let pairs = contained_pairs(40, 41);
        let scheme = semiglobal(linear(simple(2, -3), -2));
        let (alns, stats) = run::<_, _, _, 16>(&scheme, &pairs, 4, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
        assert!(stats.lane_pairs > 0, "uniform dims must fill lanes");
        let aff = semiglobal(affine(simple(2, -3), -3, -1));
        let (alns, stats) = run::<_, _, _, 8>(&aff, &pairs, 4, BandCfg::default());
        check_all(&aff, &pairs, &alns);
        assert!(stats.lane_pairs > 0);
    }

    #[test]
    fn banded_traceback_matches_scalar_local() {
        let pairs = read_pairs(200, 13);
        for threads in [1, 4] {
            let scheme = local(linear(simple(2, -3), -2));
            let (alns, stats) = run::<_, _, _, 16>(&scheme, &pairs, threads, BandCfg::default());
            check_all(&scheme, &pairs, &alns);
            assert!(stats.lane_pairs > 0);
            let aff = local(affine(simple(2, -3), -3, -1));
            let (alns, _) = run::<_, _, _, 8>(&aff, &pairs, threads, BandCfg::default());
            check_all(&aff, &pairs, &alns);
        }
    }

    #[test]
    fn local_all_mismatch_lanes_decode_empty() {
        // All-mismatch pairs: the local optimum is the empty alignment
        // at the origin — every lane must decode to zero ops, score 0.
        let q = Seq::from_ascii(&b"A".repeat(64)).unwrap();
        let s = Seq::from_ascii(&b"C".repeat(64)).unwrap();
        let pairs: Vec<(Seq, Seq)> = (0..8).map(|_| (q.clone(), s.clone())).collect();
        let scheme = local(linear(simple(2, -3), -2));
        let (alns, stats) = run::<_, _, _, 8>(&scheme, &pairs, 2, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
        assert_eq!(stats.lane_pairs, 8);
        for aln in &alns {
            assert_eq!(aln.score, 0);
            assert!(aln.ops.is_empty());
            assert_eq!((aln.q_end, aln.s_end), (0, 0));
        }
    }

    #[test]
    fn semiglobal_containment_reports_window_offsets() {
        // An exact read inside a window: score = 2·len and the subject
        // region must cover exactly the containment site.
        let mut sim = GenomeSim::new(77);
        let window = sim.generate(200);
        let read = window.subseq(25..175);
        let pairs: Vec<(Seq, Seq)> = (0..16).map(|_| (read.clone(), window.clone())).collect();
        let scheme = semiglobal(linear(simple(2, -3), -2));
        let (alns, stats) = run::<_, _, _, 16>(&scheme, &pairs, 2, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
        assert_eq!(stats.lane_pairs, 16);
        for aln in &alns {
            assert_eq!(aln.score, 300);
            assert_eq!((aln.q_start, aln.q_end), (0, 150));
            assert_eq!((aln.s_start, aln.s_end), (25, 175));
        }
    }

    #[test]
    fn band_overflow_falls_back_to_scalar() {
        // A 50-base block swap pushes the optimal path ~50 diagonals
        // off the corridor; a band capped at 4 cannot contain it.
        let mut sim = GenomeSim::new(23);
        let head = sim.generate(50);
        let tail = sim.generate(100);
        let mut q_codes = head.codes().to_vec();
        q_codes.extend_from_slice(tail.codes());
        let mut s_codes = tail.codes().to_vec();
        s_codes.extend_from_slice(head.codes());
        let q = Seq::from_codes(q_codes).unwrap();
        let s = Seq::from_codes(s_codes).unwrap();
        let pairs: Vec<(Seq, Seq)> = (0..8).map(|_| (q.clone(), s.clone())).collect();

        let scheme = global(linear(simple(2, -3), -1));
        let tiny = BandCfg { initial: 2, max: 4 };
        let (alns, stats) = run::<_, _, _, 8>(&scheme, &pairs, 2, tiny);
        check_all(&scheme, &pairs, &alns);
        assert_eq!(stats.band_overflows, 8, "every lane must overflow");
        assert!(
            stats.band_widenings > 0,
            "the band widened before giving up"
        );
        assert!(
            stats.max_band <= 2 * 4 + 1,
            "the cap bounds the widest band: {}",
            stats.max_band
        );

        // The default band contains the same paths without fallback —
        // after adaptively widening past its initial width.
        let (alns, stats) = run::<_, _, _, 8>(&scheme, &pairs, 2, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
        assert_eq!(stats.band_overflows, 0);
        assert!(
            stats.max_band > 2 * BandCfg::default().initial as u64 + 1,
            "a 50-diagonal excursion forces widening: {}",
            stats.max_band
        );
    }

    #[test]
    fn mixed_buckets_and_leftovers_cover_input() {
        let mut pairs = read_pairs(100, 7);
        let mut extra = read_pairs(37, 8);
        for (q, _) in extra.iter_mut() {
            *q = q.subseq(0..q.len().min(100));
        }
        pairs.extend(extra);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let (alns, stats) = run::<_, _, _, 16>(&scheme, &pairs, 6, BandCfg::default());
        check_all(&scheme, &pairs, &alns);
        assert_eq!(
            stats.lane_pairs + stats.scalar_pairs + stats.band_overflows,
            pairs.len() as u64
        );
    }
}
