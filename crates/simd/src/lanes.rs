//! Portable lane arrays.
//!
//! The paper vectorizes with AnyDSL's `vectorize` generator, which "does
//! not resort to architecture-specific intrinsics" and supports several
//! SIMD instruction sets. The Rust analog: a fixed-size lane array whose
//! operations are written as plain per-lane loops marked
//! `#[inline(always)]` — under `-C target-cpu=native` LLVM reliably
//! compiles `I16s<16>` arithmetic to one AVX2 instruction and `I16s<32>`
//! to one AVX512BW instruction (`vpaddsw`, `vpmaxsw`, ...), matching the
//! paper's AVX2/AVX512 variants with 16-bit scores per lane.

#![allow(clippy::needless_range_loop)] // lane loops mirror the vector ISA

/// A SIMD block of `L` signed 16-bit scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
pub struct I16s<const L: usize>(pub [i16; L]);

impl<const L: usize> I16s<L> {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: i16) -> I16s<L> {
        I16s([v; L])
    }

    /// Lane-wise saturating addition (the sentinel stays pinned near the
    /// bottom of the range instead of wrapping — paper §IV-A's over/
    /// underflow discussion).
    #[inline(always)]
    pub fn sat_add(self, rhs: I16s<L>) -> I16s<L> {
        let mut out = [0i16; L];
        for l in 0..L {
            out[l] = self.0[l].saturating_add(rhs.0[l]);
        }
        I16s(out)
    }

    /// Saturating addition of a scalar to every lane.
    #[inline(always)]
    pub fn sat_adds(self, rhs: i16) -> I16s<L> {
        let mut out = [0i16; L];
        for l in 0..L {
            out[l] = self.0[l].saturating_add(rhs);
        }
        I16s(out)
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: I16s<L>) -> I16s<L> {
        let mut out = [0i16; L];
        for l in 0..L {
            out[l] = if self.0[l] >= rhs.0[l] {
                self.0[l]
            } else {
                rhs.0[l]
            };
        }
        I16s(out)
    }

    /// Lane-wise maximum against a scalar.
    #[inline(always)]
    pub fn maxs(self, rhs: i16) -> I16s<L> {
        let mut out = [0i16; L];
        for l in 0..L {
            out[l] = if self.0[l] >= rhs { self.0[l] } else { rhs };
        }
        I16s(out)
    }

    /// Shifts every value one lane upward (lane `l` → `l+1`), dropping
    /// the last lane and inserting `fill` at lane 0 — the striped-layout
    /// wrap step of Farrar's method (`vslli` in SSE terms).
    #[inline(always)]
    pub fn shift_lanes_up(self, fill: i16) -> I16s<L> {
        let mut out = [fill; L];
        out[1..L].copy_from_slice(&self.0[..(L - 1)]);
        I16s(out)
    }

    /// Whether any lane of `self` is strictly greater than the matching
    /// lane of `rhs` (`movemask` + test in SSE terms).
    #[inline(always)]
    pub fn any_gt(self, rhs: I16s<L>) -> bool {
        let mut any = false;
        for l in 0..L {
            any |= self.0[l] > rhs.0[l];
        }
        any
    }

    /// Bit mask of lanes where `self == rhs` (bit `l` set for lane `l`;
    /// `vpcmpeqw` + `movemask` in SSE terms). `L` must be ≤ 32.
    #[inline(always)]
    pub fn eq_mask(self, rhs: I16s<L>) -> u32 {
        let mut mask = 0u32;
        for l in 0..L {
            mask |= ((self.0[l] == rhs.0[l]) as u32) << l;
        }
        mask
    }

    /// Bit mask of lanes where `self >= rhs`.
    #[inline(always)]
    pub fn ge_mask(self, rhs: I16s<L>) -> u32 {
        let mut mask = 0u32;
        for l in 0..L {
            mask |= ((self.0[l] >= rhs.0[l]) as u32) << l;
        }
        mask
    }

    /// Bit mask of lanes where `self > rhs` (strictly).
    #[inline(always)]
    pub fn gt_mask(self, rhs: I16s<L>) -> u32 {
        let mut mask = 0u32;
        for l in 0..L {
            mask |= ((self.0[l] > rhs.0[l]) as u32) << l;
        }
        mask
    }

    /// Per-lane select by bit mask: lane `l` takes `self` when bit `l`
    /// of `mask` is set, `rhs` otherwise (`vpblendvb` in SSE terms).
    #[inline(always)]
    pub fn blend(self, mask: u32, rhs: I16s<L>) -> I16s<L> {
        let mut out = [0i16; L];
        for l in 0..L {
            out[l] = if mask & (1 << l) != 0 {
                self.0[l]
            } else {
                rhs.0[l]
            };
        }
        I16s(out)
    }

    /// Horizontal maximum over all lanes.
    #[inline]
    pub fn hmax(self) -> i16 {
        let mut m = self.0[0];
        for l in 1..L {
            if self.0[l] > m {
                m = self.0[l];
            }
        }
        m
    }
}

/// Branchless per-lane select: `mask[l] ? a : b` with a byte-equality
/// mask (used for match/mismatch scoring).
#[inline(always)]
pub fn select_eq<const L: usize>(x: &[u8; L], y: &[u8; L], a: i16, b: i16) -> I16s<L> {
    let mut out = [0i16; L];
    for l in 0..L {
        out[l] = if x[l] == y[l] { a } else { b };
    }
    I16s(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_max() {
        let a = I16s::<8>::splat(3);
        let b = I16s::<8>([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.max(b).0, [3, 3, 3, 4, 5, 6, 7, 8]);
        assert_eq!(b.maxs(4).0, [4, 4, 4, 4, 5, 6, 7, 8]);
        assert_eq!(b.hmax(), 8);
    }

    #[test]
    fn saturating_arithmetic_pins_sentinel() {
        let sent = I16s::<4>::splat(i16::MIN + 100);
        let dropped = sent.sat_adds(-500);
        assert!(dropped.0.iter().all(|&v| v == i16::MIN));
        let raised = dropped.sat_adds(5);
        assert!(raised.0.iter().all(|&v| v == i16::MIN + 5));
    }

    #[test]
    fn select_eq_masks() {
        let x = [1u8, 2, 3, 4];
        let y = [1u8, 9, 3, 9];
        assert_eq!(select_eq(&x, &y, 2, -1).0, [2, -1, 2, -1]);
    }

    #[test]
    fn lane_masks() {
        let a = I16s::<4>([1, 5, 3, -2]);
        let b = I16s::<4>([1, 4, 3, 7]);
        assert_eq!(a.eq_mask(b), 0b0101);
        assert_eq!(a.ge_mask(b), 0b0111);
        assert_eq!(a.ge_mask(a), 0b1111);
        assert_eq!(a.gt_mask(b), 0b0010);
        assert_eq!(a.gt_mask(a), 0);
    }

    #[test]
    fn blend_selects_per_lane() {
        let a = I16s::<4>([1, 2, 3, 4]);
        let b = I16s::<4>([-1, -2, -3, -4]);
        assert_eq!(a.blend(0b0101, b).0, [1, -2, 3, -4]);
        assert_eq!(a.blend(0, b), b);
        assert_eq!(a.blend(0b1111, b), a);
    }

    #[test]
    fn wide_lane_counts_work() {
        let a = I16s::<32>::splat(1).sat_adds(2);
        assert!(a.0.iter().all(|&v| v == 3));
        let b = I16s::<16>::splat(-5).max(I16s::<16>::splat(-7));
        assert!(b.0.iter().all(|&v| v == -5));
    }
}
