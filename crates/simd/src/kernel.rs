//! The vectorized block kernel: relaxes `L` *independent* equally-sized
//! tiles, one per SIMD lane, with 16-bit differential scores
//! (paper §IV-A: "Vectorization is done over blocks that consist of rows
//! from independent submatrices ... we use smaller data types (e.g.
//! 16 bits ...) for scores within a block" — here whole independent tiles
//! per lane, the natural strengthening of rows-per-lane that needs no
//! auxiliary score-lookup array).
//!
//! Scores inside a block are *differences to the block's incoming corner
//! value* (one rebase constant per lane); the i32 ↔ i16 conversion happens
//! only on the `O(h + w)` boundary stripes. Saturating arithmetic keeps
//! the −∞ sentinel pinned instead of wrapping.

use crate::lanes::I16s;
use anyseq_core::kind::{AlignKind, OptRegion};
use anyseq_core::score::{Score, NEG_INF};
use anyseq_core::scoring::{GapModel, MatrixSubst, SimpleSubst, SubstScore};

/// The 16-bit −∞ sentinel. Large enough below any legitimate
/// differential score (bounded by `(h+w)·max|step|`, see
/// [`max_block_extent`]) that saturated drift never climbs back into the
/// legitimate range before a `max` rescues the cell.
pub const SENT16: i16 = -25_000;

/// Largest `h + w` a block may have for i16 differential scores to be
/// provably exact under the given scheme (paper §IV-A's bound: the
/// largest differential magnitude is `(h+w)` steps of the largest
/// per-step score change).
pub fn max_block_extent<G: GapModel, S: SubstScore>(gap: &G, subst: &S) -> usize {
    let step = subst
        .max_score()
        .abs()
        .max(subst.min_score().abs())
        .max(gap.extend().abs())
        .max((gap.open() + gap.extend()).abs())
        .max(1);
    // Keep differential values within ±12000, far from SENT16.
    (12_000 / step) as usize
}

/// Converts an absolute i32 score to a lane-local differential i16.
#[inline(always)]
pub fn to16(v: Score, base: Score) -> i16 {
    if v <= NEG_INF / 2 {
        SENT16
    } else {
        let d = v - base;
        debug_assert!(
            (-12_000..=12_000).contains(&d),
            "differential {d} exceeds the i16 block budget"
        );
        d as i16
    }
}

/// Converts a lane-local differential i16 back to an absolute i32 score.
#[inline(always)]
pub fn from16(v: i16, base: Score) -> Score {
    if v <= SENT16 / 2 {
        NEG_INF
    } else {
        base + v as Score
    }
}

/// Substitution functions usable inside the vector kernel.
///
/// The extra method is the paper's "substitution function" specialized
/// per lane block; [`SimpleSubst`] compiles to a branchless compare+blend,
/// [`MatrixSubst`] to per-lane gathers.
pub trait SimdSubst: SubstScore {
    /// σ over `L` lanes of base-code pairs.
    fn lanes_score<const L: usize>(&self, q: &[u8; L], s: &[u8; L]) -> I16s<L>;
}

impl SimdSubst for SimpleSubst {
    #[inline(always)]
    fn lanes_score<const L: usize>(&self, q: &[u8; L], s: &[u8; L]) -> I16s<L> {
        crate::lanes::select_eq(q, s, self.matches as i16, self.mismatch as i16)
    }
}

impl SimdSubst for MatrixSubst {
    #[inline(always)]
    fn lanes_score<const L: usize>(&self, q: &[u8; L], s: &[u8; L]) -> I16s<L> {
        let mut out = [0i16; L];
        for l in 0..L {
            out[l] = self.table[q[l] as usize][s[l] as usize] as i16;
        }
        I16s(out)
    }
}

/// Boundary stripes of a block of `L` independent tiles, in lane-local
/// differential i16 representation.
///
/// The kernel works **in place**: on return `top_h`/`top_e` hold the
/// bottom stripes and `left_h`/`left_f` hold the right stripes (the same
/// rolling-buffer trick as the scalar tile kernel).
pub struct BlockBorders<const L: usize> {
    /// `H` crossing the top edge, `w + 1` vectors (corner included).
    pub top_h: Vec<I16s<L>>,
    /// `E` crossing the top edge, `w` vectors (empty for linear models).
    pub top_e: Vec<I16s<L>>,
    /// `H` crossing the left edge, `h` vectors.
    pub left_h: Vec<I16s<L>>,
    /// `F` crossing the left edge, `h` vectors (empty for linear models).
    pub left_f: Vec<I16s<L>>,
}

/// Relaxes a block of `L` independent `h × w` tiles (global/corner kinds:
/// no per-cell optimum tracking — the score lives on the borders).
///
/// * `q_rows[r]` — the `L` query codes of tile-local row `r` (one per lane),
/// * `s_cols[c]` — the `L` subject codes of tile-local column `c`.
#[allow(clippy::needless_range_loop)]
pub fn block_kernel<G, SS, const L: usize>(
    gap: &G,
    subst: &SS,
    q_rows: &[[u8; L]],
    s_cols: &[[u8; L]],
    borders: &mut BlockBorders<L>,
) where
    G: GapModel,
    SS: SimdSubst,
{
    let h = q_rows.len();
    let w = s_cols.len();
    assert!(h > 0 && w > 0);
    assert_eq!(borders.top_h.len(), w + 1);
    assert_eq!(borders.left_h.len(), h);
    if G::AFFINE {
        assert_eq!(borders.top_e.len(), w);
        assert_eq!(borders.left_f.len(), h);
    }

    let ext = gap.extend() as i16;
    let openext = (gap.open() + gap.extend()) as i16;

    for r in 0..h {
        let qc = &q_rows[r];
        let mut diag = borders.top_h[0];
        borders.top_h[0] = borders.left_h[r];
        let mut left = borders.top_h[0];
        let mut f = if G::AFFINE {
            borders.left_f[r]
        } else {
            I16s::splat(SENT16)
        };
        for c in 0..w {
            let up = borders.top_h[c + 1];
            let e = if G::AFFINE {
                borders.top_e[c].sat_adds(ext).max(up.sat_adds(openext))
            } else {
                up.sat_adds(ext)
            };
            f = if G::AFFINE {
                f.sat_adds(ext).max(left.sat_adds(openext))
            } else {
                left.sat_adds(ext)
            };
            let sub = subst.lanes_score(qc, &s_cols[c]);
            let hval = diag.sat_add(sub).max(e).max(f);
            diag = up;
            borders.top_h[c + 1] = hval;
            if G::AFFINE {
                borders.top_e[c] = e;
            }
            left = hval;
        }
        borders.left_h[r] = borders.top_h[w];
        if G::AFFINE {
            borders.left_f[r] = f;
        }
    }
}

/// Per-lane optimum produced by [`block_kernel_kind`].
pub struct KernelOpt<const L: usize> {
    /// Best score per lane over the kind's optimum region, in the same
    /// lane-local differential representation as the block borders. For
    /// `Corner` kinds this is the bottom-right cell.
    pub best: I16s<L>,
    /// Bit mask of lanes retired early by X-drop (0 when X-drop is off).
    pub retired: u32,
}

/// Kind-generic variant of [`block_kernel`]: relaxes the same block of
/// `L` independent `h × w` tiles but derives the per-cell dataflow from
/// `K`'s contract. `NU_ZERO` clamps every cell at 0 (local alignment),
/// and the per-lane optimum is tracked over `K::OPT`'s region — `Corner`:
/// the bottom-right cell; `Border`: last row + last column + the
/// initialization seeds `H(0,w)`/`H(h,0)`; `Anywhere`: every cell plus
/// the empty-alignment score 0. For `Corner` kinds every extra
/// accumulator folds out and the codegen matches [`block_kernel`].
///
/// With `XDROP = true` (non-`Corner` kinds only) a lane is *retired* once
/// the maximum of its current row drops more than `xdrop` below the
/// lane's running block maximum: its optimum freezes at the best already
/// seen and, when every lane has retired, the remaining rows are skipped
/// entirely. Retired lanes may under-report the true optimum — X-drop is
/// a heuristic; the default `XDROP = false` path is bit-exact.
#[allow(clippy::needless_range_loop)]
pub fn block_kernel_kind<K, G, SS, const XDROP: bool, const L: usize>(
    gap: &G,
    subst: &SS,
    q_rows: &[[u8; L]],
    s_cols: &[[u8; L]],
    borders: &mut BlockBorders<L>,
    xdrop: i16,
) -> KernelOpt<L>
where
    K: AlignKind,
    G: GapModel,
    SS: SimdSubst,
{
    let h = q_rows.len();
    let w = s_cols.len();
    assert!(h > 0 && w > 0);
    assert_eq!(borders.top_h.len(), w + 1);
    assert_eq!(borders.left_h.len(), h);
    if G::AFFINE {
        assert_eq!(borders.top_e.len(), w);
        assert_eq!(borders.left_f.len(), h);
    }
    debug_assert!(
        !XDROP || !matches!(K::OPT, OptRegion::Corner),
        "X-drop is meaningless for corner-optimum kinds"
    );

    let ext = gap.extend() as i16;
    let openext = (gap.open() + gap.extend()) as i16;
    let all: u32 = if L >= 32 { u32::MAX } else { (1u32 << L) - 1 };

    // Optimum seeds: Border kinds can end on the init stripes at H(0,w)
    // (H(h,0) is folded in at the end, it sits in the final bottom
    // stripe); Anywhere kinds always have the empty alignment (score 0).
    let mut best = match K::OPT {
        OptRegion::Corner => I16s::splat(SENT16),
        OptRegion::Border => borders.top_h[w],
        OptRegion::Anywhere => I16s::splat(0),
    };
    let mut active = all;
    let mut retired = 0u32;
    let mut run_max = I16s::<L>::splat(SENT16);

    for r in 0..h {
        let qc = &q_rows[r];
        let mut diag = borders.top_h[0];
        borders.top_h[0] = borders.left_h[r];
        let mut left = borders.top_h[0];
        let mut f = if G::AFFINE {
            borders.left_f[r]
        } else {
            I16s::splat(SENT16)
        };
        let mut row_max = I16s::<L>::splat(SENT16);
        for c in 0..w {
            let up = borders.top_h[c + 1];
            let e = if G::AFFINE {
                borders.top_e[c].sat_adds(ext).max(up.sat_adds(openext))
            } else {
                up.sat_adds(ext)
            };
            f = if G::AFFINE {
                f.sat_adds(ext).max(left.sat_adds(openext))
            } else {
                left.sat_adds(ext)
            };
            let sub = subst.lanes_score(qc, &s_cols[c]);
            let mut hval = diag.sat_add(sub).max(e).max(f);
            if K::NU_ZERO {
                hval = hval.maxs(0);
            }
            if XDROP || matches!(K::OPT, OptRegion::Anywhere) {
                row_max = row_max.max(hval);
            }
            diag = up;
            borders.top_h[c + 1] = hval;
            if G::AFFINE {
                borders.top_e[c] = e;
            }
            left = hval;
        }
        borders.left_h[r] = borders.top_h[w];
        if G::AFFINE {
            borders.left_f[r] = f;
        }
        match K::OPT {
            OptRegion::Corner => {}
            // Right-column candidate H(r+1, w).
            OptRegion::Border => best = borders.top_h[w].max(best).blend(active, best),
            OptRegion::Anywhere => best = row_max.max(best).blend(active, best),
        }
        if XDROP {
            run_max = run_max.max(row_max).blend(active, run_max);
            let cutoff = run_max.sat_adds(xdrop.saturating_neg());
            let dropped = cutoff.gt_mask(row_max) & active;
            if dropped != 0 {
                retired |= dropped;
                active &= !dropped;
                if active == 0 {
                    break;
                }
            }
        }
    }

    match K::OPT {
        OptRegion::Corner => best = borders.top_h[w],
        // Bottom-row candidates H(h, 0..=w) — including the H(h, 0) seed,
        // which the rolling buffers leave in `top_h[0]` after the last row.
        OptRegion::Border => {
            let mut bottom = borders.top_h[0];
            for c in 1..=w {
                bottom = bottom.max(borders.top_h[c]);
            }
            best = bottom.max(best).blend(active, best);
        }
        OptRegion::Anywhere => {}
    }
    KernelOpt { best, retired }
}

/// Masked-dataflow variant of [`block_kernel`] used by the SeqAn-like
/// baseline: intrinsics-level SIMD code "requires to emulate control flow
/// constructs such as if, while, or break with masked data flow — a
/// time-consuming and error-prone process" (paper §V). This kernel
/// therefore unconditionally maintains the affine E/F lanes (even for
/// linear schemes), a running block maximum, and a ν floor mask — the
/// redundant lane work a masked translation of the general variant
/// carries. Results are identical; only the instruction count differs.
#[allow(clippy::needless_range_loop)]
pub fn block_kernel_masked<G, SS, const L: usize>(
    gap: &G,
    subst: &SS,
    q_rows: &[[u8; L]],
    s_cols: &[[u8; L]],
    borders: &mut BlockBorders<L>,
) where
    G: GapModel,
    SS: SimdSubst,
{
    let h = q_rows.len();
    let w = s_cols.len();
    assert!(h > 0 && w > 0);
    assert_eq!(borders.top_h.len(), w + 1);
    assert_eq!(borders.left_h.len(), h);

    let ext = gap.extend() as i16;
    let openext = (gap.open() + gap.extend()) as i16;
    // Masked-flow ballast: these accumulators exist in the "general"
    // masked translation whether or not the variant needs them.
    let mut running_max = I16s::<L>::splat(SENT16);
    let nu_floor = I16s::<L>::splat(SENT16);

    // E/F stripes are materialized even for linear gap models.
    if borders.top_e.len() != w {
        borders.top_e = (0..w)
            .map(|c| borders.top_h[c + 1].sat_adds(gap.open() as i16))
            .collect();
    }
    if borders.left_f.len() != h {
        borders.left_f = vec![I16s::splat(SENT16); h];
    }

    for r in 0..h {
        let qc = &q_rows[r];
        let mut diag = borders.top_h[0];
        borders.top_h[0] = borders.left_h[r];
        let mut left = borders.top_h[0];
        let mut f = borders.left_f[r];
        for c in 0..w {
            let up = borders.top_h[c + 1];
            let e = borders.top_e[c].sat_adds(ext).max(up.sat_adds(openext));
            f = f.sat_adds(ext).max(left.sat_adds(openext));
            let sub = subst.lanes_score(qc, &s_cols[c]);
            let mut hval = diag.sat_add(sub).max(e).max(f);
            // ν mask applied unconditionally (a no-op floor for global).
            hval = hval.max(nu_floor);
            running_max = running_max.max(hval);
            diag = up;
            borders.top_h[c + 1] = hval;
            borders.top_e[c] = e;
            left = hval;
        }
        borders.left_h[r] = borders.top_h[w];
        borders.left_f[r] = f;
    }
    // Keep the running maximum live so the optimizer cannot drop the
    // masked ballast.
    std::hint::black_box(running_max.hmax());
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::kind::Global;
    use anyseq_core::pass::{init_left_f, init_left_h, init_top_e, init_top_h};
    use anyseq_core::scoring::{simple, AffineGap, GapModel, LinearGap};
    use anyseq_core::tile::{relax_tile, NoSink, TileIn, TileOut};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Run the block kernel with L whole small problems and compare every
    /// lane against the scalar tile kernel.
    fn check_against_scalar<G: GapModel + Copy>(gap: G, seed: u64) {
        const L: usize = 8;
        let subst = simple(2, -1);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = 17;
        let w = 23;
        let qs: Vec<Vec<u8>> = (0..L)
            .map(|_| (0..h).map(|_| rng.gen_range(0..4u8)).collect())
            .collect();
        let ss: Vec<Vec<u8>> = (0..L)
            .map(|_| (0..w).map(|_| rng.gen_range(0..4u8)).collect())
            .collect();

        // Block setup (global init stripes, base = corner H(0,0) = 0).
        let top_h_i32 = init_top_h::<Global, G>(&gap, w);
        let top_e_i32 = init_top_e::<Global, G>(&gap, w);
        let left_h_i32 = init_left_h::<Global, G>(&gap, h, gap.open());
        let left_f_i32 = init_left_f::<G>(h);
        let mut borders = BlockBorders::<L> {
            top_h: (0..=w)
                .map(|c| I16s::splat(to16(top_h_i32[c], 0)))
                .collect(),
            top_e: (0..top_e_i32.len())
                .map(|c| I16s::splat(to16(top_e_i32[c], 0)))
                .collect(),
            left_h: (0..h)
                .map(|r| I16s::splat(to16(left_h_i32[r], 0)))
                .collect(),
            left_f: (0..left_f_i32.len())
                .map(|r| I16s::splat(to16(left_f_i32[r], 0)))
                .collect(),
        };
        let q_rows: Vec<[u8; L]> = (0..h).map(|r| std::array::from_fn(|l| qs[l][r])).collect();
        let s_cols: Vec<[u8; L]> = (0..w).map(|c| std::array::from_fn(|l| ss[l][c])).collect();
        block_kernel(&gap, &subst, &q_rows, &s_cols, &mut borders);

        for l in 0..L {
            let mut out = TileOut::new();
            relax_tile::<Global, G, _, _>(
                &gap,
                &subst,
                &qs[l],
                &ss[l],
                (1, 1),
                (h, w),
                TileIn {
                    top_h: &top_h_i32,
                    top_e: &top_e_i32,
                    left_h: &left_h_i32,
                    left_f: &left_f_i32,
                },
                &mut out,
                &mut NoSink,
            );
            for c in 0..=w {
                assert_eq!(
                    from16(borders.top_h[c].0[l], 0),
                    out.bot_h[c],
                    "lane {l} bottom H at {c}"
                );
            }
            for r in 0..h {
                assert_eq!(
                    from16(borders.left_h[r].0[l], 0),
                    out.right_h[r],
                    "lane {l} right H at {r}"
                );
            }
            if G::AFFINE {
                for c in 0..w {
                    assert_eq!(from16(borders.top_e[c].0[l], 0), out.bot_e[c]);
                }
                for r in 0..h {
                    assert_eq!(from16(borders.left_f[r].0[l], 0), out.right_f[r]);
                }
            }
        }
    }

    #[test]
    fn block_matches_scalar_linear() {
        for seed in 0..4 {
            check_against_scalar(LinearGap { gap: -1 }, seed);
        }
    }

    #[test]
    fn block_matches_scalar_affine() {
        for seed in 0..4 {
            check_against_scalar(
                AffineGap {
                    open: -2,
                    extend: -1,
                },
                seed,
            );
        }
    }

    /// Full-width kind-generic kernel vs the scalar score pass, every
    /// lane carrying a different random problem of the same shape.
    fn check_kind_against_pass<K: anyseq_core::kind::AlignKind, G: GapModel + Copy>(
        gap: G,
        seed: u64,
    ) {
        const L: usize = 8;
        let subst = simple(2, -3);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = 21;
        let w = 15;
        let qs: Vec<Vec<u8>> = (0..L)
            .map(|_| (0..h).map(|_| rng.gen_range(0..4u8)).collect())
            .collect();
        let ss: Vec<Vec<u8>> = (0..L)
            .map(|_| (0..w).map(|_| rng.gen_range(0..4u8)).collect())
            .collect();

        let top_h_i32 = init_top_h::<K, G>(&gap, w);
        let top_e_i32 = init_top_e::<K, G>(&gap, w);
        let left_h_i32 = init_left_h::<K, G>(&gap, h, gap.open());
        let left_f_i32 = init_left_f::<G>(h);
        let mut borders = BlockBorders::<L> {
            top_h: (0..=w)
                .map(|c| I16s::splat(to16(top_h_i32[c], 0)))
                .collect(),
            top_e: (0..top_e_i32.len())
                .map(|c| I16s::splat(to16(top_e_i32[c], 0)))
                .collect(),
            left_h: (0..h)
                .map(|r| I16s::splat(to16(left_h_i32[r], 0)))
                .collect(),
            left_f: (0..left_f_i32.len())
                .map(|r| I16s::splat(to16(left_f_i32[r], 0)))
                .collect(),
        };
        let q_rows: Vec<[u8; L]> = (0..h).map(|r| std::array::from_fn(|l| qs[l][r])).collect();
        let s_cols: Vec<[u8; L]> = (0..w).map(|c| std::array::from_fn(|l| ss[l][c])).collect();
        let opt =
            block_kernel_kind::<K, G, _, false, L>(&gap, &subst, &q_rows, &s_cols, &mut borders, 0);
        assert_eq!(opt.retired, 0);
        for l in 0..L {
            let pass =
                anyseq_core::pass::score_pass::<K, G, _>(&gap, &subst, &qs[l], &ss[l], gap.open());
            assert_eq!(
                from16(opt.best.0[l], 0),
                pass.score,
                "{} lane {l} seed {seed}",
                K::NAME
            );
        }
    }

    #[test]
    fn kind_kernel_matches_scalar_pass_all_kinds() {
        use anyseq_core::kind::{Extension, FreeEnd, Local, SemiGlobal};
        for seed in 0..4 {
            let lin = LinearGap { gap: -2 };
            let aff = AffineGap {
                open: -3,
                extend: -1,
            };
            check_kind_against_pass::<Global, _>(lin, seed);
            check_kind_against_pass::<Global, _>(aff, seed);
            check_kind_against_pass::<SemiGlobal, _>(lin, seed);
            check_kind_against_pass::<SemiGlobal, _>(aff, seed);
            check_kind_against_pass::<Local, _>(lin, seed);
            check_kind_against_pass::<Local, _>(aff, seed);
            check_kind_against_pass::<FreeEnd, _>(lin, seed);
            check_kind_against_pass::<FreeEnd, _>(aff, seed);
            check_kind_against_pass::<Extension, _>(lin, seed);
            check_kind_against_pass::<Extension, _>(aff, seed);
        }
    }

    #[test]
    fn huge_xdrop_threshold_is_bit_exact() {
        use anyseq_core::kind::SemiGlobal;
        const L: usize = 4;
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let mut rng = StdRng::seed_from_u64(7);
        let h = 12;
        let w = 9;
        let qs: Vec<Vec<u8>> = (0..L)
            .map(|_| (0..h).map(|_| rng.gen_range(0..4u8)).collect())
            .collect();
        let ss: Vec<Vec<u8>> = (0..L)
            .map(|_| (0..w).map(|_| rng.gen_range(0..4u8)).collect())
            .collect();
        let build = || BlockBorders::<L> {
            top_h: (0..=w)
                .map(|c| I16s::splat(to16(init_top_h::<SemiGlobal, _>(&gap, w)[c], 0)))
                .collect(),
            top_e: Vec::new(),
            left_h: (0..h)
                .map(|r| {
                    I16s::splat(to16(
                        init_left_h::<SemiGlobal, _>(&gap, h, gap.open())[r],
                        0,
                    ))
                })
                .collect(),
            left_f: Vec::new(),
        };
        let q_rows: Vec<[u8; L]> = (0..h).map(|r| std::array::from_fn(|l| qs[l][r])).collect();
        let s_cols: Vec<[u8; L]> = (0..w).map(|c| std::array::from_fn(|l| ss[l][c])).collect();
        let mut exact_b = build();
        let exact = block_kernel_kind::<SemiGlobal, _, _, false, L>(
            &gap,
            &subst,
            &q_rows,
            &s_cols,
            &mut exact_b,
            0,
        );
        let mut xd_b = build();
        let xd = block_kernel_kind::<SemiGlobal, _, _, true, L>(
            &gap, &subst, &q_rows, &s_cols, &mut xd_b, 10_000,
        );
        assert_eq!(xd.retired, 0);
        assert_eq!(xd.best.0, exact.best.0);
    }

    #[test]
    fn xdrop_retires_diverged_lanes() {
        use anyseq_core::kind::SemiGlobal;
        const L: usize = 4;
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        // Matching prefix, then long hard divergence: the running max is
        // reached early and every later row only sinks.
        let q: Vec<u8> = [vec![0u8; 10], vec![1u8; 60]].concat();
        let s: Vec<u8> = [vec![0u8; 10], vec![2u8; 60]].concat();
        let h = q.len();
        let w = s.len();
        let mut borders = BlockBorders::<L> {
            top_h: (0..=w)
                .map(|c| I16s::splat(to16(init_top_h::<SemiGlobal, _>(&gap, w)[c], 0)))
                .collect(),
            top_e: Vec::new(),
            left_h: (0..h)
                .map(|r| {
                    I16s::splat(to16(
                        init_left_h::<SemiGlobal, _>(&gap, h, gap.open())[r],
                        0,
                    ))
                })
                .collect(),
            left_f: Vec::new(),
        };
        let q_rows: Vec<[u8; L]> = q.iter().map(|&b| [b; L]).collect();
        let s_cols: Vec<[u8; L]> = s.iter().map(|&b| [b; L]).collect();
        let opt = block_kernel_kind::<SemiGlobal, _, _, true, L>(
            &gap,
            &subst,
            &q_rows,
            &s_cols,
            &mut borders,
            20,
        );
        assert_eq!(opt.retired, (1u32 << L) - 1, "all lanes should retire");
        // Here retirement is lossless: the exact semi-global optimum is
        // the free-begin seed (score 0), seen before any lane retires.
        let exact =
            anyseq_core::pass::score_pass::<SemiGlobal, _, _>(&gap, &subst, &q, &s, gap.open());
        for l in 0..L {
            assert_eq!(from16(opt.best.0[l], 0), exact.score, "lane {l}");
        }
    }

    #[test]
    fn conversion_round_trip() {
        for v in [-3000, -1, 0, 5, 11_999] {
            assert_eq!(from16(to16(v + 1000, 1000), 1000), v + 1000);
        }
        assert_eq!(to16(NEG_INF, 0), SENT16);
        assert_eq!(from16(SENT16, 12345), NEG_INF);
    }

    #[test]
    fn extent_budget_reasonable() {
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let ext = max_block_extent(&gap, &subst);
        // 2×512 tiles must fit comfortably.
        assert!(ext >= 2048, "extent {ext}");
    }
}
