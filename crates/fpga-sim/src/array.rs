//! Cycle-counted linear systolic array — the paper's FPGA mapping
//! (§IV-C): `KPE` processing elements each relax one DP cell per clock;
//! the shorter sequence is divided into blocks of at most `KPE` that
//! initialize the PEs; the longer sequence is streamed one character per
//! cycle through the chain; when the query is longer than `KPE`, the
//! boundary row of each stripe is buffered through a DDR FIFO component.
//!
//! The simulation is value-faithful (PE delay registers, char pipeline,
//! DDR double-buffer) and bit-exact against the scalar engine; the cycle
//! count is exact for the array itself (`stripe_rows + m − 1` per stripe
//! plus pipeline fill) while the DDR stream is a bandwidth model —
//! calibrated so that, as the paper observes, *"a no-operation hardware
//! module is as fast as our alignment core"*: the transfer stream, not
//! the arithmetic, is the binding resource.

use anyseq_core::kind::Global;
use anyseq_core::pass::{init_left_h, init_top_e, init_top_h};
use anyseq_core::score::{Score, NEG_INF};
use anyseq_core::scoring::{GapModel, SubstScore};
use anyseq_seq::Seq;

/// Execution statistics of one systolic run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpgaStats {
    /// DP cells relaxed.
    pub cells: u64,
    /// Clock cycles consumed (max of compute and DDR stream per stripe).
    pub cycles: u64,
    /// Query stripes processed.
    pub stripes: u64,
    /// Bytes moved through the DDR boundary FIFO.
    pub ddr_bytes: u64,
}

/// Result of a systolic scoring run.
#[derive(Debug, Clone)]
pub struct FpgaRun {
    /// Optimal global score (bit-exact).
    pub score: Score,
    /// Final DP row `H(n, 0..=m)` (for validation and Hirschberg use).
    pub last_h: Vec<Score>,
    /// Statistics.
    pub stats: FpgaStats,
}

/// A configured systolic array.
#[derive(Debug, Clone)]
pub struct SystolicArray {
    /// Device name for reports.
    pub name: String,
    /// Number of processing elements.
    pub kpe: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Board power in watts (for Table II; ZCU104: synthesis report).
    pub watts: f64,
    /// DDR FIFO throughput in bytes per clock cycle (boundary stream).
    pub ddr_bytes_per_cycle: f64,
}

impl SystolicArray {
    /// The paper's evaluation board: Xilinx ZCU104 at 187.5 MHz
    /// (§V "AnySeq runs with a frequency of 187.5 MHz and achieves a
    /// median performance of about 20 GCUPS"), power 6.181 W from the
    /// synthesis report (Table II).
    pub fn zcu104(kpe: usize) -> SystolicArray {
        SystolicArray {
            name: "ZCU104-sim".to_string(),
            kpe,
            clock_hz: 187.5e6,
            watts: 6.181,
            // Boundary stream of 16 B per column per stripe at ~13 B/cycle
            // makes the transfer marginally the binding resource, matching
            // the paper's no-op-module observation.
            ddr_bytes_per_cycle: 13.3,
        }
    }

    /// Streams one global score-only alignment through the array
    /// (the paper's FPGA backend "only supports score-only long genome
    /// alignment").
    ///
    /// The shorter sequence loads the PEs; pass `q`/`s` in either order —
    /// they are swapped internally if needed (global scoring with a
    /// symmetric gap model is orientation-independent).
    pub fn score<G, S>(&self, gap: &G, subst: &S, q: &Seq, s: &Seq) -> FpgaRun
    where
        G: GapModel,
        S: SubstScore,
    {
        // PEs hold the shorter sequence.
        let (qc, sc, swapped) = if q.len() <= s.len() {
            (q.codes(), s.codes(), false)
        } else {
            (s.codes(), q.codes(), true)
        };
        let run = self.score_codes(gap, subst, qc, sc);
        let _ = swapped; // the global score is swap-invariant; last_h is
                         // reported in the streamed orientation.
        run
    }

    /// Core streaming loop over raw codes (`q` loads the PEs).
    pub fn score_codes<G, S>(&self, gap: &G, subst: &S, q: &[u8], s: &[u8]) -> FpgaRun
    where
        G: GapModel,
        S: SubstScore,
    {
        let n = q.len();
        let m = s.len();
        if n == 0 || m == 0 {
            let out = anyseq_core::pass::score_pass::<Global, G, S>(gap, subst, q, s, gap.open());
            return FpgaRun {
                score: out.score,
                last_h: out.last_h,
                stats: FpgaStats::default(),
            };
        }

        let ext = gap.extend();
        let open = gap.open();
        let kpe = self.kpe.max(1);

        // DDR-buffered boundary row (double-buffered FIFO).
        let mut h_top = init_top_h::<Global, G>(gap, m);
        let mut e_top = init_top_e::<Global, G>(gap, m);
        if !G::AFFINE {
            e_top = vec![NEG_INF; m]; // uniform stream width
        }
        let left_h = init_left_h::<Global, G>(gap, n, gap.open());

        let mut stats = FpgaStats::default();
        let mut h_bot = vec![0 as Score; m + 1];
        let mut e_bot = vec![NEG_INF; m];

        // Per-PE registers.
        let mut own_h = vec![0 as Score; kpe]; // H(row, last col emitted)
        let mut own_h_prev = vec![0 as Score; kpe]; // 1-cycle delayed
        let mut own_e = vec![NEG_INF; kpe];
        let mut own_f = vec![NEG_INF; kpe];

        let mut r0 = 0usize;
        while r0 < n {
            let sh = kpe.min(n - r0);
            stats.stripes += 1;

            // Load phase: PE r latches its query char and column −1 state.
            for r in 0..sh {
                own_h[r] = left_h[r0 + r];
                own_f[r] = NEG_INF;
                own_e[r] = NEG_INF;
                own_h_prev[r] = 0;
            }
            let mut diag0 = h_top[0];

            // Streaming phase: cycle t pushes subject char t into PE 0;
            // PE r processes column t − r.
            let cycles = sh + m - 1;
            for t in 0..cycles {
                let r_lo = t.saturating_sub(m - 1);
                let r_hi = t.min(sh - 1);
                for r in (r_lo..=r_hi).rev() {
                    let c = t - r;
                    let row = r0 + r;
                    let (up_h, diag_h, up_e) = if r == 0 {
                        (h_top[c + 1], diag0, e_top[c])
                    } else {
                        (own_h[r - 1], own_h_prev[r - 1], own_e[r - 1])
                    };
                    let e = if G::AFFINE {
                        (up_e + ext).max(up_h + open + ext)
                    } else {
                        up_h + ext
                    };
                    let f = if G::AFFINE {
                        (own_f[r] + ext).max(own_h[r] + open + ext)
                    } else {
                        own_h[r] + ext
                    };
                    let mut h = diag_h + subst.score(q[row], s[c]);
                    if e > h {
                        h = e;
                    }
                    if f > h {
                        h = f;
                    }
                    own_h_prev[r] = own_h[r];
                    own_h[r] = h;
                    own_e[r] = e;
                    own_f[r] = f;
                    if r == sh - 1 {
                        h_bot[c + 1] = h;
                        e_bot[c] = e;
                    }
                }
                if r_lo == 0 {
                    diag0 = h_top[t + 1];
                }
            }
            stats.cells += (sh * m) as u64;

            // Stripe timing: the array needs `cycles` clocks; the DDR
            // component streams the boundary row (H + E, 8 B per column,
            // both directions) concurrently — the slower one binds.
            let ddr_bytes = (2 * m * 8) as u64;
            stats.ddr_bytes += ddr_bytes;
            let ddr_cycles = (ddr_bytes as f64 / self.ddr_bytes_per_cycle).ceil() as u64;
            stats.cycles += (cycles as u64).max(ddr_cycles) + kpe as u64; // + fill

            // FIFO turnaround: bottom row becomes the next stripe's top.
            h_bot[0] = left_h[r0 + sh - 1];
            std::mem::swap(&mut h_top, &mut h_bot);
            std::mem::swap(&mut e_top, &mut e_bot);
            r0 += sh;
        }

        FpgaRun {
            score: h_top[m],
            last_h: h_top.clone(),
            stats,
        }
    }

    /// Modeled seconds for a stats record.
    pub fn seconds(&self, stats: &FpgaStats) -> f64 {
        stats.cycles as f64 / self.clock_hz
    }

    /// Modeled GCUPS.
    pub fn gcups(&self, stats: &FpgaStats) -> f64 {
        let t = self.seconds(stats);
        if t <= 0.0 {
            0.0
        } else {
            stats.cells as f64 / t / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::prelude::{affine, global, linear, simple};
    use anyseq_seq::genome::GenomeSim;

    #[test]
    fn systolic_score_bit_exact_linear() {
        let mut sim = GenomeSim::new(61);
        let q = sim.generate(700);
        let s = sim.mutate(&q, 0.08);
        let scheme = global(linear(simple(2, -1), -1));
        for kpe in [1, 7, 64, 128, 1024] {
            let arr = SystolicArray::zcu104(kpe);
            let run = arr.score(scheme.gap(), scheme.subst(), &q, &s);
            assert_eq!(run.score, scheme.score(&q, &s), "kpe={kpe}");
        }
    }

    #[test]
    fn systolic_score_bit_exact_affine() {
        let mut sim = GenomeSim::new(67);
        let q = sim.generate(900);
        let s = sim.mutate(&q, 0.12);
        let scheme = global(affine(simple(2, -1), -2, -1));
        for kpe in [3, 128, 200] {
            let arr = SystolicArray::zcu104(kpe);
            let run = arr.score(scheme.gap(), scheme.subst(), &q, &s);
            assert_eq!(run.score, scheme.score(&q, &s), "kpe={kpe}");
        }
    }

    #[test]
    fn last_row_matches_scalar() {
        let mut sim = GenomeSim::new(71);
        let q = sim.generate(333);
        let s = sim.generate(444);
        let gap = anyseq_core::scoring::AffineGap {
            open: -3,
            extend: -1,
        };
        let subst = simple(2, -1);
        let arr = SystolicArray::zcu104(64);
        // q loads the PEs (shorter).
        let run = arr.score_codes(&gap, &subst, q.codes(), s.codes());
        let cpu = anyseq_core::pass::score_pass::<Global, _, _>(
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            gap.open(),
        );
        assert_eq!(run.last_h, cpu.last_h);
    }

    #[test]
    fn gap_scheme_does_not_change_cycles() {
        // Paper §V: "The runtime is not affected by the gap penalty
        // scheme as the computation happens in a single clock-cycle".
        let mut sim = GenomeSim::new(73);
        let q = sim.generate(2000);
        let s = sim.mutate(&q, 0.05);
        let arr = SystolicArray::zcu104(128);
        let lin = arr.score(
            &anyseq_core::scoring::LinearGap { gap: -1 },
            &simple(2, -1),
            &q,
            &s,
        );
        let aff = arr.score(
            &anyseq_core::scoring::AffineGap {
                open: -2,
                extend: -1,
            },
            &simple(2, -1),
            &q,
            &s,
        );
        assert_eq!(lin.stats.cycles, aff.stats.cycles);
        assert_eq!(lin.stats.ddr_bytes, aff.stats.ddr_bytes);
    }

    #[test]
    fn steady_state_gcups_near_kpe_times_clock() {
        let mut sim = GenomeSim::new(79);
        let q = sim.generate(4096);
        let s = sim.generate(100_000);
        let arr = SystolicArray::zcu104(128);
        let run = arr.score(
            &anyseq_core::scoring::LinearGap { gap: -1 },
            &simple(2, -1),
            &q,
            &s,
        );
        let gcups = arr.gcups(&run.stats);
        let peak = arr.kpe as f64 * arr.clock_hz / 1e9; // 24 GCUPS
        assert!(
            gcups > 0.6 * peak && gcups <= peak,
            "modeled {gcups:.2} GCUPS vs peak {peak:.2}"
        );
    }

    #[test]
    fn empty_inputs_degenerate() {
        let arr = SystolicArray::zcu104(16);
        let gap = anyseq_core::scoring::LinearGap { gap: -2 };
        let q = Seq::new();
        let s = Seq::from_ascii(b"ACGT").unwrap();
        let run = arr.score(&gap, &simple(2, -1), &q, &s);
        assert_eq!(run.score, -8);
        assert_eq!(run.stats.cells, 0);
    }
}
