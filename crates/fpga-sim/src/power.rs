//! Device power models and energy-efficiency accounting (paper Table II).
//!
//! The paper compares GCUPS/W using the *specification* power of the CPU
//! (Intel Xeon Gold 6130, 125 W TDP) and GPU (Titan V, 250 W) against the
//! ZCU104's synthesis-report power (6.181 W). We reproduce exactly that
//! accounting: measured/modeled GCUPS divided by nameplate watts.

/// A device power entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePower {
    /// Device name as it appears in Table II.
    pub device: &'static str,
    /// Power in watts.
    pub watts: f64,
    /// Provenance footnote (paper: "a) according to specification",
    /// "b) according to hardware synthesis report").
    pub source: &'static str,
}

/// The paper's Table II power entries.
pub fn table2_devices() -> Vec<DevicePower> {
    vec![
        DevicePower {
            device: "Intel Xeon Gold 6130",
            watts: 125.0,
            source: "specification",
        },
        DevicePower {
            device: "Titan V",
            watts: 250.0,
            source: "specification",
        },
        DevicePower {
            device: "ZCU104",
            watts: 6.181,
            source: "hardware synthesis report",
        },
    ]
}

/// Energy efficiency in GCUPS per watt.
pub fn gcups_per_watt(gcups: f64, watts: f64) -> f64 {
    assert!(watts > 0.0, "power must be positive");
    gcups / watts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_reference_points() {
        // The paper's own Table II numbers are self-consistent: 128 GCUPS
        // CPU ⇒ ~1.024 GCUPS/W at 125 W; 189 GCUPS GPU ⇒ ~0.757 at 250 W;
        // 19.7 GCUPS FPGA ⇒ ~3.187 at 6.181 W.
        assert!((gcups_per_watt(128.0, 125.0) - 1.024).abs() < 1e-9);
        assert!((gcups_per_watt(189.25, 250.0) - 0.757).abs() < 1e-9);
        assert!((gcups_per_watt(19.699, 6.181) - 3.187).abs() < 5e-4);
    }

    #[test]
    fn device_table_complete() {
        let d = table2_devices();
        assert_eq!(d.len(), 3);
        assert!(d.iter().any(|e| e.device.contains("ZCU104")));
    }
}
