//! # anyseq-fpga-sim — systolic-array FPGA simulator
//!
//! Substitute for the paper's Xilinx ZCU104 HLS backend (§IV-C): a
//! value-faithful, cycle-counted linear array of processing elements —
//! query block latched into the PEs, subject streamed through the chain,
//! one cell per PE per clock, stripe boundaries buffered through a
//! modeled DDR FIFO. The cycle count is exact for the array; the DDR
//! stream is a calibrated bandwidth model reproducing the paper's
//! transfer-bound observation. [`power`] carries the Table II
//! GCUPS-per-watt accounting.

pub mod array;
pub mod power;

pub use array::{FpgaRun, FpgaStats, SystolicArray};
pub use power::{gcups_per_watt, table2_devices, DevicePower};
