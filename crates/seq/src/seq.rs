//! Owned DNA sequences and cheap read-only views.
//!
//! [`Seq`] stores one base *code* per byte (see [`crate::alphabet`]).
//! Alignment engines never touch ASCII: they read codes through slices or
//! through view adapters such as [`Seq::rev_view`], mirroring the paper's
//! `Sequence { len, at, release }` accessor abstraction (§III-B) — in Rust
//! the accessor indirection compiles away through monomorphization exactly
//! like AnyDSL's partial evaluation removes it.

use crate::alphabet::{complement_code, Base};
use std::fmt;

/// Error raised when constructing a sequence from invalid input, or
/// when a sequence store cannot accept more entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A byte that is not an ASCII letter (and not ignorable whitespace)
    /// appeared at the given position.
    InvalidByte { pos: usize, byte: u8 },
    /// A raw code outside `0..=4` appeared at the given position.
    InvalidCode { pos: usize, code: u8 },
    /// A [`SeqStore`](crate::SeqStore) reached its entry-id capacity
    /// (`u32` ids); the store is unchanged and remains usable.
    StoreFull {
        /// Entries already resident when the push was refused.
        entries: usize,
    },
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidByte { pos, byte } => {
                write!(f, "invalid sequence byte 0x{byte:02x} at position {pos}")
            }
            SeqError::InvalidCode { pos, code } => {
                write!(f, "invalid base code {code} at position {pos}")
            }
            SeqError::StoreFull { entries } => {
                write!(f, "sequence store is full ({entries} entries; ids are u32)")
            }
        }
    }
}

impl std::error::Error for SeqError {}

/// An owned DNA sequence, stored as one base code per byte.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Seq {
    codes: Vec<u8>,
}

impl Seq {
    /// Creates an empty sequence.
    pub fn new() -> Seq {
        Seq { codes: Vec::new() }
    }

    /// Parses ASCII (FASTA-style) text. Whitespace is skipped; any other
    /// non-letter byte is an error; non-ACGT letters become `N`.
    pub fn from_ascii(text: &[u8]) -> Result<Seq, SeqError> {
        let mut codes = Vec::with_capacity(text.len());
        for (pos, &byte) in text.iter().enumerate() {
            if byte.is_ascii_whitespace() {
                continue;
            }
            match Base::from_ascii(byte) {
                Some(b) => codes.push(b.code()),
                None => return Err(SeqError::InvalidByte { pos, byte }),
            }
        }
        Ok(Seq { codes })
    }

    /// Wraps a vector of raw base codes after validating it.
    pub fn from_codes(codes: Vec<u8>) -> Result<Seq, SeqError> {
        if let Some(pos) = codes.iter().position(|&c| c > 4) {
            return Err(SeqError::InvalidCode {
                pos,
                code: codes[pos],
            });
        }
        Ok(Seq { codes })
    }

    /// Wraps raw codes without validation.
    ///
    /// Callers must guarantee every code is `0..=4`; generators in this
    /// crate use it to avoid a pass over multi-megabase outputs.
    pub(crate) fn from_codes_unchecked(codes: Vec<u8>) -> Seq {
        debug_assert!(codes.iter().all(|&c| c <= 4));
        Seq { codes }
    }

    /// Builds a sequence from typed bases.
    pub fn from_bases(bases: &[Base]) -> Seq {
        Seq {
            codes: bases.iter().map(|b| b.code()).collect(),
        }
    }

    /// Number of bases.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The raw code slice (hot path input for every engine).
    #[inline(always)]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// The base at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Base> {
        self.codes.get(i).and_then(|&c| Base::from_code(c))
    }

    /// Extracts `range` as a new owned sequence.
    pub fn subseq(&self, range: std::ops::Range<usize>) -> Seq {
        Seq {
            codes: self.codes[range].to_vec(),
        }
    }

    /// The reverse of this sequence.
    pub fn reversed(&self) -> Seq {
        let mut codes = self.codes.clone();
        codes.reverse();
        Seq { codes }
    }

    /// The reverse complement of this sequence.
    pub fn rev_comp(&self) -> Seq {
        Seq {
            codes: self
                .codes
                .iter()
                .rev()
                .map(|&c| complement_code(c))
                .collect(),
        }
    }

    /// Renders the sequence as upper-case ASCII.
    pub fn to_ascii(&self) -> Vec<u8> {
        const LUT: [u8; 5] = [b'A', b'C', b'G', b'T', b'N'];
        self.codes.iter().map(|&c| LUT[c as usize]).collect()
    }

    /// GC fraction of the concrete (non-`N`) bases; `0.0` if none.
    pub fn gc_content(&self) -> f64 {
        let mut gc = 0usize;
        let mut concrete = 0usize;
        for &c in &self.codes {
            if c < 4 {
                concrete += 1;
                if c == 1 || c == 2 {
                    gc += 1;
                }
            }
        }
        if concrete == 0 {
            0.0
        } else {
            gc as f64 / concrete as f64
        }
    }

    /// A reversed zero-copy view (used by Hirschberg's backward pass).
    #[inline]
    pub fn rev_view(&self) -> RevView<'_> {
        RevView { codes: &self.codes }
    }

    /// The sequence's stable content hash (see
    /// [`content_hash`](crate::store::content_hash)) — the identity a
    /// result cache keys on.
    pub fn content_hash(&self) -> u64 {
        crate::store::content_hash(&self.codes)
    }
}

impl fmt::Debug for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ascii = self.to_ascii();
        let shown = if ascii.len() > 48 {
            format!(
                "{}…({} bp)",
                String::from_utf8_lossy(&ascii[..48]),
                ascii.len()
            )
        } else {
            String::from_utf8_lossy(&ascii).into_owned()
        };
        write!(f, "Seq({shown})")
    }
}

impl std::ops::Index<usize> for Seq {
    type Output = u8;
    #[inline(always)]
    fn index(&self, i: usize) -> &u8 {
        &self.codes[i]
    }
}

/// Zero-copy reversed view over a sequence's codes.
///
/// The Hirschberg traceback (paper §III-A, ref. \[24\]) aligns *reversed*
/// suffixes in its backward pass; AnySeq implements this by "reversing the
/// indexing in the sequence accessor function" (§III-C). `RevView` is that
/// accessor: no bytes are copied, the index arithmetic is inlined away.
#[derive(Clone, Copy)]
pub struct RevView<'a> {
    codes: &'a [u8],
}

impl<'a> RevView<'a> {
    /// Number of bases in the view.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code at reversed position `i`.
    #[inline(always)]
    pub fn at(&self, i: usize) -> u8 {
        self.codes[self.codes.len() - 1 - i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_whitespace() {
        let s = Seq::from_ascii(b"AC GT\nac\tgt").unwrap();
        assert_eq!(s.to_ascii(), b"ACGTACGT");
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = Seq::from_ascii(b"ACG-T").unwrap_err();
        assert_eq!(err, SeqError::InvalidByte { pos: 3, byte: b'-' });
    }

    #[test]
    fn codes_round_trip() {
        let s = Seq::from_codes(vec![0, 1, 2, 3, 4]).unwrap();
        assert_eq!(s.to_ascii(), b"ACGTN");
        assert!(Seq::from_codes(vec![0, 9]).is_err());
    }

    #[test]
    fn rev_comp_known() {
        let s = Seq::from_ascii(b"AACGTN").unwrap();
        assert_eq!(s.rev_comp().to_ascii(), b"NACGTT");
    }

    #[test]
    fn rev_comp_is_involution() {
        let s = Seq::from_ascii(b"ACGTTGCAACGTNNNACGT").unwrap();
        assert_eq!(s.rev_comp().rev_comp(), s);
    }

    #[test]
    fn subseq_and_index() {
        let s = Seq::from_ascii(b"ACGTACGT").unwrap();
        assert_eq!(s.subseq(2..6).to_ascii(), b"GTAC");
        assert_eq!(s[0], 0);
        assert_eq!(s[3], 3);
    }

    #[test]
    fn rev_view_matches_reversed() {
        let s = Seq::from_ascii(b"ACGGTTA").unwrap();
        let r = s.reversed();
        let v = s.rev_view();
        assert_eq!(v.len(), s.len());
        for i in 0..s.len() {
            assert_eq!(v.at(i), r[i]);
        }
    }

    #[test]
    fn gc_content_ignores_n() {
        let s = Seq::from_ascii(b"GGCCNNNN").unwrap();
        assert!((s.gc_content() - 1.0).abs() < 1e-12);
        let s = Seq::from_ascii(b"ATGC").unwrap();
        assert!((s.gc_content() - 0.5).abs() < 1e-12);
        assert_eq!(Seq::from_ascii(b"NNN").unwrap().gc_content(), 0.0);
    }

    #[test]
    fn empty_sequence_behaves() {
        let s = Seq::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.rev_comp(), s);
        assert!(s.rev_view().is_empty());
    }
}
