//! Mason-like Illumina read simulation.
//!
//! The paper's short-read benchmark (Fig. 5b) aligns 12.5 million pairs of
//! 150 bp Illumina reads simulated with Mason from GRCh38 chromosome 10.
//! [`ReadSim`] substitutes for Mason: it samples loci from a reference,
//! derives two reads per locus with independent Illumina-style error
//! profiles (position-dependent substitution rate ramping toward the 3'
//! end, rare short indels), so that each pair aligns with high but not
//! perfect identity — the same workload shape the paper measures.

use crate::seq::Seq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error/shape profile for simulated reads.
#[derive(Debug, Clone)]
pub struct ReadSimProfile {
    /// Read length in bases (paper: 150).
    pub read_len: usize,
    /// Substitution rate at the 5' end.
    pub sub_rate_start: f64,
    /// Substitution rate at the 3' end (Illumina quality decays along the read).
    pub sub_rate_end: f64,
    /// Per-base insertion rate.
    pub ins_rate: f64,
    /// Per-base deletion rate.
    pub del_rate: f64,
}

impl Default for ReadSimProfile {
    fn default() -> Self {
        ReadSimProfile {
            read_len: 150,
            sub_rate_start: 0.001,
            sub_rate_end: 0.01,
            ins_rate: 0.0002,
            del_rate: 0.0002,
        }
    }
}

/// A pair of reads sampled from the same locus, to be aligned against
/// each other (the paper's use case (ii)).
#[derive(Debug, Clone)]
pub struct ReadPair {
    /// First read.
    pub a: Seq,
    /// Second read.
    pub b: Seq,
    /// Origin offset in the reference (for diagnostics).
    pub origin: usize,
}

/// Simulates Illumina-style reads from a reference sequence.
pub struct ReadSim {
    profile: ReadSimProfile,
    rng: StdRng,
}

impl ReadSim {
    /// Creates a simulator with the given profile and seed.
    pub fn new(profile: ReadSimProfile, seed: u64) -> ReadSim {
        assert!(profile.read_len > 0, "read length must be positive");
        ReadSim {
            profile,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies the error profile to a perfect template read.
    fn sequence_read(&mut self, template: &[u8]) -> Seq {
        let n = template.len();
        let mut out = Vec::with_capacity(n + 4);
        let p = &self.profile;
        for (i, &base) in template.iter().enumerate() {
            let t = if n <= 1 {
                0.0
            } else {
                i as f64 / (n - 1) as f64
            };
            let sub_rate = p.sub_rate_start + t * (p.sub_rate_end - p.sub_rate_start);
            if self.rng.gen_bool(p.del_rate) {
                continue; // base dropped
            }
            if self.rng.gen_bool(p.ins_rate) {
                out.push(self.rng.gen_range(0..4u8));
            }
            if self.rng.gen_bool(sub_rate) {
                let mut b = self.rng.gen_range(0..4u8);
                if b == base {
                    b = (b + 1) % 4;
                }
                out.push(b);
            } else {
                out.push(base);
            }
        }
        Seq::from_codes(out).expect("generated codes are valid")
    }

    /// Samples `count` read pairs from `reference`.
    ///
    /// Both reads of a pair derive from the same locus with independent
    /// errors; the second read is drawn from the opposite strand half of
    /// the time and flipped back, modelling paired sampling.
    pub fn simulate_pairs(&mut self, reference: &Seq, count: usize) -> Vec<ReadPair> {
        let len = self.profile.read_len;
        assert!(
            reference.len() >= len,
            "reference ({} bp) shorter than read length ({len} bp)",
            reference.len()
        );
        let max_start = reference.len() - len;
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let origin = self.rng.gen_range(0..=max_start);
            let template = reference.subseq(origin..origin + len);
            let a = self.sequence_read(template.codes());
            let b = if self.rng.gen_bool(0.5) {
                self.sequence_read(template.codes())
            } else {
                let rc = template.rev_comp();
                self.sequence_read(rc.codes()).rev_comp()
            };
            pairs.push(ReadPair { a, b, origin });
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GenomeSim;

    fn reference() -> Seq {
        GenomeSim::new(5).generate(100_000)
    }

    #[test]
    fn pair_count_and_lengths() {
        let r = reference();
        let mut sim = ReadSim::new(ReadSimProfile::default(), 9);
        let pairs = sim.simulate_pairs(&r, 64);
        assert_eq!(pairs.len(), 64);
        for p in &pairs {
            // indels shift length by at most a few bases
            assert!((145..=155).contains(&p.a.len()), "len {}", p.a.len());
            assert!((145..=155).contains(&p.b.len()));
            assert!(p.origin + 150 <= r.len());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let r = reference();
        let p1 = ReadSim::new(ReadSimProfile::default(), 1).simulate_pairs(&r, 8);
        let p2 = ReadSim::new(ReadSimProfile::default(), 1).simulate_pairs(&r, 8);
        for (x, y) in p1.iter().zip(&p2) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
        }
    }

    #[test]
    fn reads_are_similar_to_each_other() {
        let r = reference();
        let mut sim = ReadSim::new(ReadSimProfile::default(), 2);
        let pairs = sim.simulate_pairs(&r, 32);
        // Positional identity is only meaningful for indel-free pairs
        // (an indel near a read end shifts every later position), so check
        // the aggregate: most equal-length pairs must be near-identical.
        let mut high_identity = 0usize;
        let mut comparable = 0usize;
        for p in &pairs {
            if p.a.len() != p.b.len() {
                continue;
            }
            comparable += 1;
            let n = p.a.len();
            let same = (0..n).filter(|&i| p.a[i] == p.b[i]).count();
            if same as f64 / n as f64 > 0.9 {
                high_identity += 1;
            }
        }
        assert!(comparable >= 16, "too few indel-free pairs: {comparable}");
        assert!(
            high_identity * 10 >= comparable * 8,
            "{high_identity}/{comparable} pairs above 90% identity"
        );
    }

    #[test]
    fn error_free_profile_reproduces_template() {
        let r = reference();
        let profile = ReadSimProfile {
            sub_rate_start: 0.0,
            sub_rate_end: 0.0,
            ins_rate: 0.0,
            del_rate: 0.0,
            ..Default::default()
        };
        let mut sim = ReadSim::new(profile, 3);
        for p in sim.simulate_pairs(&r, 16) {
            let t = r.subseq(p.origin..p.origin + 150);
            assert_eq!(p.a, t);
            assert_eq!(p.b, t);
        }
    }

    #[test]
    #[should_panic(expected = "shorter than read length")]
    fn rejects_tiny_reference() {
        let r = Seq::from_ascii(b"ACGT").unwrap();
        ReadSim::new(ReadSimProfile::default(), 0).simulate_pairs(&r, 1);
    }
}
