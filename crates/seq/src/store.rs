//! Zero-copy batch storage: the [`SeqStore`] arena plus the
//! [`BatchView`]/[`PairRef`] view types every batch engine consumes.
//!
//! The batch execution layer (`anyseq-engine`) used to move owned
//! [`Seq`] pairs around, which forced the scheduler to deep-clone every
//! pair's code vector when gathering a work unit — for exclusive units
//! holding multi-Mbp genomes that copy dominated wall time and doubled
//! peak memory. This module is the fix:
//!
//! * [`SeqStore`] — an append-only arena keeping all code bytes in one
//!   contiguous allocation, with per-entry offsets and a cheap content
//!   hash computed at ingest (the stable, hashable identity a result
//!   cache needs).
//! * [`PairRef`] — a pair of borrowed code slices (`&[u8]` query +
//!   subject), `Copy`, 32 bytes. Moving a `PairRef` moves pointers,
//!   never sequence bytes.
//! * [`BatchView`] — an ordered list of [`PairRef`]s over storage the
//!   caller keeps alive: the request shape of
//!   `Engine::score_batch`/`align_batch` and the `BatchScheduler`.
//!
//! Sequences are ingested (copied) exactly once — when they are read or
//! generated into a `Seq` or pushed into a `SeqStore` — and every layer
//! below that point works on borrowed slices.

use crate::seq::{Seq, SeqError};
use std::fmt;

/// FNV-1a 64-bit content hash over raw code bytes — the cheap, stable
/// identity used for result caching and store deduplication. Stable
/// across runs and platforms (unlike `std::hash::DefaultHasher`).
pub fn content_hash(codes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in codes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Index of one sequence inside a [`SeqStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqId(u32);

/// The id the next entry would get, or [`SeqError::StoreFull`] when
/// the `u32` id space is exhausted — the testable seam behind
/// [`SeqStore::push`]'s capacity check.
fn next_id(entries: usize) -> Result<SeqId, SeqError> {
    match u32::try_from(entries) {
        Ok(id) => Ok(SeqId(id)),
        Err(_) => Err(SeqError::StoreFull { entries }),
    }
}

impl SeqId {
    /// The raw index (entries are numbered in push order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only arena of code sequences: one contiguous byte buffer,
/// per-entry offsets, and a content hash per entry.
///
/// ```
/// use anyseq_seq::{Seq, SeqStore};
///
/// let mut store = SeqStore::new();
/// let q = store.push(&Seq::from_ascii(b"ACGT").unwrap()).unwrap();
/// let s = store.push_codes(&[0, 1, 2, 3, 3]).unwrap();
/// assert_eq!(store.get(q), &[0, 1, 2, 3]);
/// let view = store.view(&[(q, s)]);
/// assert_eq!(view.len(), 1);
/// assert_eq!(view.get(0).q, store.get(q));
/// ```
#[derive(Default, Clone)]
pub struct SeqStore {
    codes: Vec<u8>,
    /// `bounds[k]..bounds[k + 1]` delimits entry `k`; `bounds[0] == 0`.
    bounds: Vec<usize>,
    hashes: Vec<u64>,
}

impl SeqStore {
    /// An empty store.
    pub fn new() -> SeqStore {
        SeqStore {
            codes: Vec::new(),
            bounds: vec![0],
            hashes: Vec::new(),
        }
    }

    /// An empty store with `bytes` of code capacity pre-allocated.
    pub fn with_capacity(bytes: usize) -> SeqStore {
        SeqStore {
            codes: Vec::with_capacity(bytes),
            bounds: vec![0],
            hashes: Vec::new(),
        }
    }

    /// Most entries a store can hold: ids are `u32`, numbered from 0.
    pub const MAX_ENTRIES: usize = u32::MAX as usize + 1;

    /// Appends a sequence's codes (the one ingest copy) and returns its
    /// id.
    ///
    /// # Errors
    /// [`SeqError::StoreFull`] once [`SeqStore::MAX_ENTRIES`] entries
    /// are resident — a long-running ingest loop gets a recoverable
    /// error (and an unchanged, still-usable store) instead of a
    /// process abort.
    pub fn push(&mut self, seq: &Seq) -> Result<SeqId, SeqError> {
        self.push_valid(seq.codes())
    }

    /// Appends raw codes after validating them (`0..=4` per byte).
    ///
    /// # Errors
    /// [`SeqError::InvalidCode`] for out-of-range bytes;
    /// [`SeqError::StoreFull`] at entry-id capacity (see
    /// [`SeqStore::push`]).
    pub fn push_codes(&mut self, codes: &[u8]) -> Result<SeqId, SeqError> {
        if let Some(pos) = codes.iter().position(|&c| c > 4) {
            return Err(SeqError::InvalidCode {
                pos,
                code: codes[pos],
            });
        }
        self.push_valid(codes)
    }

    fn push_valid(&mut self, codes: &[u8]) -> Result<SeqId, SeqError> {
        let id = next_id(self.hashes.len())?;
        self.codes.extend_from_slice(codes);
        self.bounds.push(self.codes.len());
        self.hashes.push(content_hash(codes));
        Ok(id)
    }

    /// The code slice of entry `id`.
    #[inline]
    pub fn get(&self, id: SeqId) -> &[u8] {
        &self.codes[self.bounds[id.index()]..self.bounds[id.index() + 1]]
    }

    /// The content hash of entry `id` (computed once at push).
    #[inline]
    pub fn hash(&self, id: SeqId) -> u64 {
        self.hashes[id.index()]
    }

    /// Number of stored sequences.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the store holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Total code bytes resident in the arena.
    pub fn bytes(&self) -> usize {
        self.codes.len()
    }

    /// A borrowed pair over two entries.
    #[inline]
    pub fn pair(&self, q: SeqId, s: SeqId) -> PairRef<'_> {
        PairRef {
            q: self.get(q),
            s: self.get(s),
        }
    }

    /// A [`BatchView`] over the given pairs, in order.
    pub fn view(&self, pairs: &[(SeqId, SeqId)]) -> BatchView<'_> {
        BatchView {
            pairs: pairs.iter().map(|&(q, s)| self.pair(q, s)).collect(),
        }
    }
}

impl fmt::Debug for SeqStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SeqStore({} entries, {} bytes)",
            self.len(),
            self.bytes()
        )
    }
}

/// One borrowed query/subject pair: the unit every batch engine
/// consumes. `Copy` — moving it moves two fat pointers, never bytes.
///
/// The slices must hold base *codes* (`0..=4`, see `crate::alphabet`),
/// which every constructor in this crate guarantees; engines index
/// substitution tables with them.
#[derive(Debug, Clone, Copy)]
pub struct PairRef<'a> {
    /// Query codes.
    pub q: &'a [u8],
    /// Subject codes.
    pub s: &'a [u8],
}

impl<'a> PairRef<'a> {
    /// A pair over raw code slices (callers must supply valid codes).
    #[inline]
    pub fn new(q: &'a [u8], s: &'a [u8]) -> PairRef<'a> {
        PairRef { q, s }
    }

    /// Borrows an owned pair.
    #[inline]
    pub fn from_seqs(q: &'a Seq, s: &'a Seq) -> PairRef<'a> {
        PairRef {
            q: q.codes(),
            s: s.codes(),
        }
    }

    /// DP cells of a score-only pass over this pair: `|q| · |s|`.
    #[inline]
    pub fn cells(&self) -> u64 {
        self.q.len() as u64 * self.s.len() as u64
    }

    /// Total sequence bytes the pair references.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.q.len() + self.s.len()) as u64
    }
}

/// An ordered, borrowed batch of pairs — the request model of the batch
/// execution layer. Holds only [`PairRef`]s (32 bytes each); the code
/// bytes live in whatever storage the caller keeps alive (a
/// [`SeqStore`], a `Vec<(Seq, Seq)>`, memory-mapped input, …).
///
/// ```
/// use anyseq_seq::{BatchView, Seq};
///
/// let pairs = vec![(
///     Seq::from_ascii(b"ACGT").unwrap(),
///     Seq::from_ascii(b"ACGA").unwrap(),
/// )];
/// let view = BatchView::from_pairs(&pairs);
/// assert_eq!(view.len(), 1);
/// assert_eq!(view.get(0).cells(), 16);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchView<'a> {
    pairs: Vec<PairRef<'a>>,
}

impl<'a> BatchView<'a> {
    /// A view borrowing every pair of an owned batch (copies pointers,
    /// not sequence bytes).
    pub fn from_pairs(pairs: &'a [(Seq, Seq)]) -> BatchView<'a> {
        BatchView {
            pairs: pairs
                .iter()
                .map(|(q, s)| PairRef::from_seqs(q, s))
                .collect(),
        }
    }

    /// A view over pre-built pair references.
    pub fn from_refs(pairs: Vec<PairRef<'a>>) -> BatchView<'a> {
        BatchView { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the view holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The `k`-th pair.
    #[inline]
    pub fn get(&self, k: usize) -> PairRef<'a> {
        self.pairs[k]
    }

    /// The pairs as a slice (what `Engine` implementations take).
    #[inline]
    pub fn refs(&self) -> &[PairRef<'a>] {
        &self.pairs
    }

    /// Iterates over the pairs.
    pub fn iter(&self) -> impl Iterator<Item = PairRef<'a>> + '_ {
        self.pairs.iter().copied()
    }

    /// Total DP cells of a score-only pass over the whole batch.
    pub fn total_cells(&self) -> u64 {
        self.pairs.iter().map(|p| p.cells()).sum()
    }

    /// Total sequence bytes the batch keeps resident (each pair counted
    /// as referenced, shared storage counted per reference).
    pub fn resident_bytes(&self) -> u64 {
        self.pairs.iter().map(|p| p.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_round_trips_and_hashes() {
        let mut store = SeqStore::new();
        let a = Seq::from_ascii(b"ACGTACGT").unwrap();
        let b = Seq::from_ascii(b"TTTT").unwrap();
        let ia = store.push(&a).unwrap();
        let ib = store.push(&b).unwrap();
        let ia2 = store.push(&a).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.bytes(), 20);
        assert_eq!(store.get(ia), a.codes());
        assert_eq!(store.get(ib), b.codes());
        // Content hashing: equal content ⇒ equal hash, stable identity.
        assert_eq!(store.hash(ia), store.hash(ia2));
        assert_ne!(store.hash(ia), store.hash(ib));
        assert_eq!(store.hash(ia), content_hash(a.codes()));
    }

    #[test]
    fn store_rejects_invalid_codes() {
        let mut store = SeqStore::new();
        let err = store.push_codes(&[0, 1, 9]).unwrap_err();
        assert_eq!(err, SeqError::InvalidCode { pos: 2, code: 9 });
        assert!(store.is_empty());
        assert!(store.push_codes(&[0, 4]).is_ok());
    }

    #[test]
    fn empty_entries_are_distinct() {
        let mut store = SeqStore::new();
        let e1 = store.push_codes(&[]).unwrap();
        let e2 = store.push(&Seq::new()).unwrap();
        assert_ne!(e1, e2);
        assert!(store.get(e1).is_empty());
        assert_eq!(store.hash(e1), store.hash(e2));
    }

    #[test]
    fn view_borrows_without_copying() {
        let mut store = SeqStore::new();
        let a = store.push_codes(&[0, 1, 2, 3]).unwrap();
        let b = store.push_codes(&[3, 2, 1]).unwrap();
        let view = store.view(&[(a, b), (b, a)]);
        assert_eq!(view.len(), 2);
        // The refs alias the arena allocation — zero-copy by pointer
        // identity, not just by value.
        assert!(std::ptr::eq(view.get(0).q.as_ptr(), store.get(a).as_ptr()));
        assert!(std::ptr::eq(view.get(1).q.as_ptr(), store.get(b).as_ptr()));
        assert_eq!(view.total_cells(), 12 + 12);
        assert_eq!(view.resident_bytes(), 14);
    }

    #[test]
    fn view_from_owned_pairs_matches() {
        let pairs = vec![
            (
                Seq::from_ascii(b"ACGT").unwrap(),
                Seq::from_ascii(b"AC").unwrap(),
            ),
            (Seq::new(), Seq::from_ascii(b"T").unwrap()),
        ];
        let view = BatchView::from_pairs(&pairs);
        assert_eq!(view.len(), 2);
        assert_eq!(view.get(0).cells(), 8);
        assert_eq!(view.get(1).cells(), 0);
        assert_eq!(view.total_cells(), 8);
        for (k, p) in view.iter().enumerate() {
            assert_eq!(p.q, pairs[k].0.codes());
            assert_eq!(p.s, pairs[k].1.codes());
        }
    }

    #[test]
    fn store_full_is_a_typed_error_not_a_panic() {
        // The id allocator is the capacity check: pushing entry number
        // MAX_ENTRIES must surface `StoreFull` instead of aborting the
        // ingest loop. (Exercised through the seam — actually filling
        // a store would need >4 billion entries.)
        assert_eq!(next_id(0), Ok(SeqId(0)));
        assert_eq!(next_id(SeqStore::MAX_ENTRIES - 1), Ok(SeqId(u32::MAX)));
        assert_eq!(
            next_id(SeqStore::MAX_ENTRIES),
            Err(SeqError::StoreFull {
                entries: SeqStore::MAX_ENTRIES
            })
        );
        let err = next_id(SeqStore::MAX_ENTRIES).unwrap_err();
        assert!(err.to_string().contains("full"), "{err}");
    }

    #[test]
    fn fnv_hash_known_vectors() {
        // FNV-1a 64 reference values.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(&[0]), 0xaf63_bd4c_8601_b7df);
    }
}
