//! Canonical test-input generators shared by unit and integration
//! tests across the workspace (hidden from the public docs; not part
//! of the stable API).
//!
//! Several crates used to carry private copies of the same
//! `read_pairs` helper; this module is the single source so every
//! suite simulates batches the same way.

use crate::genome::GenomeSim;
use crate::readsim::{ReadSim, ReadSimProfile};
use crate::Seq;

/// Reference length the canonical read batches are simulated from.
pub const READ_PAIRS_REF_LEN: usize = 80_000;

/// Simulates `count` Illumina-style read pairs from a seeded synthetic
/// reference — the canonical short-read batch every engine test uses.
pub fn read_pairs(count: usize, seed: u64) -> Vec<(Seq, Seq)> {
    let reference = GenomeSim::new(seed).generate(READ_PAIRS_REF_LEN);
    let mut rs = ReadSim::new(ReadSimProfile::default(), seed ^ 0xbeef);
    rs.simulate_pairs(&reference, count)
        .into_iter()
        .map(|p| (p.a, p.b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_pairs_are_deterministic_and_shaped() {
        let a = read_pairs(10, 3);
        let b = read_pairs(10, 3);
        assert_eq!(a.len(), 10);
        for ((qa, sa), (qb, sb)) in a.iter().zip(&b) {
            assert_eq!(qa, qb);
            assert_eq!(sa, sb);
            assert!(qa.len() > 100 && sa.len() > 100);
        }
        assert_ne!(read_pairs(10, 4)[0].0, a[0].0);
    }
}
