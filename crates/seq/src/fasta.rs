//! Minimal FASTA/FASTQ reading and writing.
//!
//! The paper's evaluation pipeline loads long genome FASTA files and large
//! FASTQ read sets. This module provides buffered, allocation-conscious
//! parsers sufficient for that pipeline (multi-record, wrapped lines,
//! comments) without pulling in an external bio crate.

use crate::seq::{Seq, SeqError};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// One FASTA/FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Header text after `>` / `@`, up to the first whitespace.
    pub id: String,
    /// Remainder of the header line (may be empty).
    pub description: String,
    /// The sequence payload.
    pub seq: Seq,
    /// Phred quality string for FASTQ records, `None` for FASTA.
    pub quality: Option<Vec<u8>>,
}

/// Errors produced by the parsers.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence letters failed to decode.
    Seq { record: String, source: SeqError },
    /// Structural problem (missing header, truncated FASTQ record, ...).
    Format { line: usize, msg: String },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::Seq { record, source } => {
                write!(f, "bad sequence in record '{record}': {source}")
            }
            FastaError::Format { line, msg } => write!(f, "format error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

fn split_header(line: &str) -> (String, String) {
    let body = line[1..].trim_end();
    match body.split_once(char::is_whitespace) {
        Some((id, rest)) => (id.to_string(), rest.trim_start().to_string()),
        None => (body.to_string(), String::new()),
    }
}

/// Parses all FASTA records from a reader.
pub fn read_fasta<R: Read>(reader: R) -> Result<Vec<Record>, FastaError> {
    let reader = BufReader::new(reader);
    let mut records = Vec::new();
    let mut header: Option<(String, String)> = None;
    let mut body: Vec<u8> = Vec::new();

    let flush = |header: &mut Option<(String, String)>,
                 body: &mut Vec<u8>,
                 records: &mut Vec<Record>|
     -> Result<(), FastaError> {
        if let Some((id, description)) = header.take() {
            let seq = Seq::from_ascii(body).map_err(|source| FastaError::Seq {
                record: id.clone(),
                source,
            })?;
            records.push(Record {
                id,
                description,
                seq,
                quality: None,
            });
        }
        body.clear();
        Ok(())
    };

    for (line_idx, line) in reader.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = line?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('>') {
            flush(&mut header, &mut body, &mut records)?;
            header = Some(split_header(&format!(">{rest}")));
        } else {
            if header.is_none() {
                return Err(FastaError::Format {
                    line: line_no,
                    msg: "sequence data before first '>' header".into(),
                });
            }
            body.extend_from_slice(trimmed.as_bytes());
        }
    }
    flush(&mut header, &mut body, &mut records)?;
    Ok(records)
}

/// Parses all FASTQ records (4-line layout) from a reader.
pub fn read_fastq<R: Read>(reader: R) -> Result<Vec<Record>, FastaError> {
    let mut reader = BufReader::new(reader);
    let mut records = Vec::new();
    let mut line = String::new();
    let mut line_no = 0usize;

    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let head = line.trim_end();
        if head.is_empty() {
            continue;
        }
        if !head.starts_with('@') {
            return Err(FastaError::Format {
                line: line_no,
                msg: format!("expected '@' header, found {head:?}"),
            });
        }
        let (id, description) = split_header(head);

        let mut need = |what: &str, line: &mut String| -> Result<usize, FastaError> {
            line.clear();
            if reader.read_line(line)? == 0 {
                return Err(FastaError::Format {
                    line: line_no,
                    msg: format!("truncated record: missing {what}"),
                });
            }
            line_no += 1;
            Ok(line.trim_end().len())
        };

        need("sequence line", &mut line)?;
        let seq =
            Seq::from_ascii(line.trim_end().as_bytes()).map_err(|source| FastaError::Seq {
                record: id.clone(),
                source,
            })?;

        need("separator line", &mut line)?;
        if !line.trim_end().starts_with('+') {
            return Err(FastaError::Format {
                line: line_no,
                msg: "expected '+' separator".into(),
            });
        }

        let qlen = need("quality line", &mut line)?;
        if qlen != seq.len() {
            return Err(FastaError::Format {
                line: line_no,
                msg: format!("quality length {qlen} != sequence length {}", seq.len()),
            });
        }
        records.push(Record {
            id,
            description,
            seq,
            quality: Some(line.trim_end().as_bytes().to_vec()),
        });
    }
    Ok(records)
}

/// Writes records in FASTA format, wrapping sequence lines at `width`.
pub fn write_fasta<W: Write>(mut w: W, records: &[Record], width: usize) -> io::Result<()> {
    let width = width.max(1);
    for r in records {
        if r.description.is_empty() {
            writeln!(w, ">{}", r.id)?;
        } else {
            writeln!(w, ">{} {}", r.id, r.description)?;
        }
        let ascii = r.seq.to_ascii();
        for chunk in ascii.chunks(width) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fasta_multi_record_wrapped() {
        let text = b">seq1 first test\nACGT\nACGT\n;comment\n>seq2\nTTTT\n";
        let recs = read_fasta(&text[..]).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "seq1");
        assert_eq!(recs[0].description, "first test");
        assert_eq!(recs[0].seq.to_ascii(), b"ACGTACGT");
        assert_eq!(recs[1].id, "seq2");
        assert_eq!(recs[1].seq.len(), 4);
    }

    #[test]
    fn fasta_round_trip() {
        let text = b">a\nACGTACGTACGT\n>b desc here\nTTAA\n";
        let recs = read_fasta(&text[..]).unwrap();
        let mut out = Vec::new();
        write_fasta(&mut out, &recs, 5).unwrap();
        let again = read_fasta(&out[..]).unwrap();
        assert_eq!(recs, again);
    }

    #[test]
    fn fasta_rejects_headerless_data() {
        assert!(matches!(
            read_fasta(&b"ACGT\n"[..]),
            Err(FastaError::Format { line: 1, .. })
        ));
    }

    #[test]
    fn fastq_basic() {
        let text = b"@r1 pair\nACGT\n+\nIIII\n@r2\nTT\n+\nII\n";
        let recs = read_fastq(&text[..]).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].quality.as_deref(), Some(&b"IIII"[..]));
        assert_eq!(recs[1].seq.to_ascii(), b"TT");
    }

    #[test]
    fn fastq_length_mismatch_rejected() {
        let text = b"@r1\nACGT\n+\nII\n";
        assert!(matches!(
            read_fastq(&text[..]),
            Err(FastaError::Format { .. })
        ));
    }

    #[test]
    fn fastq_truncated_rejected() {
        let text = b"@r1\nACGT\n+\n";
        assert!(matches!(
            read_fastq(&text[..]),
            Err(FastaError::Format { .. })
        ));
    }
}
