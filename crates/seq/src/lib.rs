//! Sequence substrate for the `anyseq` workspace.
//!
//! This crate provides everything the alignment engines need to obtain
//! sequences: a compact DNA encoding ([`Base`], [`Seq`]), FASTA/FASTQ I/O
//! ([`fasta`]), and the synthetic workload generators that substitute for
//! the paper's proprietary inputs (real genome assemblies and Mason-simulated
//! Illumina reads): [`genome::GenomeSim`] and [`readsim::ReadSim`].
//!
//! The alignment cost of the dynamic-programming algorithms in
//! `anyseq-core` is *content independent* (every cell of the `n × m` matrix
//! is relaxed regardless of the characters), so seeded synthetic sequences
//! with realistic length/composition reproduce the paper's performance
//! behaviour faithfully; see `DESIGN.md` §3.

pub mod alphabet;
pub mod fasta;
pub mod genome;
pub mod readsim;
pub mod seq;
pub mod store;
#[doc(hidden)]
pub mod testsupport;

pub use alphabet::Base;
pub use seq::{Seq, SeqError};
pub use store::{content_hash, BatchView, PairRef, SeqId, SeqStore};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::alphabet::Base;
    pub use crate::genome::GenomeSim;
    pub use crate::readsim::{ReadPair, ReadSim, ReadSimProfile};
    pub use crate::seq::{Seq, SeqError};
    pub use crate::store::{BatchView, PairRef, SeqId, SeqStore};
}
