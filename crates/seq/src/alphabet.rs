//! The DNA alphabet and its compact per-base encoding.
//!
//! Bases are stored as one byte per base with codes `A=0, C=1, G=2, T=3,
//! N=4`. Keeping the code space dense at the low end lets substitution
//! matrices be indexed directly (`matrix[q as usize][s as usize]`) without a
//! translation table — the same trick AnySeq's Impala code uses to let the
//! partial evaluator fold lookups.

/// Number of distinct base codes (`A`, `C`, `G`, `T`, `N`).
pub const ALPHABET_SIZE: usize = 5;

/// A single DNA base.
///
/// `N` models any IUPAC ambiguity code: FASTA inputs map every non-ACGT
/// letter to `N`, matching common aligner behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code 0).
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Guanine (code 2).
    G = 2,
    /// Thymine (code 3).
    T = 3,
    /// Any / unknown base (code 4).
    N = 4,
}

impl Base {
    /// All non-ambiguous bases, in code order.
    pub const ACGT: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decodes an ASCII letter (case-insensitive). Every letter outside
    /// `ACGTacgt` becomes [`Base::N`]; non-alphabetic bytes are rejected.
    #[inline]
    pub fn from_ascii(byte: u8) -> Option<Base> {
        match byte {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            b'U' | b'u' => Some(Base::T), // RNA input tolerated
            b if b.is_ascii_alphabetic() => Some(Base::N),
            _ => None,
        }
    }

    /// Re-encodes a raw code (`0..=4`) as a `Base`.
    #[inline]
    pub fn from_code(code: u8) -> Option<Base> {
        match code {
            0 => Some(Base::A),
            1 => Some(Base::C),
            2 => Some(Base::G),
            3 => Some(Base::T),
            4 => Some(Base::N),
            _ => None,
        }
    }

    /// The numeric code of this base (`0..=4`).
    #[inline(always)]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        const LUT: [u8; ALPHABET_SIZE] = [b'A', b'C', b'G', b'T', b'N'];
        LUT[self as usize]
    }

    /// Watson–Crick complement; `N` is its own complement.
    #[inline(always)]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
            Base::N => Base::N,
        }
    }

    /// Whether the base is one of the four concrete nucleotides.
    #[inline]
    pub fn is_concrete(self) -> bool {
        !matches!(self, Base::N)
    }
}

/// Complements a raw base code without round-tripping through [`Base`].
/// Used in hot re-indexing paths (reverse-complement sequence views).
#[inline(always)]
pub fn complement_code(code: u8) -> u8 {
    // A<->T is 0<->3, C<->G is 1<->2, so 3 - code; N (4) stays 4.
    if code < 4 {
        3 - code
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        for &b in &[Base::A, Base::C, Base::G, Base::T, Base::N] {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
        }
    }

    #[test]
    fn lowercase_and_rna_accepted() {
        assert_eq!(Base::from_ascii(b'a'), Some(Base::A));
        assert_eq!(Base::from_ascii(b'u'), Some(Base::T));
        assert_eq!(Base::from_ascii(b'U'), Some(Base::T));
    }

    #[test]
    fn ambiguity_codes_become_n() {
        for b in [b'R', b'y', b'W', b's', b'K', b'm', b'B', b'd', b'H', b'v'] {
            assert_eq!(Base::from_ascii(b), Some(Base::N));
        }
    }

    #[test]
    fn non_alphabetic_rejected() {
        for b in [b' ', b'\n', b'-', b'1', b'*', 0u8, 200u8] {
            assert_eq!(Base::from_ascii(b), None, "byte {b:?}");
        }
    }

    #[test]
    fn complement_is_involution() {
        for &b in &[Base::A, Base::C, Base::G, Base::T, Base::N] {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn code_round_trip_and_complement_code() {
        for code in 0u8..5 {
            let b = Base::from_code(code).unwrap();
            assert_eq!(b.code(), code);
            assert_eq!(complement_code(code), b.complement().code());
        }
        assert_eq!(Base::from_code(5), None);
    }
}
