//! Seeded synthetic genome generation.
//!
//! The paper benchmarks on six public genome assemblies (Table I,
//! 4.4–50 Mbp). Shipping those assemblies is impractical and unnecessary:
//! DP alignment relaxes every cell of the `n × m` matrix regardless of
//! content, so runtime depends only on lengths, while traceback path shape
//! depends mildly on composition. [`GenomeSim`] therefore produces genomes
//! with controllable GC content and repeat structure (tandem repeats and
//! segmental duplications — the features that make real genomes non-i.i.d.),
//! and [`GenomeSim::mutate`] derives an evolutionarily "related" sequence so
//! long-genome pairs have realistic high-identity alignments.

use crate::seq::Seq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration + generator for synthetic genomes.
#[derive(Debug, Clone)]
pub struct GenomeSim {
    /// GC fraction of the background composition (0..1).
    pub gc_content: f64,
    /// Fraction of the genome covered by tandem repeats (0..1).
    pub tandem_fraction: f64,
    /// Fraction of the genome covered by segmental duplications (0..1).
    pub duplication_fraction: f64,
    rng: StdRng,
}

impl GenomeSim {
    /// A generator with human-like defaults (41 % GC, ~5 % tandem,
    /// ~5 % duplication) and the given seed.
    pub fn new(seed: u64) -> GenomeSim {
        GenomeSim {
            gc_content: 0.41,
            tandem_fraction: 0.05,
            duplication_fraction: 0.05,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the GC content.
    pub fn with_gc(mut self, gc: f64) -> GenomeSim {
        assert!((0.0..=1.0).contains(&gc), "gc must be in 0..=1");
        self.gc_content = gc;
        self
    }

    /// Overrides the repeat structure fractions.
    pub fn with_repeats(mut self, tandem: f64, duplication: f64) -> GenomeSim {
        assert!((0.0..=1.0).contains(&tandem));
        assert!((0.0..=1.0).contains(&duplication));
        assert!(
            tandem + duplication < 1.0,
            "repeat fractions must leave background"
        );
        self.tandem_fraction = tandem;
        self.duplication_fraction = duplication;
        self
    }

    #[inline]
    fn random_base(&mut self) -> u8 {
        // GC split evenly between C and G, AT evenly between A and T.
        if self.rng.gen_bool(self.gc_content) {
            if self.rng.gen_bool(0.5) {
                1
            } else {
                2
            }
        } else if self.rng.gen_bool(0.5) {
            0
        } else {
            3
        }
    }

    /// Generates a genome of exactly `len` bases.
    pub fn generate(&mut self, len: usize) -> Seq {
        let mut codes = Vec::with_capacity(len);
        while codes.len() < len {
            let remaining = len - codes.len();
            let roll: f64 = self.rng.gen();
            if roll < self.tandem_fraction && remaining >= 8 {
                self.emit_tandem(&mut codes, remaining);
            } else if roll < self.tandem_fraction + self.duplication_fraction
                && codes.len() >= 1000
                && remaining >= 1000
            {
                self.emit_duplication(&mut codes, remaining);
            } else {
                let run = remaining.min(256 + self.rng.gen_range(0..256));
                for _ in 0..run {
                    let b = self.random_base();
                    codes.push(b);
                }
            }
        }
        codes.truncate(len);
        Seq::from_codes_unchecked(codes)
    }

    /// Appends a tandem repeat: a short unit (2–12 bp) copied 4–50 times.
    fn emit_tandem(&mut self, codes: &mut Vec<u8>, remaining: usize) {
        let unit_len = self.rng.gen_range(2..=12usize);
        let copies = self.rng.gen_range(4..=50usize);
        let unit: Vec<u8> = (0..unit_len).map(|_| self.random_base()).collect();
        let total = (unit_len * copies).min(remaining);
        for i in 0..total {
            codes.push(unit[i % unit_len]);
        }
    }

    /// Appends a (lightly mutated) copy of an earlier segment.
    fn emit_duplication(&mut self, codes: &mut Vec<u8>, remaining: usize) {
        let max_len = remaining.min(codes.len()).min(20_000);
        let dup_len = self.rng.gen_range(500..=max_len.clamp(501, 20_000));
        let dup_len = dup_len.min(max_len);
        let start = self.rng.gen_range(0..=codes.len() - dup_len);
        let mut copy: Vec<u8> = codes[start..start + dup_len].to_vec();
        // ~1% divergence within the duplicated copy.
        for b in copy.iter_mut() {
            if self.rng.gen_bool(0.01) {
                *b = self.rng.gen_range(0..4u8);
            }
        }
        codes.extend_from_slice(&copy);
    }

    /// Derives a related sequence by applying substitutions and short
    /// indels at the given `divergence` rate (events per base).
    ///
    /// Events split ~80 % substitutions, ~10 % insertions, ~10 % deletions;
    /// indel lengths are geometric-ish (1–6 bp), matching simple molecular
    /// evolution models.
    pub fn mutate(&mut self, template: &Seq, divergence: f64) -> Seq {
        assert!((0.0..=1.0).contains(&divergence));
        let mut out = Vec::with_capacity(template.len() + template.len() / 16);
        let codes = template.codes();
        let mut i = 0usize;
        while i < codes.len() {
            if self.rng.gen_bool(divergence) {
                let event: f64 = self.rng.gen();
                if event < 0.8 {
                    // substitution to a different base
                    let old = codes[i];
                    let mut new = self.rng.gen_range(0..4u8);
                    if new == old {
                        new = (new + 1) % 4;
                    }
                    out.push(new);
                    i += 1;
                } else if event < 0.9 {
                    // insertion before current base
                    let len = self.rng.gen_range(1..=6usize);
                    for _ in 0..len {
                        let b = self.random_base();
                        out.push(b);
                    }
                } else {
                    // deletion of a short run
                    let len = self.rng.gen_range(1..=6usize).min(codes.len() - i);
                    i += len;
                }
            } else {
                out.push(codes[i]);
                i += 1;
            }
        }
        Seq::from_codes_unchecked(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exact_length() {
        let mut sim = GenomeSim::new(1);
        for len in [0usize, 1, 7, 100, 10_000, 123_457] {
            assert_eq!(sim.generate(len).len(), len);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = GenomeSim::new(42).generate(5000);
        let b = GenomeSim::new(42).generate(5000);
        let c = GenomeSim::new(43).generate(5000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gc_content_tracks_parameter() {
        for gc in [0.2, 0.5, 0.8] {
            let g = GenomeSim::new(7)
                .with_gc(gc)
                .with_repeats(0.0, 0.0)
                .generate(200_000);
            assert!(
                (g.gc_content() - gc).abs() < 0.02,
                "target {gc}, got {}",
                g.gc_content()
            );
        }
    }

    #[test]
    fn mutate_zero_divergence_is_identity() {
        let mut sim = GenomeSim::new(3);
        let g = sim.generate(4000);
        let m = sim.mutate(&g, 0.0);
        assert_eq!(g, m);
    }

    #[test]
    fn mutate_divergence_changes_sequence_but_keeps_scale() {
        let mut sim = GenomeSim::new(3);
        let g = sim.generate(20_000);
        let m = sim.mutate(&g, 0.02);
        assert_ne!(g, m);
        let ratio = m.len() as f64 / g.len() as f64;
        assert!((0.95..1.05).contains(&ratio), "length ratio {ratio}");
        // Hamming distance over the common prefix should be in the right
        // ballpark (subs dominate; indels shift frames so just bound it).
        let diff: usize = g
            .codes()
            .iter()
            .zip(m.codes())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff > 0);
    }

    #[test]
    fn repeats_create_local_periodicity() {
        // With heavy tandem fraction, some position must repeat with a
        // small period somewhere; probabilistic but overwhelmingly likely.
        let g = GenomeSim::new(11).with_repeats(0.5, 0.0).generate(50_000);
        let codes = g.codes();
        let mut found = false;
        'outer: for period in 2..=12usize {
            let mut run = 0usize;
            for i in period..codes.len() {
                if codes[i] == codes[i - period] {
                    run += 1;
                    if run > 40 {
                        found = true;
                        break 'outer;
                    }
                } else {
                    run = 0;
                }
            }
        }
        assert!(found, "expected tandem periodicity");
    }
}
