//! `anyseq` — command-line pairwise aligner over the anyseq library.
//!
//! ```text
//! anyseq align --query q.fa --subject s.fa [--type global|local|semiglobal]
//!              [--match N] [--mismatch N] [--gap N | --open N --extend N]
//!              [--score-only] [--threads N]
//! anyseq batch (--pairs reads.fa | --query q.fa --subject s.fa | --simulate N)
//!              [--type KIND] [--match N] [--mismatch N]
//!              [--gap N | --open N --extend N]
//!              [--backend auto|scalar|simd|wavefront|gpu-sim]
//!              [--auto-crossover CELLS] [--xdrop X] [--shard-cells CELLS]
//!              [--cache-mb N] [--threads N] [--alignments] [--seed N] [--quiet]
//!              [--metrics [PATH]] [--trace-out PATH] [--stats-json [PATH]]
//! anyseq simulate --length N [--gc F] [--seed N]    # emit a FASTA genome
//! anyseq serve --socket PATH [--window-ms N] [--target-pairs N]
//!              [--batch-mb N] [--queue-mb N] [--max-frame-mb N]
//!              [--backend NAME] [--auto-crossover CELLS] [--xdrop X]
//!              [--shard-cells CELLS] [--cache-mb N] [--threads N] [--slow-ms N]
//! anyseq serve-ctl --socket PATH (--stats | --health | --dump)
//!                  [--out PATH]
//! ```
//!
//! `batch` drives the `anyseq-engine` subsystem: pairs are length-
//! binned, sharded over a worker pool, dispatched to the selected
//! backend (with scalar fallback) and printed in input order. Inputs
//! are ingested once into a `SeqStore` arena and dispatched as a
//! borrowed zero-copy `BatchView`; `--auto-crossover CELLS` tunes the
//! per-pair DP size at which `auto` dispatch switches from the SIMD
//! lanes to the exclusive wavefront (must be ≥ 1 — 0 would serialize
//! every pair through the exclusive path and is rejected).
//! `--xdrop X` enables X-drop early termination on the SIMD score
//! path for semi-global/local batches: a lane whose row maximum falls
//! more than X below its running best retires with the best-so-far —
//! faster on diverged pairs, inexact by design (a late-recovering
//! alignment may be missed), so it is opt-in and never touches global
//! batches, tracebacks or the scalar reference. `--xdrop 0` is
//! rejected (it would retire every lane immediately; omit the flag for
//! the exact path).
//! `--shard-cells CELLS` bounds the exclusive wavefront's resident
//! working set: a pair whose DP matrix exceeds CELLS is cut into
//! subject slabs stitched through serialized border seams — scores and
//! CIGARs stay bit-identical to the unsharded run while peak memory
//! drops to one slab's tile borders. Values below one 512×512 tile are
//! clamped up; `--shard-cells 0` is rejected (omit the flag for
//! unsharded execution).
//! `--cache-mb N` enables the content-hash result cache: repeated
//! `(scheme, query, subject)` pairs — PCR duplicates, resequenced
//! reads — are served from an N-MiB LRU instead of re-running the DP,
//! with `cache.hits`/`cache.misses` reported in the summary. The
//! execution summary (per-backend GCUPS, utilization, fallbacks and
//! backend counters such as the SIMD traceback's band telemetry) goes
//! to stderr. With `--alignments` (alias `--align`), short-read
//! global batches stay on the SIMD lanes end to end: scores and
//! CIGARs come from the banded lane-packed traceback.
//!
//! Observability (any of these switches it on for the run):
//! `--metrics [PATH]` exposes the dispatch's metrics registry in
//! Prometheus text format (stage-duration histograms per backend and
//! length bin, batch counters, per-shard cache gauges) — to stderr, or
//! to PATH if given; `--trace-out PATH` writes the batch's stage spans
//! as a Chrome-trace JSON (load in `chrome://tracing` / Perfetto, one
//! lane per worker); `--stats-json [PATH]` dumps the run's
//! `BatchStats` as a stable-keyed JSON object.
//!
//! `serve` runs the `anyseq-serve` daemon on a unix socket: concurrent
//! client requests are coalesced into engine batches by a deadline
//! micro-batching window (`--window-ms`, flushed early at
//! `--target-pairs` pairs or `--batch-mb` MiB) behind a queued-bytes
//! admission gate (`--queue-mb`; overflow gets a typed `Overloaded`
//! refusal). One engine dispatch, result cache and metrics registry
//! are shared across all connections; the wire protocol's `STATS` verb
//! scrapes the Prometheus exposition. Every admitted request is traced
//! through `decode → window_wait → queue_wait → dispatch →
//! kernel_share → reply_write`; requests slower than `--slow-ms`
//! (default 100) land in a bounded slow-request log.
//!
//! `serve-ctl` is the companion inspector for a running daemon:
//! `--stats` scrapes the Prometheus exposition, `--health` returns a
//! JSON health document (queue depth, window occupancy, slow-request
//! log), and `--dump` pulls the flight recorder as Chrome-trace JSON
//! (last 256 requests / 64 batches) — write it to a file with `--out`
//! and load it in `chrome://tracing` or Perfetto.

use anyseq_core::kind::{Global, Local, SemiGlobal};
use anyseq_core::prelude::*;
use anyseq_engine::{
    BackendId, BatchCfg, BatchScheduler, DispatchPolicy, GapSpec, KindSpec, Policy, SchemeSpec,
};
use anyseq_seq::fasta;
use anyseq_seq::genome::GenomeSim;
use anyseq_seq::{Seq, SeqId, SeqStore};
use anyseq_wavefront::{ParallelCfg, ParallelExt};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  anyseq align --query FILE --subject FILE [--type global|local|semiglobal]\n\
         \x20              [--match N] [--mismatch N] [--gap N | --open N --extend N]\n\
         \x20              [--score-only] [--threads N]\n\
         \x20 anyseq batch (--pairs FILE | --query FILE --subject FILE | --simulate N)\n\
         \x20              [--type KIND] [--match N] [--mismatch N]\n\
         \x20              [--gap N | --open N --extend N]\n\
         \x20              [--backend auto|scalar|simd|wavefront|gpu-sim]\n\
         \x20              [--auto-crossover CELLS] [--xdrop X] [--shard-cells CELLS]\n\
         \x20              [--cache-mb N] [--threads N] [--alignments] [--seed N] [--quiet]\n\
         \x20              [--metrics [PATH]] [--trace-out PATH] [--stats-json [PATH]]\n\
         \x20 anyseq simulate --length N [--gc F] [--seed N]\n\
         \x20 anyseq serve --socket PATH [--window-ms N] [--target-pairs N]\n\
         \x20              [--batch-mb N] [--queue-mb N] [--max-frame-mb N]\n\
         \x20              [--backend NAME] [--auto-crossover CELLS] [--xdrop X]\n\
         \x20              [--shard-cells CELLS] [--cache-mb N] [--threads N] [--slow-ms N]\n\
         \x20 anyseq serve-ctl --socket PATH (--stats | --health | --dump)\n\
         \x20              [--out PATH]"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut k = 0;
    while k < args.len() {
        let key = args[k].trim_start_matches("--").to_string();
        if !args[k].starts_with("--") {
            usage();
        }
        if k + 1 < args.len() && !args[k + 1].starts_with("--") {
            map.insert(key, args[k + 1].clone());
            k += 2;
        } else {
            map.insert(key, "true".to_string());
            k += 1;
        }
    }
    map
}

fn load_first_record(path: &str) -> Seq {
    match load_records(path).into_iter().next() {
        Some(r) => r.seq,
        None => {
            eprintln!("{path} contains no FASTA records");
            exit(1)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("align") => cmd_align(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("serve-ctl") => cmd_serve_ctl(&args[1..]),
        _ => usage(),
    }
}

fn load_records(path: &str) -> Vec<fasta::Record> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1)
    });
    fasta::read_fasta(file).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1)
    })
}

/// Numeric flag with a default: absent ⇒ `default`, present but
/// malformed ⇒ error + usage (never silently substitute the default).
fn numeric_flag<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--{key}: invalid value {v:?}");
            usage()
        }),
    }
}

/// Pushes one sequence into the arena, turning a full store (`u32` id
/// space exhausted) into a clean CLI error instead of a panic.
fn store_push(store: &mut SeqStore, seq: &Seq) -> SeqId {
    store.push(seq).unwrap_or_else(|e| {
        eprintln!("cannot ingest sequence: {e}");
        exit(1)
    })
}

/// Assembles the batch input into a `SeqStore` arena (the single
/// ingest copy — dispatch below is zero-copy): an interleaved pair
/// file, two matched files, or a simulated read set.
fn batch_store(flags: &HashMap<String, String>) -> (SeqStore, Vec<(SeqId, SeqId)>) {
    let seed: u64 = numeric_flag(flags, "seed", 42);
    let mut store = SeqStore::new();
    let mut ids: Vec<(SeqId, SeqId)> = Vec::new();
    if let Some(path) = flags.get("pairs") {
        let records = load_records(path);
        if !records.len().is_multiple_of(2) {
            eprintln!(
                "{path}: --pairs expects interleaved query/subject records, got an odd count ({})",
                records.len()
            );
            exit(1);
        }
        let mut records = records.into_iter();
        while let (Some(q), Some(s)) = (records.next(), records.next()) {
            ids.push((
                store_push(&mut store, &q.seq),
                store_push(&mut store, &s.seq),
            ));
        }
    } else if let (Some(qp), Some(sp)) = (flags.get("query"), flags.get("subject")) {
        let queries = load_records(qp);
        let subjects = load_records(sp);
        if queries.len() != subjects.len() {
            eprintln!(
                "record count mismatch: {qp} has {}, {sp} has {}",
                queries.len(),
                subjects.len()
            );
            exit(1);
        }
        for (q, s) in queries.into_iter().zip(subjects) {
            ids.push((
                store_push(&mut store, &q.seq),
                store_push(&mut store, &s.seq),
            ));
        }
    } else if flags.contains_key("simulate") {
        let count: usize = numeric_flag(flags, "simulate", 0);
        let reference = GenomeSim::new(seed).generate(2_000_000.min(count.max(1) * 400));
        let mut sim = anyseq_seq::readsim::ReadSim::new(
            anyseq_seq::readsim::ReadSimProfile::default(),
            seed ^ 0x5eed,
        );
        for p in sim.simulate_pairs(&reference, count) {
            ids.push((store_push(&mut store, &p.a), store_push(&mut store, &p.b)));
        }
    } else {
        usage()
    }
    (store, ids)
}

fn cmd_batch(args: &[String]) {
    let flags = parse_flags(args);
    let (store, ids) = batch_store(&flags);
    let view = store.view(&ids);
    let ma: i32 = numeric_flag(&flags, "match", 2);
    let mi: i32 = numeric_flag(&flags, "mismatch", -1);
    let gap = if flags.contains_key("gap") {
        GapSpec::Linear {
            gap: numeric_flag(&flags, "gap", -1),
        }
    } else if flags.contains_key("open") || flags.contains_key("extend") {
        GapSpec::Affine {
            open: numeric_flag(&flags, "open", -2),
            extend: numeric_flag(&flags, "extend", -1),
        }
    } else {
        // Same default gap model as `anyseq align`, so the two
        // subcommands agree on scores when no gap flags are given.
        GapSpec::Affine {
            open: -2,
            extend: -1,
        }
    };
    let kind = match flags.get("type") {
        None => KindSpec::Global,
        Some(t) => KindSpec::parse(t).unwrap_or_else(|| {
            eprintln!("unknown alignment type {t}");
            usage()
        }),
    };
    let spec = SchemeSpec {
        kind,
        match_score: ma,
        mismatch: mi,
        gap,
    };
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = numeric_flag(&flags, "threads", default_threads);
    let policy = match flags.get("backend").map(String::as_str) {
        None | Some("auto") => Policy::Auto,
        Some(name) => match BackendId::parse(name) {
            Some(id) => Policy::Fixed(id),
            None => {
                eprintln!("unknown backend {name}");
                usage()
            }
        },
    };
    let mut policy_cfg = DispatchPolicy::new(policy);
    if flags.contains_key("auto-crossover") {
        let crossover: u64 = numeric_flag(&flags, "auto-crossover", policy_cfg.auto_crossover);
        // 0 would classify every pair as wavefront-sized and serialize
        // the batch through the exclusive path; refuse it up front
        // instead of silently clamping a user-supplied value.
        if crossover == 0 {
            eprintln!("--auto-crossover: must be >= 1 DP cells (0 would route every pair to the exclusive wavefront)");
            usage()
        }
        policy_cfg = policy_cfg.auto_crossover(crossover);
    }
    if flags.contains_key("xdrop") {
        let xdrop: i32 = numeric_flag(&flags, "xdrop", 0);
        // 0 would retire every lane at the first row below its running
        // best and corrupt essentially every score; "off" is expressed
        // by omitting the flag, so refuse instead of silently clamping.
        if xdrop < 1 {
            eprintln!("--xdrop: must be >= 1 (omit the flag for the exact path)");
            usage()
        }
        policy_cfg = policy_cfg.xdrop(xdrop);
    }
    if flags.contains_key("shard-cells") {
        let cells: u64 = numeric_flag(&flags, "shard-cells", 0);
        // "Off" is expressed by omitting the flag (0 disables sharding
        // everywhere in the stack); refuse an explicit 0 instead of
        // silently interpreting it, mirroring --auto-crossover/--xdrop.
        if cells == 0 {
            eprintln!(
                "--shard-cells: must be >= 1 DP cells (omit the flag for unsharded execution)"
            );
            usage()
        }
        policy_cfg = policy_cfg.shard_cells(cells);
    }
    policy_cfg = policy_cfg.cache_mb(numeric_flag(&flags, "cache-mb", 0));
    // Any observability sink switches the span/metrics layer on; with
    // none requested the instrumented pipeline stays a no-op.
    let observe = ["metrics", "trace-out", "stats-json"]
        .iter()
        .any(|k| flags.contains_key(*k));
    policy_cfg = policy_cfg.observe(observe);
    let dispatch = policy_cfg.standard();
    let scheduler = BatchScheduler::new(BatchCfg::threads(threads));

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    use std::io::Write;
    // A failed stdout write means the consumer went away (e.g.
    // `| head`): exit quietly, not with a panic.
    let mut emit = |line: std::fmt::Arguments<'_>| {
        if out.write_fmt(line).and_then(|()| writeln!(out)).is_err() {
            exit(0);
        }
    };
    // A terminal engine refusal (e.g. `UnitTooLarge` from a backend
    // with a hard per-unit bound) becomes a clean CLI error, not a
    // panic: the message already says which knob to turn.
    let refused = |e: anyseq_engine::EngineError| -> ! {
        eprintln!("batch failed: {e}");
        exit(1)
    };
    let stats = if flags.contains_key("align") || flags.contains_key("alignments") {
        let run = scheduler
            .try_align_batch(&dispatch, &spec, &view)
            .unwrap_or_else(|e| refused(e));
        for (k, aln) in run.results.iter().enumerate() {
            emit(format_args!("{k}\t{}\t{}", aln.score, aln.cigar()));
        }
        run.stats
    } else {
        let run = scheduler
            .try_score_batch(&dispatch, &spec, &view)
            .unwrap_or_else(|e| refused(e));
        for (k, score) in run.results.iter().enumerate() {
            emit(format_args!("{k}\t{score}"));
        }
        run.stats
    };
    if out.flush().is_err() {
        exit(0);
    }
    if !flags.contains_key("quiet") {
        // The one summary renderer the bench binaries share too.
        eprintln!(
            "{}",
            anyseq_engine::summary_with_utilization(&stats, threads)
        );
    }
    if let Some(dest) = flags.get("stats-json") {
        emit_report(dest, &anyseq_engine::stats_json(&stats, threads));
    }
    if let Some(path) = flags.get("trace-out") {
        if path == "true" {
            eprintln!("--trace-out needs a file path (trace JSON does not mix with the summary)");
            usage()
        }
        write_file(path, &anyseq_obs::chrome_trace(&stats.spans));
    }
    if let Some(dest) = flags.get("metrics") {
        let registry = dispatch
            .metrics()
            .expect("--metrics enables the dispatch registry");
        emit_report(dest, &anyseq_obs::prometheus_text(&registry.snapshot()));
    }
}

/// Writes a report either to stderr (bare flag) or to a file (flag
/// with a PATH value).
fn emit_report(dest: &str, text: &str) {
    if dest == "true" {
        eprint!("{text}");
    } else {
        write_file(dest, text);
    }
}

fn write_file(path: &str, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("cannot write {path}: {e}");
        exit(1)
    }
}

fn cmd_simulate(args: &[String]) {
    let flags = parse_flags(args);
    let length: usize = flags
        .get("length")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let gc: f64 = numeric_flag(&flags, "gc", 0.41);
    let seed: u64 = numeric_flag(&flags, "seed", 42);
    let genome = GenomeSim::new(seed).with_gc(gc).generate(length);
    let record = fasta::Record {
        id: format!("synthetic_{length}bp_seed{seed}"),
        description: format!("gc={gc}"),
        seq: genome,
        quality: None,
    };
    fasta::write_fasta(std::io::stdout().lock(), &[record], 70).expect("stdout write");
}

fn cmd_serve(args: &[String]) {
    let flags = parse_flags(args);
    let socket = flags.get("socket").unwrap_or_else(|| usage());

    let mut window = anyseq_serve::WindowCfg::default();
    window.max_delay_ns = numeric_flag(&flags, "window-ms", 2u64) * 1_000_000;
    window.target_pairs = numeric_flag(&flags, "target-pairs", window.target_pairs);
    window.max_batch_bytes = numeric_flag(&flags, "batch-mb", 8u64) * (1 << 20);
    window.queue_budget_bytes = numeric_flag(&flags, "queue-mb", 64u64) * (1 << 20);

    let policy = match flags.get("backend").map(String::as_str) {
        None | Some("auto") => Policy::Auto,
        Some(name) => match BackendId::parse(name) {
            Some(id) => Policy::Fixed(id),
            None => {
                eprintln!("unknown backend {name}");
                usage()
            }
        },
    };
    // The daemon always observes: the STATS verb is part of the wire
    // protocol, so the engine registry must exist.
    let mut policy_cfg = DispatchPolicy::new(policy).observe(true);
    if flags.contains_key("auto-crossover") {
        let crossover: u64 = numeric_flag(&flags, "auto-crossover", policy_cfg.auto_crossover);
        if crossover == 0 {
            eprintln!("--auto-crossover: must be >= 1 DP cells (0 would route every pair to the exclusive wavefront)");
            usage()
        }
        policy_cfg = policy_cfg.auto_crossover(crossover);
    }
    if flags.contains_key("xdrop") {
        let xdrop: i32 = numeric_flag(&flags, "xdrop", 0);
        if xdrop < 1 {
            eprintln!("--xdrop: must be >= 1 (omit the flag for the exact path)");
            usage()
        }
        policy_cfg = policy_cfg.xdrop(xdrop);
    }
    if flags.contains_key("shard-cells") {
        let cells: u64 = numeric_flag(&flags, "shard-cells", 0);
        if cells == 0 {
            eprintln!(
                "--shard-cells: must be >= 1 DP cells (omit the flag for unsharded execution)"
            );
            usage()
        }
        policy_cfg = policy_cfg.shard_cells(cells);
    }
    policy_cfg = policy_cfg.cache_mb(numeric_flag(&flags, "cache-mb", 32));

    let cfg = anyseq_serve::ServeConfig {
        window,
        threads: numeric_flag(&flags, "threads", 0),
        policy: policy_cfg,
        max_frame_bytes: numeric_flag(&flags, "max-frame-mb", 64usize) * (1 << 20),
        slow_ms: numeric_flag(&flags, "slow-ms", 100u64),
        ..anyseq_serve::ServeConfig::default()
    };
    let clock = std::sync::Arc::new(anyseq_serve::SystemClock::new());
    let handle = anyseq_serve::Server::start(socket, cfg, clock).unwrap_or_else(|e| {
        eprintln!("cannot start daemon on {socket}: {e}");
        exit(1)
    });
    eprintln!("anyseq serve: listening on {socket}");
    // Parks until the accept loop exits (i.e. the process is killed;
    // the socket file is cleaned up by the next daemon's bind).
    handle.wait();
}

fn cmd_serve_ctl(args: &[String]) {
    let flags = parse_flags(args);
    let socket = flags.get("socket").unwrap_or_else(|| usage());
    let mut client = anyseq_serve::ServeClient::connect(socket).unwrap_or_else(|e| {
        eprintln!("cannot connect to {socket}: {e}");
        exit(1)
    });
    // Exactly one verb per invocation: stats (Prometheus exposition),
    // health (JSON incl. the slow-request log), dump (flight-recorder
    // Chrome trace — load in chrome://tracing / Perfetto).
    let verbs = ["stats", "health", "dump"];
    let picked: Vec<&str> = verbs
        .iter()
        .copied()
        .filter(|v| flags.contains_key(*v))
        .collect();
    let text = match picked.as_slice() {
        ["stats"] => client.stats(),
        ["health"] => client.health(),
        ["dump"] => client.dump_flight(),
        _ => {
            eprintln!("serve-ctl: pass exactly one of --stats, --health, --dump");
            usage()
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("serve-ctl: request failed: {e}");
        exit(1)
    });
    match flags.get("out") {
        Some(path) => std::fs::write(path, &text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        }),
        None => print!("{text}"),
    }
}

fn cmd_align(args: &[String]) {
    let flags = parse_flags(args);
    let q = load_first_record(flags.get("query").unwrap_or_else(|| usage()));
    let s = load_first_record(flags.get("subject").unwrap_or_else(|| usage()));
    let kind = flags.get("type").map(String::as_str).unwrap_or("global");
    let ma: i32 = numeric_flag(&flags, "match", 2);
    let mi: i32 = numeric_flag(&flags, "mismatch", -1);
    let score_only = flags.contains_key("score-only");
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = numeric_flag(&flags, "threads", default_threads);
    let cfg = ParallelCfg::threads(threads);

    // Gap model: --gap N (linear) or --open/--extend (affine).
    let (open, extend) = if flags.contains_key("gap") {
        (0, numeric_flag(&flags, "gap", -1))
    } else {
        (
            numeric_flag(&flags, "open", -2),
            numeric_flag(&flags, "extend", -1),
        )
    };
    let scoring = affine(simple(ma, mi), open, extend);

    macro_rules! run {
        ($scheme:expr, $kind:ty) => {{
            let scheme = $scheme;
            if score_only {
                println!("score: {}", scheme.score_parallel(&q, &s, &cfg));
            } else {
                let aln = scheme.align_parallel(&q, &s, &cfg);
                aln.validate::<$kind, _, _>(&q, &s, scheme.gap(), scheme.subst())
                    .expect("internal consistency");
                println!("score: {}", aln.score);
                println!(
                    "region: query {}..{} subject {}..{}",
                    aln.q_start, aln.q_end, aln.s_start, aln.s_end
                );
                println!("cigar: {}", aln.cigar());
                println!("identity: {:.2}%", 100.0 * aln.identity());
                let (qa, mid, sa) = aln.render(&q, &s);
                for chunk_start in (0..qa.len()).step_by(80) {
                    let end = (chunk_start + 80).min(qa.len());
                    println!("Q {}", String::from_utf8_lossy(&qa[chunk_start..end]));
                    println!("  {}", String::from_utf8_lossy(&mid[chunk_start..end]));
                    println!("S {}", String::from_utf8_lossy(&sa[chunk_start..end]));
                }
            }
        }};
    }
    match kind {
        "global" => run!(global(scoring), Global),
        "local" => run!(local(scoring), Local),
        "semiglobal" => run!(semiglobal(scoring), SemiGlobal),
        other => {
            eprintln!("unknown alignment type {other}");
            usage()
        }
    }
}
