//! `anyseq` — command-line pairwise aligner over the anyseq library.
//!
//! ```text
//! anyseq align --query q.fa --subject s.fa [--type global|local|semiglobal]
//!              [--match N] [--mismatch N] [--gap N | --open N --extend N]
//!              [--score-only] [--threads N]
//! anyseq simulate --length N [--gc F] [--seed N]    # emit a FASTA genome
//! ```

use anyseq_core::kind::{Global, Local, SemiGlobal};
use anyseq_core::prelude::*;
use anyseq_seq::fasta;
use anyseq_seq::genome::GenomeSim;
use anyseq_seq::Seq;
use anyseq_wavefront::{ParallelCfg, ParallelExt};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  anyseq align --query FILE --subject FILE [--type global|local|semiglobal]\n\
         \x20              [--match N] [--mismatch N] [--gap N | --open N --extend N]\n\
         \x20              [--score-only] [--threads N]\n\
         \x20 anyseq simulate --length N [--gc F] [--seed N]"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut k = 0;
    while k < args.len() {
        let key = args[k].trim_start_matches("--").to_string();
        if !args[k].starts_with("--") {
            usage();
        }
        if k + 1 < args.len() && !args[k + 1].starts_with("--") {
            map.insert(key, args[k + 1].clone());
            k += 2;
        } else {
            map.insert(key, "true".to_string());
            k += 1;
        }
    }
    map
}

fn load_first_record(path: &str) -> Seq {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1)
    });
    let records = fasta::read_fasta(file).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1)
    });
    match records.into_iter().next() {
        Some(r) => r.seq,
        None => {
            eprintln!("{path} contains no FASTA records");
            exit(1)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("align") => cmd_align(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        _ => usage(),
    }
}

fn cmd_simulate(args: &[String]) {
    let flags = parse_flags(args);
    let length: usize = flags
        .get("length")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let gc: f64 = flags.get("gc").and_then(|v| v.parse().ok()).unwrap_or(0.41);
    let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let genome = GenomeSim::new(seed).with_gc(gc).generate(length);
    let record = fasta::Record {
        id: format!("synthetic_{length}bp_seed{seed}"),
        description: format!("gc={gc}"),
        seq: genome,
        quality: None,
    };
    fasta::write_fasta(std::io::stdout().lock(), &[record], 70).expect("stdout write");
}

fn cmd_align(args: &[String]) {
    let flags = parse_flags(args);
    let q = load_first_record(flags.get("query").unwrap_or_else(|| usage()));
    let s = load_first_record(flags.get("subject").unwrap_or_else(|| usage()));
    let kind = flags.get("type").map(String::as_str).unwrap_or("global");
    let ma: i32 = flags.get("match").and_then(|v| v.parse().ok()).unwrap_or(2);
    let mi: i32 = flags
        .get("mismatch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(-1);
    let score_only = flags.contains_key("score-only");
    let threads: usize = flags
        .get("threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let cfg = ParallelCfg::threads(threads);

    // Gap model: --gap N (linear) or --open/--extend (affine).
    let (open, extend) = if let Some(g) = flags.get("gap") {
        (0, g.parse::<i32>().unwrap_or_else(|_| usage()))
    } else {
        (
            flags
                .get("open")
                .and_then(|v| v.parse().ok())
                .unwrap_or(-2),
            flags
                .get("extend")
                .and_then(|v| v.parse().ok())
                .unwrap_or(-1),
        )
    };
    let scoring = affine(simple(ma, mi), open, extend);

    macro_rules! run {
        ($scheme:expr, $kind:ty) => {{
            let scheme = $scheme;
            if score_only {
                println!("score: {}", scheme.score_parallel(&q, &s, &cfg));
            } else {
                let aln = scheme.align_parallel(&q, &s, &cfg);
                aln.validate::<$kind, _, _>(&q, &s, scheme.gap(), scheme.subst())
                    .expect("internal consistency");
                println!("score: {}", aln.score);
                println!(
                    "region: query {}..{} subject {}..{}",
                    aln.q_start, aln.q_end, aln.s_start, aln.s_end
                );
                println!("cigar: {}", aln.cigar());
                println!("identity: {:.2}%", 100.0 * aln.identity());
                let (qa, mid, sa) = aln.render(&q, &s);
                for chunk_start in (0..qa.len()).step_by(80) {
                    let end = (chunk_start + 80).min(qa.len());
                    println!("Q {}", String::from_utf8_lossy(&qa[chunk_start..end]));
                    println!("  {}", String::from_utf8_lossy(&mid[chunk_start..end]));
                    println!("S {}", String::from_utf8_lossy(&sa[chunk_start..end]));
                }
            }
        }};
    }
    match kind {
        "global" => run!(global(scoring), Global),
        "local" => run!(local(scoring), Local),
        "semiglobal" => run!(semiglobal(scoring), SemiGlobal),
        other => {
            eprintln!("unknown alignment type {other}");
            usage()
        }
    }
}
