//! # anyseq-obs — tracing spans and metrics for the batch pipeline
//!
//! A dependency-free observability layer: a fixed [`Stage`] taxonomy, a
//! per-worker span recorder ([`BatchTracer`]), a [`MetricsRegistry`] of
//! counters / gauges / log-bucketed [`Histogram`]s, two exporters —
//! [`prometheus_text`] and [`chrome_trace`] — and a request-scoped
//! layer for the serving daemon ([`RequestRecord`], [`SlowLog`],
//! [`FlightRecorder`] with its [`flight_trace`] exporter).
//!
//! The design constraint is *zero cost when disabled*: instrumentation
//! call-sites use the free functions [`timer`] / [`commit`] / [`span`],
//! which consult a thread-local recorder slot and do nothing (one TLS
//! read) unless the enclosing scheduler installed a [`WorkerGuard`] for
//! the current thread. Library crates below the scheduler therefore
//! instrument unconditionally and need no config plumbing.
//!
//! ```
//! use anyseq_obs::{BatchTracer, Stage};
//!
//! let tracer = BatchTracer::new();
//! {
//!     let _guard = tracer.worker(1);
//!     anyseq_obs::set_context("simd", 0, 0);
//!     anyseq_obs::span(Stage::Kernel, || { /* hot work */ });
//! }
//! let spans = tracer.finish();
//! assert_eq!(spans[0].stage, Stage::Kernel);
//! let json = anyseq_obs::chrome_trace(&spans);
//! assert!(json.contains("\"ph\":\"B\""));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod export;
mod metrics;
mod request;
mod span;
mod stage;

pub use export::{chrome_trace, prometheus_text};
pub use metrics::{labels, Histogram, MetricsRegistry, MetricsSnapshot};
pub use request::{
    flight_trace, BatchRecord, FlightRecorder, FlightSnapshot, RequestRecord, SlowLog,
};
pub use span::{
    commit, enabled, set_context, span, timer, BatchTracer, Span, Timer, WorkerGuard, NO_ID,
};
pub use stage::Stage;
