//! The fixed stage taxonomy of the batch pipeline.
//!
//! Every span recorded anywhere in the pipeline is tagged with exactly
//! one of these stages. The taxonomy is closed on purpose: a fixed enum
//! keeps span records `Copy`, lets exporters pre-allocate, and keeps the
//! `stage.<name>_ns` counter namespace stable across releases — the
//! bench report validator requires all nine keys to be present.

use std::fmt;

/// One stage of the batch pipeline, in rough pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// A worker lane waiting for a unit to become available (also used
    /// for the coordinator thread blocking on a worker pool join).
    QueueWait,
    /// Deriving content-hash cache keys for a chunk of pairs.
    Hash,
    /// Probing the result cache with already-derived keys.
    CacheProbe,
    /// Gathering borrowed `PairRef`s for one unit (index indirection,
    /// never sequence bytes).
    Gather,
    /// The SIMD lane transpose — the one accounted sequence-byte copy.
    Transpose,
    /// The DP matrix relaxation itself (score pass).
    Kernel,
    /// Alignment path reconstruction (banded passes + decode, or the
    /// scalar/wavefront equivalent).
    Traceback,
    /// Inserting freshly computed results into the cache and fanning
    /// them out to in-batch duplicates.
    CacheInsert,
    /// Folding per-worker stats, spans, and counters into the batch
    /// totals at the end of a run.
    Merge,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 9] = [
        Stage::QueueWait,
        Stage::Hash,
        Stage::CacheProbe,
        Stage::Gather,
        Stage::Transpose,
        Stage::Kernel,
        Stage::Traceback,
        Stage::CacheInsert,
        Stage::Merge,
    ];

    /// The stage's snake_case name, used as the `stage` label value in
    /// metrics and as the event name in Chrome traces.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Hash => "hash",
            Stage::CacheProbe => "cache_probe",
            Stage::Gather => "gather",
            Stage::Transpose => "transpose",
            Stage::Kernel => "kernel",
            Stage::Traceback => "traceback",
            Stage::CacheInsert => "cache_insert",
            Stage::Merge => "merge",
        }
    }

    /// The additive `BatchStats` counter key (`stage.<name>_ns`) that
    /// accumulates this stage's total span time.
    pub const fn counter_key(self) -> &'static str {
        match self {
            Stage::QueueWait => "stage.queue_wait_ns",
            Stage::Hash => "stage.hash_ns",
            Stage::CacheProbe => "stage.cache_probe_ns",
            Stage::Gather => "stage.gather_ns",
            Stage::Transpose => "stage.transpose_ns",
            Stage::Kernel => "stage.kernel_ns",
            Stage::Traceback => "stage.traceback_ns",
            Stage::CacheInsert => "stage.cache_insert_ns",
            Stage::Merge => "stage.merge_ns",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_and_counter_keys_are_unique() {
        let names: BTreeSet<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        let keys: BTreeSet<_> = Stage::ALL.iter().map(|s| s.counter_key()).collect();
        assert_eq!(names.len(), Stage::ALL.len());
        assert_eq!(keys.len(), Stage::ALL.len());
        for s in Stage::ALL {
            assert_eq!(s.counter_key(), format!("stage.{}_ns", s.name()));
        }
    }
}
