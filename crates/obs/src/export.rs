//! Exposition formats: Prometheus text and Chrome trace-event JSON.
//!
//! Both are hand-rolled writers (the crate is dependency-free). The
//! Chrome trace loads in Perfetto / `chrome://tracing`: one lane per
//! worker (`tid` = worker id), one `B`/`E` event pair per span, with
//! `backend`/`bin`/`unit` attached as event args. Spans on one lane
//! are non-overlapping by construction (the scheduler never nests
//! stages), which `scripts/check_trace.py` verifies.

use crate::metrics::MetricsSnapshot;
use crate::span::{Span, NO_ID};
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text exposition format
/// (counters, gauges, then histograms as cumulative `_bucket{le=…}` /
/// `_sum` / `_count` series). Keys come out in sorted, stable order.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = "";

    let mut type_line = |out: &mut String, name: &'static str, kind: &str| {
        if last_type_line != name {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_type_line = name;
        }
    };

    for ((name, labels), v) in &snap.counters {
        type_line(&mut out, name, "counter");
        if labels.is_empty() {
            let _ = writeln!(out, "{name} {v}");
        } else {
            let _ = writeln!(out, "{name}{{{labels}}} {v}");
        }
    }
    for ((name, labels), v) in &snap.gauges {
        type_line(&mut out, name, "gauge");
        if labels.is_empty() {
            let _ = writeln!(out, "{name} {v}");
        } else {
            let _ = writeln!(out, "{name}{{{labels}}} {v}");
        }
    }
    for ((name, labels), h) in &snap.hists {
        type_line(&mut out, name, "histogram");
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0;
        for (upper, acc) in h.cumulative_buckets() {
            cumulative = acc;
            if upper == u64::MAX {
                break;
            }
            let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{upper}\"}} {acc}");
        }
        let _ = cumulative;
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
            h.count()
        );
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum());
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
        }
    }
    out
}

fn push_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serializes spans as a Chrome trace-event JSON array (`ts` in
/// microseconds, `tid` = worker lane, plus `thread_name` metadata so
/// lanes are labelled in the viewer). Spans should be pre-sorted by
/// `(worker, start_ns)` — [`crate::BatchTracer::finish`] returns them
/// that way — so timestamps are monotone per lane in file order.
pub fn chrome_trace(spans: &[Span]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };

    let mut workers: Vec<u32> = spans.iter().map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    for &w in &workers {
        sep(&mut out);
        let name = if w == 0 {
            "coordinator".to_string()
        } else {
            format!("worker-{w}")
        };
        let _ = write!(
            out,
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{w},"args":{{"name":"{name}"}}}}"#
        );
    }

    for s in spans {
        let ts = s.start_ns as f64 / 1000.0;
        let end = (s.start_ns + s.dur_ns) as f64 / 1000.0;
        sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"{}","cat":""#,
            s.stage.name() // stage names are snake_case identifiers, no escaping needed
        );
        push_escaped(&mut out, s.backend);
        let _ = write!(
            out,
            r#"","ph":"B","ts":{ts:.3},"pid":1,"tid":{},"args":{{"backend":""#,
            s.worker
        );
        push_escaped(&mut out, s.backend);
        out.push('"');
        if s.bin != NO_ID {
            let _ = write!(out, r#","bin":{}"#, s.bin);
        }
        if s.unit != NO_ID {
            let _ = write!(out, r#","unit":{}"#, s.unit);
        }
        out.push_str("}}");
        sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"{}","ph":"E","ts":{end:.3},"pid":1,"tid":{}}}"#,
            s.stage.name(),
            s.worker
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{labels, MetricsRegistry};
    use crate::stage::Stage;

    #[test]
    fn prometheus_format_shape() {
        let reg = MetricsRegistry::new();
        reg.inc("anyseq_batches_total", String::new(), 2);
        reg.set_gauge("anyseq_cache_shard_bytes", labels(&[("shard", "0")]), 128.0);
        let l = labels(&[("backend", "simd"), ("stage", "kernel")]);
        reg.observe("anyseq_stage_duration_ns", l, 3);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE anyseq_batches_total counter\n"));
        assert!(text.contains("anyseq_batches_total 2\n"));
        assert!(text.contains("# TYPE anyseq_cache_shard_bytes gauge\n"));
        assert!(text.contains("anyseq_cache_shard_bytes{shard=\"0\"} 128\n"));
        assert!(text.contains("# TYPE anyseq_stage_duration_ns histogram\n"));
        assert!(text.contains(
            "anyseq_stage_duration_ns_bucket{backend=\"simd\",stage=\"kernel\",le=\"4\"} 1\n"
        ));
        assert!(text.contains(
            "anyseq_stage_duration_ns_bucket{backend=\"simd\",stage=\"kernel\",le=\"+Inf\"} 1\n"
        ));
        assert!(
            text.contains("anyseq_stage_duration_ns_sum{backend=\"simd\",stage=\"kernel\"} 3\n")
        );
        assert!(
            text.contains("anyseq_stage_duration_ns_count{backend=\"simd\",stage=\"kernel\"} 1\n")
        );
    }

    #[test]
    fn chrome_trace_is_json_with_balanced_events() {
        let spans = vec![
            Span {
                stage: Stage::Kernel,
                backend: "simd",
                bin: 1,
                unit: 4,
                worker: 1,
                start_ns: 1_000,
                dur_ns: 2_500,
            },
            Span {
                stage: Stage::Merge,
                backend: "sched",
                bin: NO_ID,
                unit: NO_ID,
                worker: 1,
                start_ns: 4_000,
                dur_ns: 500,
            },
        ];
        let json = chrome_trace(&spans);
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert_eq!(json.matches(r#""ph":"B""#).count(), 2);
        assert_eq!(json.matches(r#""ph":"E""#).count(), 2);
        assert_eq!(json.matches(r#""ph":"M""#).count(), 1);
        assert!(json.contains(r#""name":"kernel","cat":"simd","ph":"B","ts":1.000"#));
        assert!(json.contains(r#""bin":1"#) && json.contains(r#""unit":4"#));
        // The merge span has no bin/unit labels.
        assert!(!json.contains(&format!(r#""bin":{NO_ID}"#)));
    }
}
