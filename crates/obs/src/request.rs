//! Request-scoped observability: per-request lifecycle records, a
//! bounded slow-request log, and an always-on flight recorder.
//!
//! The serving daemon coalesces concurrent requests into engine
//! batches, so batch-level spans alone cannot say *which request*
//! paid for a byte-budget flush or a deep queue. A [`RequestRecord`]
//! carries absolute clock stamps for every hand-off in a request's
//! life — frame decode, window admission, batch take, dispatch, reply
//! write — from which the stage decomposition
//! `decode → window_wait → queue_wait → dispatch → reply_write`
//! is derived (all saturating, so a missing stamp degrades to a zero
//! stage, never an underflow). Kernel time is attributed to requests
//! by their cell share of the batch and stored in
//! [`RequestRecord::kernel_share_ns`].
//!
//! Two bounded sinks consume completed records:
//! * [`SlowLog`] — a ring of the most recent over-threshold requests,
//!   dumped by the daemon's `HEALTH` verb;
//! * [`FlightRecorder`] — rings of the last N completed requests and
//!   the last M dispatched batches (with their engine spans), rendered
//!   as a Chrome trace by [`flight_trace`] on demand (`DUMP` verb) so
//!   a slow daemon can be diagnosed without restarting it.
//!
//! Stamps are nanoseconds from whatever clock the daemon injects
//! (wall-monotonic in production, a fake clock in tests); this crate
//! only does arithmetic on them.

use crate::span::Span;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Lifecycle stamps and identity for one served request. All `_ns`
/// fields are absolute nanosecond readings of the daemon's clock; a
/// stage that never happened leaves its stamp at 0 and derives as a
/// zero-length stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestRecord {
    /// Server-minted request id, unique per process.
    pub id: u64,
    /// The id the client sent in the frame (echoed in the reply).
    pub client_id: u64,
    /// Request verb: `"score"` or `"align"`.
    pub verb: &'static str,
    /// Alignment kind name (`"global"`, `"local"`, …).
    pub kind: &'static str,
    /// Scheme fingerprint (stable FNV-1a over the full spec).
    pub scheme: u64,
    /// Pairs in the request.
    pub pairs: u64,
    /// DP cells in the request (`Σ |q|·|s|`).
    pub cells: u64,
    /// Flight-recorder sequence number of the batch that served this
    /// request (0 = not recorded).
    pub batch_seq: u64,
    /// Clock reading right after the request frame was read.
    pub recv_ns: u64,
    /// Clock reading after the decoded request was admitted to a
    /// batching window.
    pub admit_ns: u64,
    /// Clock reading at which the window became flushable (deadline
    /// hit, pair target or byte budget crossed, or daemon shutdown).
    pub ready_ns: u64,
    /// Clock reading when the dispatcher took the batch.
    pub taken_ns: u64,
    /// Clock reading just before the engine ran the batch.
    pub dispatch_start_ns: u64,
    /// Clock reading just after the engine returned.
    pub dispatch_end_ns: u64,
    /// Clock reading when the writer began encoding the reply.
    pub reply_start_ns: u64,
    /// Clock reading after the reply frame was written.
    pub done_ns: u64,
    /// Kernel wall time attributed to this request: the batch's
    /// `kernel` stage total apportioned by cell share.
    pub kernel_share_ns: u64,
}

impl RequestRecord {
    /// Frame decode + admission call: `admit - recv`.
    pub fn decode_ns(&self) -> u64 {
        self.admit_ns.saturating_sub(self.recv_ns)
    }

    /// Time in the open batching window: `ready - admit`.
    pub fn window_wait_ns(&self) -> u64 {
        self.ready_ns.saturating_sub(self.admit_ns)
    }

    /// Time flushable but waiting for the dispatcher:
    /// `dispatch_start - ready`.
    pub fn queue_wait_ns(&self) -> u64 {
        self.dispatch_start_ns.saturating_sub(self.ready_ns)
    }

    /// Engine wall time for the whole batch this request rode in.
    pub fn dispatch_ns(&self) -> u64 {
        self.dispatch_end_ns.saturating_sub(self.dispatch_start_ns)
    }

    /// Reply encode + socket write: `done - reply_start`.
    pub fn reply_write_ns(&self) -> u64 {
        self.done_ns.saturating_sub(self.reply_start_ns)
    }

    /// End-to-end server-observed latency: `done - recv`.
    pub fn total_ns(&self) -> u64 {
        self.done_ns.saturating_sub(self.recv_ns)
    }

    /// The scheme fingerprint as a fixed-width hex label value.
    pub fn scheme_hex(&self) -> String {
        format!("{:016x}", self.scheme)
    }
}

/// A bounded ring of the most recent requests whose end-to-end latency
/// exceeded a threshold. Old entries are evicted oldest-first; the
/// total over-threshold count is retained separately so eviction never
/// hides how often the daemon was slow.
#[derive(Debug)]
pub struct SlowLog {
    threshold_ns: u64,
    cap: usize,
    inner: Mutex<(VecDeque<RequestRecord>, u64)>,
}

impl SlowLog {
    /// A log keeping the last `cap` requests slower than
    /// `threshold_ns` end to end.
    pub fn new(threshold_ns: u64, cap: usize) -> SlowLog {
        SlowLog {
            threshold_ns,
            cap: cap.max(1),
            inner: Mutex::new((VecDeque::new(), 0)),
        }
    }

    /// The configured threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Offers a completed record; retains a copy and returns `true`
    /// iff its total latency is strictly over the threshold.
    pub fn offer(&self, rec: &RequestRecord) -> bool {
        if rec.total_ns() <= self.threshold_ns {
            return false;
        }
        let mut g = self.inner.lock().expect("slow log poisoned");
        if g.0.len() == self.cap {
            g.0.pop_front();
        }
        g.0.push_back(rec.clone());
        g.1 += 1;
        true
    }

    /// Total over-threshold requests seen (not capped by the ring).
    pub fn total(&self) -> u64 {
        self.inner.lock().expect("slow log poisoned").1
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<RequestRecord> {
        self.inner
            .lock()
            .expect("slow log poisoned")
            .0
            .iter()
            .cloned()
            .collect()
    }
}

/// One dispatched batch in the flight recorder: identity, size, and
/// the engine's per-stage spans (relative to `start_ns`).
#[derive(Debug, Clone)]
pub struct BatchRecord {
    /// Monotone per-recorder sequence number, starting at 1.
    pub seq: u64,
    /// Batch verb: `"score"` or `"align"`.
    pub verb: &'static str,
    /// Clock reading when the dispatcher started the batch.
    pub start_ns: u64,
    /// Pairs in the batch.
    pub pairs: u64,
    /// DP cells in the batch.
    pub cells: u64,
    /// Stage spans recorded by the engine while running the batch,
    /// with `start_ns` relative to the batch's own origin.
    pub spans: Vec<Span>,
}

/// A point-in-time copy of the flight recorder contents.
#[derive(Debug, Clone, Default)]
pub struct FlightSnapshot {
    /// The last completed requests, oldest first.
    pub requests: Vec<RequestRecord>,
    /// The last dispatched batches, oldest first.
    pub batches: Vec<BatchRecord>,
}

#[derive(Debug, Default)]
struct FlightInner {
    next_seq: u64,
    requests: VecDeque<RequestRecord>,
    batches: VecDeque<BatchRecord>,
}

/// Always-on fixed-size rings of the last completed requests and the
/// last dispatched batches. Bounded memory, lock-per-completion cost;
/// cheap enough to leave enabled in production so the recent past is
/// always dumpable.
#[derive(Debug)]
pub struct FlightRecorder {
    req_cap: usize,
    batch_cap: usize,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// A recorder keeping the last `req_cap` requests and `batch_cap`
    /// batches.
    pub fn new(req_cap: usize, batch_cap: usize) -> FlightRecorder {
        FlightRecorder {
            req_cap: req_cap.max(1),
            batch_cap: batch_cap.max(1),
            inner: Mutex::new(FlightInner::default()),
        }
    }

    /// Records a dispatched batch and returns its sequence number
    /// (used to correlate request records with batch spans).
    pub fn record_batch(
        &self,
        verb: &'static str,
        start_ns: u64,
        pairs: u64,
        cells: u64,
        spans: Vec<Span>,
    ) -> u64 {
        let mut g = self.inner.lock().expect("flight recorder poisoned");
        g.next_seq += 1;
        let seq = g.next_seq;
        if g.batches.len() == self.batch_cap {
            g.batches.pop_front();
        }
        g.batches.push_back(BatchRecord {
            seq,
            verb,
            start_ns,
            pairs,
            cells,
            spans,
        });
        seq
    }

    /// Records a completed request.
    pub fn record_request(&self, rec: RequestRecord) {
        let mut g = self.inner.lock().expect("flight recorder poisoned");
        if g.requests.len() == self.req_cap {
            g.requests.pop_front();
        }
        g.requests.push_back(rec);
    }

    /// Copies out the current ring contents.
    pub fn snapshot(&self) -> FlightSnapshot {
        let g = self.inner.lock().expect("flight recorder poisoned");
        FlightSnapshot {
            requests: g.requests.iter().cloned().collect(),
            batches: g.batches.iter().cloned().collect(),
        }
    }
}

/// Renders a flight snapshot as a Chrome trace-event JSON array.
///
/// Two processes: `pid 1` holds the engine batch lanes (`tid` =
/// worker, same convention as [`crate::chrome_trace`], span timestamps
/// rebased to `batch.start_ns + span.start_ns`), `pid 2` holds one
/// lane per request (`tid` = request id) with the five lifecycle
/// stages as sequential spans; the `dispatch` span carries `pairs`,
/// `cells`, `kernel_share_ns` and the serving batch's `seq` as args so
/// a request lane can be correlated with its batch lanes in the
/// viewer.
pub fn flight_trace(snap: &FlightSnapshot) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };

    for (pid, name) in [(1, "engine batches"), (2, "requests")] {
        sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{name}"}}}}"#
        );
    }
    let mut workers: Vec<u32> = snap
        .batches
        .iter()
        .flat_map(|b| b.spans.iter().map(|s| s.worker))
        .collect();
    workers.sort_unstable();
    workers.dedup();
    for &w in &workers {
        sep(&mut out);
        let name = if w == 0 {
            "coordinator".to_string()
        } else {
            format!("worker-{w}")
        };
        let _ = write!(
            out,
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{w},"args":{{"name":"{name}"}}}}"#
        );
    }

    for b in &snap.batches {
        for s in &b.spans {
            let ts = (b.start_ns + s.start_ns) as f64 / 1000.0;
            let end = (b.start_ns + s.start_ns + s.dur_ns) as f64 / 1000.0;
            sep(&mut out);
            let _ = write!(
                out,
                concat!(
                    r#"{{"name":"{}","cat":"{}","ph":"B","ts":{:.3},"pid":1,"tid":{},"#,
                    r#""args":{{"batch":{},"backend":"{}"}}}}"#
                ),
                s.stage.name(),
                s.backend,
                ts,
                s.worker,
                b.seq,
                s.backend
            );
            sep(&mut out);
            let _ = write!(
                out,
                r#"{{"name":"{}","ph":"E","ts":{end:.3},"pid":1,"tid":{}}}"#,
                s.stage.name(),
                s.worker
            );
        }
    }

    for r in &snap.requests {
        sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"thread_name","ph":"M","pid":2,"tid":{},"args":{{"name":"req-{}"}}}}"#,
            r.id, r.id
        );
        let stages: [(&str, u64, u64); 5] = [
            ("decode", r.recv_ns, r.decode_ns()),
            ("window_wait", r.admit_ns, r.window_wait_ns()),
            ("queue_wait", r.ready_ns, r.queue_wait_ns()),
            ("dispatch", r.dispatch_start_ns, r.dispatch_ns()),
            ("reply_write", r.reply_start_ns, r.reply_write_ns()),
        ];
        for (name, start, dur) in stages {
            let ts = start as f64 / 1000.0;
            let end = (start + dur) as f64 / 1000.0;
            sep(&mut out);
            let _ = write!(
                out,
                r#"{{"name":"{name}","cat":"request","ph":"B","ts":{ts:.3},"pid":2,"tid":{}"#,
                r.id
            );
            if name == "dispatch" {
                let _ = write!(
                    out,
                    concat!(
                        r#","args":{{"verb":"{}","kind":"{}","scheme":"{}","pairs":{},"#,
                        r#""cells":{},"kernel_share_ns":{},"batch":{}}}"#
                    ),
                    r.verb,
                    r.kind,
                    r.scheme_hex(),
                    r.pairs,
                    r.cells,
                    r.kernel_share_ns,
                    r.batch_seq
                );
            } else {
                out.push_str(r#","args":{}"#);
            }
            out.push('}');
            sep(&mut out);
            let _ = write!(
                out,
                r#"{{"name":"{name}","ph":"E","ts":{end:.3},"pid":2,"tid":{}}}"#,
                r.id
            );
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;

    fn record(id: u64, recv: u64, total: u64) -> RequestRecord {
        RequestRecord {
            id,
            client_id: id,
            verb: "score",
            kind: "global",
            scheme: 0xdead_beef,
            pairs: 4,
            cells: 400,
            batch_seq: 1,
            recv_ns: recv,
            admit_ns: recv,
            ready_ns: recv + total / 2,
            taken_ns: recv + total / 2,
            dispatch_start_ns: recv + total / 2,
            dispatch_end_ns: recv + total,
            reply_start_ns: recv + total,
            done_ns: recv + total,
            kernel_share_ns: total / 4,
        }
    }

    #[test]
    fn stage_decomposition_is_saturating_and_sums_to_total() {
        let r = record(1, 1000, 800);
        assert_eq!(r.decode_ns(), 0);
        assert_eq!(r.window_wait_ns(), 400);
        assert_eq!(r.queue_wait_ns(), 0);
        assert_eq!(r.dispatch_ns(), 400);
        assert_eq!(r.reply_write_ns(), 0);
        assert_eq!(r.total_ns(), 800);
        let sum = r.decode_ns()
            + r.window_wait_ns()
            + r.queue_wait_ns()
            + r.dispatch_ns()
            + r.reply_write_ns();
        assert_eq!(sum, r.total_ns());
        // A default (all-zero) record derives zero stages, no panic.
        let zero = RequestRecord::default();
        assert_eq!(zero.total_ns(), 0);
        assert_eq!(zero.window_wait_ns(), 0);
    }

    #[test]
    fn slow_log_keeps_only_over_threshold_and_bounds_memory() {
        let log = SlowLog::new(1_000, 2);
        assert!(!log.offer(&record(1, 0, 1_000))); // exactly at threshold: not slow
        assert!(log.offer(&record(2, 0, 1_001)));
        assert!(log.offer(&record(3, 0, 5_000)));
        assert!(log.offer(&record(4, 0, 9_000)));
        let entries = log.entries();
        assert_eq!(entries.len(), 2, "ring capacity enforced");
        assert_eq!(
            entries.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![3, 4],
            "oldest evicted first"
        );
        assert_eq!(log.total(), 3, "eviction does not erase the count");
    }

    #[test]
    fn flight_recorder_rings_and_sequences() {
        let fr = FlightRecorder::new(2, 2);
        let s1 = fr.record_batch("score", 0, 4, 400, Vec::new());
        let s2 = fr.record_batch("score", 100, 4, 400, Vec::new());
        let s3 = fr.record_batch("align", 200, 4, 400, Vec::new());
        assert_eq!((s1, s2, s3), (1, 2, 3));
        for id in 1..=3 {
            fr.record_request(record(id, id * 100, 50));
        }
        let snap = fr.snapshot();
        assert_eq!(
            snap.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(
            snap.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn flight_trace_has_two_processes_and_balanced_events() {
        let fr = FlightRecorder::new(8, 8);
        let span = Span {
            stage: Stage::Kernel,
            backend: "simd",
            bin: 0,
            unit: 0,
            worker: 0,
            start_ns: 10,
            dur_ns: 100,
        };
        fr.record_batch("score", 2_000, 4, 400, vec![span]);
        fr.record_request(record(7, 1_000, 2_000));
        let json = flight_trace(&fr.snapshot());
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert_eq!(
            json.matches(r#""ph":"B""#).count(),
            json.matches(r#""ph":"E""#).count()
        );
        // Batch span rebased onto the daemon clock: 2000 + 10 ns.
        assert!(json.contains(r#""name":"kernel","cat":"simd","ph":"B","ts":2.010"#));
        // The five request lifecycle stages on pid 2, lane = request id.
        for stage in [
            "decode",
            "window_wait",
            "queue_wait",
            "dispatch",
            "reply_write",
        ] {
            assert!(
                json.contains(&format!(r#""name":"{stage}","cat":"request""#)),
                "missing {stage}"
            );
        }
        assert!(json.contains(r#""pid":2,"tid":7"#));
        assert!(json.contains(r#""kernel_share_ns":500"#));
        assert!(json.contains(r#""scheme":"00000000deadbeef""#));
    }
}
