//! Span recording with per-worker thread-local buffers.
//!
//! The hot path never takes a lock: each worker thread installs a
//! [`WorkerGuard`] that owns a thread-local buffer, spans are pushed to
//! that buffer as plain `Vec` appends, and the buffer is drained into
//! the shared [`BatchTracer`] sink exactly once, when the guard drops.
//!
//! When no guard is installed on the current thread — the default, and
//! the case whenever observability is disabled — every recording call
//! degenerates to a single thread-local read and records nothing, so
//! instrumented library code pays effectively nothing in production.
//!
//! Spans carry a context of `(backend, bin, unit)` labels set by the
//! scheduler via [`set_context`]; library code below the scheduler (the
//! SIMD kernels, the backend adapters) only names the [`Stage`], and the
//! labels in effect at commit time are attached automatically.

use crate::stage::Stage;
use std::cell::RefCell;
use std::sync::Mutex;
use std::time::Instant;

/// Label value meaning "no bin / no unit applies to this span"
/// (scheduler-side phases such as cache probing or the final merge).
pub const NO_ID: u32 = u32::MAX;

/// One closed span: a stage interval on one worker lane, tagged with
/// the scheduling context in effect when it was committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Pipeline stage this interval belongs to.
    pub stage: Stage,
    /// Component or backend label (`"sched"` for scheduler phases,
    /// otherwise the executing engine's `Caps::name`).
    pub backend: &'static str,
    /// Length-bin id of the unit being processed, or [`NO_ID`].
    pub bin: u32,
    /// Unit id within the batch, or [`NO_ID`].
    pub unit: u32,
    /// Worker lane (0 = coordinator thread).
    pub worker: u32,
    /// Start offset from the tracer's origin, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

struct Recorder {
    origin: Instant,
    worker: u32,
    backend: &'static str,
    bin: u32,
    unit: u32,
    buf: Vec<Span>,
}

thread_local! {
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Collects spans from all worker lanes of one batch run.
///
/// Create one per batch, hand each worker thread a guard via
/// [`BatchTracer::worker`], and call [`BatchTracer::finish`] after all
/// guards have dropped to obtain the sorted span list.
#[derive(Debug)]
pub struct BatchTracer {
    origin: Instant,
    sink: Mutex<Vec<Span>>,
}

impl Default for BatchTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchTracer {
    /// Starts a tracer; all span timestamps are offsets from this call.
    pub fn new() -> BatchTracer {
        BatchTracer {
            origin: Instant::now(),
            sink: Mutex::new(Vec::new()),
        }
    }

    /// Installs a recorder for the current thread, labelled as worker
    /// lane `worker`. Recording calls on this thread buffer locally
    /// until the returned guard drops. One guard per thread at a time.
    pub fn worker(&self, worker: u32) -> WorkerGuard<'_> {
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            debug_assert!(cur.is_none(), "nested span recorders are not supported");
            *cur = Some(Recorder {
                origin: self.origin,
                worker,
                backend: "sched",
                bin: NO_ID,
                unit: NO_ID,
                buf: Vec::with_capacity(64),
            });
        });
        WorkerGuard { tracer: self }
    }

    /// Consumes the tracer and returns all drained spans, sorted by
    /// `(worker, start_ns)`. Call only after every guard has dropped;
    /// spans still sitting in live thread-local buffers are not seen.
    pub fn finish(self) -> Vec<Span> {
        let mut spans = self.sink.into_inner().expect("tracer sink poisoned");
        spans.sort_by_key(|s| (s.worker, s.start_ns));
        spans
    }
}

/// Uninstalls the thread's recorder on drop, flushing its buffer into
/// the owning [`BatchTracer`].
#[must_use = "spans record only while the guard is alive"]
#[derive(Debug)]
pub struct WorkerGuard<'a> {
    tracer: &'a BatchTracer,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        let rec = CURRENT.with(|c| c.borrow_mut().take());
        if let Some(rec) = rec {
            if !rec.buf.is_empty() {
                self.tracer
                    .sink
                    .lock()
                    .expect("tracer sink poisoned")
                    .extend_from_slice(&rec.buf);
            }
        }
    }
}

/// An open interval started by [`timer`]. Inert (`None`) when the
/// current thread had no recorder at start time.
#[derive(Debug)]
pub struct Timer(Option<Instant>);

/// Whether the current thread has an active span recorder.
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Starts an interval. Cheap no-op (a thread-local read) when the
/// current thread records nothing.
pub fn timer() -> Timer {
    Timer(enabled().then(Instant::now))
}

/// Closes `t` and records it as a span for `stage` with the thread's
/// current context labels. No-op for inert timers.
pub fn commit(stage: Stage, t: Timer) {
    let Some(start) = t.0 else { return };
    let dur_ns = start.elapsed().as_nanos() as u64;
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            let start_ns = start.duration_since(rec.origin).as_nanos() as u64;
            rec.buf.push(Span {
                stage,
                backend: rec.backend,
                bin: rec.bin,
                unit: rec.unit,
                worker: rec.worker,
                start_ns,
                dur_ns,
            });
        }
    });
}

/// Runs `f` inside a span for `stage`.
pub fn span<R>(stage: Stage, f: impl FnOnce() -> R) -> R {
    let t = timer();
    let r = f();
    commit(stage, t);
    r
}

/// Sets the `(backend, bin, unit)` labels attached to subsequently
/// committed spans on this thread. No-op without a recorder.
pub fn set_context(backend: &'static str, bin: u32, unit: u32) {
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            rec.backend = backend;
            rec.bin = bin;
            rec.unit = unit;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_with_context() {
        let tracer = BatchTracer::new();
        {
            let _g = tracer.worker(3);
            span(Stage::Hash, || ());
            set_context("simd", 2, 7);
            let t = timer();
            std::thread::sleep(std::time::Duration::from_millis(1));
            commit(Stage::Kernel, t);
        }
        let spans = tracer.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Hash);
        assert_eq!(spans[0].backend, "sched");
        assert_eq!(spans[0].bin, NO_ID);
        assert_eq!(spans[1].stage, Stage::Kernel);
        assert_eq!(spans[1].backend, "simd");
        assert_eq!((spans[1].bin, spans[1].unit, spans[1].worker), (2, 7, 3));
        assert!(spans[1].dur_ns >= 1_000_000);
        assert!(spans[1].start_ns >= spans[0].start_ns);
    }

    #[test]
    fn noop_without_guard() {
        assert!(!enabled());
        // Must not panic or record anywhere.
        span(Stage::Kernel, || ());
        commit(Stage::Merge, timer());
        set_context("x", 0, 0);
        let tracer = BatchTracer::new();
        assert!(tracer.finish().is_empty());
    }

    #[test]
    fn workers_drain_into_one_sink_sorted() {
        let tracer = BatchTracer::new();
        std::thread::scope(|sc| {
            for w in 1..=4u32 {
                let tracer = &tracer;
                sc.spawn(move || {
                    let _g = tracer.worker(w);
                    for _ in 0..3 {
                        span(Stage::Kernel, || std::hint::black_box(w));
                    }
                });
            }
        });
        let spans = tracer.finish();
        assert_eq!(spans.len(), 12);
        let sorted = spans
            .windows(2)
            .all(|p| (p[0].worker, p[0].start_ns) <= (p[1].worker, p[1].start_ns));
        assert!(sorted);
    }
}
