//! Counters, gauges, and log-bucketed histograms behind one registry.
//!
//! Metrics are keyed by `(name, labels)` where `labels` is a
//! pre-rendered Prometheus-style label string (see [`labels`]), so the
//! registry itself needs no label schema. Histograms use power-of-two
//! buckets (`le = 1, 2, 4, …, 2^62, +Inf`): with nanosecond latencies
//! and cell/byte sizes spanning nine orders of magnitude, a fixed
//! log₂ layout gives ≤2× relative quantile error at a constant 64
//! words of state, needs no a-priori range, and merges exactly.
//!
//! The registry is internally locked; callers touch it at batch
//! boundaries (folding spans, exporting), not per cell, so contention
//! is irrelevant.

use std::collections::BTreeMap;
use std::sync::Mutex;

const BUCKETS: usize = 64;

/// A power-of-two-bucketed histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Upper bound (inclusive) of bucket `i`; the last bucket is open.
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (bucket-exact).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean. Edge cases are explicit rather than emergent:
    /// an empty histogram returns 0.0, and because the running sum is
    /// *saturating*, a sum that has hit `u64::MAX` would make the raw
    /// `sum/count` drift below values actually observed — so the mean
    /// is clamped into the observed `[min, max]` range. (E.g. two
    /// `u64::MAX` observations saturate the sum at `u64::MAX`; the raw
    /// mean would be `u64::MAX / 2`, the clamped mean is `u64::MAX`.)
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let raw = self.sum as f64 / self.count as f64;
        raw.clamp(self.min as f64, self.max as f64)
    }

    /// Estimated `q`-quantile: the upper bound of the bucket holding
    /// the rank-`ceil(q·count)` observation, clamped to the observed
    /// `[min, max]` range. Edge cases, explicitly:
    /// * empty histogram → 0 (there is no observation to bracket);
    /// * `q` outside `[0, 1]` (or NaN) → clamped to that range, so
    ///   `q <= 0` reports the min bucket and `q >= 1` the max;
    /// * all mass in the open top bucket (`upper = u64::MAX`) → the
    ///   `[min, max]` clamp keeps the estimate at the observed max
    ///   instead of the meaningless open bound.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Cumulative `(upper_bound, count)` pairs for exposition, ending
    /// with the open bucket; trailing all-zero buckets are elided.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let last = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut acc = 0u64;
        (0..=last)
            .map(|i| {
                acc += self.counts[i];
                (Self::bucket_upper(i), acc)
            })
            .collect()
    }
}

/// Renders label pairs as a canonical Prometheus label body, e.g.
/// `backend="simd",bin="144x160",stage="kernel"`. Values are escaped
/// per the text exposition format. Pass pairs pre-sorted if a stable
/// key is needed — the function preserves order.
pub fn labels(pairs: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

type Key = (&'static str, String);

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    hists: BTreeMap<Key, Histogram>,
}

/// An immutable copy of the registry contents, keyed by
/// `(metric name, rendered label body)` in sorted order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<Key, u64>,
    /// Point-in-time gauges.
    pub gauges: BTreeMap<Key, f64>,
    /// Histograms.
    pub hists: BTreeMap<Key, Histogram>,
}

/// Thread-safe registry of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `v` to the counter `name{labels}`.
    pub fn inc(&self, name: &'static str, labels: String, v: u64) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        *g.counters.entry((name, labels)).or_insert(0) += v;
    }

    /// Sets the gauge `name{labels}` to `v`.
    pub fn set_gauge(&self, name: &'static str, labels: String, v: f64) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        g.gauges.insert((name, labels), v);
    }

    /// Adjusts the gauge `name{labels}` by `delta` (negative to
    /// decrement), creating it at 0 first, and returns the new value.
    /// This is the API for *level* gauges — queue depth, in-flight
    /// bytes, window occupancy — where concurrent holders each add
    /// their share and release it later, so no single caller knows the
    /// absolute value ([`MetricsRegistry::set_gauge`] would race).
    pub fn add_gauge(&self, name: &'static str, labels: String, delta: f64) -> f64 {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        let v = g.gauges.entry((name, labels)).or_insert(0.0);
        *v += delta;
        *v
    }

    /// Records `v` into the histogram `name{labels}`.
    pub fn observe(&self, name: &'static str, labels: String, v: u64) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        g.hists.entry((name, labels)).or_default().observe(v);
    }

    /// Pre-registers the histogram `name{labels}` so it appears in
    /// snapshots and expositions with zero counts before the first
    /// observation — a cold scrape then exposes the full stable key
    /// set instead of an empty page. No-op if it already exists.
    pub fn ensure_histogram(&self, name: &'static str, labels: String) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        g.hists.entry((name, labels)).or_default();
    }

    /// Copies out the full registry contents.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            hists: g.hists.clone(),
        }
    }

    /// Merges every histogram called `name` whose label body contains
    /// `label_filter` (empty filter matches all) into one histogram —
    /// e.g. the all-backend kernel latency distribution.
    pub fn merged_histogram(&self, name: &str, label_filter: &str) -> Histogram {
        let g = self.inner.lock().expect("metrics registry poisoned");
        let mut out = Histogram::new();
        for ((n, l), h) in g.hists.iter() {
            if *n == name && l.contains(label_filter) {
                out.merge(h);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        for (v, b) in [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10)] {
            assert_eq!(Histogram::bucket_of(v), b, "value {v}");
        }
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper(3), 8);
        assert_eq!(Histogram::bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_bracket_observations() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        // Rank 500 sits in bucket (256, 512]; log₂ buckets guarantee
        // the estimate is within 2× of the true median.
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(0.99) >= p50);
        assert_eq!(h.quantile(1.0), 1000);
        assert!(Histogram::new().quantile(0.5) == 0);
    }

    #[test]
    fn empty_histogram_edge_cases_are_explicit() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn saturated_top_bucket_stays_in_observed_range() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        // The sum saturates; the mean and every quantile must still
        // report the observed value, not an artifact of the overflow
        // or the open bucket's u64::MAX upper bound.
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.mean(), u64::MAX as f64);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.min(), u64::MAX);
    }

    #[test]
    fn quantile_clamps_q_to_unit_range() {
        let mut h = Histogram::new();
        for v in [10u64, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(1.5), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn ensure_histogram_pre_registers_zero_series() {
        let reg = MetricsRegistry::new();
        let l = labels(&[("verb", "score")]);
        reg.ensure_histogram("anyseq_serve_request_us", l.clone());
        let snap = reg.snapshot();
        let h = &snap.hists[&("anyseq_serve_request_us", l.clone())];
        assert_eq!(h.count(), 0);
        // Observing after pre-registration uses the same series.
        reg.observe("anyseq_serve_request_us", l.clone(), 7);
        assert_eq!(
            reg.snapshot().hists[&("anyseq_serve_request_us", l)].count(),
            1
        );
    }

    #[test]
    fn merge_matches_combined_stream() {
        let (mut a, mut b, mut both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 17, 170, 9000] {
            a.observe(v);
            both.observe(v);
        }
        for v in [1u64, 2, 40_000_000] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn cumulative_buckets_end_open() {
        let mut h = Histogram::new();
        h.observe(3);
        h.observe(100);
        let buckets = h.cumulative_buckets();
        assert_eq!(*buckets.last().unwrap(), (128, 2));
        assert!(buckets.windows(2).all(|p| p[0].1 <= p[1].1));
    }

    #[test]
    fn registry_round_trip() {
        let reg = MetricsRegistry::new();
        let l = labels(&[("backend", "simd"), ("bin", "144x160")]);
        assert_eq!(l, r#"backend="simd",bin="144x160""#);
        reg.inc("anyseq_batches_total", String::new(), 1);
        reg.inc("anyseq_batches_total", String::new(), 2);
        reg.set_gauge("anyseq_cache_bytes", String::new(), 42.0);
        reg.observe("anyseq_stage_duration_ns", l.clone(), 100);
        reg.observe("anyseq_stage_duration_ns", l.clone(), 200);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[&("anyseq_batches_total", String::new())], 3);
        assert_eq!(snap.gauges[&("anyseq_cache_bytes", String::new())], 42.0);
        assert_eq!(snap.hists[&("anyseq_stage_duration_ns", l)].count(), 2);
        let merged = reg.merged_histogram("anyseq_stage_duration_ns", "backend=\"simd\"");
        assert_eq!(merged.count(), 2);
        assert_eq!(
            reg.merged_histogram("anyseq_stage_duration_ns", "backend=\"gpu\"")
                .count(),
            0
        );
    }

    #[test]
    fn add_gauge_accumulates_and_interoperates_with_set() {
        let reg = MetricsRegistry::new();
        assert_eq!(
            reg.add_gauge("anyseq_queue_bytes", String::new(), 64.0),
            64.0
        );
        assert_eq!(
            reg.add_gauge("anyseq_queue_bytes", String::new(), 32.0),
            96.0
        );
        assert_eq!(
            reg.add_gauge("anyseq_queue_bytes", String::new(), -96.0),
            0.0
        );
        // set_gauge overrides the accumulated level; add resumes from it.
        reg.set_gauge("anyseq_queue_bytes", String::new(), 10.0);
        assert_eq!(
            reg.add_gauge("anyseq_queue_bytes", String::new(), 5.0),
            15.0
        );
        let snap = reg.snapshot();
        assert_eq!(snap.gauges[&("anyseq_queue_bytes", String::new())], 15.0);
    }

    #[test]
    fn labels_escape_quotes() {
        assert_eq!(labels(&[("k", "a\"b\\c")]), r#"k="a\"b\\c""#);
    }
}
