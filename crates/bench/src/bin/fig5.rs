//! Regenerates paper **Figure 5**: median GCUPS for
//! a) pairs of long DNA sequences, b) batches of short Illumina reads,
//! each as {scores-only, traceback} × {linear, affine} across devices
//! (CPU scalar / AVX2-width SIMD / AVX512-width SIMD / simulated Titan V
//! / simulated ZCU104) and libraries (AnySeq, SeqAn-like, Parasail-like,
//! NVBio-like).
//!
//! CPU rows are wall-clock measurements on this host; GPU/FPGA rows are
//! the simulators' modeled GCUPS (marked `*`). Compare *shapes* (who
//! wins, by what factor), not absolute values — see EXPERIMENTS.md.
//!
//! Usage:
//!   fig5 --part a [--scale F] [--gpu-scale F] [--threads N] [--repeats N]
//!   fig5 --part b [--pairs N] [--threads N] [--repeats N]

use anyseq_baselines::{NvbioLike, ParasailLike, SeqAnLike};
use anyseq_bench::gcups::{measure_gcups, median};
use anyseq_bench::report::{dump_json, Table};
use anyseq_bench::workloads::{genome_pairs, read_batch};
use anyseq_core::hirschberg::{align_with_pass, AlignConfig};
use anyseq_core::prelude::*;
use anyseq_core::scheme::Scheme;
use anyseq_engine::stats::TRACEBACK_CELL_FACTOR;
use anyseq_fpga_sim::SystolicArray;
use anyseq_gpu_sim::{Device, GpuAligner};
use anyseq_seq::{BatchView, Seq};
use anyseq_simd::{simd_tiled_score_pass, SimdPass};
use anyseq_wavefront::pass::{tiled_score_pass, ParallelCfg};
use anyseq_wavefront::{score_batch_parallel, TiledPass};
use std::collections::BTreeMap;

#[derive(Clone, Copy, PartialEq)]
enum GapKind {
    Linear,
    Affine,
}

#[derive(Clone, Copy, PartialEq)]
enum Output {
    ScoresOnly,
    Traceback,
}

struct Cfg {
    part: char,
    scale: f64,
    gpu_scale: f64,
    pairs: usize,
    threads: usize,
    repeats: usize,
}

fn parse_args() -> Cfg {
    let mut cfg = Cfg {
        part: 'a',
        scale: 0.004,
        gpu_scale: 0.01,
        pairs: 20_000,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8),
        repeats: 3,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--part" => {
                cfg.part = args[k + 1].chars().next().unwrap();
                k += 2;
            }
            "--scale" => {
                cfg.scale = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--gpu-scale" => {
                cfg.gpu_scale = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--pairs" => {
                cfg.pairs = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--threads" => {
                cfg.threads = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--repeats" => {
                cfg.repeats = args[k + 1].parse().unwrap();
                k += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn lin_scheme() -> Scheme<Global, LinearGap, SimpleSubst> {
    global(linear(simple(2, -1), -1))
}

fn aff_scheme() -> Scheme<Global, AffineGap, SimpleSubst> {
    global(affine(simple(2, -1), -2, -1))
}

fn main() {
    let cfg = parse_args();
    match cfg.part {
        'a' => part_a(&cfg),
        'b' => part_b(&cfg),
        other => {
            eprintln!("--part must be a or b, got {other}");
            std::process::exit(2);
        }
    }
}

/// Runs `f` over every long-genome pair and reports the median GCUPS.
fn median_over_pairs<F: FnMut(&Seq, &Seq) -> f64>(pairs: &[(String, Seq, Seq)], mut f: F) -> f64 {
    median(pairs.iter().map(|(_, q, s)| f(q, s)).collect())
}

fn part_a(cfg: &Cfg) {
    println!(
        "Figure 5a: long-genome pairs, median GCUPS \
         (cpu scale {}, sim scale {}, {} threads; * = modeled)\n",
        cfg.scale, cfg.gpu_scale, cfg.threads
    );
    let pairs = genome_pairs(cfg.scale, 11);
    // One pair suffices for the simulators (functional emulation is
    // CPU-bound); the scale is chosen so the modeled device saturates.
    let sim_pairs: Vec<_> = genome_pairs(cfg.gpu_scale, 11)
        .into_iter()
        .take(1)
        .collect();
    let lin = lin_scheme();
    let aff = aff_scheme();
    let mut json = BTreeMap::new();

    for (out, gapk) in [
        (Output::ScoresOnly, GapKind::Linear),
        (Output::ScoresOnly, GapKind::Affine),
        (Output::Traceback, GapKind::Linear),
        (Output::Traceback, GapKind::Affine),
    ] {
        let title = format!(
            "{}, {}",
            match out {
                Output::ScoresOnly => "Scores only",
                Output::Traceback => "Traceback",
            },
            match gapk {
                GapKind::Linear => "linear",
                GapKind::Affine => "affine",
            }
        );
        println!("== {title} ==");
        let mut table = Table::new(vec![
            "library", "CPU", "AVX2", "AVX512", "TitanV*", "ZCU104*",
        ]);

        // Helper macro running one CPU engine closure for the right scheme.
        macro_rules! cpu_gcups {
            ($run_lin:expr, $run_aff:expr) => {{
                median_over_pairs(&pairs, |q, s| {
                    let cells = (q.len() * s.len()) as u64
                        * if out == Output::Traceback {
                            TRACEBACK_CELL_FACTOR
                        } else {
                            1
                        };
                    let m = measure_gcups(cells, cfg.repeats, || match gapk {
                        GapKind::Linear => $run_lin(q, s),
                        GapKind::Affine => $run_aff(q, s),
                    });
                    m.gcups
                })
            }};
        }

        // ---- AnySeq -----------------------------------------------------
        let pcfg = ParallelCfg::threads(cfg.threads).with_tile(512);
        // The SIMD engines fill vector lanes with independent ready
        // tiles; smaller tiles keep the wavefront wide enough to form
        // full lane groups even on scaled-down inputs.
        let simd_cfg = ParallelCfg::threads(cfg.threads).with_tile(128);
        let anyseq_cpu = cpu_gcups!(
            |q: &Seq, s: &Seq| {
                match out {
                    Output::ScoresOnly => {
                        std::hint::black_box(
                            tiled_score_pass::<Global, _, _>(
                                lin.gap(),
                                lin.subst(),
                                q.codes(),
                                s.codes(),
                                lin.gap().open(),
                                &pcfg,
                            )
                            .score,
                        );
                    }
                    Output::Traceback => {
                        let pass = TiledPass { cfg: pcfg };
                        std::hint::black_box(
                            align_with_pass::<Global, _, _, _>(
                                &pass,
                                lin.gap(),
                                lin.subst(),
                                q.codes(),
                                s.codes(),
                                &AlignConfig::default(),
                            )
                            .score,
                        );
                    }
                }
            },
            |q: &Seq, s: &Seq| {
                match out {
                    Output::ScoresOnly => {
                        std::hint::black_box(
                            tiled_score_pass::<Global, _, _>(
                                aff.gap(),
                                aff.subst(),
                                q.codes(),
                                s.codes(),
                                aff.gap().open(),
                                &pcfg,
                            )
                            .score,
                        );
                    }
                    Output::Traceback => {
                        let pass = TiledPass { cfg: pcfg };
                        std::hint::black_box(
                            align_with_pass::<Global, _, _, _>(
                                &pass,
                                aff.gap(),
                                aff.subst(),
                                q.codes(),
                                s.codes(),
                                &AlignConfig::default(),
                            )
                            .score,
                        );
                    }
                }
            }
        );

        macro_rules! anyseq_simd_col {
            ($l:literal) => {{
                cpu_gcups!(
                    |q: &Seq, s: &Seq| {
                        match out {
                            Output::ScoresOnly => {
                                std::hint::black_box(
                                    simd_tiled_score_pass::<_, _, $l>(
                                        lin.gap(),
                                        lin.subst(),
                                        q.codes(),
                                        s.codes(),
                                        lin.gap().open(),
                                        &simd_cfg,
                                    )
                                    .score,
                                );
                            }
                            Output::Traceback => {
                                let pass = SimdPass::<$l> { cfg: simd_cfg };
                                std::hint::black_box(
                                    align_with_pass::<Global, _, _, _>(
                                        &pass,
                                        lin.gap(),
                                        lin.subst(),
                                        q.codes(),
                                        s.codes(),
                                        &AlignConfig::default(),
                                    )
                                    .score,
                                );
                            }
                        }
                    },
                    |q: &Seq, s: &Seq| {
                        match out {
                            Output::ScoresOnly => {
                                std::hint::black_box(
                                    simd_tiled_score_pass::<_, _, $l>(
                                        aff.gap(),
                                        aff.subst(),
                                        q.codes(),
                                        s.codes(),
                                        aff.gap().open(),
                                        &simd_cfg,
                                    )
                                    .score,
                                );
                            }
                            Output::Traceback => {
                                let pass = SimdPass::<$l> { cfg: simd_cfg };
                                std::hint::black_box(
                                    align_with_pass::<Global, _, _, _>(
                                        &pass,
                                        aff.gap(),
                                        aff.subst(),
                                        q.codes(),
                                        s.codes(),
                                        &AlignConfig::default(),
                                    )
                                    .score,
                                );
                            }
                        }
                    }
                )
            }};
        }
        let anyseq_avx2 = anyseq_simd_col!(16);
        let anyseq_avx512 = anyseq_simd_col!(32);

        // GPU (modeled) on the reduced-scale pair set.
        let gpu = GpuAligner::new(Device::titan_v()).with_tile(256);
        let anyseq_gpu = median_over_pairs(&sim_pairs, |q, s| match (out, gapk) {
            (Output::ScoresOnly, GapKind::Linear) => {
                let r = gpu.score(&lin, q, s);
                r.stats.gcups(&gpu.device)
            }
            (Output::ScoresOnly, GapKind::Affine) => {
                let r = gpu.score(&aff, q, s);
                r.stats.gcups(&gpu.device)
            }
            (Output::Traceback, GapKind::Linear) => {
                let (_, st) = gpu.align(&lin, q.codes(), s.codes());
                st.gcups(&gpu.device)
            }
            (Output::Traceback, GapKind::Affine) => {
                let (_, st) = gpu.align(&aff, q.codes(), s.codes());
                st.gcups(&gpu.device)
            }
        });

        // FPGA (modeled; the paper's FPGA backend is score-only).
        let fpga_cell = if out == Output::ScoresOnly {
            let arr = SystolicArray::zcu104(128);
            let v = median_over_pairs(&sim_pairs, |q, s| match gapk {
                GapKind::Linear => {
                    let r = arr.score(lin.gap(), lin.subst(), q, s);
                    arr.gcups(&r.stats)
                }
                GapKind::Affine => {
                    let r = arr.score(aff.gap(), aff.subst(), q, s);
                    arr.gcups(&r.stats)
                }
            });
            format!("{v:.1}")
        } else {
            "n/a".to_string()
        };

        table.row(vec![
            "AnySeq".to_string(),
            format!("{anyseq_cpu:.2}"),
            format!("{anyseq_avx2:.2}"),
            format!("{anyseq_avx512:.2}"),
            format!("{anyseq_gpu:.1}"),
            fpga_cell,
        ]);
        json.insert(format!("{title}/AnySeq/CPU"), anyseq_cpu);
        json.insert(format!("{title}/AnySeq/AVX2"), anyseq_avx2);
        json.insert(format!("{title}/AnySeq/AVX512"), anyseq_avx512);
        json.insert(format!("{title}/AnySeq/TitanV"), anyseq_gpu);

        // ---- SeqAn-like ---------------------------------------------------
        let mut seqan_cols = Vec::new();
        for lanes in [1usize, 16, 32] {
            let mut b = SeqAnLike::new(cfg.threads).with_lanes(lanes);
            b.tile = 128;
            let v = cpu_gcups!(
                |q: &Seq, s: &Seq| {
                    match out {
                        Output::ScoresOnly => {
                            std::hint::black_box(b.score(&lin, q, s));
                        }
                        Output::Traceback => {
                            std::hint::black_box(b.align(&lin, q, s).score);
                        }
                    }
                },
                |q: &Seq, s: &Seq| {
                    match out {
                        Output::ScoresOnly => {
                            std::hint::black_box(b.score(&aff, q, s));
                        }
                        Output::Traceback => {
                            std::hint::black_box(b.align(&aff, q, s).score);
                        }
                    }
                }
            );
            json.insert(format!("{title}/SeqAn-like/lanes{lanes}"), v);
            seqan_cols.push(format!("{v:.2}"));
        }
        table.row(vec![
            "SeqAn-like".to_string(),
            seqan_cols[0].clone(),
            seqan_cols[1].clone(),
            seqan_cols[2].clone(),
            "-".to_string(),
            "-".to_string(),
        ]);

        // ---- Parasail-like (static wavefront, always affine, scalar
        // diagonal interior — the same engine backs all CPU columns) ------
        let parasail = ParasailLike::new(cfg.threads);
        let parasail_gcups = cpu_gcups!(
            |q: &Seq, s: &Seq| {
                match out {
                    Output::ScoresOnly => {
                        std::hint::black_box(parasail.score(&lin, q, s));
                    }
                    Output::Traceback => {
                        std::hint::black_box(parasail.align(&lin, q, s).score);
                    }
                }
            },
            |q: &Seq, s: &Seq| {
                match out {
                    Output::ScoresOnly => {
                        std::hint::black_box(parasail.score(&aff, q, s));
                    }
                    Output::Traceback => {
                        std::hint::black_box(parasail.align(&aff, q, s).score);
                    }
                }
            }
        );
        json.insert(format!("{title}/Parasail-like/CPU"), parasail_gcups);
        let p = format!("{parasail_gcups:.2}");
        table.row(vec![
            "Parasail-like".to_string(),
            p.clone(),
            p.clone(),
            p,
            "-".to_string(),
            "-".to_string(),
        ]);

        // ---- NVBio-like (modeled) ----------------------------------------
        let nvbio = NvbioLike::new(Device::titan_v());
        let nv = median_over_pairs(&sim_pairs, |q, s| match (out, gapk) {
            (Output::ScoresOnly, GapKind::Linear) => {
                let r = nvbio.score(&lin, q, s);
                r.stats.gcups(&nvbio.aligner().device)
            }
            (Output::ScoresOnly, GapKind::Affine) => {
                let r = nvbio.score(&aff, q, s);
                r.stats.gcups(&nvbio.aligner().device)
            }
            (Output::Traceback, GapKind::Linear) => {
                let (_, st) = nvbio.align(&lin, q, s);
                st.gcups(&nvbio.aligner().device)
            }
            (Output::Traceback, GapKind::Affine) => {
                let (_, st) = nvbio.align(&aff, q, s);
                st.gcups(&nvbio.aligner().device)
            }
        });
        json.insert(format!("{title}/NVBio-like/TitanV"), nv);
        table.row(vec![
            "NVBio-like".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{nv:.1}"),
            "-".to_string(),
        ]);

        println!("{}", table.render());
    }
    dump_json("fig5a", &json);
}

fn part_b(cfg: &Cfg) {
    println!(
        "Figure 5b: short-read batches, median GCUPS \
         ({} pairs of ~150 bp, {} threads; * = modeled)\n",
        cfg.pairs, cfg.threads
    );
    let batch = read_batch(cfg.pairs, 23);
    let batch_view = BatchView::from_pairs(&batch);
    let cells: u64 = batch.iter().map(|(q, s)| (q.len() * s.len()) as u64).sum();
    let lin = lin_scheme();
    let aff = aff_scheme();
    let mut json = BTreeMap::new();
    // A reduced batch keeps the GPU functional simulation affordable.
    let sim_batch: Vec<_> = batch.iter().take(cfg.pairs.min(3000)).cloned().collect();
    let sim_view = BatchView::from_pairs(&sim_batch);

    for gapk in [GapKind::Linear, GapKind::Affine] {
        let title = format!(
            "Scores only, {}",
            if gapk == GapKind::Linear {
                "linear"
            } else {
                "affine"
            }
        );
        println!("== {title} ==");
        let mut table = Table::new(vec!["library", "CPU", "AVX2", "AVX512", "TitanV*"]);

        let anyseq_cpu = measure_gcups(cells, cfg.repeats, || match gapk {
            GapKind::Linear => {
                std::hint::black_box(score_batch_parallel(&lin, &batch, cfg.threads));
            }
            GapKind::Affine => {
                std::hint::black_box(score_batch_parallel(&aff, &batch, cfg.threads));
            }
        })
        .gcups;
        let anyseq_avx2 = measure_gcups(cells, cfg.repeats, || match gapk {
            GapKind::Linear => {
                std::hint::black_box(anyseq_simd::score_batch_simd::<_, _, _, 16>(
                    &lin,
                    batch_view.refs(),
                    cfg.threads,
                ));
            }
            GapKind::Affine => {
                std::hint::black_box(anyseq_simd::score_batch_simd::<_, _, _, 16>(
                    &aff,
                    batch_view.refs(),
                    cfg.threads,
                ));
            }
        })
        .gcups;
        let anyseq_avx512 = measure_gcups(cells, cfg.repeats, || match gapk {
            GapKind::Linear => {
                std::hint::black_box(anyseq_simd::score_batch_simd::<_, _, _, 32>(
                    &lin,
                    batch_view.refs(),
                    cfg.threads,
                ));
            }
            GapKind::Affine => {
                std::hint::black_box(anyseq_simd::score_batch_simd::<_, _, _, 32>(
                    &aff,
                    batch_view.refs(),
                    cfg.threads,
                ));
            }
        })
        .gcups;

        let gpu = GpuAligner::new(Device::titan_v());
        let anyseq_gpu = match gapk {
            GapKind::Linear => {
                let (_, st) = gpu.score_batch(&lin, sim_view.refs());
                st.gcups(&gpu.device)
            }
            GapKind::Affine => {
                let (_, st) = gpu.score_batch(&aff, sim_view.refs());
                st.gcups(&gpu.device)
            }
        };

        table.row(vec![
            "AnySeq".to_string(),
            format!("{anyseq_cpu:.2}"),
            format!("{anyseq_avx2:.2}"),
            format!("{anyseq_avx512:.2}"),
            format!("{anyseq_gpu:.1}"),
        ]);
        json.insert(format!("{title}/AnySeq/CPU"), anyseq_cpu);
        json.insert(format!("{title}/AnySeq/AVX2"), anyseq_avx2);
        json.insert(format!("{title}/AnySeq/AVX512"), anyseq_avx512);
        json.insert(format!("{title}/AnySeq/TitanV"), anyseq_gpu);

        // SeqAn-like batch (scalar per pair under its queue discipline).
        let seqan = SeqAnLike::new(cfg.threads);
        let seqan_cpu = measure_gcups(cells, cfg.repeats, || match gapk {
            GapKind::Linear => {
                std::hint::black_box(seqan.score_batch(&lin, &batch));
            }
            GapKind::Affine => {
                std::hint::black_box(seqan.score_batch(&aff, &batch));
            }
        })
        .gcups;
        table.row(vec![
            "SeqAn-like".to_string(),
            format!("{seqan_cpu:.2}"),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        json.insert(format!("{title}/SeqAn-like/CPU"), seqan_cpu);

        // NVBio-like (modeled).
        let nvbio = NvbioLike::new(Device::titan_v());
        let nv = match gapk {
            GapKind::Linear => {
                let (_, st) = nvbio.aligner().score_batch(&lin, sim_view.refs());
                st.gcups(&nvbio.aligner().device)
            }
            GapKind::Affine => {
                let (_, st) = nvbio.aligner().score_batch(&aff, sim_view.refs());
                st.gcups(&nvbio.aligner().device)
            }
        };
        table.row(vec![
            "NVBio-like".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{nv:.1}"),
        ]);
        json.insert(format!("{title}/NVBio-like/TitanV"), nv);

        // Extra baseline: Farrar/SSW striped local scoring.
        let farrar = anyseq_baselines::farrar::Farrar::<16>::new(
            AffineGap {
                open: -2,
                extend: -1,
            },
            &simple(2, -1),
        );
        let farrar_gcups = measure_gcups(cells, cfg.repeats, || {
            std::hint::black_box(farrar.score_batch(&batch, cfg.threads));
        })
        .gcups;
        table.row(vec![
            "SSW/Farrar (local)".to_string(),
            "-".to_string(),
            format!("{farrar_gcups:.2}"),
            "-".to_string(),
            "-".to_string(),
        ]);
        json.insert(format!("{title}/Farrar/AVX2"), farrar_gcups);

        println!("{}", table.render());
    }

    // Traceback rows (CPU only: per-read alignments are full-matrix-sized
    // rectangles below the recursion cutoff).
    for gapk in [GapKind::Linear, GapKind::Affine] {
        let title = format!(
            "Traceback, {}",
            if gapk == GapKind::Linear {
                "linear"
            } else {
                "affine"
            }
        );
        println!("== {title} ==");
        let mut table = Table::new(vec!["library", "CPU"]);
        let trace_cells = cells; // full matrix + traceback walk
        let v = measure_gcups(trace_cells, cfg.repeats.max(1), || {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let next = AtomicUsize::new(0);
            std::thread::scope(|sc| {
                for _ in 0..cfg.threads {
                    sc.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= batch.len() {
                            break;
                        }
                        let (q, s) = &batch[k];
                        match gapk {
                            GapKind::Linear => {
                                std::hint::black_box(lin_scheme().align(q, s).score);
                            }
                            GapKind::Affine => {
                                std::hint::black_box(aff_scheme().align(q, s).score);
                            }
                        }
                    });
                }
            });
        })
        .gcups;
        table.row(vec!["AnySeq".to_string(), format!("{v:.2}")]);
        json.insert(format!("{title}/AnySeq/CPU"), v);
        println!("{}", table.render());
    }
    dump_json("fig5b", &json);
}
