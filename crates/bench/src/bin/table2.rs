//! Regenerates paper **Table II**: energy efficiency in GCUPS/watt for
//! the fastest scores-only long-genome variant per device, using the
//! paper's nameplate power accounting (CPU/GPU: specification; ZCU104:
//! synthesis report).
//!
//! Usage: `table2 [--scale F] [--gpu-scale F] [--threads N]`

use anyseq_bench::gcups::{measure_gcups, median};
use anyseq_bench::report::{dump_json, Table};
use anyseq_bench::workloads::genome_pairs;
use anyseq_core::prelude::*;
use anyseq_fpga_sim::{gcups_per_watt, table2_devices, SystolicArray};
use anyseq_gpu_sim::{Device, GpuAligner};
use anyseq_simd::simd_tiled_score_pass;
use anyseq_wavefront::pass::ParallelCfg;
use std::collections::BTreeMap;

fn main() {
    let mut scale = 0.004;
    let mut gpu_scale = 0.01;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let args: Vec<String> = std::env::args().collect();
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--scale" => {
                scale = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--gpu-scale" => {
                gpu_scale = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--threads" => {
                threads = args[k + 1].parse().unwrap();
                k += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let pairs = genome_pairs(scale, 11);
    let sim_pairs: Vec<_> = genome_pairs(gpu_scale, 11).into_iter().take(1).collect();
    let lin = global(linear(simple(2, -1), -1));
    let aff = global(affine(simple(2, -1), -2, -1));
    let powers = table2_devices();
    let pcfg = ParallelCfg::threads(threads).with_tile(512);

    println!(
        "Table II: energy efficiency in GCUPS/watt (scores only, long \
         genomes; higher is better)\n(cpu scale {scale}, sim scale {gpu_scale}; \
         CPU measured on this host, GPU/FPGA modeled)\n"
    );
    let mut table = Table::new(vec!["Device", "Watt", "Gap", "GCUPS", "GCUPS/watt"]);
    let mut json = BTreeMap::new();

    // CPU: fastest AnySeq variant (AVX512-width SIMD tiled pass).
    for (gap_name, is_affine) in [("linear", false), ("affine", true)] {
        let gcups = median(
            pairs
                .iter()
                .map(|(_, q, s)| {
                    let cells = (q.len() * s.len()) as u64;
                    measure_gcups(cells, 3, || {
                        if is_affine {
                            std::hint::black_box(
                                simd_tiled_score_pass::<_, _, 32>(
                                    aff.gap(),
                                    aff.subst(),
                                    q.codes(),
                                    s.codes(),
                                    aff.gap().open(),
                                    &pcfg,
                                )
                                .score,
                            );
                        } else {
                            std::hint::black_box(
                                simd_tiled_score_pass::<_, _, 32>(
                                    lin.gap(),
                                    lin.subst(),
                                    q.codes(),
                                    s.codes(),
                                    lin.gap().open(),
                                    &pcfg,
                                )
                                .score,
                            );
                        }
                    })
                    .gcups
                })
                .collect(),
        );
        let w = powers[0].watts;
        table.row(vec![
            powers[0].device.to_string(),
            format!("{w}"),
            gap_name.to_string(),
            format!("{gcups:.2}"),
            format!("{:.3}", gcups_per_watt(gcups, w)),
        ]);
        json.insert(format!("cpu/{gap_name}"), gcups_per_watt(gcups, w));
    }

    // GPU (modeled).
    let gpu = GpuAligner::new(Device::titan_v()).with_tile(256);
    for (gap_name, is_affine) in [("linear", false), ("affine", true)] {
        let gcups = median(
            sim_pairs
                .iter()
                .map(|(_, q, s)| {
                    if is_affine {
                        let r = gpu.score(&aff, q, s);
                        r.stats.gcups(&gpu.device)
                    } else {
                        let r = gpu.score(&lin, q, s);
                        r.stats.gcups(&gpu.device)
                    }
                })
                .collect(),
        );
        let w = powers[1].watts;
        table.row(vec![
            powers[1].device.to_string(),
            format!("{w}"),
            gap_name.to_string(),
            format!("{gcups:.2}"),
            format!("{:.3}", gcups_per_watt(gcups, w)),
        ]);
        json.insert(format!("gpu/{gap_name}"), gcups_per_watt(gcups, w));
    }

    // FPGA (modeled; linear and affine take identical cycles).
    let arr = SystolicArray::zcu104(128);
    for (gap_name, is_affine) in [("linear", false), ("affine", true)] {
        let gcups = median(
            sim_pairs
                .iter()
                .map(|(_, q, s)| {
                    if is_affine {
                        let r = arr.score(aff.gap(), aff.subst(), q, s);
                        arr.gcups(&r.stats)
                    } else {
                        let r = arr.score(lin.gap(), lin.subst(), q, s);
                        arr.gcups(&r.stats)
                    }
                })
                .collect(),
        );
        let w = powers[2].watts;
        table.row(vec![
            powers[2].device.to_string(),
            format!("{w}"),
            gap_name.to_string(),
            format!("{gcups:.2}"),
            format!("{:.3}", gcups_per_watt(gcups, w)),
        ]);
        json.insert(format!("fpga/{gap_name}"), gcups_per_watt(gcups, w));
    }

    println!("{}", table.render());
    println!(
        "(paper: CPU 1.024/0.968, Titan V 0.757/0.696, ZCU104 3.187/3.187 \
         GCUPS/watt; the FPGA should lead by >3x over CPU, >4x over GPU)"
    );
    dump_json("table2", &json);
}
