//! Regenerates paper **Table I**: the long genomic sequences used for
//! benchmarking — here synthesized at a configurable scale with matching
//! labels, lengths and GC composition.
//!
//! Usage: `table1 [--scale F] [--seed N]`

use anyseq_bench::report::Table;
use anyseq_bench::workloads::{synthesize, table1_specs};

fn main() {
    let mut scale = 1.0 / 32.0;
    let mut seed = 42u64;
    let args: Vec<String> = std::env::args().collect();
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--scale" => {
                scale = args[k + 1].parse().expect("--scale takes a float");
                k += 2;
            }
            "--seed" => {
                seed = args[k + 1].parse().expect("--seed takes an integer");
                k += 2;
            }
            other => {
                eprintln!("unknown flag {other}; usage: table1 [--scale F] [--seed N]");
                std::process::exit(2);
            }
        }
    }

    println!("Table I: Long genomic sequences used for benchmarking");
    println!("(synthetic substitutes at scale {scale}; see DESIGN.md §3)\n");
    let mut table = Table::new(vec![
        "Accession No.",
        "Length (paper)",
        "Length (synth)",
        "GC (synth)",
        "Genome Definition",
    ]);
    for spec in table1_specs() {
        let g = synthesize(&spec, scale, seed);
        table.row(vec![
            spec.accession.to_string(),
            format!("{}", spec.length),
            format!("{}", g.len()),
            format!("{:.3}", g.gc_content()),
            spec.definition.to_string(),
        ]);
    }
    println!("{}", table.render());
}
