//! Reproduces the paper's §IV code-base breakdown claim: "approximately
//! 23% of all lines of code are specifically written for the GPU, 14% are
//! specific to CPU vectorization and less than 11% are only needed for
//! the non-vectorized CPU version while the remaining 52% are shared
//! among all three variants" (excluding benchmarking, I/O and interface
//! code, and the FPGA-specific parts — same exclusions applied here).
//!
//! Usage: `loc_breakdown [workspace-root]`

use std::path::Path;

fn count_loc(dir: &Path) -> usize {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                total += count_loc(&path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    total += text
                        .lines()
                        .filter(|l| {
                            let t = l.trim();
                            !t.is_empty() && !t.starts_with("//")
                        })
                        .count();
                }
            }
        }
    }
    total
}

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = Path::new(&root);

    // Categories per the paper's methodology: shared = core algorithm +
    // scheduling substrate (used by every backend); CPU-scalar = the
    // scalar-only pieces; SIMD = vectorization-specific; GPU = the GPU
    // mapping. Excluded: seq (I/O), bench, cli, fpga-sim, tests.
    let file_loc = |rel: &str| -> usize {
        let p = root.join(rel);
        std::fs::read_to_string(&p)
            .map(|text| {
                text.lines()
                    .filter(|l| {
                        let t = l.trim();
                        !t.is_empty() && !t.starts_with("//")
                    })
                    .count()
            })
            .unwrap_or(0)
    };

    let core = count_loc(&root.join("crates/core/src"));
    let wavefront_shared = file_loc("crates/wavefront/src/grid.rs")
        + file_loc("crates/wavefront/src/borders.rs")
        + file_loc("crates/wavefront/src/scheduler.rs");
    let cpu_scalar = file_loc("crates/wavefront/src/pass.rs")
        + file_loc("crates/wavefront/src/aligner.rs")
        + file_loc("crates/wavefront/src/lib.rs");
    let simd = count_loc(&root.join("crates/simd/src"));
    let gpu = count_loc(&root.join("crates/gpu-sim/src"));

    let shared_total = core + wavefront_shared;
    let total = shared_total + cpu_scalar + simd + gpu;
    println!(
        "Code-base breakdown (non-blank, non-comment lines; excludes \
         seq/bench/cli/fpga per the paper's exclusions):\n"
    );
    let pct = |x: usize| 100.0 * x as f64 / total as f64;
    println!(
        "  shared (core + grid/borders/scheduler): {shared_total:>6} ({:.0}%)",
        pct(shared_total)
    );
    println!(
        "  CPU scalar (tiled pass + aligner):      {cpu_scalar:>6} ({:.0}%)",
        pct(cpu_scalar)
    );
    println!(
        "  CPU SIMD:                               {simd:>6} ({:.0}%)",
        pct(simd)
    );
    println!(
        "  GPU:                                    {gpu:>6} ({:.0}%)",
        pct(gpu)
    );
    println!("  total:                                  {total:>6}");
    println!("\n(paper: 52% shared / 11% CPU-scalar / 14% SIMD / 23% GPU)");
}
