//! Regenerates paper **Figure 6**: CPU thread scalability of the dynamic
//! wavefront vs the static (barrier-per-diagonal) wavefront for one long
//! DNA pair.
//!
//! The paper reports the dynamic approach reaching 75 % / 65 % parallel
//! efficiency at 16 / 32 threads while the static one collapses to
//! 15 % / 8 %. Both schedules here drive the identical scalar tile
//! kernel, isolating the scheduling effect.
//!
//! Usage: `fig6 [--scale F] [--threads 1,2,4,...] [--tile N] [--repeats N]`

use anyseq_bench::gcups::measure_gcups;
use anyseq_bench::report::{dump_json, Table};
use anyseq_bench::workloads::genome_pairs;
use anyseq_core::kind::Global;
use anyseq_core::prelude::*;
use anyseq_wavefront::pass::{tiled_score_pass, ParallelCfg};
use std::collections::BTreeMap;

fn main() {
    let mut scale = 0.004;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8, 16, 24];
    let mut tile = 256usize;
    let mut repeats = 3usize;
    let args: Vec<String> = std::env::args().collect();
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--scale" => {
                scale = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--tile" => {
                tile = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--repeats" => {
                repeats = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--threads" => {
                threads = args[k + 1].split(',').map(|t| t.parse().unwrap()).collect();
                k += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let pairs = genome_pairs(scale, 7);
    let (name, q, s) = &pairs[0];
    let cells = (q.len() * s.len()) as u64;
    let gap = LinearGap { gap: -1 };
    let subst = simple(2, -1);
    println!(
        "Figure 6: thread scalability, dynamic vs static wavefront\n\
         pair {name} ({} x {} bp, scale {scale}, tile {tile})\n",
        q.len(),
        s.len()
    );

    let mut table = Table::new(vec![
        "threads",
        "dynamic GCUPS",
        "static GCUPS",
        "dyn eff %",
        "stat eff %",
    ]);
    let mut json = BTreeMap::new();
    let mut base_dyn = 0.0;
    let mut base_stat = 0.0;
    for &t in &threads {
        let mk = |stat: bool| ParallelCfg {
            threads: t,
            tile,
            min_parallel_area: 0,
            static_schedule: stat,
            shard_cells: 0,
        };
        let dynm = measure_gcups(cells, repeats, || {
            std::hint::black_box(
                tiled_score_pass::<Global, _, _>(
                    &gap,
                    &subst,
                    q.codes(),
                    s.codes(),
                    gap.open(),
                    &mk(false),
                )
                .score,
            );
        });
        let statm = measure_gcups(cells, repeats, || {
            std::hint::black_box(
                tiled_score_pass::<Global, _, _>(
                    &gap,
                    &subst,
                    q.codes(),
                    s.codes(),
                    gap.open(),
                    &mk(true),
                )
                .score,
            );
        });
        if t == threads[0] {
            base_dyn = dynm.gcups / t as f64;
            base_stat = statm.gcups / t as f64;
        }
        table.row(vec![
            format!("{t}"),
            format!("{:.2}", dynm.gcups),
            format!("{:.2}", statm.gcups),
            format!("{:.0}", 100.0 * dynm.gcups / (base_dyn * t as f64)),
            format!("{:.0}", 100.0 * statm.gcups / (base_stat * t as f64)),
        ]);
        json.insert(format!("dynamic/{t}"), dynm.gcups);
        json.insert(format!("static/{t}"), statm.gcups);
    }
    println!("{}", table.render());
    dump_json("fig6", &json);
    println!("(paper: dynamic 75%/65% efficiency at 16/32 threads, static 15%/8%)");
}
