//! Serving-layer throughput: concurrent clients against the
//! `anyseq-serve` daemon, measuring how well the deadline
//! micro-batching window coalesces independent requests into engine
//! batches — and what the per-request tracing pipeline costs.
//!
//! Run: `cargo run --release -p anyseq-bench --bin serve_throughput \
//!       [clients] [reqs_per_client] [pairs_per_req] [--socket PATH]`
//!
//! Without `--socket` the daemon runs in-process (50 ms window so the
//! whole burst coalesces); with it, the bench drives an external
//! `anyseq serve` daemon — the CI `serve-smoke` job uses that mode.
//! Every reply is checked bit-exactly against a local engine baseline,
//! then the final `STATS` scrape is parsed into the report keys
//! `scripts/check_bench_report.py --serve` validates:
//! `serve.{requests,batches,rejected,window_occupancy}` plus the
//! client-side throughput (`serve.pairs_per_s`, `serve.gcups`).
//!
//! Three observability sections ride along:
//! * the per-verb request-latency quantile gauges the daemon refreshes
//!   at scrape time (`serve.req_p{50,95,99}_us` for `score`, the
//!   `serve.align_req_*` variants after a small verified align burst),
//! * the slow-request counter (`serve.slow_total` — zero is healthy at
//!   bench window sizes),
//! * a request-tracing overhead phase: two fresh in-process daemons,
//!   identical traffic, `request_obs` off vs on, best-of-two each —
//!   `serve.req_obs_overhead_frac` must stay ≤ 3 % of pairs/s once the
//!   run moves ≥ 2000 pairs (the acceptance bar: always-on tracing must
//!   be effectively free).
//!
//! The coalescing figure of merit is `serve.window_occupancy` — mean
//! pairs per engine batch. With ≥ 4 concurrent clients it must reach
//! at least 4× the single-request size (the acceptance bar: batching
//! must actually batch).

use anyseq_bench::report::dump_json;
use anyseq_engine::{BatchCfg, BatchScheduler, Dispatch, Policy};
use anyseq_seq::testsupport::read_pairs;
use anyseq_seq::{BatchView, Seq};
use anyseq_serve::{ReqKind, SchemeSpec, ServeClient, ServeConfig, Server, SystemClock, WindowCfg};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Extracts one value from a Prometheus text exposition. `name` may
/// include a label set (`foo{verb="score"}`) — lines match by prefix.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("STATS scrape is missing {name}"))
}

/// An in-process daemon with the bench's wide coalescing window.
fn start_daemon(tag: &str, request_obs: bool) -> anyseq_serve::ServerHandle {
    let cfg = ServeConfig {
        window: WindowCfg {
            max_delay_ns: 50_000_000,
            ..WindowCfg::default()
        },
        request_obs,
        ..ServeConfig::default()
    };
    let path = std::env::temp_dir().join(format!(
        "anyseq-serve-throughput-{tag}-{}.sock",
        std::process::id()
    ));
    Server::start(path, cfg, Arc::new(SystemClock::new())).expect("daemon start failed")
}

/// Drives one concurrent score burst: every client pipelines its whole
/// workload, drains the replies, and (when a baseline is given) checks
/// them bit-exactly. Returns the wall time and the last client's final
/// `STATS` scrape.
fn run_burst(
    sock: &Path,
    spec: SchemeSpec,
    workloads: Vec<Vec<(Seq, Seq)>>,
    baselines: Option<Vec<Vec<i32>>>,
    pairs_per_req: usize,
) -> (f64, String) {
    let expected: Vec<Option<Vec<i32>>> = match baselines {
        Some(b) => b.into_iter().map(Some).collect(),
        None => workloads.iter().map(|_| None).collect(),
    };
    let t0 = Instant::now();
    let handles: Vec<_> = workloads
        .into_iter()
        .zip(expected)
        .map(|(pairs, expected)| {
            let sock = sock.to_path_buf();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&sock).expect("connect failed");
                // Pipeline the whole workload, then drain the replies.
                for chunk in pairs.chunks(pairs_per_req) {
                    client
                        .submit_seqs(ReqKind::Score, spec, chunk)
                        .expect("submit failed");
                }
                let mut got = Vec::with_capacity(pairs.len());
                for _ in 0..pairs.len().div_ceil(pairs_per_req) {
                    match client.recv().expect("recv failed") {
                        anyseq_serve::ServerReply::Response { results, .. } => match results {
                            anyseq_serve::proto::Results::Scores(v) => got.extend(v),
                            other => panic!("score request answered with {other:?}"),
                        },
                        other => panic!("unexpected reply: {other:?}"),
                    }
                }
                if let Some(expected) = expected {
                    assert_eq!(got, expected, "daemon scores diverged from the baseline");
                } else {
                    assert_eq!(got.len(), pairs.len(), "daemon dropped replies");
                }
                client.stats().expect("stats scrape failed")
            })
        })
        .collect();
    let stats = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .next_back()
        .unwrap();
    (t0.elapsed().as_secs_f64(), stats)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let reqs: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(8);
    let pairs_per_req: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(64);
    let socket: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--socket")
        .and_then(|k| args.get(k + 1))
        .map(PathBuf::from);

    // In-process daemon unless --socket points at an external one. The
    // wide window lets the full client burst coalesce; the default
    // 512-pair target still flushes early once the window fills.
    let server = if socket.is_none() {
        Some(start_daemon("main", true))
    } else {
        None
    };
    let sock = socket
        .clone()
        .unwrap_or_else(|| server.as_ref().unwrap().path().to_path_buf());

    let spec = SchemeSpec::global_linear(2, -1, -1);
    println!(
        "{clients} clients x {reqs} requests x {pairs_per_req} pairs -> {}",
        sock.display()
    );

    // Per-client workloads and the local baseline, computed up front so
    // the timed section is pure daemon traffic.
    let workloads: Vec<Vec<(Seq, Seq)>> = (0..clients)
        .map(|c| read_pairs(reqs * pairs_per_req, 0x5e7e + c as u64))
        .collect();
    let dispatch = Dispatch::standard(Policy::Auto);
    let scheduler = BatchScheduler::new(BatchCfg::default());
    let baselines: Vec<Vec<i32>> = workloads
        .iter()
        .map(|pairs| {
            scheduler
                .score_batch(&dispatch, &spec, &BatchView::from_pairs(pairs))
                .results
        })
        .collect();
    let cells: f64 = workloads
        .iter()
        .flatten()
        .map(|(q, s)| (q.len() * s.len()) as f64)
        .sum();

    let (wall, stats) = run_burst(&sock, spec, workloads, Some(baselines), pairs_per_req);

    let requests = metric(&stats, "anyseq_serve_requests_total");
    let batches = metric(&stats, "anyseq_serve_batches_total");
    let rejected = metric(&stats, "anyseq_serve_rejected_total");
    let occupancy = metric(&stats, "anyseq_serve_window_occupancy");
    let score_p50 = metric(&stats, "anyseq_serve_req_p50_us{verb=\"score\"}");
    let score_p95 = metric(&stats, "anyseq_serve_req_p95_us{verb=\"score\"}");
    let score_p99 = metric(&stats, "anyseq_serve_req_p99_us{verb=\"score\"}");
    let total_pairs = (clients * reqs * pairs_per_req) as f64;

    println!(
        "wall {wall:.3}s  {:.0} pairs/s  {:.3} GCUPS (client-side, verified)",
        total_pairs / wall,
        cells / wall / 1e9
    );
    println!(
        "daemon: {requests} requests -> {batches} batches \
         (occupancy {occupancy:.1} pairs/batch), {rejected} rejected"
    );
    println!("score latency: p50 {score_p50:.0}us  p95 {score_p95:.0}us  p99 {score_p99:.0}us");

    // The acceptance bar: under real concurrency the window must
    // coalesce, not pass requests through one at a time.
    if clients >= 4 {
        let bar = 4.0 * pairs_per_req as f64;
        assert!(
            occupancy >= bar,
            "window occupancy {occupancy:.1} below the {bar:.0}-pair bar \
             ({clients} clients x {pairs_per_req} pairs)"
        );
    }

    // A small verified align burst so the verb="align" latency gauges
    // exist too (quantiles refresh on the scrape that follows it).
    let align_pairs = read_pairs(32, 0xa116);
    let stats = {
        let mut client = ServeClient::connect(&sock).expect("align connect failed");
        for chunk in align_pairs.chunks(8) {
            let results = client
                .roundtrip(
                    ReqKind::Align,
                    spec,
                    chunk
                        .iter()
                        .map(|(q, s)| (q.codes().to_vec(), s.codes().to_vec()))
                        .collect(),
                )
                .expect("align roundtrip failed")
                .expect("align request refused");
            match results {
                anyseq_serve::proto::Results::Alignments(v) => assert_eq!(v.len(), chunk.len()),
                other => panic!("align request answered with {other:?}"),
            }
        }
        client.stats().expect("align stats scrape failed")
    };
    let align_p50 = metric(&stats, "anyseq_serve_req_p50_us{verb=\"align\"}");
    let align_p95 = metric(&stats, "anyseq_serve_req_p95_us{verb=\"align\"}");
    let align_p99 = metric(&stats, "anyseq_serve_req_p99_us{verb=\"align\"}");
    let slow_total = metric(&stats, "anyseq_serve_slow_total");
    println!(
        "align latency: p50 {align_p50:.0}us  p95 {align_p95:.0}us  p99 {align_p99:.0}us  \
         ({slow_total} slow requests)"
    );

    // Request-tracing overhead: identical traffic against two fresh
    // in-process daemons (tracing off, then on), best of two runs each
    // so a cold first window doesn't masquerade as tracing cost.
    let mut best = [0.0f64; 2];
    for (i, request_obs) in [false, true].into_iter().enumerate() {
        for _ in 0..2 {
            let daemon = start_daemon(if request_obs { "obs-on" } else { "obs-off" }, request_obs);
            let workloads: Vec<Vec<(Seq, Seq)>> = (0..clients)
                .map(|c| read_pairs(reqs * pairs_per_req, 0x0b5 + c as u64))
                .collect();
            let (wall, _) = run_burst(daemon.path(), spec, workloads, None, pairs_per_req);
            best[i] = best[i].max(total_pairs / wall);
            daemon.shutdown();
        }
    }
    let [off, on] = best;
    let overhead_frac = ((off - on) / off).max(0.0);
    println!(
        "request tracing: {off:.0} pairs/s off, {on:.0} pairs/s on \
         (overhead {:.2}%)",
        overhead_frac * 100.0
    );
    if total_pairs >= 2000.0 {
        assert!(
            overhead_frac <= 0.03,
            "request tracing costs {:.2}% pairs/s (bar: 3%) at {total_pairs} pairs",
            overhead_frac * 100.0
        );
    }

    let mut json: BTreeMap<String, f64> = BTreeMap::new();
    json.insert("serve.requests".into(), requests);
    json.insert("serve.batches".into(), batches);
    json.insert("serve.rejected".into(), rejected);
    json.insert("serve.window_occupancy".into(), occupancy);
    json.insert("serve.clients".into(), clients as f64);
    json.insert("serve.pairs_per_req".into(), pairs_per_req as f64);
    json.insert("serve.wall_s".into(), wall);
    json.insert("serve.pairs_per_s".into(), total_pairs / wall);
    json.insert("serve.gcups".into(), cells / wall / 1e9);
    json.insert("serve.req_p50_us".into(), score_p50);
    json.insert("serve.req_p95_us".into(), score_p95);
    json.insert("serve.req_p99_us".into(), score_p99);
    json.insert("serve.align_req_p50_us".into(), align_p50);
    json.insert("serve.align_req_p95_us".into(), align_p95);
    json.insert("serve.align_req_p99_us".into(), align_p99);
    json.insert("serve.slow_total".into(), slow_total);
    json.insert("serve.req_obs_overhead_frac".into(), overhead_frac);
    dump_json("serve_throughput", &json);

    if let Some(server) = server {
        server.shutdown();
    }
    println!("serve throughput OK");
}
