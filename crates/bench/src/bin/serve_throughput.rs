//! Serving-layer throughput: concurrent clients against the
//! `anyseq-serve` daemon, measuring how well the deadline
//! micro-batching window coalesces independent requests into engine
//! batches.
//!
//! Run: `cargo run --release -p anyseq-bench --bin serve_throughput \
//!       [clients] [reqs_per_client] [pairs_per_req] [--socket PATH]`
//!
//! Without `--socket` the daemon runs in-process (50 ms window so the
//! whole burst coalesces); with it, the bench drives an external
//! `anyseq serve` daemon — the CI `serve-smoke` job uses that mode.
//! Every reply is checked bit-exactly against a local engine baseline,
//! then the final `STATS` scrape is parsed into the report keys
//! `scripts/check_bench_report.py --serve` validates:
//! `serve.{requests,batches,rejected,window_occupancy}` plus the
//! client-side throughput (`serve.pairs_per_s`, `serve.gcups`).
//!
//! The coalescing figure of merit is `serve.window_occupancy` — mean
//! pairs per engine batch. With ≥ 4 concurrent clients it must reach
//! at least 4× the single-request size (the acceptance bar: batching
//! must actually batch).

use anyseq_bench::report::dump_json;
use anyseq_engine::{BatchCfg, BatchScheduler, Dispatch, Policy};
use anyseq_seq::testsupport::read_pairs;
use anyseq_seq::{BatchView, Seq};
use anyseq_serve::{ReqKind, SchemeSpec, ServeClient, ServeConfig, Server, SystemClock, WindowCfg};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Extracts one value from a Prometheus text exposition.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("STATS scrape is missing {name}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let reqs: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(8);
    let pairs_per_req: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(64);
    let socket: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--socket")
        .and_then(|k| args.get(k + 1))
        .map(PathBuf::from);

    // In-process daemon unless --socket points at an external one. The
    // wide window lets the full client burst coalesce; the default
    // 512-pair target still flushes early once the window fills.
    let server = if socket.is_none() {
        let cfg = ServeConfig {
            window: WindowCfg {
                max_delay_ns: 50_000_000,
                ..WindowCfg::default()
            },
            ..ServeConfig::default()
        };
        let path = std::env::temp_dir().join(format!(
            "anyseq-serve-throughput-{}.sock",
            std::process::id()
        ));
        Some(Server::start(path, cfg, Arc::new(SystemClock::new())).expect("daemon start failed"))
    } else {
        None
    };
    let sock = socket
        .clone()
        .unwrap_or_else(|| server.as_ref().unwrap().path().to_path_buf());

    let spec = SchemeSpec::global_linear(2, -1, -1);
    println!(
        "{clients} clients x {reqs} requests x {pairs_per_req} pairs -> {}",
        sock.display()
    );

    // Per-client workloads and the local baseline, computed up front so
    // the timed section is pure daemon traffic.
    let workloads: Vec<Vec<(Seq, Seq)>> = (0..clients)
        .map(|c| read_pairs(reqs * pairs_per_req, 0x5e7e + c as u64))
        .collect();
    let dispatch = Dispatch::standard(Policy::Auto);
    let scheduler = BatchScheduler::new(BatchCfg::default());
    let baselines: Vec<Vec<i32>> = workloads
        .iter()
        .map(|pairs| {
            scheduler
                .score_batch(&dispatch, &spec, &BatchView::from_pairs(pairs))
                .results
        })
        .collect();
    let cells: f64 = workloads
        .iter()
        .flatten()
        .map(|(q, s)| (q.len() * s.len()) as f64)
        .sum();

    let t0 = Instant::now();
    let handles: Vec<_> = workloads
        .into_iter()
        .zip(baselines)
        .map(|(pairs, expected)| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&sock).expect("connect failed");
                // Pipeline the whole workload, then drain the replies.
                for chunk in pairs.chunks(pairs_per_req) {
                    client
                        .submit_seqs(ReqKind::Score, spec, chunk)
                        .expect("submit failed");
                }
                let mut got = Vec::with_capacity(expected.len());
                for _ in 0..pairs.len().div_ceil(pairs_per_req) {
                    match client.recv().expect("recv failed") {
                        anyseq_serve::ServerReply::Response { results, .. } => match results {
                            anyseq_serve::proto::Results::Scores(v) => got.extend(v),
                            other => panic!("score request answered with {other:?}"),
                        },
                        other => panic!("unexpected reply: {other:?}"),
                    }
                }
                assert_eq!(got, expected, "daemon scores diverged from the baseline");
                client.stats().expect("stats scrape failed")
            })
        })
        .collect();
    let stats = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .next_back()
        .unwrap();
    let wall = t0.elapsed().as_secs_f64();

    let requests = metric(&stats, "anyseq_serve_requests_total");
    let batches = metric(&stats, "anyseq_serve_batches_total");
    let rejected = metric(&stats, "anyseq_serve_rejected_total");
    let occupancy = metric(&stats, "anyseq_serve_window_occupancy");
    let total_pairs = (clients * reqs * pairs_per_req) as f64;

    println!(
        "wall {wall:.3}s  {:.0} pairs/s  {:.3} GCUPS (client-side, verified)",
        total_pairs / wall,
        cells / wall / 1e9
    );
    println!(
        "daemon: {requests} requests -> {batches} batches \
         (occupancy {occupancy:.1} pairs/batch), {rejected} rejected"
    );

    // The acceptance bar: under real concurrency the window must
    // coalesce, not pass requests through one at a time.
    if clients >= 4 {
        let bar = 4.0 * pairs_per_req as f64;
        assert!(
            occupancy >= bar,
            "window occupancy {occupancy:.1} below the {bar:.0}-pair bar \
             ({clients} clients x {pairs_per_req} pairs)"
        );
    }

    let mut json: BTreeMap<String, f64> = BTreeMap::new();
    json.insert("serve.requests".into(), requests);
    json.insert("serve.batches".into(), batches);
    json.insert("serve.rejected".into(), rejected);
    json.insert("serve.window_occupancy".into(), occupancy);
    json.insert("serve.clients".into(), clients as f64);
    json.insert("serve.pairs_per_req".into(), pairs_per_req as f64);
    json.insert("serve.wall_s".into(), wall);
    json.insert("serve.pairs_per_s".into(), total_pairs / wall);
    json.insert("serve.gcups".into(), cells / wall / 1e9);
    dump_json("serve_throughput", &json);

    if let Some(server) = server {
        server.shutdown();
    }
    println!("serve throughput OK");
}
