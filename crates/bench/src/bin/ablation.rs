//! Ablation benches for the design choices the paper's §V singles out:
//! tile size, recursion cutoff, concurrent-queue implementation, SIMD
//! score width, and GPU striping/phasing/coalescing.
//!
//! Usage: `ablation [tile|cutoff|queue|width|stripes|all] [--scale F] [--threads N]`

use anyseq_baselines::SeqAnLike;
use anyseq_bench::gcups::measure_gcups;
use anyseq_bench::report::{dump_json, Table};
use anyseq_bench::workloads::genome_pairs;
use anyseq_core::hirschberg::{align_with_pass, AlignConfig};
use anyseq_core::kind::Global;
use anyseq_core::prelude::*;
use anyseq_gpu_sim::{Device, GpuAligner, KernelShape};
use anyseq_simd::simd_tiled_score_pass;
use anyseq_wavefront::pass::{tiled_score_pass, ParallelCfg};
use anyseq_wavefront::TiledPass;
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut which = "all".to_string();
    let mut scale = 0.003;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--scale" => {
                scale = args[k + 1].parse().unwrap();
                k += 2;
            }
            "--threads" => {
                threads = args[k + 1].parse().unwrap();
                k += 2;
            }
            name => {
                which = name.to_string();
                k += 1;
            }
        }
    }
    let pairs = genome_pairs(scale, 31);
    let (_, q, s) = &pairs[1];
    let cells = (q.len() * s.len()) as u64;
    let gap = AffineGap {
        open: -2,
        extend: -1,
    };
    let subst = simple(2, -1);
    let mut json = BTreeMap::new();

    if which == "tile" || which == "all" {
        println!("== Ablation: tile size (dynamic wavefront, {threads} threads) ==");
        let mut t = Table::new(vec!["tile", "GCUPS"]);
        for tile in [64usize, 128, 256, 512, 1024, 2048] {
            let cfg = ParallelCfg {
                threads,
                tile,
                min_parallel_area: 0,
                static_schedule: false,
                shard_cells: 0,
            };
            let m = measure_gcups(cells, 3, || {
                std::hint::black_box(
                    tiled_score_pass::<Global, _, _>(
                        &gap,
                        &subst,
                        q.codes(),
                        s.codes(),
                        gap.open(),
                        &cfg,
                    )
                    .score,
                );
            });
            t.row(vec![format!("{tile}"), format!("{:.2}", m.gcups)]);
            json.insert(format!("tile/{tile}"), m.gcups);
        }
        println!("{}", t.render());
    }

    if which == "cutoff" || which == "all" {
        println!("== Ablation: Hirschberg recursion cutoff (traceback) ==");
        let mut t = Table::new(vec!["cutoff_area", "GCUPS"]);
        let pcfg = ParallelCfg::threads(threads).with_tile(512);
        for shift in [12usize, 16, 18, 20, 22] {
            let cfg = AlignConfig {
                cutoff_area: 1 << shift,
            };
            let pass = TiledPass { cfg: pcfg };
            let m = measure_gcups(2 * cells, 3, || {
                std::hint::black_box(
                    align_with_pass::<Global, _, _, _>(
                        &pass,
                        &gap,
                        &subst,
                        q.codes(),
                        s.codes(),
                        &cfg,
                    )
                    .score,
                );
            });
            t.row(vec![format!("1<<{shift}"), format!("{:.2}", m.gcups)]);
            json.insert(format!("cutoff/{shift}"), m.gcups);
        }
        println!("{}", t.render());
    }

    if which == "queue" || which == "all" {
        println!("== Ablation: concurrent queue (lock-free injector vs mutex deque) ==");
        let mut t = Table::new(vec!["queue", "GCUPS"]);
        let cfg = ParallelCfg {
            threads,
            tile: 256,
            min_parallel_area: 0,
            static_schedule: false,
            shard_cells: 0,
        };
        let m = measure_gcups(cells, 3, || {
            std::hint::black_box(
                tiled_score_pass::<Global, _, _>(
                    &gap,
                    &subst,
                    q.codes(),
                    s.codes(),
                    gap.open(),
                    &cfg,
                )
                .score,
            );
        });
        t.row(vec![
            "lock-free injector".to_string(),
            format!("{:.2}", m.gcups),
        ]);
        json.insert("queue/injector".to_string(), m.gcups);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let mut seqan = SeqAnLike::new(threads).with_lanes(1);
        seqan.tile = 256;
        let m = measure_gcups(cells, 3, || {
            std::hint::black_box(seqan.score(&scheme, q, s));
        });
        t.row(vec!["mutex deque".to_string(), format!("{:.2}", m.gcups)]);
        json.insert("queue/mutex".to_string(), m.gcups);
        println!("{}", t.render());
    }

    if which == "width" || which == "all" {
        println!("== Ablation: score width (32-bit scalar tiles vs 16-bit SIMD lanes) ==");
        let mut t = Table::new(vec!["width", "GCUPS"]);
        let cfg = ParallelCfg::threads(threads).with_tile(512);
        let m32 = measure_gcups(cells, 3, || {
            std::hint::black_box(
                tiled_score_pass::<Global, _, _>(
                    &gap,
                    &subst,
                    q.codes(),
                    s.codes(),
                    gap.open(),
                    &cfg,
                )
                .score,
            );
        });
        t.row(vec!["i32 scalar".to_string(), format!("{:.2}", m32.gcups)]);
        json.insert("width/i32".to_string(), m32.gcups);
        for lanes in [8usize, 16, 32] {
            let g = match lanes {
                8 => measure_gcups(cells, 3, || {
                    std::hint::black_box(
                        simd_tiled_score_pass::<_, _, 8>(
                            &gap,
                            &subst,
                            q.codes(),
                            s.codes(),
                            gap.open(),
                            &cfg,
                        )
                        .score,
                    );
                }),
                16 => measure_gcups(cells, 3, || {
                    std::hint::black_box(
                        simd_tiled_score_pass::<_, _, 16>(
                            &gap,
                            &subst,
                            q.codes(),
                            s.codes(),
                            gap.open(),
                            &cfg,
                        )
                        .score,
                    );
                }),
                _ => measure_gcups(cells, 3, || {
                    std::hint::black_box(
                        simd_tiled_score_pass::<_, _, 32>(
                            &gap,
                            &subst,
                            q.codes(),
                            s.codes(),
                            gap.open(),
                            &cfg,
                        )
                        .score,
                    );
                }),
            };
            t.row(vec![format!("i16 x{lanes}"), format!("{:.2}", g.gcups)]);
            json.insert(format!("width/i16x{lanes}"), g.gcups);
        }
        println!("{}", t.render());
    }

    if which == "stripes" || which == "all" {
        println!("== Ablation: GPU kernel structure (modeled GCUPS) ==");
        let mut t = Table::new(vec!["kernel", "GCUPS*"]);
        let small = genome_pairs(0.008, 31);
        let (_, gq, gs) = &small[0];
        let scheme = global(affine(simple(2, -1), -2, -1));
        for (name, phased, coalesced) in [
            ("phased + coalesced (AnySeq)", true, true),
            ("unphased + coalesced", false, true),
            ("phased + uncoalesced", true, false),
            ("unphased + uncoalesced (NVBio-like)", false, false),
        ] {
            let gpu = GpuAligner::new(Device::titan_v())
                .with_tile(256)
                .with_shape(KernelShape {
                    block_threads: 64,
                    phased,
                    coalesced,
                });
            let r = gpu.score(&scheme, gq, gs);
            t.row(vec![
                name.to_string(),
                format!("{:.1}", r.stats.gcups(&gpu.device)),
            ]);
            json.insert(format!("stripes/{name}"), r.stats.gcups(&gpu.device));
        }
        println!("{}", t.render());
    }

    dump_json("ablation", &json);
}
