//! Batch-throughput workload over the `anyseq-engine` subsystem:
//! per-backend GCUPS on a Mason-like short-read batch, single-thread
//! versus multi-thread, plus the engine's own per-batch statistics
//! (utilization, fallbacks) — the scaling evidence the ROADMAP's
//! batching milestone asks for.
//!
//! Run: `cargo run --release -p anyseq-bench --bin batch_throughput \
//!       [pairs] [threads] [repeats]`

use anyseq_bench::gcups::measure_batch_gcups;
use anyseq_bench::report::{dump_json, Table};
use anyseq_bench::workloads::read_batch;
use anyseq_engine::{BackendId, BatchCfg, BatchScheduler, Dispatch, Policy, SchemeSpec};
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pairs_n: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let threads: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
    });
    let repeats: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(3);

    println!("simulating {pairs_n} read pairs...");
    let pairs = read_batch(pairs_n, 7);
    let spec = SchemeSpec::global_linear(2, -1, -1);

    let mut table = Table::new(vec!["backend", "threads", "GCUPS", "scaling", "util%"]);
    let mut json: BTreeMap<String, f64> = BTreeMap::new();
    let mut expected = None;

    for backend in [BackendId::Scalar, BackendId::Simd, BackendId::GpuSim] {
        let dispatch = Dispatch::standard(Policy::Fixed(backend));
        let mut single = None;
        for t in [1usize, threads] {
            let scheduler = BatchScheduler::new(BatchCfg::threads(t));
            let mut last_stats = None;
            let m = measure_batch_gcups(&pairs, repeats, || {
                let run = scheduler.score_batch(&dispatch, &spec, &pairs);
                match &expected {
                    None => expected = Some(run.results.clone()),
                    Some(reference) => assert_eq!(
                        reference,
                        &run.results,
                        "{} results diverged from the reference",
                        backend.name()
                    ),
                }
                last_stats = Some(run.stats);
            });
            let stats = last_stats.expect("at least one repeat ran");
            let scaling = match (t, single) {
                (1, _) => {
                    single = Some(m.gcups);
                    "1.00x".to_string()
                }
                (_, Some(base)) if base > 0.0 => format!("{:.2}x", m.gcups / base),
                _ => "-".to_string(),
            };
            table.row(vec![
                backend.name().to_string(),
                t.to_string(),
                format!("{:.3}", m.gcups),
                scaling,
                format!("{:.0}", 100.0 * stats.utilization(t)),
            ]);
            json.insert(format!("{}_{t}t", backend.name()), m.gcups);
            if t == 1 && t == threads {
                break; // single-core machine: one row is the whole story
            }
        }
    }

    println!("{}", table.render());
    println!(
        "(median of {repeats} runs over {} pairs; results cross-checked between backends)",
        pairs.len()
    );
    if threads > 1 {
        let s1 = json.get("simd_1t").copied().unwrap_or(0.0);
        let sn = json
            .get(&format!("simd_{threads}t"))
            .copied()
            .unwrap_or(0.0);
        if s1 > 0.0 {
            println!(
                "simd {}-thread scaling over 1-thread: {:.2}x",
                threads,
                sn / s1
            );
        }
    }
    dump_json("batch_throughput", &json);
}
