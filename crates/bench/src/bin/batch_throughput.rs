//! Batch-throughput workload over the `anyseq-engine` subsystem:
//! per-backend GCUPS on a Mason-like short-read batch, single-thread
//! versus multi-thread, in **both** execution modes — score-only and
//! alignment (banded SIMD traceback) — plus the engine's own per-batch
//! statistics (utilization, fallbacks, band telemetry).
//!
//! Run: `cargo run --release -p anyseq-bench --bin batch_throughput \
//!       [pairs] [threads] [repeats]`
//!
//! Report format (documented in `docs/ARCHITECTURE.md`): one section
//! per mode, opened by an unambiguous `== mode: … ==` header so saved
//! reports can never mix the two up. Alignment-mode cells are counted
//! with the shared `TRACEBACK_CELL_FACTOR` convention, so GCUPS are
//! comparable across the engine's stats, this bench and the paper's
//! traceback rows. JSON keys are `<mode>.<backend>_<threads>t`.

use anyseq_bench::gcups::measure_gcups;
use anyseq_bench::report::{dump_json, Table};
use anyseq_bench::workloads::read_batch;
use anyseq_engine::stats::{pair_cells, TRACEBACK_CELL_FACTOR};
use anyseq_engine::{BackendId, BatchCfg, BatchScheduler, Dispatch, Policy, SchemeSpec};
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pairs_n: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let threads: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
    });
    let repeats: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(3);

    println!("simulating {pairs_n} read pairs...");
    let pairs = read_batch(pairs_n, 7);
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let mut json: BTreeMap<String, f64> = BTreeMap::new();
    // One reference for BOTH modes: alignment scores must equal
    // score-only scores, backend by backend, mode by mode.
    let mut expected_scores: Option<Vec<i32>> = None;

    for (mode, align) in [("score", false), ("align", true)] {
        println!(
            "\n== mode: {} ==",
            if align {
                "alignment (banded traceback, cells ×2)"
            } else {
                "score-only"
            }
        );
        let cells = pair_cells(&pairs) * if align { TRACEBACK_CELL_FACTOR } else { 1 };
        let mut table = Table::new(vec!["backend", "threads", "GCUPS", "scaling", "util%"]);

        for backend in [BackendId::Scalar, BackendId::Simd, BackendId::GpuSim] {
            let dispatch = Dispatch::standard(Policy::Fixed(backend));
            let mut single = None;
            for t in [1usize, threads] {
                let scheduler = BatchScheduler::new(BatchCfg::threads(t));
                let mut last_stats = None;
                let m = measure_gcups(cells, repeats, || {
                    let (scores, stats) = if align {
                        let run = scheduler.align_batch(&dispatch, &spec, &pairs);
                        (run.results.iter().map(|a| a.score).collect(), run.stats)
                    } else {
                        let run = scheduler.score_batch(&dispatch, &spec, &pairs);
                        (run.results.clone(), run.stats)
                    };
                    // Scores must agree across every backend and mode;
                    // alignment CIGARs may break ties differently.
                    match &expected_scores {
                        None => expected_scores = Some(scores),
                        Some(reference) => assert_eq!(
                            reference,
                            &scores,
                            "{} {mode} results diverged from the reference",
                            backend.name()
                        ),
                    }
                    last_stats = Some(stats);
                });
                let stats = last_stats.expect("at least one repeat ran");
                let scaling = match (t, single) {
                    (1, _) => {
                        single = Some(m.gcups);
                        "1.00x".to_string()
                    }
                    (_, Some(base)) if base > 0.0 => format!("{:.2}x", m.gcups / base),
                    _ => "-".to_string(),
                };
                table.row(vec![
                    backend.name().to_string(),
                    t.to_string(),
                    format!("{:.3}", m.gcups),
                    scaling,
                    format!("{:.0}", 100.0 * stats.utilization(t)),
                ]);
                json.insert(format!("{mode}.{}_{t}t", backend.name()), m.gcups);
                if t == threads && !stats.counters.is_empty() {
                    println!("[{} band telemetry] {}", backend.name(), stats.summary());
                }
                if t == 1 && t == threads {
                    break; // single-core machine: one row is the whole story
                }
            }
        }
        println!("{}", table.render());
    }

    println!(
        "(median of {repeats} runs over {} pairs; scores cross-checked between backends and modes)",
        pairs.len()
    );
    if threads > 1 {
        for mode in ["score", "align"] {
            let s1 = json.get(&format!("{mode}.simd_1t")).copied().unwrap_or(0.0);
            let sn = json
                .get(&format!("{mode}.simd_{threads}t"))
                .copied()
                .unwrap_or(0.0);
            if s1 > 0.0 {
                println!(
                    "simd {mode} {threads}-thread scaling over 1-thread: {:.2}x",
                    sn / s1
                );
            }
        }
    }
    dump_json("batch_throughput", &json);
}
