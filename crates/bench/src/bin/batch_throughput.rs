//! Batch-throughput workload over the `anyseq-engine` subsystem:
//! per-backend GCUPS on a Mason-like short-read batch, single-thread
//! versus multi-thread, in **both** execution modes — score-only and
//! alignment (banded SIMD traceback) — plus the engine's own per-batch
//! statistics (utilization, fallbacks, band telemetry, copy counters).
//!
//! Run: `cargo run --release -p anyseq-bench --bin batch_throughput \
//!       [pairs] [threads] [repeats] [long_len] [dup_frac] [semi_len] [local_len] [huge_len]`
//!
//! `long_len > 0` appends a long-genome section: one `long_len` bp
//! pair (2% divergence) scored and aligned through `Policy::Auto`
//! (exclusive wavefront bin) — the workload the zero-copy gather was
//! built for. JSON keys: `long.score_gcups` / `long.align_gcups`.
//!
//! `huge_len > 0` appends a chromosome-scale *sharded* section: one
//! asymmetric pair (`huge_len/16` bp query × `huge_len` bp subject)
//! run through `--shard-cells`-style sharding on the fixed wavefront —
//! the pair is cut into subject slabs stitched through serialized
//! border seams, and the bench asserts the sharded results are
//! bit-identical to the unsharded run while the resident peak
//! (`wavefront.peak_shard_mb`) stays within the unsharded border
//! budget. JSON keys: `huge.{score,align}_gcups`,
//! `huge.score_gcups_unsharded`, `huge.peak_shard_mb`,
//! `huge.budget_mb`, `huge.seam_bytes` and `sched.shards`.
//!
//! `semi_len > 0` appends a semi-global bin: `semi_len` bp reads
//! contained in 1.5× windows, scored and aligned through
//! `Policy::Auto` (which routes the short non-global bins to the
//! kind-generic SIMD kernels) with a `Fixed(Scalar)` baseline for the
//! speedup ratio. A second score run enables X-drop on a half-decoy
//! batch (off-target filtering, the workload the knob exists for).
//! JSON keys: `semi.{score,align}_gcups`, `semi.score_gcups_scalar`,
//! `semi.score_speedup`, `semi.score_gcups_xdrop` and
//! `xdrop.retired_lanes`. `local_len > 0` does the same for Local
//! over amplicon pairs (no X-drop sub-run): `local.{score,align}_gcups`,
//! `local.score_gcups_scalar`, `local.score_speedup`.
//!
//! `dup_frac > 0` appends a duplicated-read section modeling PCR /
//! resequencing duplication: a batch where `dup_frac` of the pairs
//! repeat earlier content, run cache-off and cache-on
//! (`DispatchPolicy::cache_mb`) on the same config, results asserted
//! bit-identical. GCUPS count *logical* cells, so the cache-on number
//! is effective throughput. JSON keys: `dup.hit_rate`,
//! `dup.{score,align}_gcups` (+ `_nocache` baselines and
//! `dup.{score,align}_speedup`), plus the cache counters
//! `cache.{hits,misses,bytes,evictions}` from the score run.
//!
//! An observability section always runs last: the same read batch is
//! scored through a plain dispatch and one with `observe(true)`, and
//! the enabled overhead must stay within 3% (asserted once
//! `pairs >= 2000` so fixed costs and median noise cannot dominate).
//! JSON keys: `obs.score_gcups_off` / `obs.score_gcups_on` /
//! `obs.overhead_frac`, the per-stage `stage.*_ns` wall totals,
//! `obs.kernel_p{50,95,99}_ns` from the merged kernel-latency
//! histogram, and `obs.trace_spans`; the observed run's Chrome trace
//! is written to `target/bench-results/batch_trace.json` for
//! `scripts/check_trace.py`.
//!
//! Report format (documented in `docs/ARCHITECTURE.md`): one section
//! per mode, opened by an unambiguous `== mode: … ==` header so saved
//! reports can never mix the two up. Alignment-mode cells are counted
//! with the shared `TRACEBACK_CELL_FACTOR` convention, so GCUPS are
//! comparable across the engine's stats, this bench and the paper's
//! traceback rows. JSON keys are `<mode>.<backend>_<threads>t`, plus
//! per mode:
//!
//! * `<mode>.bytes_copied` — sequence bytes copied below the batch
//!   view (scheduler gather + SIMD lane transpose) on the final
//!   full-thread run, summed across backends. The gather contribution
//!   (`sched.bytes_copied`) must be 0 — the zero-copy contract.
//! * `<mode>.peak_batch_mb` — estimated peak batch memory: pair bytes
//!   resident (borrowed, not cloned) plus the worst-case in-flight
//!   lane-transpose buffers (`threads × lanes × (max |q| + max |s|)`).

use anyseq_bench::gcups::measure_gcups;
use anyseq_bench::report::{dump_json, Table};
use anyseq_bench::workloads::{amplicon_batch, contained_read_batch, read_batch};
use anyseq_engine::stats::TRACEBACK_CELL_FACTOR;
use anyseq_engine::{
    BackendId, BatchCfg, BatchScheduler, Dispatch, DispatchPolicy, GapSpec, KindSpec, Policy,
    SchemeSpec, SimdLanes, SCHED_BYTES_COPIED,
};
use anyseq_seq::genome::GenomeSim;
use anyseq_seq::{BatchView, Seq};
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pairs_n: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let threads: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
    });
    let repeats: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(3);
    let long_len: usize = args.get(4).and_then(|a| a.parse().ok()).unwrap_or(0);
    let dup_frac: f64 = args.get(5).and_then(|a| a.parse().ok()).unwrap_or(0.0);
    let semi_len: usize = args.get(6).and_then(|a| a.parse().ok()).unwrap_or(0);
    let local_len: usize = args.get(7).and_then(|a| a.parse().ok()).unwrap_or(0);
    let huge_len: usize = args.get(8).and_then(|a| a.parse().ok()).unwrap_or(0);

    println!("simulating {pairs_n} read pairs...");
    let pairs = read_batch(pairs_n, 7);
    let view = BatchView::from_pairs(&pairs);
    let spec = SchemeSpec::global_linear(2, -1, -1);
    let mut json: BTreeMap<String, f64> = BTreeMap::new();
    // One reference for BOTH modes: alignment scores must equal
    // score-only scores, backend by backend, mode by mode.
    let mut expected_scores: Option<Vec<i32>> = None;

    // Peak-memory estimate: the batch itself stays resident (borrowed
    // by the view, never cloned by the scheduler); the only transient
    // sequence buffers are the SIMD lane transposes — at most one per
    // worker in flight.
    let resident_mb = view.resident_bytes() as f64 / 1e6;
    let max_extent = view
        .iter()
        .map(|p| (p.q.len() + p.s.len()) as u64)
        .max()
        .unwrap_or(0);
    // Lane count of the standard dispatch's SIMD backend, for the
    // transpose-buffer term of the memory estimate.
    let simd_lanes = SimdLanes::default().count() as u64;
    let transpose_mb = (threads as u64 * simd_lanes * max_extent) as f64 / 1e6;
    // Align mode additionally keeps one DirStore per in-flight lane
    // group: 4 u32 bit-planes (16 bytes) per band cell at the default
    // initial band width (adaptive widening can grow this).
    let max_q = view.iter().map(|p| p.q.len() as u64).max().unwrap_or(0);
    let band_width = 2 * anyseq_simd::BandCfg::default().initial as u64 + 1;
    let dirstore_mb = (threads as u64 * max_q * band_width * 16) as f64 / 1e6;
    let peak_score_mb = resident_mb + transpose_mb;
    let peak_align_mb = peak_score_mb + dirstore_mb;
    println!(
        "peak batch memory (est.): score {peak_score_mb:.1} MB / align {peak_align_mb:.1} MB \
         ({resident_mb:.1} resident + {transpose_mb:.1} transpose buffers \
         + {dirstore_mb:.1} align direction store)"
    );

    for (mode, align) in [("score", false), ("align", true)] {
        println!(
            "\n== mode: {} ==",
            if align {
                "alignment (banded traceback, cells ×2)"
            } else {
                "score-only"
            }
        );
        let cells = view.total_cells() * if align { TRACEBACK_CELL_FACTOR } else { 1 };
        let mut table = Table::new(vec!["backend", "threads", "GCUPS", "scaling", "util%"]);
        let mut mode_bytes_copied = 0u64;

        for backend in [BackendId::Scalar, BackendId::Simd, BackendId::GpuSim] {
            let dispatch = Dispatch::standard(Policy::Fixed(backend));
            let mut single = None;
            for t in [1usize, threads] {
                let scheduler = BatchScheduler::new(BatchCfg::threads(t));
                let mut last_stats = None;
                let m = measure_gcups(cells, repeats, || {
                    let (scores, stats) = if align {
                        let run = scheduler.align_batch(&dispatch, &spec, &view);
                        (run.results.iter().map(|a| a.score).collect(), run.stats)
                    } else {
                        let run = scheduler.score_batch(&dispatch, &spec, &view);
                        (run.results.clone(), run.stats)
                    };
                    // Scores must agree across every backend and mode;
                    // alignment CIGARs may break ties differently.
                    match &expected_scores {
                        None => expected_scores = Some(scores),
                        Some(reference) => assert_eq!(
                            reference,
                            &scores,
                            "{} {mode} results diverged from the reference",
                            backend.name()
                        ),
                    }
                    last_stats = Some(stats);
                });
                let stats = last_stats.expect("at least one repeat ran");
                // The scheduler gather must never clone sequence bytes.
                assert_eq!(
                    stats.counters.get(SCHED_BYTES_COPIED).copied(),
                    Some(0),
                    "{} {mode}: gather copied sequence bytes",
                    backend.name()
                );
                if t == threads {
                    mode_bytes_copied += stats.bytes_copied();
                }
                let scaling = match (t, single) {
                    (1, _) => {
                        single = Some(m.gcups);
                        "1.00x".to_string()
                    }
                    (_, Some(base)) if base > 0.0 => format!("{:.2}x", m.gcups / base),
                    _ => "-".to_string(),
                };
                table.row(vec![
                    backend.name().to_string(),
                    t.to_string(),
                    format!("{:.3}", m.gcups),
                    scaling,
                    format!("{:.0}", 100.0 * stats.utilization(t)),
                ]);
                json.insert(format!("{mode}.{}_{t}t", backend.name()), m.gcups);
                if t == threads && !stats.counters.is_empty() {
                    println!("[{} counters] {}", backend.name(), stats.summary());
                }
                if t == 1 && t == threads {
                    break; // single-core machine: one row is the whole story
                }
            }
        }
        println!("{}", table.render());
        println!("{mode}.bytes_copied = {mode_bytes_copied} (lane transposes only; gather = 0)");
        json.insert(format!("{mode}.bytes_copied"), mode_bytes_copied as f64);
        json.insert(
            format!("{mode}.peak_batch_mb"),
            if align { peak_align_mb } else { peak_score_mb },
        );
    }

    println!(
        "(median of {repeats} runs over {} pairs; scores cross-checked between backends and modes)",
        pairs.len()
    );
    if threads > 1 {
        for mode in ["score", "align"] {
            let s1 = json.get(&format!("{mode}.simd_1t")).copied().unwrap_or(0.0);
            let sn = json
                .get(&format!("{mode}.simd_{threads}t"))
                .copied()
                .unwrap_or(0.0);
            if s1 > 0.0 {
                println!(
                    "simd {mode} {threads}-thread scaling over 1-thread: {:.2}x",
                    sn / s1
                );
            }
        }
    }

    // Optional long-genome bin: one huge pair through Auto dispatch —
    // the exclusive-wavefront workload whose gather used to deep-clone
    // both genomes per unit.
    if long_len > 0 {
        println!("\n== mode: long-genome ({long_len} bp pair, auto dispatch) ==");
        let mut sim = GenomeSim::new(2024);
        let a = sim.generate(long_len);
        let b = sim.mutate(&a, 0.02);
        let long_pairs = vec![(a, b)];
        let long_view = BatchView::from_pairs(&long_pairs);
        let dispatch = Dispatch::standard(Policy::Auto);
        let scheduler = BatchScheduler::new(BatchCfg::threads(threads));
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);

        let score_run = scheduler.score_batch(&dispatch, &spec, &long_view);
        println!("score: {}", score_run.stats.summary());
        json.insert("long.score_gcups".into(), score_run.stats.gcups());

        let align_run = scheduler.align_batch(&dispatch, &spec, &long_view);
        println!("align: {}", align_run.stats.summary());
        json.insert("long.align_gcups".into(), align_run.stats.gcups());
        assert_eq!(
            align_run.stats.counters.get(SCHED_BYTES_COPIED).copied(),
            Some(0),
            "long-genome gather copied sequence bytes"
        );
        assert_eq!(align_run.results[0].score, score_run.results[0]);
    }

    // Optional chromosome-scale sharded bin: one asymmetric pair too
    // big for a resident border set, cut into subject slabs stitched
    // through serialized seams. The unsharded run supplies both the
    // bit-identity reference and the memory budget (its full-grid
    // border estimate); the sharded run must match the scores exactly
    // and keep its resident peak under that budget.
    if huge_len > 0 {
        let q_len = (huge_len / 16).max(64);
        println!(
            "\n== mode: huge sharded ({q_len} bp query x {huge_len} bp subject, \
             fixed wavefront, seam-stitched slabs) =="
        );
        let mut sim = GenomeSim::new(4096);
        let subject = sim.generate(huge_len);
        // The query is a mutated prefix window of the subject — a real
        // containment mapping, so the global DP has signal everywhere.
        let query = sim.mutate(&subject.subseq(0..q_len.min(subject.len())), 0.03);
        let huge_pairs = vec![(query, subject)];
        let huge_view = BatchView::from_pairs(&huge_pairs);
        let spec = SchemeSpec::global_affine(2, -1, -2, -1);
        let cells = huge_view.total_cells();
        // One eighth of the matrix per slab (the policy clamps tiny
        // budgets up to one 512×512 tile), so the chain genuinely runs
        // multiple shards even on the CI smoke config.
        let shard_cells = (cells / 8).max(1);
        let scheduler = BatchScheduler::new(BatchCfg::threads(threads));
        let plain = Dispatch::standard(Policy::Fixed(BackendId::Wavefront));
        let sharded = DispatchPolicy::fixed(BackendId::Wavefront)
            .shard_cells(shard_cells)
            .standard();

        let mut base_scores: Vec<i32> = Vec::new();
        let mut base_stats = None;
        let um = measure_gcups(cells, repeats, || {
            let run = scheduler.score_batch(&plain, &spec, &huge_view);
            base_scores = run.results.clone();
            base_stats = Some(run.stats);
        });
        let base_stats = base_stats.expect("at least one repeat ran");
        // Budget: the unsharded pass's resident border working set —
        // the O(n + m) stripe bytes the sharded chain exists to beat.
        let budget_mb =
            (base_stats.counters["wavefront.border_bytes"] as f64 / (1u64 << 20) as f64).max(1.0);

        let mut last_stats = None;
        let sm = measure_gcups(cells, repeats, || {
            let run = scheduler.score_batch(&sharded, &spec, &huge_view);
            assert_eq!(
                run.results, base_scores,
                "huge: sharded scores diverged from unsharded"
            );
            last_stats = Some(run.stats);
        });
        let stats = last_stats.expect("at least one repeat ran");
        let shards = stats.counters.get("sched.shards").copied().unwrap_or(0);
        let seam_bytes = stats.counters.get("sched.seam_bytes").copied().unwrap_or(0);
        let peak_mb = stats
            .counters
            .get("wavefront.peak_shard_mb")
            .copied()
            .unwrap_or(0);
        assert!(shards >= 2, "huge bin must actually shard (got {shards})");
        assert!(seam_bytes > 0, "shard hand-offs must serialize seams");
        assert!(
            (peak_mb as f64) <= budget_mb,
            "sharded resident peak {peak_mb} MB exceeds the unsharded budget {budget_mb:.1} MB"
        );

        let mut aligned_score = 0i32;
        let am = measure_gcups(cells * TRACEBACK_CELL_FACTOR, repeats, || {
            let run = scheduler.align_batch(&sharded, &spec, &huge_view);
            aligned_score = run.results[0].score;
            assert_eq!(
                aligned_score, base_scores[0],
                "huge: sharded align score diverged from unsharded"
            );
        });
        println!(
            "score: unsharded {:.3} GCUPS, sharded {:.3} GCUPS ({shards} shards, \
             {seam_bytes} seam bytes); align sharded {:.3} GCUPS",
            um.gcups, sm.gcups, am.gcups
        );
        println!(
            "resident peak: sharded {peak_mb} MB <= unsharded border budget {budget_mb:.1} MB"
        );
        json.insert("huge.score_gcups".into(), sm.gcups);
        json.insert("huge.score_gcups_unsharded".into(), um.gcups);
        json.insert("huge.align_gcups".into(), am.gcups);
        json.insert("huge.peak_shard_mb".into(), peak_mb as f64);
        json.insert("huge.budget_mb".into(), budget_mb);
        json.insert("huge.seam_bytes".into(), seam_bytes as f64);
        json.insert("sched.shards".into(), shards as f64);
    }

    // Optional semi-global bin: reads contained in longer windows, the
    // headline workload of the kind-generic SIMD kernels. Auto routes
    // the whole (uniform-dims) bin to the lanes; the Fixed(Scalar) run
    // is the speedup denominator. A second score run turns on X-drop
    // against a half-decoy batch — the off-target filtering scenario
    // the knob exists for — and reports how many lanes retired early.
    if semi_len > 0 {
        let window = semi_len + semi_len / 2;
        println!(
            "\n== mode: semi-global ({semi_len} bp reads in {window} bp windows, auto dispatch) =="
        );
        let semi_pairs = contained_read_batch(pairs_n, semi_len, window, 0x5e31);
        let semi_view = BatchView::from_pairs(&semi_pairs);
        let spec = SchemeSpec {
            kind: KindSpec::SemiGlobal,
            match_score: 2,
            mismatch: -1,
            gap: GapSpec::Affine {
                open: -2,
                extend: -1,
            },
        };
        run_kind_bin("semi", &spec, &semi_view, threads, repeats, &mut json);

        // X-drop sub-run: every other read replaced by a chimera —
        // first half copied from the window (a strong seed match),
        // second half a poly-C artifact tail (adapter read-through /
        // index-hopping regime). SemiGlobal frees both begin borders,
        // so a read that is junk from base 0 never climbs and never
        // drops far below its running max; it is exactly the
        // climb-then-diverge lanes X-drop exists to retire. Scores are
        // intentionally not compared to scalar here — X-drop is
        // inexact by design on retired lanes.
        let decoy_pairs: Vec<_> = semi_pairs
            .iter()
            .enumerate()
            .map(|(k, (q, s))| {
                if k % 2 == 1 {
                    let mut codes = s.subseq(0..semi_len / 2).codes().to_vec();
                    codes.resize(semi_len, 1u8);
                    (Seq::from_codes(codes).expect("codes 0..4"), s.clone())
                } else {
                    (q.clone(), s.clone())
                }
            })
            .collect();
        let decoy_view = BatchView::from_pairs(&decoy_pairs);
        let xdrop = 20;
        let xdispatch = DispatchPolicy::auto().xdrop(xdrop).standard();
        let scheduler = BatchScheduler::new(BatchCfg::threads(threads));
        let mut last_stats = None;
        let xm = measure_gcups(decoy_view.total_cells(), repeats, || {
            last_stats = Some(scheduler.score_batch(&xdispatch, &spec, &decoy_view).stats);
        });
        let stats = last_stats.expect("at least one repeat ran");
        let retired = stats
            .counters
            .get("simd.xdrop_retired")
            .copied()
            .unwrap_or(0);
        println!(
            "xdrop {xdrop} (half-decoy batch): {:.3} GCUPS, {retired} of {} lanes retired early",
            xm.gcups,
            decoy_pairs.len()
        );
        json.insert("semi.score_gcups_xdrop".into(), xm.gcups);
        json.insert("xdrop.retired_lanes".into(), retired as f64);
    }

    // Optional local bin: amplicon pairs under Local — same harness,
    // no X-drop sub-run (Local seeds keep every lane competitive).
    if local_len > 0 {
        println!("\n== mode: local ({local_len} bp amplicon pairs, auto dispatch) ==");
        let local_pairs = amplicon_batch(pairs_n, local_len, 0x10ca);
        let local_view = BatchView::from_pairs(&local_pairs);
        let spec = SchemeSpec {
            kind: KindSpec::Local,
            match_score: 2,
            mismatch: -1,
            gap: GapSpec::Affine {
                open: -2,
                extend: -1,
            },
        };
        run_kind_bin("local", &spec, &local_view, threads, repeats, &mut json);
    }

    // Optional duplicated-read bin: the result-cache workload. The
    // batch keeps `dup_frac` of its pairs as repeats of earlier
    // content (PCR duplicates / resequenced reads); the cache-on run
    // recognizes them before units form, so only the unique fraction
    // is computed while GCUPS still count the batch's logical cells —
    // effective throughput vs. the cache-off baseline on the same
    // config.
    if dup_frac > 0.0 {
        let dup_frac = dup_frac.min(0.95);
        let dup_n = ((pairs_n as f64) * dup_frac).round() as usize;
        let unique_n = pairs_n.saturating_sub(dup_n).max(1);
        // Amplicon-style reads (1000 bp, substitution errors only):
        // the regime the cache targets — per-pair DP work is O(L²)
        // while the probe (hash + verify + retain) is O(L), so the
        // duplicated fraction converts almost entirely into
        // throughput, and the uniform dimensions keep SIMD lane fill
        // identical between the cache-on and cache-off runs. On
        // 150 bp reads the DP is only ~20 µs/pair and the probe
        // overhead eats a visible slice of the win.
        let dup_read_len = 1000;
        println!(
            "\n== mode: duplicated reads ({dup_n} of {pairs_n} {dup_read_len} bp amplicon pairs \
             repeat earlier content, auto dispatch, cache off vs on) =="
        );
        let mut dup_pairs = amplicon_batch(unique_n, dup_read_len, 0x0d5e);
        for k in 0..pairs_n - unique_n {
            dup_pairs.push(dup_pairs[k % unique_n].clone());
        }
        let dup_view = BatchView::from_pairs(&dup_pairs);
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let scheduler = BatchScheduler::new(BatchCfg::threads(threads));
        let plain = Dispatch::standard(Policy::Auto);
        let cached = DispatchPolicy::auto().cache_mb(256).standard();
        let cache = cached.cache().expect("cache_mb enables the cache");
        let mut hit_rate = 0.0f64;

        for (mode, align) in [("score", false), ("align", true)] {
            let cells = dup_view.total_cells() * if align { TRACEBACK_CELL_FACTOR } else { 1 };
            let mut base_scores: Vec<i32> = Vec::new();
            let mut base_ops_len: Vec<usize> = Vec::new();
            let off = measure_gcups(cells, repeats, || {
                if align {
                    let run = scheduler.align_batch(&plain, &spec, &dup_view);
                    base_scores = run.results.iter().map(|a| a.score).collect();
                    base_ops_len = run.results.iter().map(|a| a.ops.len()).collect();
                } else {
                    let run = scheduler.score_batch(&plain, &spec, &dup_view);
                    base_scores = run.results.clone();
                }
            });
            let mut last_stats = None;
            let on = measure_gcups(cells, repeats, || {
                // Each repeat measures the cold-batch case (in-batch
                // dedup only), not an already-warm cache.
                cache.clear();
                if align {
                    let run = scheduler.align_batch(&cached, &spec, &dup_view);
                    let scores: Vec<i32> = run.results.iter().map(|a| a.score).collect();
                    assert_eq!(scores, base_scores, "cached {mode} scores diverged");
                    let ops_len: Vec<usize> = run.results.iter().map(|a| a.ops.len()).collect();
                    assert_eq!(ops_len, base_ops_len, "cached {mode} CIGARs diverged");
                    last_stats = Some(run.stats);
                } else {
                    let run = scheduler.score_batch(&cached, &spec, &dup_view);
                    assert_eq!(run.results, base_scores, "cached {mode} scores diverged");
                    last_stats = Some(run.stats);
                }
            });
            let stats = last_stats.expect("at least one repeat ran");
            let hits = stats.counters["cache.hits"];
            let misses = stats.counters["cache.misses"];
            assert_eq!(
                hits + misses,
                stats.pairs,
                "{mode}: cache.hits + cache.misses must equal the pair count"
            );
            hit_rate = hits as f64 / stats.pairs as f64;
            let speedup = if off.gcups > 0.0 {
                on.gcups / off.gcups
            } else {
                0.0
            };
            println!(
                "{mode}: cache off {:.3} GCUPS, cache on {:.3} effective GCUPS \
                 ({speedup:.2}x, hit rate {:.0}%)",
                off.gcups,
                on.gcups,
                100.0 * hit_rate
            );
            json.insert(format!("dup.{mode}_gcups"), on.gcups);
            json.insert(format!("dup.{mode}_gcups_nocache"), off.gcups);
            json.insert(format!("dup.{mode}_speedup"), speedup);
            if mode == "score" {
                for key in [
                    "cache.hits",
                    "cache.misses",
                    "cache.bytes",
                    "cache.evictions",
                ] {
                    json.insert(key.into(), stats.counters[key] as f64);
                }
            }
        }
        json.insert("dup.hit_rate".into(), hit_rate);
    }

    // Observability section: the span/metrics layer must be close to
    // free when enabled. Score the same batch through a plain dispatch
    // and one with `observe(true)` and compare GCUPS; the observed run
    // also supplies the per-stage counters, the merged kernel-latency
    // histogram, and a Chrome-trace artifact for the CI validator.
    {
        println!("\n== mode: observability (spans + metrics vs plain dispatch) ==");
        let spec = SchemeSpec::global_linear(2, -1, -1);
        let scheduler = BatchScheduler::new(BatchCfg::threads(threads));
        let plain = Dispatch::standard(Policy::Auto);
        let observed = DispatchPolicy::auto().observe(true).standard();
        let cells = view.total_cells();

        let off = measure_gcups(cells, repeats, || {
            scheduler.score_batch(&plain, &spec, &view);
        });
        let mut last_stats = None;
        let on = measure_gcups(cells, repeats, || {
            last_stats = Some(scheduler.score_batch(&observed, &spec, &view).stats);
        });
        let stats = last_stats.expect("at least one repeat ran");
        let overhead = if off.gcups > 0.0 {
            (1.0 - on.gcups / off.gcups).max(0.0)
        } else {
            0.0
        };
        println!(
            "score: observe off {:.3} GCUPS, on {:.3} GCUPS ({:.1}% overhead)",
            off.gcups,
            on.gcups,
            100.0 * overhead
        );
        json.insert("obs.score_gcups_off".into(), off.gcups);
        json.insert("obs.score_gcups_on".into(), on.gcups);
        json.insert("obs.overhead_frac".into(), overhead);
        // Tiny batches are all fixed cost and median noise; only hold
        // the 3% budget once the kernel work dominates.
        if pairs_n >= 2000 {
            assert!(
                overhead <= 0.03,
                "observability overhead {:.1}% exceeds the 3% budget",
                100.0 * overhead
            );
        }

        // Per-stage wall totals (ns) from the observed run's drained
        // spans — the same `stage.*` counters the CLI summary prints.
        for (name, value) in &stats.counters {
            if name.starts_with("stage.") {
                json.insert((*name).to_string(), *value as f64);
            }
        }

        // Kernel latency distribution, merged across every
        // (backend, bin) series the registry accumulated.
        let registry = observed
            .metrics()
            .expect("observe(true) enables the registry");
        let kernel = registry.merged_histogram("anyseq_stage_duration_ns", "stage=\"kernel\"");
        if kernel.count() > 0 {
            println!(
                "kernel spans: n={} p50={:.0}us p95={:.0}us p99={:.0}us",
                kernel.count(),
                kernel.quantile(0.50) as f64 / 1e3,
                kernel.quantile(0.95) as f64 / 1e3,
                kernel.quantile(0.99) as f64 / 1e3
            );
            json.insert("obs.kernel_spans".into(), kernel.count() as f64);
            json.insert("obs.kernel_p50_ns".into(), kernel.quantile(0.50) as f64);
            json.insert("obs.kernel_p95_ns".into(), kernel.quantile(0.95) as f64);
            json.insert("obs.kernel_p99_ns".into(), kernel.quantile(0.99) as f64);
        }

        // Trace artifact: the CI smoke job validates this with
        // `scripts/check_trace.py` (balanced B/E, monotone timestamps,
        // wall-time coverage).
        let dir = std::path::Path::new("target/bench-results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        } else {
            let path = dir.join("batch_trace.json");
            match std::fs::write(&path, anyseq_obs::chrome_trace(&stats.spans)) {
                Ok(()) => println!("trace: {} ({} spans)", path.display(), stats.spans.len()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        json.insert("obs.trace_spans".into(), stats.spans.len() as f64);
    }

    dump_json("batch_throughput", &json);
}

/// Shared harness for the non-global short-read bins: score via
/// `Fixed(Scalar)` (the speedup denominator), score and align via
/// `Policy::Auto` — asserting the auto runs stay on the SIMD path with
/// scores bit-identical to scalar — and emit
/// `<label>.{score,align}_gcups`, `<label>.score_gcups_scalar` and
/// `<label>.score_speedup`.
fn run_kind_bin(
    label: &str,
    spec: &SchemeSpec,
    view: &BatchView,
    threads: usize,
    repeats: usize,
    json: &mut BTreeMap<String, f64>,
) {
    let scheduler = BatchScheduler::new(BatchCfg::threads(threads));
    let auto = Dispatch::standard(Policy::Auto);
    let scalar = Dispatch::standard(Policy::Fixed(BackendId::Scalar));
    let cells = view.total_cells();

    let mut expected: Vec<i32> = Vec::new();
    let base = measure_gcups(cells, repeats, || {
        expected = scheduler.score_batch(&scalar, spec, view).results.clone();
    });
    let mut last_stats = None;
    let fast = measure_gcups(cells, repeats, || {
        let run = scheduler.score_batch(&auto, spec, view);
        assert_eq!(
            run.results, expected,
            "{label}: auto scores diverged from scalar"
        );
        last_stats = Some(run.stats);
    });
    let stats = last_stats.expect("at least one repeat ran");
    assert_eq!(stats.fallbacks, 0, "{label}: auto score left the SIMD path");
    let speedup = if base.gcups > 0.0 {
        fast.gcups / base.gcups
    } else {
        0.0
    };
    println!(
        "score: scalar {:.3} GCUPS, auto(simd) {:.3} GCUPS ({speedup:.2}x)",
        base.gcups, fast.gcups
    );
    json.insert(format!("{label}.score_gcups"), fast.gcups);
    json.insert(format!("{label}.score_gcups_scalar"), base.gcups);
    json.insert(format!("{label}.score_speedup"), speedup);

    let align_cells = cells * TRACEBACK_CELL_FACTOR;
    let aln = measure_gcups(align_cells, repeats, || {
        let run = scheduler.align_batch(&auto, spec, view);
        let scores: Vec<i32> = run.results.iter().map(|a| a.score).collect();
        assert_eq!(
            scores, expected,
            "{label}: align scores diverged from scalar"
        );
    });
    println!("align: auto(simd) {:.3} GCUPS", aln.gcups);
    json.insert(format!("{label}.align_gcups"), aln.gcups);
}
