//! Plain-text table rendering for the figure/table binaries, plus JSON
//! dumps consumed when updating `EXPERIMENTS.md`.

use std::collections::BTreeMap;

/// A simple column-aligned table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (k, c) in row.iter().enumerate() {
                widths[k] = widths[k].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (k, c) in cells.iter().enumerate() {
                if k > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[k]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Dumps a result map as JSON into `target/bench-results/<name>.json`
/// (ignored on failure — reporting must not break benchmarking).
pub fn dump_json(name: &str, values: &BTreeMap<String, f64>) {
    let dir = std::path::Path::new("target/bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut text = String::from("{\n");
    for (k, (key, value)) in values.iter().enumerate() {
        let sep = if k + 1 == values.len() { "" } else { "," };
        // Keys are plain ASCII benchmark ids; escape the JSON specials.
        let escaped = key.replace('\\', "\\\\").replace('"', "\\\"");
        if value.is_finite() {
            text.push_str(&format!("  \"{escaped}\": {value}{sep}\n"));
        } else {
            // JSON has no NaN/inf literals; match serde_json's `null`.
            text.push_str(&format!("  \"{escaped}\": null{sep}\n"));
        }
    }
    text.push('}');
    let _ = std::fs::write(dir.join(format!("{name}.json")), text);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "gcups"]);
        t.row(vec!["AnySeq", "123.4"]);
        t.row(vec!["SeqAn-like", "119.0"]);
        let s = t.render();
        assert!(s.contains("AnySeq"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("AnySeq"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
