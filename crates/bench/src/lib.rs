//! # anyseq-bench — benchmark harness regenerating the paper's evaluation
//!
//! One binary per table/figure (see `DESIGN.md` §6):
//! `table1`, `fig5`, `fig6`, `table2`, `ablation`, `loc_breakdown`.
//! This library provides the shared pieces: Table-I workload definitions,
//! GCUPS measurement, and report formatting.

pub mod gcups;
pub mod report;
pub mod workloads;

pub use gcups::{measure_gcups, median, Measurement};
pub use workloads::{genome_pairs, read_batch, table1_specs, GenomeSpec};
