//! GCUPS measurement (giga cell updates per second, the paper's metric).
//!
//! Cell counting and the GCUPS formula are defined once, in
//! [`anyseq_engine::stats`]; this module wraps them with the repeated-
//! run / median protocol the figure binaries use, so the bench harness
//! and the engine's per-batch statistics can never drift apart.

use anyseq_engine::stats::{gcups, pair_cells};
use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Cells relaxed per run.
    pub cells: u64,
    /// Median wall seconds per run.
    pub seconds: f64,
    /// Median GCUPS.
    pub gcups: f64,
}

/// Median of a sample (consumes and sorts it).
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Runs `f` `repeats` times over a workload of `cells` DP cells and
/// reports the median GCUPS (the paper reports medians).
pub fn measure_gcups<F: FnMut()>(cells: u64, repeats: usize, mut f: F) -> Measurement {
    assert!(repeats >= 1);
    let mut times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    let seconds = median(times);
    Measurement {
        cells,
        seconds,
        gcups: gcups(cells, seconds),
    }
}

/// [`measure_gcups`] with the cell count taken from a pair batch via
/// the engine's shared accounting.
pub fn measure_batch_gcups<F: FnMut()>(
    pairs: &[(anyseq_seq::Seq, anyseq_seq::Seq)],
    repeats: usize,
    f: F,
) -> Measurement {
    measure_gcups(pair_cells(pairs), repeats, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn measure_produces_positive_gcups() {
        let m = measure_gcups(1_000_000, 3, || {
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        assert!(m.gcups > 0.0);
        assert_eq!(m.cells, 1_000_000);
    }
}
