//! Benchmark workloads: the Table-I genome set (synthesized, scaled) and
//! the Mason-like short-read batches.

use anyseq_seq::genome::GenomeSim;
use anyseq_seq::readsim::{ReadSim, ReadSimProfile};
use anyseq_seq::Seq;

/// One Table-I entry.
#[derive(Debug, Clone)]
pub struct GenomeSpec {
    /// Accession number as listed in the paper.
    pub accession: &'static str,
    /// Full sequence length (paper scale).
    pub length: usize,
    /// Genome definition line.
    pub definition: &'static str,
    /// GC fraction used by the simulator (approximate species values).
    pub gc: f64,
}

/// The six long genomic sequences of paper Table I.
pub fn table1_specs() -> Vec<GenomeSpec> {
    vec![
        GenomeSpec {
            accession: "NC_000962.3",
            length: 4_411_532,
            definition: "Mycobacterium tuberculosis H37Rv",
            gc: 0.656,
        },
        GenomeSpec {
            accession: "NC_000913.3",
            length: 4_641_652,
            definition: "Escherichia coli K12 MG1655",
            gc: 0.508,
        },
        GenomeSpec {
            accession: "NT_033779.4",
            length: 23_011_544,
            definition: "Drosophila melanogaster chr. 2L",
            gc: 0.42,
        },
        GenomeSpec {
            accession: "BA000046.3",
            length: 32_799_110,
            definition: "Pan troglodytes DNA chr. 22",
            gc: 0.41,
        },
        GenomeSpec {
            accession: "NC_019481.1",
            length: 42_034_648,
            definition: "Ovis aries breed Texel chr. 24",
            gc: 0.42,
        },
        GenomeSpec {
            accession: "NC_019478.1",
            length: 50_073_674,
            definition: "Ovis aries breed Texel chr. 21",
            gc: 0.42,
        },
    ]
}

/// Synthesizes one Table-I genome at `scale` (1.0 = paper length).
pub fn synthesize(spec: &GenomeSpec, scale: f64, seed: u64) -> Seq {
    let len = ((spec.length as f64 * scale).round() as usize).max(64);
    GenomeSim::new(seed ^ spec.length as u64)
        .with_gc(spec.gc)
        .generate(len)
}

/// The paper's three long-genome pairs (§V: "we aligned three pairs of
/// long genomic sequences of roughly similar length"): (Mtb, Ecoli),
/// (Dmel 2L, Ptr 22), (Oar 24, Oar 21) — consecutive Table-I rows of
/// similar size.
pub fn genome_pairs(scale: f64, seed: u64) -> Vec<(String, Seq, Seq)> {
    let specs = table1_specs();
    [(0usize, 1usize), (2, 3), (4, 5)]
        .iter()
        .map(|&(a, b)| {
            (
                format!("{}/{}", specs[a].accession, specs[b].accession),
                synthesize(&specs[a], scale, seed),
                synthesize(&specs[b], scale, seed + 1),
            )
        })
        .collect()
}

/// Mason-like Illumina read-pair batch (paper: 12.5 M pairs of 150 bp
/// reads simulated from GRCh38 chromosome 10; here from a synthetic
/// chromosome-scale reference).
pub fn read_batch(pairs: usize, seed: u64) -> Vec<(Seq, Seq)> {
    read_batch_with_len(pairs, ReadSimProfile::default().read_len, seed)
}

/// [`read_batch`] with an explicit read length (amplicon / merged-pair
/// style workloads; error profile unchanged).
pub fn read_batch_with_len(pairs: usize, read_len: usize, seed: u64) -> Vec<(Seq, Seq)> {
    let profile = ReadSimProfile {
        read_len,
        ..ReadSimProfile::default()
    };
    profile_batch(pairs, profile, seed)
}

/// Amplicon-style read-pair batch: fixed-length reads with
/// substitution errors only (no indels), so every pair shares the same
/// DP dimensions. The duplicated-read / result-cache workload uses
/// this — with uniform dimensions the SIMD lanes pack fully in both
/// the cache-on and cache-off runs, so the two differ by cached work
/// rather than by lane fill.
pub fn amplicon_batch(pairs: usize, read_len: usize, seed: u64) -> Vec<(Seq, Seq)> {
    let profile = ReadSimProfile {
        read_len,
        ins_rate: 0.0,
        del_rate: 0.0,
        ..ReadSimProfile::default()
    };
    profile_batch(pairs, profile, seed)
}

/// Containment-style read/window batch for the semi-global bin:
/// every pair is a `read_len` bp read (substitution errors only, no
/// indels) contained somewhere inside a `window_len` bp reference
/// window, returned as `(read, window)`. Offsets vary per pair so the
/// free-border optimum moves around; the uniform dimensions pack SIMD
/// lanes fully.
pub fn contained_read_batch(
    pairs: usize,
    read_len: usize,
    window_len: usize,
    seed: u64,
) -> Vec<(Seq, Seq)> {
    assert!(read_len <= window_len, "read must fit in the window");
    let mut sim = GenomeSim::new(seed);
    (0..pairs)
        .map(|k| {
            let window = sim.generate(window_len);
            let offset = (k * 31) % (window_len - read_len + 1);
            let mut codes = window.subseq(offset..offset + read_len).codes().to_vec();
            // ~3% substitutions, varied stride so lanes differ.
            for b in codes.iter_mut().skip(k % 13).step_by(29 + k % 7) {
                *b = (*b + 1) % 4;
            }
            (Seq::from_codes(codes).unwrap(), window)
        })
        .collect()
}

/// Shared generator behind the read-batch workloads: one synthetic
/// chromosome-scale reference, reads simulated under `profile`.
fn profile_batch(pairs: usize, profile: ReadSimProfile, seed: u64) -> Vec<(Seq, Seq)> {
    let reference = GenomeSim::new(seed).generate(2_000_000);
    let mut sim = ReadSim::new(profile, seed ^ 0x5eed);
    sim.simulate_pairs(&reference, pairs)
        .into_iter()
        .map(|p| (p.a, p.b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let specs = table1_specs();
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].length, 4_411_532);
        assert_eq!(specs[5].accession, "NC_019478.1");
    }

    #[test]
    fn synthesis_scales() {
        let specs = table1_specs();
        let g = synthesize(&specs[0], 0.001, 1);
        assert_eq!(g.len(), 4412);
        // M. tuberculosis GC should be reflected.
        assert!((g.gc_content() - 0.656).abs() < 0.05);
    }

    #[test]
    fn pairs_are_three_similar_sized() {
        let pairs = genome_pairs(0.0005, 3);
        assert_eq!(pairs.len(), 3);
        for (_, a, b) in &pairs {
            let ratio = a.len() as f64 / b.len() as f64;
            assert!((0.5..=2.0).contains(&ratio));
        }
    }

    #[test]
    fn read_batch_shape() {
        let batch = read_batch(40, 9);
        assert_eq!(batch.len(), 40);
        assert!(batch.iter().all(|(a, b)| a.len() > 100 && b.len() > 100));
    }

    #[test]
    fn contained_batch_has_uniform_dims_and_containment() {
        let batch = contained_read_batch(24, 150, 225, 11);
        assert_eq!(batch.len(), 24);
        assert!(batch.iter().all(|(q, s)| q.len() == 150 && s.len() == 225));
        // The reads are near-copies of a window slice: a semi-global
        // score close to the perfect-containment score, far above what
        // an unrelated read would get.
        use anyseq_core::prelude::*;
        let scheme = semiglobal(linear(simple(2, -3), -2));
        for (q, s) in &batch {
            assert!(scheme.score(q, s) > 2 * 150 * 7 / 10);
        }
    }
}
