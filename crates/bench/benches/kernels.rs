//! Criterion micro-benchmarks of the computational kernels: the scalar
//! tile kernel (per gap model and kind), the SIMD block kernel per lane
//! count, and the scheduling substrates.

use anyseq_core::kind::{Global, Local};
use anyseq_core::pass::score_pass;
use anyseq_core::prelude::*;
use anyseq_seq::genome::GenomeSim;
use anyseq_simd::simd_tiled_score_pass;
use anyseq_wavefront::pass::{tiled_score_pass, ParallelCfg};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench_scalar_kernel(c: &mut Criterion) {
    let mut sim = GenomeSim::new(1);
    let q = sim.generate(2000);
    let s = sim.mutate(&q, 0.05);
    let cells = (q.len() * s.len()) as u64;
    let subst = simple(2, -1);
    let lin = LinearGap { gap: -1 };
    let aff = AffineGap {
        open: -2,
        extend: -1,
    };

    let mut group = c.benchmark_group("scalar_pass");
    group.throughput(Throughput::Elements(cells));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("global_linear", |b| {
        b.iter(|| score_pass::<Global, _, _>(&lin, &subst, q.codes(), s.codes(), 0).score)
    });
    group.bench_function("global_affine", |b| {
        b.iter(|| score_pass::<Global, _, _>(&aff, &subst, q.codes(), s.codes(), -2).score)
    });
    group.bench_function("local_affine", |b| {
        b.iter(|| score_pass::<Local, _, _>(&aff, &subst, q.codes(), s.codes(), -2).score)
    });
    group.finish();
}

fn bench_simd_lanes(c: &mut Criterion) {
    let mut sim = GenomeSim::new(2);
    let q = sim.generate(16_384);
    let s = sim.mutate(&q, 0.05);
    let cells = (q.len() * s.len()) as u64;
    let subst = simple(2, -1);
    let aff = AffineGap {
        open: -2,
        extend: -1,
    };
    let cfg = ParallelCfg {
        threads: 4,
        tile: 512,
        min_parallel_area: 0,
        static_schedule: false,
        shard_cells: 0,
    };

    let mut group = c.benchmark_group("simd_tiled_pass");
    group.throughput(Throughput::Elements(cells));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("scalar_i32", |b| {
        b.iter(|| {
            tiled_score_pass::<Global, _, _>(&aff, &subst, q.codes(), s.codes(), -2, &cfg).score
        })
    });
    group.bench_function("lanes8", |b| {
        b.iter(|| {
            simd_tiled_score_pass::<_, _, 8>(&aff, &subst, q.codes(), s.codes(), -2, &cfg).score
        })
    });
    group.bench_function("lanes16_avx2", |b| {
        b.iter(|| {
            simd_tiled_score_pass::<_, _, 16>(&aff, &subst, q.codes(), s.codes(), -2, &cfg).score
        })
    });
    group.bench_function("lanes32_avx512", |b| {
        b.iter(|| {
            simd_tiled_score_pass::<_, _, 32>(&aff, &subst, q.codes(), s.codes(), -2, &cfg).score
        })
    });
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut sim = GenomeSim::new(3);
    let q = sim.generate(8192);
    let s = sim.mutate(&q, 0.05);
    let cells = (q.len() * s.len()) as u64;
    let subst = simple(2, -1);
    let lin = LinearGap { gap: -1 };

    let mut group = c.benchmark_group("scheduler");
    group.throughput(Throughput::Elements(cells));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for threads in [4usize, 8] {
        let dynamic = ParallelCfg {
            threads,
            tile: 256,
            min_parallel_area: 0,
            static_schedule: false,
            shard_cells: 0,
        };
        let stat = ParallelCfg {
            static_schedule: true,
            ..dynamic
        };
        group.bench_function(format!("dynamic_t{threads}"), |b| {
            b.iter(|| {
                tiled_score_pass::<Global, _, _>(&lin, &subst, q.codes(), s.codes(), 0, &dynamic)
                    .score
            })
        });
        group.bench_function(format!("static_t{threads}"), |b| {
            b.iter(|| {
                tiled_score_pass::<Global, _, _>(&lin, &subst, q.codes(), s.codes(), 0, &stat).score
            })
        });
    }
    group.finish();
}

fn bench_traceback(c: &mut Criterion) {
    let mut sim = GenomeSim::new(4);
    let q = sim.generate(4000);
    let s = sim.mutate(&q, 0.05);
    let cells = (q.len() * s.len()) as u64;
    let scheme = global(affine(simple(2, -1), -2, -1));

    let mut group = c.benchmark_group("traceback");
    group.throughput(Throughput::Elements(cells));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("hirschberg_scalar", |b| {
        b.iter(|| scheme.align(&q, &s).score)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scalar_kernel,
    bench_simd_lanes,
    bench_schedulers,
    bench_traceback
);
criterion_main!(benches);
