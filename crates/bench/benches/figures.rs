//! Criterion versions of the paper's figure workloads at micro scale:
//! one long-genome row of Fig. 5a per library, and one short-read batch
//! row of Fig. 5b per engine. The `fig5`/`fig6` binaries produce the
//! full tables; these benches give statistically tracked spot checks.

use anyseq_baselines::{ParasailLike, SeqAnLike};
use anyseq_bench::workloads::{genome_pairs, read_batch};
use anyseq_core::kind::Global;
use anyseq_core::prelude::*;
use anyseq_simd::score_batch_simd;
use anyseq_wavefront::pass::{tiled_score_pass, ParallelCfg};
use anyseq_wavefront::score_batch_parallel;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench_fig5a_row(c: &mut Criterion) {
    let pairs = genome_pairs(0.0006, 5);
    let (_, q, s) = &pairs[0];
    let cells = (q.len() * s.len()) as u64;
    let lin = global(linear(simple(2, -1), -1));
    let threads = 8;
    let cfg = ParallelCfg {
        threads,
        tile: 256,
        min_parallel_area: 0,
        static_schedule: false,
        shard_cells: 0,
    };

    let mut group = c.benchmark_group("fig5a_scores_linear");
    group.throughput(Throughput::Elements(cells));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("anyseq_cpu", |b| {
        b.iter(|| {
            tiled_score_pass::<Global, _, _>(lin.gap(), lin.subst(), q.codes(), s.codes(), 0, &cfg)
                .score
        })
    });
    group.bench_function("anyseq_avx2", |b| {
        b.iter(|| {
            anyseq_simd::simd_tiled_score_pass::<_, _, 16>(
                lin.gap(),
                lin.subst(),
                q.codes(),
                s.codes(),
                0,
                &cfg,
            )
            .score
        })
    });
    let seqan = SeqAnLike::new(threads).with_tile(256);
    group.bench_function("seqan_like", |b| b.iter(|| seqan.score(&lin, q, s)));
    let mut parasail = ParasailLike::new(threads);
    parasail.tile = 256;
    group.bench_function("parasail_like", |b| b.iter(|| parasail.score(&lin, q, s)));
    group.finish();
}

fn bench_fig5b_row(c: &mut Criterion) {
    let batch = read_batch(2000, 7);
    let view = anyseq_seq::BatchView::from_pairs(&batch);
    let cells: u64 = view.total_cells();
    let lin = global(linear(simple(2, -1), -1));
    let threads = 8;

    let mut group = c.benchmark_group("fig5b_scores_linear");
    group.throughput(Throughput::Elements(cells));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("anyseq_cpu_batch", |b| {
        b.iter(|| score_batch_parallel(&lin, &batch, threads))
    });
    group.bench_function("anyseq_avx2_batch", |b| {
        b.iter(|| score_batch_simd::<_, _, _, 16>(&lin, view.refs(), threads))
    });
    group.bench_function("anyseq_avx512_batch", |b| {
        b.iter(|| score_batch_simd::<_, _, _, 32>(&lin, view.refs(), threads))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5a_row, bench_fig5b_row);
criterion_main!(benches);
