//! Farrar's striped intra-sequence SIMD Smith–Waterman — the layout used
//! by the SSW library (paper refs \[15\], \[28\]).
//!
//! The query is laid out *striped* across vector lanes (lane `l` of
//! vector `i` holds query position `i + l·segLen`), which keeps the inner
//! loop dependency-free; the price is the **lazy-F** fix-up loop whose
//! trip count is data-dependent — the paper notes the approach "relies on
//! efficient branch prediction units which are often inefficient on
//! modern many-core architectures". We reproduce the method faithfully
//! (including that control-flow-heavy fix-up) as an extra short-read
//! baseline.

use anyseq_core::kind::Local;
use anyseq_core::pass::score_pass;
use anyseq_core::score::Score;
use anyseq_core::scoring::{AffineGap, SubstScore};
use anyseq_seq::alphabet::ALPHABET_SIZE;
use anyseq_seq::Seq;
use anyseq_simd::I16s;

const NEG: i16 = -30_000;

/// Striped local-alignment scorer with fixed lane count `L`.
pub struct Farrar<const L: usize> {
    gap: AffineGap,
    matches: [[i16; ALPHABET_SIZE]; ALPHABET_SIZE],
}

impl<const L: usize> Farrar<L> {
    /// Builds a scorer for the given scheme. Scores must fit 16-bit
    /// arithmetic (reads-scale inputs).
    pub fn new<S: SubstScore>(gap: AffineGap, subst: &S) -> Farrar<L> {
        let mut matches = [[0i16; ALPHABET_SIZE]; ALPHABET_SIZE];
        for (qc, row) in matches.iter_mut().enumerate() {
            for (sc, cell) in row.iter_mut().enumerate() {
                *cell = subst.score(qc as u8, sc as u8) as i16;
            }
        }
        Farrar { gap, matches }
    }

    /// Optimal local alignment score of `q` vs `s`.
    pub fn score(&self, q: &Seq, s: &Seq) -> Score {
        let n = q.len();
        let m = s.len();
        if n == 0 || m == 0 {
            return 0;
        }
        let seg = n.div_ceil(L);
        let ext = self.gap.extend as i16;
        let openext = (self.gap.open + self.gap.extend) as i16;

        // Striped query profile: profile[y][i].lane(l) = σ(q[i + l·seg], y).
        let mut profile = vec![vec![I16s::<L>::splat(NEG); seg]; ALPHABET_SIZE];
        for (y, plane) in profile.iter_mut().enumerate() {
            for (i, v) in plane.iter_mut().enumerate() {
                let mut lanes = [NEG; L];
                for (l, lane) in lanes.iter_mut().enumerate() {
                    let pos = i + l * seg;
                    if pos < n {
                        *lane = self.matches[q[pos] as usize][y];
                    }
                }
                *v = I16s(lanes);
            }
        }

        let zero = I16s::<L>::splat(0);
        let mut h_store = vec![zero; seg];
        let mut e_store = vec![I16s::<L>::splat(NEG); seg];
        let mut h_new = vec![zero; seg];
        let mut v_max = zero;

        for j in 0..m {
            let prof = &profile[s[j] as usize];
            let mut v_f = I16s::<L>::splat(NEG);
            // H from the previous column, query position shifted by one:
            // the last stripe vector wraps with a lane shift.
            let mut v_h = h_store[seg - 1].shift_lanes_up(0);
            for i in 0..seg {
                let v = v_h.sat_add(prof[i]).max(e_store[i]).max(v_f).maxs(0);
                v_max = v_max.max(v);
                h_new[i] = v;
                e_store[i] = e_store[i].sat_adds(ext).max(v.sat_adds(openext));
                v_f = v_f.sat_adds(ext).max(v.sat_adds(openext));
                v_h = h_store[i];
            }
            // Lazy-F: propagate F across stripe wraps until fixpoint
            // (the data-dependent loop Farrar's speed hinges on).
            loop {
                v_f = v_f.shift_lanes_up(NEG);
                let mut changed = false;
                for i in 0..seg {
                    let improved = h_new[i].max(v_f);
                    if improved.any_gt(h_new[i]) {
                        changed = true;
                        h_new[i] = improved.maxs(0);
                        e_store[i] = e_store[i].max(h_new[i].sat_adds(openext));
                        v_max = v_max.max(h_new[i]);
                    }
                    v_f = v_f.sat_adds(ext).max(h_new[i].sat_adds(openext));
                }
                if !changed {
                    break;
                }
            }
            std::mem::swap(&mut h_store, &mut h_new);
        }
        (v_max.hmax() as Score).max(0)
    }

    /// Scores a batch of pairs (striped kernel per pair, parallelism
    /// across pairs).
    pub fn score_batch(&self, pairs: &[(Seq, Seq)], threads: usize) -> Vec<Score>
    where
        Self: Sync,
    {
        crate::batch_with(pairs, threads, |qc, sc| {
            let q = Seq::from_codes(qc.to_vec()).expect("valid codes");
            let s = Seq::from_codes(sc.to_vec()).expect("valid codes");
            self.score(&q, &s)
        })
    }
}

/// Reference check helper: core engine local score.
pub fn local_reference<S: SubstScore>(gap: &AffineGap, subst: &S, q: &Seq, s: &Seq) -> Score {
    score_pass::<Local, AffineGap, S>(gap, subst, q.codes(), s.codes(), gap.open).score
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::prelude::simple;
    use anyseq_seq::genome::GenomeSim;
    use anyseq_seq::readsim::{ReadSim, ReadSimProfile};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn farrar_matches_reference_on_reads() {
        let gap = AffineGap {
            open: -3,
            extend: -1,
        };
        let subst = simple(2, -2);
        let farrar = Farrar::<8>::new(gap, &subst);
        let mut sim = GenomeSim::new(127);
        let reference = sim.generate(50_000);
        let mut rs = ReadSim::new(ReadSimProfile::default(), 5);
        for p in rs.simulate_pairs(&reference, 50) {
            let expected = local_reference(&gap, &subst, &p.a, &p.b);
            assert_eq!(farrar.score(&p.a, &p.b), expected);
        }
    }

    #[test]
    fn farrar_matches_reference_random_lengths() {
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(3, -2);
        let farrar16 = Farrar::<16>::new(gap, &subst);
        let farrar4 = Farrar::<4>::new(gap, &subst);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..60 {
            let n = rng.gen_range(1..120);
            let m = rng.gen_range(1..120);
            let q = Seq::from_codes((0..n).map(|_| rng.gen_range(0..4)).collect()).unwrap();
            let s = Seq::from_codes((0..m).map(|_| rng.gen_range(0..4)).collect()).unwrap();
            let expected = local_reference(&gap, &subst, &q, &s);
            assert_eq!(farrar16.score(&q, &s), expected, "L=16 n={n} m={m}");
            assert_eq!(farrar4.score(&q, &s), expected, "L=4 n={n} m={m}");
        }
    }

    #[test]
    fn farrar_gap_heavy_cases() {
        // Long homopolymers: exercises deep lazy-F propagation.
        let gap = AffineGap {
            open: -1,
            extend: -1,
        };
        let subst = simple(2, -5);
        let farrar = Farrar::<8>::new(gap, &subst);
        let q = Seq::from_ascii(b"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA").unwrap();
        let s = Seq::from_ascii(b"AAAATTTTTTTTTTTTTTTTTTAAAA").unwrap();
        assert_eq!(farrar.score(&q, &s), local_reference(&gap, &subst, &q, &s));
    }

    #[test]
    fn farrar_empty_inputs() {
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let farrar = Farrar::<8>::new(gap, &subst);
        let q = Seq::from_ascii(b"ACGT").unwrap();
        assert_eq!(farrar.score(&q, &Seq::new()), 0);
        assert_eq!(farrar.score(&Seq::new(), &q), 0);
    }
}
