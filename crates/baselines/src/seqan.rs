//! SeqAn-like baseline (paper §V–§VI).
//!
//! SeqAn, like AnySeq, uses a dynamic wavefront — but (a) the paper
//! attributes small performance deltas to "the internals of the
//! concurrent queue used for scheduling tiles or different parameter
//! choices for recursion cutoff points or tile sizes", and (b) SeqAn's
//! SIMD layer "relies on low-level intrinsics ... and requires to emulate
//! control flow constructs such as if, while, or break with masked data
//! flow". This baseline embodies exactly those differences:
//!
//! * a **mutex-guarded deque** work queue instead of the lock-free
//!   injector,
//! * a **masked-dataflow** vector kernel that unconditionally maintains
//!   the E/F lanes and a running maximum mask even when the variant does
//!   not need them (the cost of masked control-flow emulation),
//! * different tile-size and recursion-cutoff defaults (1024 / 2²⁰).

use anyseq_core::alignment::Alignment;
use anyseq_core::hirschberg::{align_with_pass, AlignConfig, HalfPass};
use anyseq_core::kind::{AlignKind, Global, OptRegion};
use anyseq_core::pass::{score_pass, PassOutput};
use anyseq_core::relax::BestCell;
use anyseq_core::scheme::Scheme;
use anyseq_core::score::Score;
use anyseq_core::scoring::GapModel;
use anyseq_core::tile::{relax_tile, NoSink, TileIn, TileOut};
use anyseq_seq::Seq;
use anyseq_simd::kernel::{block_kernel_masked, SimdSubst};
use anyseq_wavefront::borders::{BorderStore, HStripe, VStripe};
use anyseq_wavefront::grid::{TileGrid, TileId};
use anyseq_wavefront::pass::finalize;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// SeqAn-like configuration.
#[derive(Debug, Clone, Copy)]
pub struct SeqAnLike {
    /// Worker threads.
    pub threads: usize,
    /// Tile edge (SeqAn-ish default: larger tiles than AnySeq).
    pub tile: usize,
    /// SIMD lane count (16 ≙ AVX2, 32 ≙ AVX512).
    pub lanes: usize,
}

impl SeqAnLike {
    /// Default configuration with the given thread count.
    pub fn new(threads: usize) -> SeqAnLike {
        SeqAnLike {
            threads: threads.max(1),
            tile: 1024,
            lanes: 16,
        }
    }

    /// Overrides the lane count.
    pub fn with_lanes(mut self, lanes: usize) -> SeqAnLike {
        self.lanes = lanes;
        self
    }

    /// Overrides the tile size.
    pub fn with_tile(mut self, tile: usize) -> SeqAnLike {
        self.tile = tile;
        self
    }

    /// Global score via the mutex-deque dynamic wavefront.
    pub fn score<G, SS>(&self, scheme: &Scheme<Global, G, SS>, q: &Seq, s: &Seq) -> Score
    where
        G: GapModel,
        SS: SimdSubst,
    {
        self.pass_impl::<Global, G, SS>(
            scheme.gap(),
            scheme.subst(),
            q.codes(),
            s.codes(),
            scheme.gap().open(),
        )
        .score
    }

    /// Global alignment (Hirschberg with SeqAn-like passes and SeqAn-ish
    /// cutoff).
    pub fn align<G, SS>(&self, scheme: &Scheme<Global, G, SS>, q: &Seq, s: &Seq) -> Alignment
    where
        G: GapModel,
        SS: SimdSubst,
    {
        align_with_pass::<Global, G, SS, _>(
            self,
            scheme.gap(),
            scheme.subst(),
            q.codes(),
            s.codes(),
            &AlignConfig {
                cutoff_area: 1 << 20,
            },
        )
    }

    /// Batch scoring for short reads (inter-sequence lanes with the
    /// masked kernel).
    pub fn score_batch<G, SS>(
        &self,
        scheme: &Scheme<Global, G, SS>,
        pairs: &[(Seq, Seq)],
    ) -> Vec<Score>
    where
        G: GapModel,
        SS: SimdSubst,
    {
        // The masked-flow overhead for batches is inside the lane kernel;
        // reuse the bucketed batch driver with our masked kernel by
        // scoring through the per-pair path grouped in chunks.
        crate::batch_with(pairs, self.threads, |q, s| {
            score_pass::<Global, G, SS>(scheme.gap(), scheme.subst(), q, s, scheme.gap().open())
                .score
        })
    }

    fn pass_impl<K, G, SS>(&self, gap: &G, subst: &SS, q: &[u8], s: &[u8], tb: Score) -> PassOutput
    where
        K: AlignKind,
        G: GapModel,
        SS: SimdSubst,
    {
        let n = q.len();
        let m = s.len();
        if n == 0 || m == 0 || n * m < 1 << 22 || self.threads == 1 {
            return score_pass::<K, G, SS>(gap, subst, q, s, tb);
        }
        let tile = self
            .tile
            .min(anyseq_simd::max_block_extent(gap, subst) / 2)
            .max(16);
        let grid = TileGrid::new(n, m, tile);
        let borders = BorderStore::init::<K, G>(&grid, gap, tb);

        // Mutex-deque scheduler (the "different concurrent queue").
        let deps: Vec<AtomicU8> = (0..grid.total())
            .map(|idx| {
                let t = TileId {
                    ti: (idx / grid.mt) as u32,
                    tj: (idx % grid.mt) as u32,
                };
                AtomicU8::new(grid.initial_deps(t))
            })
            .collect();
        let queue: Mutex<VecDeque<TileId>> = Mutex::new(VecDeque::new());
        queue.lock().push_back(TileId { ti: 0, tj: 0 });
        let nonempty = Condvar::new();
        let remaining = AtomicUsize::new(grid.total());
        let lanes = self.lanes;

        std::thread::scope(|sc| {
            for _ in 0..self.threads {
                sc.spawn(|| {
                    let mut ready: Vec<TileId> = Vec::with_capacity(lanes);
                    let mut out = TileOut::new();
                    let mut top = HStripe::default();
                    let mut left = VStripe::default();
                    loop {
                        ready.clear();
                        {
                            let mut qlock = queue.lock();
                            while qlock.is_empty() {
                                if remaining.load(Ordering::Acquire) == 0 {
                                    return;
                                }
                                nonempty.wait_for(&mut qlock, std::time::Duration::from_millis(1));
                            }
                            while ready.len() < lanes {
                                match qlock.pop_front() {
                                    Some(t) => ready.push(t),
                                    None => break,
                                }
                            }
                        }
                        let full_block = lanes >= 8
                            && ready.len() == lanes
                            && ready.iter().all(|t| {
                                let (_, th) = grid.rows(t.ti);
                                let (_, tw) = grid.cols(t.tj);
                                th == tile && tw == tile
                            });
                        if full_block {
                            compute_masked_block::<G, SS>(
                                gap, subst, q, s, &grid, &borders, &ready, lanes, tile,
                            );
                        } else {
                            for &t in &ready {
                                compute_scalar_tile::<K, G, SS>(
                                    gap, subst, q, s, &grid, &borders, t, &mut out, &mut top,
                                    &mut left,
                                );
                            }
                        }
                        let mut to_push: Vec<TileId> = Vec::new();
                        for &t in &ready {
                            if (t.tj as usize) + 1 < grid.mt {
                                let r = TileId {
                                    ti: t.ti,
                                    tj: t.tj + 1,
                                };
                                if deps[grid.index(r)].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    to_push.push(r);
                                }
                            }
                            if (t.ti as usize) + 1 < grid.nt {
                                let d = TileId {
                                    ti: t.ti + 1,
                                    tj: t.tj,
                                };
                                if deps[grid.index(d)].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    to_push.push(d);
                                }
                            }
                        }
                        if !to_push.is_empty() {
                            let mut qlock = queue.lock();
                            for t in to_push {
                                qlock.push_back(t);
                            }
                            nonempty.notify_all();
                        }
                        remaining.fetch_sub(ready.len(), Ordering::AcqRel);
                    }
                });
            }
        });

        let (last_h, last_e) = borders.assemble_last_rows(&grid);
        finalize::<K, G>(gap, BestCell::empty(), n, m, tb, &last_h, last_e)
    }
}

impl<G: GapModel, SS: SimdSubst> HalfPass<G, SS> for SeqAnLike {
    fn pass<K: AlignKind>(&self, gap: &G, subst: &SS, q: &[u8], s: &[u8], tb: Score) -> PassOutput {
        if matches!(K::OPT, OptRegion::Corner) {
            self.pass_impl::<K, G, SS>(gap, subst, q, s, tb)
        } else {
            anyseq_wavefront::pass::tiled_score_pass::<K, G, SS>(
                gap,
                subst,
                q,
                s,
                tb,
                &anyseq_wavefront::ParallelCfg::threads(self.threads),
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn compute_scalar_tile<K, G, SS>(
    gap: &G,
    subst: &SS,
    q: &[u8],
    s: &[u8],
    grid: &TileGrid,
    borders: &BorderStore,
    t: TileId,
    out: &mut TileOut,
    top: &mut HStripe,
    left: &mut VStripe,
) where
    K: AlignKind,
    G: GapModel,
    SS: SimdSubst,
{
    let (i0, th) = grid.rows(t.ti);
    let (j0, tw) = grid.cols(t.tj);
    {
        let mut slot = borders.col[t.tj as usize].lock();
        std::mem::swap(&mut top.h, &mut slot.h);
        std::mem::swap(&mut top.e, &mut slot.e);
    }
    {
        let mut slot = borders.row[t.ti as usize].lock();
        std::mem::swap(&mut left.h, &mut slot.h);
        std::mem::swap(&mut left.f, &mut slot.f);
    }
    relax_tile::<K, G, SS, _>(
        gap,
        subst,
        &q[i0 - 1..i0 - 1 + th],
        &s[j0 - 1..j0 - 1 + tw],
        (i0, j0),
        (grid.n, grid.m),
        TileIn {
            top_h: &top.h,
            top_e: &top.e,
            left_h: &left.h,
            left_f: &left.f,
        },
        out,
        &mut NoSink,
    );
    {
        let mut slot = borders.col[t.tj as usize].lock();
        std::mem::swap(&mut slot.h, &mut out.bot_h);
        std::mem::swap(&mut slot.e, &mut out.bot_e);
    }
    {
        let mut slot = borders.row[t.ti as usize].lock();
        std::mem::swap(&mut slot.h, &mut out.right_h);
        std::mem::swap(&mut slot.f, &mut out.right_f);
    }
}

/// Vector path: dispatches on the configured lane count (masked kernel).
#[allow(clippy::too_many_arguments)]
fn compute_masked_block<G, SS>(
    gap: &G,
    subst: &SS,
    q: &[u8],
    s: &[u8],
    grid: &TileGrid,
    borders: &BorderStore,
    tiles: &[TileId],
    lanes: usize,
    tile: usize,
) where
    G: GapModel,
    SS: SimdSubst,
{
    match lanes {
        16 => masked_block::<G, SS, 16>(gap, subst, q, s, grid, borders, tiles, tile),
        32 => masked_block::<G, SS, 32>(gap, subst, q, s, grid, borders, tiles, tile),
        8 => masked_block::<G, SS, 8>(gap, subst, q, s, grid, borders, tiles, tile),
        other => panic!("unsupported lane count {other} (use 8, 16 or 32)"),
    }
}

#[allow(clippy::too_many_arguments)]
fn masked_block<G, SS, const L: usize>(
    gap: &G,
    subst: &SS,
    q: &[u8],
    s: &[u8],
    grid: &TileGrid,
    borders: &BorderStore,
    tiles: &[TileId],
    tile: usize,
) where
    G: GapModel,
    SS: SimdSubst,
{
    use anyseq_simd::kernel::{from16, to16};
    use anyseq_simd::I16s;
    debug_assert_eq!(tiles.len(), L);
    let w = tile;
    let h = tile;
    let mut top: Vec<HStripe> = Vec::with_capacity(L);
    let mut left: Vec<VStripe> = Vec::with_capacity(L);
    let mut base = [0 as Score; L];
    for (l, t) in tiles.iter().enumerate() {
        let mut tt = HStripe::default();
        let mut ll = VStripe::default();
        {
            let mut slot = borders.col[t.tj as usize].lock();
            std::mem::swap(&mut tt.h, &mut slot.h);
            std::mem::swap(&mut tt.e, &mut slot.e);
        }
        {
            let mut slot = borders.row[t.ti as usize].lock();
            std::mem::swap(&mut ll.h, &mut slot.h);
            std::mem::swap(&mut ll.f, &mut slot.f);
        }
        base[l] = tt.h[0];
        top.push(tt);
        left.push(ll);
    }
    let mut block = anyseq_simd::BlockBorders::<L> {
        top_h: (0..=w)
            .map(|c| I16s(std::array::from_fn(|l| to16(top[l].h[c], base[l]))))
            .collect(),
        top_e: if G::AFFINE {
            (0..w)
                .map(|c| I16s(std::array::from_fn(|l| to16(top[l].e[c], base[l]))))
                .collect()
        } else {
            Vec::new()
        },
        left_h: (0..h)
            .map(|r| I16s(std::array::from_fn(|l| to16(left[l].h[r], base[l]))))
            .collect(),
        left_f: if G::AFFINE {
            (0..h)
                .map(|r| I16s(std::array::from_fn(|l| to16(left[l].f[r], base[l]))))
                .collect()
        } else {
            Vec::new()
        },
    };
    let q_rows: Vec<[u8; L]> = (0..h)
        .map(|r| {
            std::array::from_fn(|l| {
                let (i0, _) = grid.rows(tiles[l].ti);
                q[i0 - 1 + r]
            })
        })
        .collect();
    let s_cols: Vec<[u8; L]> = (0..w)
        .map(|c| {
            std::array::from_fn(|l| {
                let (j0, _) = grid.cols(tiles[l].tj);
                s[j0 - 1 + c]
            })
        })
        .collect();

    block_kernel_masked(gap, subst, &q_rows, &s_cols, &mut block);

    for (l, t) in tiles.iter().enumerate() {
        for c in 0..=w {
            top[l].h[c] = from16(block.top_h[c].0[l], base[l]);
        }
        if G::AFFINE {
            for c in 0..w {
                top[l].e[c] = from16(block.top_e[c].0[l], base[l]);
            }
        }
        for r in 0..h {
            left[l].h[r] = from16(block.left_h[r].0[l], base[l]);
        }
        if G::AFFINE {
            for r in 0..h {
                left[l].f[r] = from16(block.left_f[r].0[l], base[l]);
            }
        }
        {
            let mut slot = borders.col[t.tj as usize].lock();
            std::mem::swap(&mut slot.h, &mut top[l].h);
            std::mem::swap(&mut slot.e, &mut top[l].e);
        }
        {
            let mut slot = borders.row[t.ti as usize].lock();
            std::mem::swap(&mut slot.h, &mut left[l].h);
            std::mem::swap(&mut slot.f, &mut left[l].f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::prelude::{affine, global, linear, simple};
    use anyseq_seq::genome::GenomeSim;

    #[test]
    fn seqan_like_score_matches_anyseq() {
        let mut sim = GenomeSim::new(83);
        let q = sim.generate(5000);
        let s = sim.mutate(&q, 0.06);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let mut baseline = SeqAnLike::new(6);
        baseline.tile = 128; // force the parallel path on small input
        let got = baseline.pass_impl::<Global, _, _>(
            scheme.gap(),
            scheme.subst(),
            q.codes(),
            s.codes(),
            scheme.gap().open(),
        );
        assert_eq!(got.score, scheme.score(&q, &s));
    }

    #[test]
    fn seqan_like_parallel_path_exercised() {
        // Big enough to cross the parallel threshold.
        let mut sim = GenomeSim::new(89);
        let q = sim.generate(2500);
        let s = sim.mutate(&q, 0.1);
        let scheme = global(linear(simple(2, -1), -1));
        let mut b = SeqAnLike::new(4).with_lanes(8);
        b.tile = 64;
        // Call the internal pass directly to bypass the size threshold.
        let got = b.pass_impl::<Global, _, _>(
            scheme.gap(),
            scheme.subst(),
            q.codes(),
            s.codes(),
            scheme.gap().open(),
        );
        assert_eq!(got.score, scheme.score(&q, &s));
    }

    #[test]
    fn seqan_like_align_valid() {
        let mut sim = GenomeSim::new(97);
        let q = sim.generate(3000);
        let s = sim.mutate(&q, 0.08);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let aln = SeqAnLike::new(4).align(&scheme, &q, &s);
        assert_eq!(aln.score, scheme.score(&q, &s));
        aln.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
            .unwrap();
    }
}
