//! # anyseq-baselines — comparator strategies, implemented from scratch
//!
//! The paper evaluates AnySeq against SeqAn 2.4 (CPU), Parasail 2.0
//! (CPU) and NVBio 1.1 (GPU). Those codebases are not portable into this
//! workspace, but the paper *names* the strategy differences responsible
//! for the observed gaps; each baseline here implements exactly those
//! strategies on top of the shared substrates (see `DESIGN.md` §3):
//!
//! * [`seqan::SeqAnLike`] — dynamic wavefront with a mutex-deque queue
//!   and a masked-dataflow SIMD kernel,
//! * [`parasail::ParasailLike`] — static barrier wavefront, always-affine
//!   recurrence, minor-diagonal tile interior,
//! * [`nvbio::NvbioLike`] — GPU kernel without phasing/coalescing,
//! * [`farrar`] — the striped intra-sequence SIMD layout of SSW
//!   (paper refs \[15\], \[28\]) as an extra short-read baseline.

pub mod farrar;
pub mod nvbio;
pub mod parasail;
pub mod seqan;

pub use nvbio::NvbioLike;
pub use parasail::ParasailLike;
pub use seqan::SeqAnLike;

use anyseq_core::score::Score;
use anyseq_seq::Seq;

/// Shared batch driver: scores pairs in parallel with a per-pair scoring
/// closure (used by baselines whose batch path has no dedicated kernel).
pub fn batch_with<F>(pairs: &[(Seq, Seq)], threads: usize, score: F) -> Vec<Score>
where
    F: Fn(&[u8], &[u8]) -> Score + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let threads = threads.max(1);
    let mut out = vec![0 as Score; pairs.len()];
    struct Out(*mut Score);
    unsafe impl Send for Out {}
    unsafe impl Sync for Out {}
    let optr = Out(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    {
        let optr = &optr;
        let next = &next;
        let score = &score;
        std::thread::scope(|sc| {
            for _ in 0..threads {
                sc.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= pairs.len() {
                        break;
                    }
                    let v = score(pairs[k].0.codes(), pairs[k].1.codes());
                    // SAFETY: each index written exactly once.
                    unsafe { *optr.0.add(k) = v };
                });
            }
        });
    }
    out
}
