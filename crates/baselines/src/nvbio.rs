//! NVBio-like GPU baseline.
//!
//! NVBio's DP kernels predate the striping/phasing refinements of the
//! paper's GPU mapping; the paper measures AnySeq "outperform\[ing\] NVBio
//! for both score-only computation and alignment reconstruction by a
//! factor of up to 1.1". This baseline runs on the same GPU simulator
//! with the refinements disabled: unphased diagonal loops (divergence on
//! the ramp-up/down diagonals) and non-coalesced border traffic, plus a
//! smaller default tile.

use anyseq_core::alignment::Alignment;
use anyseq_core::kind::Global;
use anyseq_core::scheme::Scheme;
use anyseq_core::scoring::{GapModel, SubstScore};
use anyseq_gpu_sim::{Device, GpuAligner, GpuRun, GpuStats, KernelShape};
use anyseq_seq::Seq;

/// NVBio-like aligner on a simulated device.
pub struct NvbioLike {
    inner: GpuAligner,
}

impl NvbioLike {
    /// Builds the baseline on the given device.
    pub fn new(device: Device) -> NvbioLike {
        NvbioLike {
            // NVBio coalesces its global traffic like any mature CUDA
            // code; its deficit against the paper's mapping is the
            // unphased (divergent) diagonal processing and a smaller
            // block. The fully uncoalesced variant is covered by the
            // `ablation stripes` bench.
            inner: GpuAligner::new(device)
                .with_tile(256)
                .with_shape(KernelShape {
                    block_threads: 32,
                    phased: false,
                    coalesced: true,
                }),
        }
    }

    /// The underlying simulated aligner.
    pub fn aligner(&self) -> &GpuAligner {
        &self.inner
    }

    /// Global score with modeled statistics.
    pub fn score<G, S>(&self, scheme: &Scheme<Global, G, S>, q: &Seq, s: &Seq) -> GpuRun
    where
        G: GapModel,
        S: SubstScore,
    {
        self.inner.score(scheme, q, s)
    }

    /// Global alignment with modeled statistics.
    pub fn align<G, S>(
        &self,
        scheme: &Scheme<Global, G, S>,
        q: &Seq,
        s: &Seq,
    ) -> (Alignment, GpuStats)
    where
        G: GapModel,
        S: SubstScore,
    {
        self.inner.align(scheme, q.codes(), s.codes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::prelude::{global, linear, simple};
    use anyseq_seq::genome::GenomeSim;

    #[test]
    fn nvbio_like_correct_but_modeled_slower_than_anyseq_gpu() {
        let mut sim = GenomeSim::new(113);
        let q = sim.generate(4000);
        let s = sim.mutate(&q, 0.07);
        let scheme = global(linear(simple(2, -1), -1));

        let nvbio = NvbioLike::new(Device::titan_v());
        let nv = nvbio.score(&scheme, &q, &s);
        assert_eq!(nv.score, scheme.score(&q, &s));

        let anyseq_gpu = GpuAligner::new(Device::titan_v()).with_tile(256);
        let ours = anyseq_gpu.score(&scheme, &q, &s);
        assert_eq!(ours.score, nv.score);
        assert!(
            nv.stats.cycles > ours.stats.cycles,
            "NVBio-like must be modeled slower: {} vs {}",
            nv.stats.cycles,
            ours.stats.cycles
        );
        // (The deficit shows up as extra synchronization + divergence
        // cycles; warp-step counts alone are not comparable across
        // different block sizes.)
    }
}
