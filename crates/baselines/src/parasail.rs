//! Parasail-like baseline (paper §V).
//!
//! Two documented Parasail properties drive its numbers in the paper:
//!
//! 1. *"Parasail does not explicitly specialize the case of linear gap
//!    penalties which means that it effectively always computes affine
//!    gaps, even if Go = 0"* — this baseline always runs the affine
//!    recurrence (linear requests become `open = 0`),
//! 2. it (like AnySeq's preliminary version) uses a **static wavefront**
//!    along diagonals: "Our preliminary version \[18\] and Parasail rely on
//!    the latter strategy. This also explains the low Parasail
//!    performance in Figure 5 part a)" — tiles run behind a barrier per
//!    anti-diagonal with fixed round-robin assignment,
//!
//! and its tile interior is relaxed along **minor diagonals** (the
//! classic intra-sequence vector layout) rather than in cache-friendly
//! row-major order.

use anyseq_core::alignment::Alignment;
use anyseq_core::hirschberg::{align_with_pass, AlignConfig, HalfPass};
use anyseq_core::kind::{AlignKind, Global, OptRegion};
use anyseq_core::pass::{score_pass, PassOutput};
use anyseq_core::relax::BestCell;
use anyseq_core::scheme::Scheme;
use anyseq_core::score::{Score, NEG_INF};
use anyseq_core::scoring::{AffineGap, GapModel, SubstScore};
use anyseq_seq::Seq;
use anyseq_wavefront::borders::{BorderStore, HStripe, VStripe};
use anyseq_wavefront::grid::TileGrid;
use anyseq_wavefront::pass::finalize;
use anyseq_wavefront::scheduler::run_static;

/// Parasail-like configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParasailLike {
    /// Worker threads.
    pub threads: usize,
    /// Tile edge.
    pub tile: usize,
}

impl ParasailLike {
    /// Default configuration.
    pub fn new(threads: usize) -> ParasailLike {
        ParasailLike {
            threads: threads.max(1),
            tile: 512,
        }
    }

    /// Global score. Linear schemes are converted to `open = 0` affine —
    /// the "always affine" behaviour.
    pub fn score<G, S>(&self, scheme: &Scheme<Global, G, S>, q: &Seq, s: &Seq) -> Score
    where
        G: GapModel,
        S: SubstScore,
    {
        let aff = AffineGap {
            open: scheme.gap().open(),
            extend: scheme.gap().extend(),
        };
        self.pass_impl::<Global, S>(&aff, scheme.subst(), q.codes(), s.codes(), aff.open)
            .score
    }

    /// Global alignment via Hirschberg over the static-wavefront passes.
    pub fn align<G, S>(&self, scheme: &Scheme<Global, G, S>, q: &Seq, s: &Seq) -> Alignment
    where
        G: GapModel,
        S: SubstScore,
    {
        let aff = AffineGap {
            open: scheme.gap().open(),
            extend: scheme.gap().extend(),
        };
        align_with_pass::<Global, AffineGap, S, _>(
            self,
            &aff,
            scheme.subst(),
            q.codes(),
            s.codes(),
            &AlignConfig::default(),
        )
    }

    fn pass_impl<K, S>(
        &self,
        gap: &AffineGap,
        subst: &S,
        q: &[u8],
        s: &[u8],
        tb: Score,
    ) -> PassOutput
    where
        K: AlignKind,
        S: SubstScore,
    {
        let n = q.len();
        let m = s.len();
        if n == 0 || m == 0 || n * m < 1 << 22 || self.threads == 1 {
            return score_pass::<K, AffineGap, S>(gap, subst, q, s, tb);
        }
        let grid = TileGrid::new(n, m, self.tile);
        let borders = BorderStore::init::<K, AffineGap>(&grid, gap, tb);

        run_static(
            &grid,
            self.threads,
            || {
                (
                    HStripe::default(),
                    VStripe::default(),
                    DiagScratch::default(),
                )
            },
            |(top, left, scratch), tiles| {
                for &t in tiles {
                    let (i0, th) = grid.rows(t.ti);
                    let (j0, tw) = grid.cols(t.tj);
                    {
                        let mut slot = borders.col[t.tj as usize].lock();
                        std::mem::swap(&mut top.h, &mut slot.h);
                        std::mem::swap(&mut top.e, &mut slot.e);
                    }
                    {
                        let mut slot = borders.row[t.ti as usize].lock();
                        std::mem::swap(&mut left.h, &mut slot.h);
                        std::mem::swap(&mut left.f, &mut slot.f);
                    }
                    diag_tile_kernel(
                        gap,
                        subst,
                        &q[i0 - 1..i0 - 1 + th],
                        &s[j0 - 1..j0 - 1 + tw],
                        top,
                        left,
                        scratch,
                    );
                    {
                        let mut slot = borders.col[t.tj as usize].lock();
                        std::mem::swap(&mut slot.h, &mut top.h);
                        std::mem::swap(&mut slot.e, &mut top.e);
                    }
                    {
                        let mut slot = borders.row[t.ti as usize].lock();
                        std::mem::swap(&mut slot.h, &mut left.h);
                        std::mem::swap(&mut slot.f, &mut left.f);
                    }
                }
            },
        );

        let (last_h, last_e) = borders.assemble_last_rows(&grid);
        finalize::<K, AffineGap>(gap, BestCell::empty(), n, m, tb, &last_h, last_e)
    }
}

impl<S: SubstScore> HalfPass<AffineGap, S> for ParasailLike {
    fn pass<K: AlignKind>(
        &self,
        gap: &AffineGap,
        subst: &S,
        q: &[u8],
        s: &[u8],
        tb: Score,
    ) -> PassOutput {
        if matches!(K::OPT, OptRegion::Corner) {
            self.pass_impl::<K, S>(gap, subst, q, s, tb)
        } else {
            score_pass::<K, AffineGap, S>(gap, subst, q, s, tb)
        }
    }
}

/// Per-worker scratch for the diagonal kernel.
#[derive(Default)]
struct DiagScratch {
    a_h: Vec<Score>,
    b_h: Vec<Score>,
    a_e: Vec<Score>,
    f: Vec<Score>,
}

/// Relaxes a tile along minor diagonals, updating the stripes in place
/// (same border contract as `relax_tile`, different iteration order —
/// the strided accesses and shuffle-like data movement make it measurably
/// slower per cell, which is the historical cost of the layout).
fn diag_tile_kernel<S: SubstScore>(
    gap: &AffineGap,
    subst: &S,
    q_tile: &[u8],
    s_tile: &[u8],
    top: &mut HStripe,
    left: &mut VStripe,
    scratch: &mut DiagScratch,
) {
    let h = q_tile.len();
    let w = s_tile.len();
    let ext = gap.extend;
    let open = gap.open;

    scratch.a_h.clear();
    scratch.a_h.resize(h, 0);
    scratch.b_h.clear();
    scratch.b_h.resize(h, 0);
    scratch.a_e.clear();
    scratch.a_e.resize(h, NEG_INF);
    scratch.f.clear();
    scratch.f.resize(h, NEG_INF);
    for r in 0..h {
        scratch.a_h[r] = left.h[r];
        scratch.f[r] = left.f[r];
    }
    let mut diag0 = top.h[0];
    let bottom_left_in = left.h[h - 1];

    for d in 0..(h + w - 1) {
        let r_lo = d.saturating_sub(w - 1);
        let r_hi = d.min(h - 1);
        for r in (r_lo..=r_hi).rev() {
            let c = d - r;
            let (up_h, diag_h, up_e) = if r == 0 {
                (top.h[c + 1], diag0, top.e[c])
            } else {
                (scratch.a_h[r - 1], scratch.b_h[r - 1], scratch.a_e[r - 1])
            };
            let e = (up_e + ext).max(up_h + open + ext);
            let f = (scratch.f[r] + ext).max(scratch.a_h[r] + open + ext);
            let mut hv = diag_h + subst.score(q_tile[r], s_tile[c]);
            if e > hv {
                hv = e;
            }
            if f > hv {
                hv = f;
            }
            scratch.b_h[r] = scratch.a_h[r];
            scratch.a_h[r] = hv;
            scratch.a_e[r] = e;
            scratch.f[r] = f;
            if r == h - 1 {
                top.h[c + 1] = hv;
                top.e[c] = e;
            }
            if c == w - 1 {
                left.h[r] = hv;
                left.f[r] = f;
            }
        }
        if r_lo == 0 {
            diag0 = top.h[d + 1];
        }
    }
    top.h[0] = bottom_left_in;
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyseq_core::prelude::{affine, global, linear, simple};
    use anyseq_seq::genome::GenomeSim;

    #[test]
    fn parasail_like_score_matches_affine_reference() {
        let mut sim = GenomeSim::new(101);
        let q = sim.generate(3000);
        let s = sim.mutate(&q, 0.1);
        let scheme = global(affine(simple(2, -1), -2, -1));
        let mut b = ParasailLike::new(5);
        b.tile = 100;
        let got = b.pass_impl::<Global, _>(
            &AffineGap {
                open: -2,
                extend: -1,
            },
            scheme.subst(),
            q.codes(),
            s.codes(),
            -2,
        );
        assert_eq!(got.score, scheme.score(&q, &s));
    }

    #[test]
    fn parasail_like_linear_request_equals_open_zero_affine() {
        // The always-affine behaviour is score-neutral for open = 0.
        let mut sim = GenomeSim::new(103);
        let q = sim.generate(1500);
        let s = sim.mutate(&q, 0.08);
        let lin = global(linear(simple(2, -1), -1));
        let b = ParasailLike::new(2);
        assert_eq!(b.score(&lin, &q, &s), lin.score(&q, &s));
    }

    #[test]
    fn parasail_like_align_valid() {
        let mut sim = GenomeSim::new(107);
        let q = sim.generate(2000);
        let s = sim.mutate(&q, 0.12);
        let scheme = global(affine(simple(2, -1), -3, -1));
        let aln = ParasailLike::new(3).align(&scheme, &q, &s);
        assert_eq!(aln.score, scheme.score(&q, &s));
        aln.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
            .unwrap();
    }

    #[test]
    fn diag_kernel_bit_exact_vs_row_major() {
        use anyseq_core::pass::{init_left_f, init_left_h, init_top_e, init_top_h};
        use anyseq_core::tile::{relax_tile, NoSink, TileIn, TileOut};
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let mut sim = GenomeSim::new(109);
        let q = sim.generate(77);
        let s = sim.generate(53);
        let (n, m) = (q.len(), s.len());
        let top_h = init_top_h::<Global, _>(&gap, m);
        let top_e = init_top_e::<Global, _>(&gap, m);
        let left_h = init_left_h::<Global, _>(&gap, n, gap.open);
        let left_f = init_left_f::<AffineGap>(n);
        let mut out = TileOut::new();
        relax_tile::<Global, _, _, _>(
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            (1, 1),
            (n, m),
            TileIn {
                top_h: &top_h,
                top_e: &top_e,
                left_h: &left_h,
                left_f: &left_f,
            },
            &mut out,
            &mut NoSink,
        );
        let mut top = HStripe { h: top_h, e: top_e };
        let mut left = VStripe {
            h: left_h,
            f: left_f,
        };
        let mut scratch = DiagScratch::default();
        diag_tile_kernel(
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            &mut top,
            &mut left,
            &mut scratch,
        );
        assert_eq!(top.h, out.bot_h);
        assert_eq!(top.e, out.bot_e);
        assert_eq!(left.h, out.right_h);
        assert_eq!(left.f, out.right_f);
    }
}
