//! Substitution functions and gap models — the compile-time scoring
//! parameters of the scheme (paper §III, "scoring scheme").
//!
//! In AnySeq these are *function values* handed to higher-order functions
//! and removed by partial evaluation (`simple_subst_scoring(2,-1)` returns
//! a lambda that the evaluator folds into the relaxation). The Rust analog
//! is a trait implemented by zero-cost value types: `relax::<K, G, S>` is
//! monomorphized per `(G, S)` pair, so e.g. a [`LinearGap`] scheme compiles
//! to code with **no** E/F matrix traffic at all — the same specialization
//! the paper gets from PE (`G::AFFINE` is a `const`, the dead branch is
//! eliminated at compile time).

use crate::score::Score;
use anyseq_seq::alphabet::ALPHABET_SIZE;

/// A substitution function σ over base-code pairs.
pub trait SubstScore: Copy + Send + Sync + 'static {
    /// Score of aligning query code `q` against subject code `s`.
    fn score(&self, q: u8, s: u8) -> Score;

    /// Largest value σ can take (used for SIMD range analysis, §IV-A).
    fn max_score(&self) -> Score;

    /// Smallest value σ can take.
    fn min_score(&self) -> Score;
}

/// Match/mismatch scoring (paper: `simple_subst_scoring(2, -1)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimpleSubst {
    /// Score when the bases are equal.
    pub matches: Score,
    /// Score when the bases differ.
    pub mismatch: Score,
}

impl SubstScore for SimpleSubst {
    #[inline(always)]
    fn score(&self, q: u8, s: u8) -> Score {
        if q == s {
            self.matches
        } else {
            self.mismatch
        }
    }

    fn max_score(&self) -> Score {
        self.matches.max(self.mismatch)
    }

    fn min_score(&self) -> Score {
        self.matches.min(self.mismatch)
    }
}

/// Substitution-matrix scoring: σ read from a dense lookup table
/// (paper: "a substitution function that reads scores from a lookup table").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixSubst {
    /// `table[q][s]` is σ(q, s).
    pub table: [[Score; ALPHABET_SIZE]; ALPHABET_SIZE],
}

impl MatrixSubst {
    /// Builds a matrix equivalent to [`SimpleSubst`] with `N` treated as a
    /// wildcard scoring `n_score` against everything (a common DNA policy).
    pub fn dna(matches: Score, mismatch: Score, n_score: Score) -> MatrixSubst {
        let mut table = [[mismatch; ALPHABET_SIZE]; ALPHABET_SIZE];
        for (q, row) in table.iter_mut().enumerate() {
            for (s, cell) in row.iter_mut().enumerate() {
                if q == 4 || s == 4 {
                    *cell = n_score;
                } else if q == s {
                    *cell = matches;
                }
            }
        }
        MatrixSubst { table }
    }
}

impl SubstScore for MatrixSubst {
    #[inline(always)]
    fn score(&self, q: u8, s: u8) -> Score {
        self.table[q as usize][s as usize]
    }

    fn max_score(&self) -> Score {
        self.table.iter().flatten().copied().max().unwrap()
    }

    fn min_score(&self) -> Score {
        self.table.iter().flatten().copied().min().unwrap()
    }
}

/// A gap penalty model. Costs are expressed as (non-positive) *scores*:
/// a gap of length `k ≥ 1` contributes `open() + k · extend()`.
///
/// The paper's linear model `g` is `open() = 0, extend() = −g`; the affine
/// model `Go + k·Ge` is `open() = −Go, extend() = −Ge` (sign-flipped into
/// score space).
pub trait GapModel: Copy + Send + Sync + 'static {
    /// `true` for affine models: the engines then maintain the auxiliary
    /// E/F matrices of Equations (4)–(5). For `false` the E/F code paths
    /// are removed at compile time (monomorphization = partial evaluation).
    const AFFINE: bool;

    /// One-time score contribution for opening a gap (≤ 0).
    fn open(&self) -> Score;

    /// Per-base score contribution of a gap (≤ 0, usually < 0).
    fn extend(&self) -> Score;

    /// Total score of a gap of length `k` (0 for `k == 0`).
    #[inline(always)]
    fn gap(&self, k: usize) -> Score {
        if k == 0 {
            0
        } else {
            self.open() + (k as Score) * self.extend()
        }
    }
}

/// Linear gap penalties: every gap base costs `gap` (Equation (2)–(3)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearGap {
    /// Per-base gap score (≤ 0).
    pub gap: Score,
}

impl GapModel for LinearGap {
    const AFFINE: bool = false;

    #[inline(always)]
    fn open(&self) -> Score {
        0
    }

    #[inline(always)]
    fn extend(&self) -> Score {
        self.gap
    }
}

/// Affine gap penalties (Gotoh; Equations (4)–(5)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineGap {
    /// Gap-open score (≤ 0); the paper's `−Go`.
    pub open: Score,
    /// Gap-extension score per base (≤ 0); the paper's `−Ge`.
    pub extend: Score,
}

impl GapModel for AffineGap {
    const AFFINE: bool = true;

    #[inline(always)]
    fn open(&self) -> Score {
        self.open
    }

    #[inline(always)]
    fn extend(&self) -> Score {
        self.extend
    }
}

/// A complete scoring scheme: substitution function + gap model
/// (paper: `linear_gap_scoring(simple_subst_scoring(2,-1), -1)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring<G: GapModel, S: SubstScore> {
    /// Gap model.
    pub gap: G,
    /// Substitution function.
    pub subst: S,
}

/// Builds a [`SimpleSubst`] (paper's `simple_subst_scoring`).
pub fn simple(matches: Score, mismatch: Score) -> SimpleSubst {
    SimpleSubst { matches, mismatch }
}

/// Combines a substitution function with linear gap penalties
/// (paper's `linear_gap_scoring`). `gap` must be ≤ 0.
pub fn linear<S: SubstScore>(subst: S, gap: Score) -> Scoring<LinearGap, S> {
    assert!(gap <= 0, "gap score must be non-positive, got {gap}");
    Scoring {
        gap: LinearGap { gap },
        subst,
    }
}

/// Combines a substitution function with affine gap penalties.
/// Both `open` and `extend` must be ≤ 0.
pub fn affine<S: SubstScore>(subst: S, open: Score, extend: Score) -> Scoring<AffineGap, S> {
    assert!(open <= 0, "gap open score must be non-positive, got {open}");
    assert!(
        extend <= 0,
        "gap extend score must be non-positive, got {extend}"
    );
    Scoring {
        gap: AffineGap { open, extend },
        subst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_subst_scores() {
        let s = simple(2, -1);
        assert_eq!(s.score(0, 0), 2);
        assert_eq!(s.score(0, 3), -1);
        assert_eq!(s.max_score(), 2);
        assert_eq!(s.min_score(), -1);
    }

    #[test]
    fn matrix_subst_matches_simple_on_acgt() {
        let m = MatrixSubst::dna(2, -1, -1);
        let s = simple(2, -1);
        for q in 0..4u8 {
            for t in 0..4u8 {
                assert_eq!(m.score(q, t), s.score(q, t));
            }
        }
        assert_eq!(m.score(4, 0), -1);
        assert_eq!(m.score(2, 4), -1);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn linear_gap_costs() {
        let g = LinearGap { gap: -1 };
        assert_eq!(g.gap(0), 0);
        assert_eq!(g.gap(1), -1);
        assert_eq!(g.gap(5), -5);
        assert!(!LinearGap::AFFINE);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn affine_gap_costs() {
        let g = AffineGap {
            open: -2,
            extend: -1,
        };
        assert_eq!(g.gap(0), 0);
        assert_eq!(g.gap(1), -3);
        assert_eq!(g.gap(4), -6);
        assert!(AffineGap::AFFINE);
    }

    #[test]
    fn affine_with_zero_open_equals_linear() {
        let a = AffineGap {
            open: 0,
            extend: -3,
        };
        let l = LinearGap { gap: -3 };
        for k in 0..10 {
            assert_eq!(a.gap(k), l.gap(k));
        }
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn positive_gap_rejected() {
        let _ = linear(simple(2, -1), 1);
    }
}
