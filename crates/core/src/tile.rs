//! The tile kernel: relaxes a rectangular DP submatrix given its boundary
//! stripes — the computational primitive shared by *every* execution
//! backend (scalar pass, wavefront tiles, SIMD blocks, GPU-sim stripes,
//! FPGA-sim PE array all reproduce this contract).
//!
//! # Border protocol (paper Fig. 2)
//!
//! A tile covers cells `(i, j)` with `i0 ≤ i ≤ i1`, `j0 ≤ j ≤ j1`
//! (1-based), height `h = i1−i0+1` and width `w = j1−j0+1`. It consumes:
//!
//! * `top_h[k] = H(i0−1, j0−1+k)` for `k = 0..=w` — note the *corner*
//!   `H(i0−1, j0−1)` rides along at index 0, so a diagonal-neighbour
//!   handoff is never needed,
//! * `top_e[c] = E(i0−1, j0+c)` for `c = 0..w` (affine models only),
//! * `left_h[r] = H(i0+r, j0−1)` and `left_f[r] = F(i0+r, j0−1)` for
//!   `r = 0..h`,
//!
//! and produces the symmetric bottom/right stripes for its neighbours.
//! Only these `O(h + w)` stripes are ever stored (paper Fig. 1, right) —
//! the interior cells live in one rolling row, the "intra-tile cyclic
//! buffer" of §IV-A.
//!
//! `bot_h[0]` (the next row's corner) equals `left_h[h−1]`; the in-place
//! rolling-row update below produces it without extra work.

use crate::kind::{AlignKind, OptRegion};
use crate::relax::{relax, BestCell, Prev};
use crate::score::Score;
use crate::scoring::{GapModel, SubstScore};

/// Per-cell observer, compiled out when inactive (paper: swap the `Scores`
/// accessor's `update` member "for a different (more efficient) one at
/// compile time").
pub trait CellSink {
    /// Whether `record` calls should be materialized; when `false` the
    /// predecessor computation in [`relax`] is also eliminated.
    const ACTIVE: bool;

    /// Observes the relaxed cell at tile-local coordinates
    /// (`r`, `c` both 0-based), with its predecessor byte.
    fn record(&mut self, r: usize, c: usize, pred: u8);
}

/// The do-nothing sink used by all score-only engines.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSink;

impl CellSink for NoSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _r: usize, _c: usize, _pred: u8) {}
}

/// A sink recording predecessor bytes into a dense row-major matrix
/// (used by the full-matrix traceback engine).
pub struct PredSink {
    /// Row-major `h × w` predecessor bytes.
    pub data: Vec<u8>,
    width: usize,
}

impl PredSink {
    /// Allocates storage for an `h × w` tile.
    pub fn new(h: usize, w: usize) -> PredSink {
        PredSink {
            data: vec![0u8; h * w],
            width: w,
        }
    }

    /// The predecessor byte at tile-local `(r, c)`.
    #[inline(always)]
    pub fn at(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.width + c]
    }
}

impl CellSink for PredSink {
    const ACTIVE: bool = true;

    #[inline(always)]
    fn record(&mut self, r: usize, c: usize, pred: u8) {
        self.data[r * self.width + c] = pred;
    }
}

/// Input boundary stripes of a tile (see module docs for the layout).
#[derive(Debug, Clone, Copy)]
pub struct TileIn<'a> {
    /// `H(i0−1, j0−1..=j1)`, length `w + 1`.
    pub top_h: &'a [Score],
    /// `E(i0−1, j0..=j1)`, length `w`; may be empty for linear gap models.
    pub top_e: &'a [Score],
    /// `H(i0..=i1, j0−1)`, length `h`.
    pub left_h: &'a [Score],
    /// `F(i0..=i1, j0−1)`, length `h`; may be empty for linear gap models.
    pub left_f: &'a [Score],
}

/// Output boundary stripes of a tile, plus the tracked optimum.
#[derive(Debug, Clone, Default)]
pub struct TileOut {
    /// `H(i1, j0−1..=j1)`, length `w + 1`.
    pub bot_h: Vec<Score>,
    /// `E(i1, j0..=j1)`, length `w` (empty for linear gap models).
    pub bot_e: Vec<Score>,
    /// `H(i0..=i1, j1)`, length `h`.
    pub right_h: Vec<Score>,
    /// `F(i0..=i1, j1)`, length `h` (empty for linear gap models).
    pub right_f: Vec<Score>,
    /// Best cell seen (only meaningful for non-global kinds).
    pub best: BestCell,
}

impl TileOut {
    /// A fresh, empty output buffer (the kernel resizes as needed).
    pub fn new() -> TileOut {
        TileOut {
            bot_h: Vec::new(),
            bot_e: Vec::new(),
            right_h: Vec::new(),
            right_f: Vec::new(),
            best: BestCell::empty(),
        }
    }
}

/// Relaxes one tile.
///
/// * `q_tile` / `s_tile`: base codes of the rows/columns this tile covers.
/// * `origin = (i0, j0)`: 1-based coordinates of the tile's first cell.
/// * `full_dims = (n, m)`: dimensions of the whole DP matrix — used only to
///   detect whether this tile touches the last row/column for semi-global
///   optimum tracking.
///
/// The kind `K`, gap model `G`, substitution `S` and sink are all
/// compile-time parameters: each combination monomorphizes into a
/// dedicated loop with dead code paths removed — the Rust rendition of the
/// paper's partially-evaluated algorithm variants.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
pub fn relax_tile<K, G, S, Sink>(
    gap: &G,
    subst: &S,
    q_tile: &[u8],
    s_tile: &[u8],
    origin: (usize, usize),
    full_dims: (usize, usize),
    input: TileIn<'_>,
    out: &mut TileOut,
    sink: &mut Sink,
) where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
    Sink: CellSink,
{
    let h = q_tile.len();
    let w = s_tile.len();
    assert!(h > 0 && w > 0, "tiles must be non-empty ({h}×{w})");
    assert_eq!(input.top_h.len(), w + 1, "top_h must cover w+1 columns");
    assert_eq!(input.left_h.len(), h, "left_h must cover h rows");
    if G::AFFINE {
        assert_eq!(input.top_e.len(), w, "top_e must cover w columns");
        assert_eq!(input.left_f.len(), h, "left_f must cover h rows");
    }
    let (i0, j0) = origin;
    let (n, m) = full_dims;

    // Rolling row buffers: `hrow[k]` holds H of the frontier — positions
    // left of the cursor are from the current row, positions right of it
    // from the previous row (the paper's cyclic buffer, Fig. 1 right).
    out.bot_h.clear();
    out.bot_h.extend_from_slice(input.top_h);
    out.bot_e.clear();
    if G::AFFINE {
        out.bot_e.extend_from_slice(input.top_e);
    }
    out.right_h.clear();
    out.right_h.resize(h, 0);
    out.right_f.clear();
    if G::AFFINE {
        out.right_f.resize(h, 0);
    }
    out.best = BestCell::empty();

    let touches_bottom = i0 + h - 1 == n;
    let touches_right = j0 + w - 1 == m;
    let track_anywhere = matches!(K::OPT, OptRegion::Anywhere);
    let track_border = matches!(K::OPT, OptRegion::Border);

    let hrow = &mut out.bot_h[..];
    let erow = &mut out.bot_e[..];

    for r in 0..h {
        let qc = q_tile[r];
        let mut diag = hrow[0];
        hrow[0] = input.left_h[r];
        let mut f = if G::AFFINE {
            input.left_f[r]
        } else {
            crate::score::NEG_INF // never read by the linear specialization
        };
        let mut left = hrow[0];
        for c in 0..w {
            let up_h = hrow[c + 1];
            let up_e = if G::AFFINE { erow[c] } else { 0 };
            let next = relax::<K, G, S, false>(
                gap,
                subst,
                Prev {
                    diag_h: diag,
                    up_h,
                    up_e,
                    left_h: left,
                    left_f: f,
                },
                qc,
                s_tile[c],
            );
            // When the sink is active we need the predecessor byte; rerun
            // relax with WITH_PRED=true. Monomorphization keeps exactly one
            // of the two calls per instantiation.
            let next = if Sink::ACTIVE {
                relax::<K, G, S, true>(
                    gap,
                    subst,
                    Prev {
                        diag_h: diag,
                        up_h,
                        up_e,
                        left_h: left,
                        left_f: f,
                    },
                    qc,
                    s_tile[c],
                )
            } else {
                next
            };
            if Sink::ACTIVE {
                sink.record(r, c, next.pred);
            }
            diag = up_h;
            left = next.h;
            hrow[c + 1] = next.h;
            if G::AFFINE {
                erow[c] = next.e;
            }
            f = next.f;
            if track_anywhere {
                out.best.update(next.h, i0 + r, j0 + c);
            } else if track_border {
                let on_last_row = touches_bottom && r == h - 1;
                let on_last_col = touches_right && c == w - 1;
                if on_last_row || on_last_col {
                    out.best.update(next.h, i0 + r, j0 + c);
                }
            }
        }
        out.right_h[r] = hrow[w];
        if G::AFFINE {
            out.right_f[r] = f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{Global, Local};
    use crate::score::NEG_INF;
    use crate::scoring::{simple, AffineGap, LinearGap};

    /// Relax a 2×2 global linear tile by hand and compare.
    #[test]
    fn two_by_two_global_linear_matches_hand_computation() {
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        // q = AC, s = AG; init borders for a matrix starting at (1,1):
        // H(0,·) = 0,-1,-2 ; H(·,0) = -1,-2
        let top_h = [0, -1, -2];
        let left_h = [-1, -2];
        let mut out = TileOut::new();
        relax_tile::<Global, _, _, _>(
            &gap,
            &subst,
            &[0u8, 1], // AC
            &[0u8, 2], // AG
            (1, 1),
            (2, 2),
            TileIn {
                top_h: &top_h,
                top_e: &[],
                left_h: &left_h,
                left_f: &[],
            },
            &mut out,
            &mut NoSink,
        );
        // Hand DP: H(1,1)=2 (A=A), H(1,2)=max(-1-1, 2-1, -2-1)=1,
        // H(2,1)=max(-1-1, -2-1, 2-1)=1, H(2,2)=max(2-1, 1-1, 1-1)=1.
        assert_eq!(out.bot_h, vec![-2, 1, 1]);
        assert_eq!(out.right_h, vec![1, 1]);
    }

    #[test]
    fn corner_handoff_bot_h0_equals_last_left_h() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(1, -1);
        let top_h = [0, -2, -4, -6];
        let left_h = [-2, -4, -6];
        let mut out = TileOut::new();
        relax_tile::<Global, _, _, _>(
            &gap,
            &subst,
            &[0, 1, 2],
            &[3, 2, 1],
            (1, 1),
            (3, 3),
            TileIn {
                top_h: &top_h,
                top_e: &[],
                left_h: &left_h,
                left_f: &[],
            },
            &mut out,
            &mut NoSink,
        );
        assert_eq!(out.bot_h[0], left_h[2]);
    }

    #[test]
    fn split_tiles_agree_with_single_tile() {
        // Computing one 4×4 tile must equal computing four 2×2 tiles
        // chained through the border protocol.
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let q = [0u8, 1, 2, 3];
        let s = [3u8, 1, 0, 2];
        let n = 4;
        let m = 4;

        // Whole-matrix reference tile.
        let top_h: Vec<Score> = (0..=m).map(|j| Global::h_init(&gap, j)).collect();
        let top_e: Vec<Score> = (1..=m)
            .map(|j| Global::h_init(&gap, j) + gap.open)
            .collect();
        let left_h: Vec<Score> = (1..=n).map(|i| Global::h_init(&gap, i)).collect();
        let left_f: Vec<Score> = vec![NEG_INF; n];
        let mut whole = TileOut::new();
        relax_tile::<Global, _, _, _>(
            &gap,
            &subst,
            &q,
            &s,
            (1, 1),
            (n, m),
            TileIn {
                top_h: &top_h,
                top_e: &top_e,
                left_h: &left_h,
                left_f: &left_f,
            },
            &mut whole,
            &mut NoSink,
        );

        // 2×2 tiling: tiles (0,0), (0,1), (1,0), (1,1).
        let mut outs = [
            vec![TileOut::new(), TileOut::new()],
            vec![TileOut::new(), TileOut::new()],
        ];
        for ti in 0..2 {
            for tj in 0..2 {
                let i0 = ti * 2 + 1;
                let j0 = tj * 2 + 1;
                let tile_top_h: Vec<Score> = if ti == 0 {
                    (j0 - 1..=j0 + 1).map(|j| Global::h_init(&gap, j)).collect()
                } else {
                    outs[ti - 1][tj].bot_h.clone()
                };
                let tile_top_e: Vec<Score> = if ti == 0 {
                    (j0..=j0 + 1)
                        .map(|j| Global::h_init(&gap, j) + gap.open)
                        .collect()
                } else {
                    outs[ti - 1][tj].bot_e.clone()
                };
                let tile_left_h: Vec<Score> = if tj == 0 {
                    (i0..=i0 + 1).map(|i| Global::h_init(&gap, i)).collect()
                } else {
                    outs[ti][tj - 1].right_h.clone()
                };
                let tile_left_f: Vec<Score> = if tj == 0 {
                    vec![NEG_INF; 2]
                } else {
                    outs[ti][tj - 1].right_f.clone()
                };
                let mut out = TileOut::new();
                relax_tile::<Global, _, _, _>(
                    &gap,
                    &subst,
                    &q[ti * 2..ti * 2 + 2],
                    &s[tj * 2..tj * 2 + 2],
                    (i0, j0),
                    (n, m),
                    TileIn {
                        top_h: &tile_top_h,
                        top_e: &tile_top_e,
                        left_h: &tile_left_h,
                        left_f: &tile_left_f,
                    },
                    &mut out,
                    &mut NoSink,
                );
                outs[ti][tj] = out;
            }
        }
        // Final H(n, m) must agree.
        assert_eq!(
            whole.bot_h[m],
            outs[1][1].bot_h.last().copied().unwrap(),
            "tiled and whole-matrix H(n,m) disagree"
        );
        // Bottom stripes of the bottom tiles must match the whole run.
        assert_eq!(&whole.bot_h[2..], &outs[1][1].bot_h[..]);
        assert_eq!(
            &whole.bot_h[..3],
            &{
                let mut v = outs[1][0].bot_h.clone();
                v.truncate(3);
                v
            }[..]
        );
    }

    #[test]
    fn local_best_tracked() {
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let top_h = [0, 0, 0];
        let left_h = [0, 0];
        let mut out = TileOut::new();
        relax_tile::<Local, _, _, _>(
            &gap,
            &subst,
            &[0, 0],
            &[0, 0],
            (1, 1),
            (2, 2),
            TileIn {
                top_h: &top_h,
                top_e: &[],
                left_h: &left_h,
                left_f: &[],
            },
            &mut out,
            &mut NoSink,
        );
        // all-A vs all-A: best is the 2-match diagonal at (2,2).
        assert_eq!(out.best.score, 4);
        assert_eq!((out.best.i, out.best.j), (2, 2));
    }

    #[test]
    fn pred_sink_records_every_cell() {
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let top_h = [0, -1, -2];
        let left_h = [-1, -2];
        let mut out = TileOut::new();
        let mut sink = PredSink::new(2, 2);
        relax_tile::<Global, _, _, _>(
            &gap,
            &subst,
            &[0, 1],
            &[0, 1],
            (1, 1),
            (2, 2),
            TileIn {
                top_h: &top_h,
                top_e: &[],
                left_h: &left_h,
                left_f: &[],
            },
            &mut out,
            &mut sink,
        );
        use crate::relax::pred;
        // Perfect match diagonal: every cell's direction should be DIAG.
        assert_eq!(sink.at(0, 0) & pred::DIR_MASK, pred::DIAG);
        assert_eq!(sink.at(1, 1) & pred::DIR_MASK, pred::DIAG);
    }
}
