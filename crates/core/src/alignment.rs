//! Alignment results: edit operations, CIGAR rendering, validation.
//!
//! The engines report an [`Alignment`]: the optimal score, the aligned
//! region of each sequence, and the operation sequence across that region.
//! [`Alignment::validate`] recomputes the score from the operations — the
//! workspace's strongest invariant check, used pervasively by tests: an
//! engine cannot "accidentally" report a score its traceback does not
//! realize.

use crate::kind::AlignKind;
use crate::score::Score;
use crate::scoring::{GapModel, SubstScore};
use anyseq_seq::Seq;
use std::fmt;

/// One alignment column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Both bases consumed, bases equal (CIGAR `=`).
    Match,
    /// Both bases consumed, bases differ (CIGAR `X`).
    Mismatch,
    /// Gap in the subject: consumes a query base (CIGAR `I`; the paper's
    /// `PRED_SKIP_S`).
    GapS,
    /// Gap in the query: consumes a subject base (CIGAR `D`; the paper's
    /// `PRED_SKIP_Q`).
    GapQ,
}

impl AlignOp {
    /// Extended-CIGAR letter for this operation.
    pub fn cigar_char(self) -> char {
        match self {
            AlignOp::Match => '=',
            AlignOp::Mismatch => 'X',
            AlignOp::GapS => 'I',
            AlignOp::GapQ => 'D',
        }
    }

    /// Whether the op consumes a query base.
    #[inline]
    pub fn consumes_q(self) -> bool {
        !matches!(self, AlignOp::GapQ)
    }

    /// Whether the op consumes a subject base.
    #[inline]
    pub fn consumes_s(self) -> bool {
        !matches!(self, AlignOp::GapS)
    }
}

/// A pairwise alignment over `q[q_start..q_end]` × `s[s_start..s_end]`.
///
/// For global alignments the region is everything; for local and
/// semi-global alignments the region excludes the unaligned (local) or
/// free-gap (semi-global) flanks, whose extent is recoverable from the
/// coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// The optimal score the engine reported.
    pub score: Score,
    /// Alignment columns covering exactly the region below.
    pub ops: Vec<AlignOp>,
    /// Query region start (0-based, inclusive).
    pub q_start: usize,
    /// Query region end (0-based, exclusive).
    pub q_end: usize,
    /// Subject region start (0-based, inclusive).
    pub s_start: usize,
    /// Subject region end (0-based, exclusive).
    pub s_end: usize,
}

/// Validation failure description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentError(pub String);

impl fmt::Display for AlignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid alignment: {}", self.0)
    }
}

impl std::error::Error for AlignmentError {}

impl Alignment {
    /// An empty alignment with the given score (used for local alignments
    /// of score 0).
    pub fn empty(score: Score) -> Alignment {
        Alignment {
            score,
            ops: Vec::new(),
            q_start: 0,
            q_end: 0,
            s_start: 0,
            s_end: 0,
        }
    }

    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the alignment has no columns.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Run-length encoded extended CIGAR (`=`, `X`, `I`, `D`),
    /// e.g. `"5=1X2I3="`.
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut iter = self.ops.iter().peekable();
        while let Some(&op) = iter.next() {
            let mut run = 1usize;
            while iter.peek() == Some(&&op) {
                iter.next();
                run += 1;
            }
            out.push_str(&run.to_string());
            out.push(op.cigar_char());
        }
        out
    }

    /// Fraction of columns that are matches (0 for empty alignments).
    pub fn identity(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        let matches = self.ops.iter().filter(|&&op| op == AlignOp::Match).count();
        matches as f64 / self.ops.len() as f64
    }

    /// Renders the aligned region as three ASCII rows: query with gaps,
    /// midline (`|` match, `.` mismatch, space gap), subject with gaps —
    /// the paper's `qAlign`/`sAlign` output strings.
    pub fn render(&self, q: &Seq, s: &Seq) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let mut qa = Vec::with_capacity(self.ops.len());
        let mut mid = Vec::with_capacity(self.ops.len());
        let mut sa = Vec::with_capacity(self.ops.len());
        let mut qi = self.q_start;
        let mut sj = self.s_start;
        const LUT: [u8; 5] = [b'A', b'C', b'G', b'T', b'N'];
        for &op in &self.ops {
            match op {
                AlignOp::Match | AlignOp::Mismatch => {
                    qa.push(LUT[q[qi] as usize]);
                    sa.push(LUT[s[sj] as usize]);
                    mid.push(if op == AlignOp::Match { b'|' } else { b'.' });
                    qi += 1;
                    sj += 1;
                }
                AlignOp::GapS => {
                    qa.push(LUT[q[qi] as usize]);
                    sa.push(b'-');
                    mid.push(b' ');
                    qi += 1;
                }
                AlignOp::GapQ => {
                    qa.push(b'-');
                    sa.push(LUT[s[sj] as usize]);
                    mid.push(b' ');
                    sj += 1;
                }
            }
        }
        (qa, mid, sa)
    }

    /// Recomputes the score of the operation sequence under `gap`/`subst`.
    pub fn recompute_score<G: GapModel, S: SubstScore>(
        &self,
        q: &Seq,
        s: &Seq,
        gap: &G,
        subst: &S,
    ) -> Score {
        let mut score: Score = 0;
        let mut qi = self.q_start;
        let mut sj = self.s_start;
        let mut idx = 0usize;
        while idx < self.ops.len() {
            match self.ops[idx] {
                AlignOp::Match | AlignOp::Mismatch => {
                    score += subst.score(q[qi], s[sj]);
                    qi += 1;
                    sj += 1;
                    idx += 1;
                }
                op @ (AlignOp::GapS | AlignOp::GapQ) => {
                    let mut run = 0usize;
                    while idx < self.ops.len() && self.ops[idx] == op {
                        run += 1;
                        idx += 1;
                    }
                    score += gap.gap(run);
                    if op == AlignOp::GapS {
                        qi += run;
                    } else {
                        sj += run;
                    }
                }
            }
        }
        score
    }

    /// Checks structural and score consistency for kind `K`:
    ///
    /// 1. ops consume exactly the declared regions,
    /// 2. `Match`/`Mismatch` labels agree with the actual bases,
    /// 3. region boundaries satisfy the kind's conventions,
    /// 4. the recomputed score equals `self.score`.
    pub fn validate<K: AlignKind, G: GapModel, S: SubstScore>(
        &self,
        q: &Seq,
        s: &Seq,
        gap: &G,
        subst: &S,
    ) -> Result<(), AlignmentError> {
        let err = |msg: String| Err(AlignmentError(msg));

        if self.q_start > self.q_end || self.q_end > q.len() {
            return err(format!(
                "query region {}..{} out of bounds (len {})",
                self.q_start,
                self.q_end,
                q.len()
            ));
        }
        if self.s_start > self.s_end || self.s_end > s.len() {
            return err(format!(
                "subject region {}..{} out of bounds (len {})",
                self.s_start,
                self.s_end,
                s.len()
            ));
        }

        let q_used: usize = self.ops.iter().filter(|o| o.consumes_q()).count();
        let s_used: usize = self.ops.iter().filter(|o| o.consumes_s()).count();
        if q_used != self.q_end - self.q_start {
            return err(format!(
                "ops consume {q_used} query bases but region spans {}",
                self.q_end - self.q_start
            ));
        }
        if s_used != self.s_end - self.s_start {
            return err(format!(
                "ops consume {s_used} subject bases but region spans {}",
                self.s_end - self.s_start
            ));
        }

        // Match/mismatch labels must agree with the data.
        let mut qi = self.q_start;
        let mut sj = self.s_start;
        for (k, &op) in self.ops.iter().enumerate() {
            match op {
                AlignOp::Match if q[qi] != s[sj] => {
                    return err(format!("op {k} labelled Match but bases differ"));
                }
                AlignOp::Mismatch if q[qi] == s[sj] => {
                    return err(format!("op {k} labelled Mismatch but bases equal"));
                }
                _ => {}
            }
            if op.consumes_q() {
                qi += 1;
            }
            if op.consumes_s() {
                sj += 1;
            }
        }

        // Kind conventions for the region.
        use crate::kind::OptRegion;
        match K::OPT {
            OptRegion::Corner => {
                if self.q_start != 0
                    || self.s_start != 0
                    || self.q_end != q.len()
                    || self.s_end != s.len()
                {
                    return err("global alignment must span both sequences".into());
                }
            }
            OptRegion::Border => {
                if K::FREE_BEGIN {
                    if !self.is_empty() && self.q_start != 0 && self.s_start != 0 {
                        return err(
                            "semi-global alignment must start on a sequence boundary".into()
                        );
                    }
                } else if !self.is_empty() && (self.q_start != 0 || self.s_start != 0) {
                    return err("free-end alignment must start at the origin".into());
                }
                if !self.is_empty() && self.q_end != q.len() && self.s_end != s.len() {
                    return err("border-kind alignment must end on a sequence boundary".into());
                }
            }
            OptRegion::Anywhere => {
                if self.score < 0 {
                    return err(format!("{} score {} is negative", K::NAME, self.score));
                }
                if !K::FREE_BEGIN && (self.q_start != 0 || self.s_start != 0) {
                    return err("extension alignment must start at the origin".into());
                }
            }
        }

        let recomputed = self.recompute_score(q, s, gap, subst);
        if recomputed != self.score {
            return err(format!(
                "reported score {} but operations recompute to {recomputed} (cigar {})",
                self.score,
                self.cigar()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{Global, Local};
    use crate::scoring::{simple, AffineGap, LinearGap};

    fn seq(text: &[u8]) -> Seq {
        Seq::from_ascii(text).unwrap()
    }

    fn manual(
        score: Score,
        ops: Vec<AlignOp>,
        qr: (usize, usize),
        sr: (usize, usize),
    ) -> Alignment {
        Alignment {
            score,
            ops,
            q_start: qr.0,
            q_end: qr.1,
            s_start: sr.0,
            s_end: sr.1,
        }
    }

    #[test]
    fn cigar_run_length_encoding() {
        use AlignOp::*;
        let a = manual(
            0,
            vec![Match, Match, Mismatch, GapS, GapS, Match],
            (0, 5),
            (0, 4),
        );
        assert_eq!(a.cigar(), "2=1X2I1=");
    }

    #[test]
    fn recompute_simple_global() {
        use AlignOp::*;
        let q = seq(b"ACGT");
        let s = seq(b"AGGT");
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let a = manual(5, vec![Match, Mismatch, Match, Match], (0, 4), (0, 4));
        assert_eq!(a.recompute_score(&q, &s, &gap, &subst), 5);
        a.validate::<Global, _, _>(&q, &s, &gap, &subst).unwrap();
    }

    #[test]
    fn recompute_affine_gap_runs() {
        use AlignOp::*;
        let q = seq(b"AACC");
        let s = seq(b"AA");
        let gap = AffineGap {
            open: -3,
            extend: -1,
        };
        let subst = simple(2, -2);
        // AA matched, CC deleted: 4 + (-3 - 2) = -1
        let a = manual(-1, vec![Match, Match, GapS, GapS], (0, 4), (0, 2));
        assert_eq!(a.recompute_score(&q, &s, &gap, &subst), -1);
        a.validate::<Global, _, _>(&q, &s, &gap, &subst).unwrap();
    }

    #[test]
    fn two_separate_gaps_pay_two_opens() {
        use AlignOp::*;
        let q = seq(b"ACA");
        let s = seq(b"AA");
        let gap = AffineGap {
            open: -3,
            extend: -1,
        };
        let subst = simple(2, -2);
        // A= , C del, A=, then an extra subject gap? Construct: = I = then D?
        let a = manual(0, vec![Match, GapS, Match, GapQ], (0, 3), (0, 2));
        // 2 - 4 + 2 - 4 = -4
        assert_eq!(a.recompute_score(&q, &s, &gap, &subst), -4);
    }

    #[test]
    fn validate_rejects_wrong_score() {
        use AlignOp::*;
        let q = seq(b"AC");
        let s = seq(b"AC");
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let a = manual(99, vec![Match, Match], (0, 2), (0, 2));
        assert!(a.validate::<Global, _, _>(&q, &s, &gap, &subst).is_err());
    }

    #[test]
    fn validate_rejects_mislabeled_ops() {
        use AlignOp::*;
        let q = seq(b"AC");
        let s = seq(b"AG");
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let a = manual(4, vec![Match, Match], (0, 2), (0, 2));
        assert!(a.validate::<Global, _, _>(&q, &s, &gap, &subst).is_err());
    }

    #[test]
    fn validate_rejects_region_mismatch() {
        use AlignOp::*;
        let q = seq(b"ACGT");
        let s = seq(b"ACGT");
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let a = manual(4, vec![Match, Match], (0, 4), (0, 4));
        assert!(a.validate::<Global, _, _>(&q, &s, &gap, &subst).is_err());
    }

    #[test]
    fn validate_rejects_negative_local() {
        let q = seq(b"A");
        let s = seq(b"A");
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let a = Alignment::empty(-5);
        assert!(a.validate::<Local, _, _>(&q, &s, &gap, &subst).is_err());
    }

    #[test]
    fn render_shows_gaps_and_midline() {
        use AlignOp::*;
        let q = seq(b"ACG");
        let s = seq(b"AG");
        let a = manual(0, vec![Match, GapS, Match], (0, 3), (0, 2));
        let (qa, mid, sa) = a.render(&q, &s);
        assert_eq!(qa, b"ACG");
        assert_eq!(mid, b"| |");
        assert_eq!(sa, b"A-G");
    }

    #[test]
    fn identity_fraction() {
        use AlignOp::*;
        let a = manual(0, vec![Match, Mismatch, Match, GapQ], (0, 3), (0, 4));
        assert!((a.identity() - 0.5).abs() < 1e-12);
        assert_eq!(Alignment::empty(0).identity(), 0.0);
    }
}
