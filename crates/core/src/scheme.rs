//! The user-facing alignment scheme: kind × scoring, composed exactly as
//! the paper's interface functions compose behaviour-controlling values
//! (§III-C: `global_scheme(linear_gap_scoring(simple_subst_scoring(2,-1),
//! -1))`).

use crate::alignment::Alignment;
use crate::hirschberg::{self, AlignConfig};
use crate::kind::{AlignKind, FreeEnd, Global, Local, SemiGlobal};
use crate::pass::score_pass;
use crate::score::Score;
use crate::scoring::{GapModel, Scoring, SubstScore};
use anyseq_seq::Seq;

/// A fully parameterized alignment scheme.
///
/// All three parameters are types: every distinct combination
/// monomorphizes into dedicated engine code with the unused branches
/// removed — the Rust counterpart of the paper's partially evaluated
/// algorithm variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheme<K: AlignKind, G: GapModel, S: SubstScore> {
    /// The alignment kind (global / local / semi-global / free-end).
    pub kind: K,
    /// Gap model and substitution function.
    pub scoring: Scoring<G, S>,
}

impl<K: AlignKind, G: GapModel, S: SubstScore> Scheme<K, G, S> {
    /// The gap model.
    #[inline]
    pub fn gap(&self) -> &G {
        &self.scoring.gap
    }

    /// The substitution function.
    #[inline]
    pub fn subst(&self) -> &S {
        &self.scoring.subst
    }

    /// Optimal alignment score, linear space, single-threaded
    /// (paper: "score-only computations can be performed in linear
    /// space and quadratic time").
    pub fn score(&self, q: &Seq, s: &Seq) -> Score {
        self.score_with_end(q, s).0
    }

    /// [`Scheme::score`] over borrowed code slices (the zero-copy batch
    /// path: engines hand `PairRef` slices straight through).
    pub fn score_codes(&self, q: &[u8], s: &[u8]) -> Score {
        score_pass::<K, G, S>(self.gap(), self.subst(), q, s, self.gap().open()).score
    }

    /// Optimal score plus the 1-based DP cell where it is attained.
    pub fn score_with_end(&self, q: &Seq, s: &Seq) -> (Score, (usize, usize)) {
        let out = score_pass::<K, G, S>(
            self.gap(),
            self.subst(),
            q.codes(),
            s.codes(),
            self.gap().open(),
        );
        (out.score, out.end)
    }

    /// Optimal alignment with traceback, linear space (Hirschberg /
    /// Myers–Miller), default recursion cutoff.
    pub fn align(&self, q: &Seq, s: &Seq) -> Alignment {
        self.align_with(q, s, &AlignConfig::default())
    }

    /// [`Scheme::align`] over borrowed code slices (the zero-copy batch
    /// path).
    pub fn align_codes(&self, q: &[u8], s: &[u8]) -> Alignment {
        hirschberg::align::<K, G, S>(self.gap(), self.subst(), q, s, &AlignConfig::default())
    }

    /// [`Scheme::align`] with an explicit traceback configuration.
    pub fn align_with(&self, q: &Seq, s: &Seq, cfg: &AlignConfig) -> Alignment {
        hirschberg::align::<K, G, S>(self.gap(), self.subst(), q.codes(), s.codes(), cfg)
    }
}

/// Builds a global (Needleman–Wunsch) scheme.
pub fn global<G: GapModel, S: SubstScore>(scoring: Scoring<G, S>) -> Scheme<Global, G, S> {
    Scheme {
        kind: Global,
        scoring,
    }
}

/// Builds a local (Smith–Waterman) scheme.
pub fn local<G: GapModel, S: SubstScore>(scoring: Scoring<G, S>) -> Scheme<Local, G, S> {
    Scheme {
        kind: Local,
        scoring,
    }
}

/// Builds a semi-global scheme (free end gaps on both ends).
pub fn semiglobal<G: GapModel, S: SubstScore>(scoring: Scoring<G, S>) -> Scheme<SemiGlobal, G, S> {
    Scheme {
        kind: SemiGlobal,
        scoring,
    }
}

/// Builds a free-end (extension-style) scheme: anchored start, free end.
pub fn free_end<G: GapModel, S: SubstScore>(scoring: Scoring<G, S>) -> Scheme<FreeEnd, G, S> {
    Scheme {
        kind: FreeEnd,
        scoring,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{affine, linear, simple};

    fn seq(text: &[u8]) -> Seq {
        Seq::from_ascii(text).unwrap()
    }

    #[test]
    fn paper_interface_composition() {
        // The paper's construct_global_alignment parameterization:
        // global + linear(-1) + simple(2, -1).
        let scheme = global(linear(simple(2, -1), -1));
        let q = seq(b"ACGTACGT");
        let s = seq(b"ACGTTACGT");
        let score = scheme.score(&q, &s);
        let aln = scheme.align(&q, &s);
        assert_eq!(score, aln.score);
        aln.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
            .unwrap();
        assert_eq!(score, 8 * 2 - 1); // 8 matches, one 1-gap
    }

    #[test]
    fn all_four_kinds_run() {
        let q = seq(b"TTACGTACGTTT");
        let s = seq(b"ACGTACG");
        let sc = affine(simple(2, -1), -2, -1);
        let g = global(sc).align(&q, &s);
        let l = local(sc).align(&q, &s);
        let sg = semiglobal(sc).align(&q, &s);
        let fe = free_end(sc).align(&q, &s);
        g.validate::<Global, _, _>(&q, &s, &sc.gap, &sc.subst)
            .unwrap();
        l.validate::<Local, _, _>(&q, &s, &sc.gap, &sc.subst)
            .unwrap();
        sg.validate::<SemiGlobal, _, _>(&q, &s, &sc.gap, &sc.subst)
            .unwrap();
        fe.validate::<FreeEnd, _, _>(&q, &s, &sc.gap, &sc.subst)
            .unwrap();
        // local ≥ semi-global core ≥ global for this containment case
        assert!(l.score >= sg.score);
        assert!(sg.score >= g.score);
    }
}
