//! Alignment kinds: global, local, semi-global (paper §III-A).
//!
//! The kind decides three things (all compile-time constants here, so the
//! monomorphized engines contain no kind dispatch):
//!
//! 1. ν in Equation (1): `0` for local alignments (scores floored at zero),
//!    conceptually −∞ otherwise (the candidate is simply absent),
//! 2. the initialization of row 0 / column 0 of `H`,
//! 3. where the optimum is read: cell `(n, m)` (global), the last row or
//!    column (semi-global), or anywhere (local).

use crate::score::Score;
use crate::scoring::GapModel;

/// Where the optimal score of an alignment kind lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptRegion {
    /// Only cell `(n, m)` — global alignment.
    Corner,
    /// Last row or last column — semi-global alignment.
    Border,
    /// Any cell — local alignment.
    Anywhere,
}

/// Type-level alignment kind.
pub trait AlignKind: Copy + Send + Sync + 'static {
    /// ν = 0 active: cell scores are floored at zero (local alignment).
    const NU_ZERO: bool;
    /// Leading gaps are free: row 0 and column 0 of `H` initialize to 0.
    const FREE_BEGIN: bool;
    /// Where the optimum is located.
    const OPT: OptRegion;
    /// Human-readable name for diagnostics.
    const NAME: &'static str;

    /// `H(0, j)` (or symmetrically `H(i, 0)`) for offset `k ≥ 0`.
    #[inline(always)]
    fn h_init<G: GapModel>(gap: &G, k: usize) -> Score {
        if Self::FREE_BEGIN {
            0
        } else {
            gap.gap(k)
        }
    }
}

/// Global (Needleman–Wunsch) alignment: both sequences end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Global;

impl AlignKind for Global {
    const NU_ZERO: bool = false;
    const FREE_BEGIN: bool = false;
    const OPT: OptRegion = OptRegion::Corner;
    const NAME: &'static str = "global";
}

/// Local (Smith–Waterman) alignment: best-scoring subsequence pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Local;

impl AlignKind for Local {
    const NU_ZERO: bool = true;
    const FREE_BEGIN: bool = true;
    const OPT: OptRegion = OptRegion::Anywhere;
    const NAME: &'static str = "local";
}

/// Semi-global alignment: gaps at the beginning and end are free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SemiGlobal;

impl AlignKind for SemiGlobal {
    const NU_ZERO: bool = false;
    const FREE_BEGIN: bool = true;
    const OPT: OptRegion = OptRegion::Border;
    const NAME: &'static str = "semi-global";
}

/// Free-end alignment: the start is anchored at the origin, gaps at the
/// end are free (the optimum lies on the last row or column).
///
/// This "extension" kind is what read extension uses, and it is also the
/// exact mirror problem of the semi-global traceback: reversing a
/// semi-global alignment ending at `(iₑ, jₑ)` yields a free-end problem
/// over the reversed prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FreeEnd;

impl AlignKind for FreeEnd {
    const NU_ZERO: bool = false;
    const FREE_BEGIN: bool = false;
    const OPT: OptRegion = OptRegion::Border;
    const NAME: &'static str = "free-end";
}

/// Extension alignment: the start is anchored at the origin, the end is
/// free *anywhere* (best prefix-pair alignment, no score floor).
///
/// Reversing an optimal local alignment that ends at `(iₑ, jₑ)` yields an
/// extension problem over the reversed prefixes — this is how the local
/// traceback locates its start cell in linear space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extension;

impl AlignKind for Extension {
    const NU_ZERO: bool = false;
    const FREE_BEGIN: bool = false;
    const OPT: OptRegion = OptRegion::Anywhere;
    const NAME: &'static str = "extension";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{AffineGap, LinearGap};

    #[test]
    fn global_inits_with_gap_costs() {
        let g = LinearGap { gap: -2 };
        assert_eq!(Global::h_init(&g, 0), 0);
        assert_eq!(Global::h_init(&g, 3), -6);
        let a = AffineGap {
            open: -2,
            extend: -1,
        };
        assert_eq!(Global::h_init(&a, 0), 0);
        assert_eq!(Global::h_init(&a, 3), -5);
    }

    #[test]
    fn free_begin_kinds_init_zero() {
        let a = AffineGap {
            open: -2,
            extend: -1,
        };
        for k in 0..5 {
            assert_eq!(Local::h_init(&a, k), 0);
            assert_eq!(SemiGlobal::h_init(&a, k), 0);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn kind_constants() {
        assert!(Local::NU_ZERO && Local::FREE_BEGIN);
        assert!(!Global::NU_ZERO && !Global::FREE_BEGIN);
        assert!(!SemiGlobal::NU_ZERO && SemiGlobal::FREE_BEGIN);
        assert_eq!(Global::OPT, OptRegion::Corner);
        assert_eq!(SemiGlobal::OPT, OptRegion::Border);
        assert_eq!(Local::OPT, OptRegion::Anywhere);
    }
}
