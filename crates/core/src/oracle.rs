//! Deliberately naive reference implementation — the testing oracle.
//!
//! This module re-derives the optimum **directly from the paper's
//! equations** (1)–(5) with fully materialized `H`/`E`/`F` matrices in
//! `i64`, sharing *no* code with the optimized engines (no tile kernel, no
//! rolling rows, no relax function). Every engine in the workspace is
//! cross-checked against it; a bug would have to be made twice, in two
//! different formulations, to slip through.
//!
//! Only use on small inputs: memory is `3·(n+1)·(m+1)` `i64`s.

use crate::kind::{AlignKind, OptRegion};
use crate::relax::BestCell;
use crate::score::Score;
use crate::scoring::{GapModel, SubstScore};

const INF: i64 = i64::MIN / 4;

/// Optimal score and its 1-based end cell for kind `K`, computed naively.
///
/// Conventions (identical to the engines'): local optima of value ≤ 0
/// report `(0, (0,0))`; border kinds consider the border initialization
/// cells `(0, m)` / `(n, 0)` as endpoints; extension kinds consider the
/// empty prefix; ties break toward smaller `i`, then smaller `j`.
pub fn oracle_score<K, G, S>(gap: &G, subst: &S, q: &[u8], s: &[u8]) -> (Score, (usize, usize))
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
{
    let n = q.len();
    let m = s.len();
    let open = gap.open() as i64;
    let ext = gap.extend() as i64;
    let width = m + 1;
    let idx = |i: usize, j: usize| i * width + j;

    let mut h = vec![INF; (n + 1) * (m + 1)];
    let mut e = vec![INF; (n + 1) * (m + 1)];
    let mut f = vec![INF; (n + 1) * (m + 1)];

    // Initialization exactly as the paper lists it (§III-A), with the
    // never-read entries left at −∞.
    h[idx(0, 0)] = 0;
    for j in 1..=m {
        h[idx(0, j)] = if K::FREE_BEGIN {
            0
        } else {
            open + j as i64 * ext
        };
        e[idx(0, j)] = INF;
        f[idx(0, j)] = open + j as i64 * ext;
    }
    for i in 1..=n {
        h[idx(i, 0)] = if K::FREE_BEGIN {
            0
        } else {
            open + i as i64 * ext
        };
        e[idx(i, 0)] = open + i as i64 * ext;
        f[idx(i, 0)] = INF;
    }

    for i in 1..=n {
        for j in 1..=m {
            // Equations (4)/(5); for linear models open() == 0 makes this
            // identical to Equations (2)/(3) because H dominates E and F.
            e[idx(i, j)] = (e[idx(i - 1, j)] + ext).max(h[idx(i - 1, j)] + open + ext);
            f[idx(i, j)] = (f[idx(i, j - 1)] + ext).max(h[idx(i, j - 1)] + open + ext);
            // Equation (1).
            let mut best = h[idx(i - 1, j - 1)] + subst.score(q[i - 1], s[j - 1]) as i64;
            best = best.max(e[idx(i, j)]).max(f[idx(i, j)]);
            if K::NU_ZERO {
                best = best.max(0);
            }
            h[idx(i, j)] = best;
        }
    }

    let mut best = BestCell::empty();
    match K::OPT {
        OptRegion::Corner => {
            return (h[idx(n, m)] as Score, (n, m));
        }
        OptRegion::Border => {
            for i in 1..=n {
                best.update(h[idx(i, m)] as Score, i, m);
            }
            for j in 1..=m {
                best.update(h[idx(n, j)] as Score, n, j);
            }
            best.update(h[idx(0, m)] as Score, 0, m);
            best.update(h[idx(n, 0)] as Score, n, 0);
        }
        OptRegion::Anywhere => {
            for i in 1..=n {
                for j in 1..=m {
                    best.update(h[idx(i, j)] as Score, i, j);
                }
            }
            if !K::NU_ZERO {
                best.update(0, 0, 0);
            }
        }
    }
    if K::NU_ZERO && best.score <= 0 {
        return (0, (0, 0));
    }
    (best.score, (best.i, best.j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{Global, Local, SemiGlobal};
    use crate::scoring::{simple, AffineGap, LinearGap};

    fn codes(text: &[u8]) -> Vec<u8> {
        anyseq_seq::Seq::from_ascii(text).unwrap().codes().to_vec()
    }

    #[test]
    fn global_hand_checked() {
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let (score, end) =
            oracle_score::<Global, _, _>(&gap, &subst, &codes(b"ACGT"), &codes(b"AGT"));
        assert_eq!(score, 5);
        assert_eq!(end, (4, 3));
    }

    #[test]
    fn local_hand_checked() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let (score, _) =
            oracle_score::<Local, _, _>(&gap, &subst, &codes(b"TTACGTTT"), &codes(b"GGACGTGG"));
        assert_eq!(score, 8);
    }

    #[test]
    fn semiglobal_negative_case_is_zero() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let (score, end) =
            oracle_score::<SemiGlobal, _, _>(&gap, &subst, &codes(b"A"), &codes(b"C"));
        assert_eq!(score, 0);
        assert_eq!(end, (0, 1));
    }

    #[test]
    fn affine_gap_run() {
        let gap = AffineGap {
            open: -4,
            extend: -1,
        };
        let subst = simple(2, -1);
        let (score, _) =
            oracle_score::<Global, _, _>(&gap, &subst, &codes(b"ACGTTTACGT"), &codes(b"ACGACGT"));
        assert_eq!(score, 7 * 2 - 4 - 3);
    }
}
