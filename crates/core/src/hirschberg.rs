//! Linear-space traceback: Hirschberg divide-and-conquer with
//! Myers–Miller affine-gap boundary handling (paper §III-A, ref. \[24\]:
//! "the traceback procedure can be implemented in linear space ... that
//! recursively determines optimal midpoints of the DP matrix (at the cost
//! of at most doubling the amount of computed DP cells)").
//!
//! The recursion [`diff`] splits the query at its middle row, runs a
//! forward and a backward score-only half-pass (both are just
//! [`crate::pass::score_pass`]), and combines the final rows to find a
//! column where an optimal path crosses — either in the `H` state or
//! inside a vertical gap (`E` state), in which case the gap's open cost is
//! refunded once and two forced gap columns are emitted (Myers–Miller).
//! Sub-rectangles below [`AlignConfig::cutoff_area`] fall through to the
//! full-matrix base case with `tb`/`te` boundary adjustments.
//!
//! Local and semi-global alignments reduce to a global rectangle by
//! locating the optimum endpoint with a forward pass and the start with a
//! *reversed* pass of the mirror kind ([`crate::kind::Extension`] /
//! [`crate::kind::FreeEnd`]), exactly the paper's "reverse the indexing in
//! the sequence accessor" trick.
//!
//! Known theoretical corner (shared with the canonical Myers–Miller
//! formulation): a rectangle whose top *and* bottom boundary opens are
//! both waived (`tb = te = 0`, which requires two nested gap-crossing
//! splits of one run) prices a full-height vertical run optimistically;
//! the emitted alignment stays valid but may be up to `|open|` below
//! optimal in adversarial constructions. Property tests recompute every
//! alignment's score, so any occurrence would surface as a test failure.

use crate::alignment::{AlignOp, Alignment};
use crate::fullmatrix::base_global;
use crate::kind::{AlignKind, Extension, FreeEnd, Global, Local, OptRegion, SemiGlobal};
use crate::pass::{score_pass, PassOutput};
use crate::score::Score;
use crate::scoring::{GapModel, SubstScore};

/// Traceback configuration.
#[derive(Debug, Clone, Copy)]
pub struct AlignConfig {
    /// Rectangles with at most this many cells use the full-matrix base
    /// case (one predecessor byte per cell). The default keeps base-case
    /// memory around 256 KiB — the paper's "hardware-specific threshold".
    pub cutoff_area: usize,
}

impl Default for AlignConfig {
    fn default() -> Self {
        AlignConfig {
            cutoff_area: 1 << 18,
        }
    }
}

/// A provider of score-only passes — the seam through which execution
/// backends plug into the divide-and-conquer traceback.
///
/// The scalar provider is [`ScalarPass`]; `anyseq-wavefront` supplies a
/// multithreaded tiled provider, `anyseq-simd` a vectorized one. This is
/// the paper's "exchange iteration strategies by passing different
/// generator functions" applied to the traceback recursion.
pub trait HalfPass<G: GapModel, S: SubstScore>: Sync {
    /// Runs a score-only pass of kind `K` (see [`score_pass`]).
    fn pass<K: AlignKind>(&self, gap: &G, subst: &S, q: &[u8], s: &[u8], tb: Score) -> PassOutput;
}

/// Single-threaded pass provider.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarPass;

impl<G: GapModel, S: SubstScore> HalfPass<G, S> for ScalarPass {
    #[inline]
    fn pass<K: AlignKind>(&self, gap: &G, subst: &S, q: &[u8], s: &[u8], tb: Score) -> PassOutput {
        score_pass::<K, G, S>(gap, subst, q, s, tb)
    }
}

/// Appends the optimal global alignment of `q × s` (with boundary
/// vertical-gap opens `tb`, `te`) to `ops`; returns the adjusted score.
#[allow(clippy::too_many_arguments)]
pub fn diff<G, S, P>(
    pass: &P,
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    tb: Score,
    te: Score,
    cfg: &AlignConfig,
    ops: &mut Vec<AlignOp>,
) -> Score
where
    G: GapModel,
    S: SubstScore,
    P: HalfPass<G, S>,
{
    let n = q.len();
    let m = s.len();

    // Small or degenerate rectangles: full-matrix base case (it also
    // handles n == 0 / m == 0 directly).
    if n <= 2 || m == 0 || (n + 1).saturating_mul(m + 1) <= cfg.cutoff_area {
        return base_global(gap, subst, q, s, tb, te, ops);
    }

    let mid = n / 2;

    // Forward half-pass over rows 1..=mid.
    let fwd = pass.pass::<Global>(gap, subst, &q[..mid], s, tb);
    // Backward half-pass over (reversed) rows mid+1..=n.
    let rq: Vec<u8> = q[mid..].iter().rev().copied().collect();
    let rs: Vec<u8> = s.iter().rev().copied().collect();
    let bwd = pass.pass::<Global>(gap, subst, &rq, &rs, te);

    // DD rows: E at the boundary, with the column-0 value supplied in
    // closed form (an all-delete path down column 0 pays the boundary
    // open).
    let ext = gap.extend();
    let dd_f0 = tb + (mid as Score) * ext;
    let dd_b0 = te + ((n - mid) as Score) * ext;

    // Combine: choose the crossing column (and state) maximizing the
    // total. Deterministic tie-break: H-crossing first, then smaller j.
    let mut best_score = Score::MIN;
    let mut best_j = 0usize;
    let mut best_in_gap = false;
    for j in 0..=m {
        let c1 = fwd.last_h[j] + bwd.last_h[m - j];
        if c1 > best_score {
            best_score = c1;
            best_j = j;
            best_in_gap = false;
        }
        if G::AFFINE {
            let df = if j == 0 { dd_f0 } else { fwd.last_e[j - 1] };
            let db = if j == m { dd_b0 } else { bwd.last_e[m - j - 1] };
            let c2 = df + db - gap.open();
            if c2 > best_score {
                best_score = c2;
                best_j = j;
                best_in_gap = true;
            }
        }
    }

    if best_in_gap {
        // The optimal path crosses the midline inside a vertical gap:
        // rows mid and mid+1 are forced gap columns (Myers–Miller), and
        // the junction opens are waived in both children.
        diff(
            pass,
            gap,
            subst,
            &q[..mid - 1],
            &s[..best_j],
            tb,
            0,
            cfg,
            ops,
        );
        ops.push(AlignOp::GapS);
        ops.push(AlignOp::GapS);
        diff(
            pass,
            gap,
            subst,
            &q[mid + 1..],
            &s[best_j..],
            0,
            te,
            cfg,
            ops,
        );
    } else {
        diff(
            pass,
            gap,
            subst,
            &q[..mid],
            &s[..best_j],
            tb,
            gap.open(),
            cfg,
            ops,
        );
        diff(
            pass,
            gap,
            subst,
            &q[mid..],
            &s[best_j..],
            gap.open(),
            te,
            cfg,
            ops,
        );
    }
    best_score
}

/// Global alignment (linear space).
pub fn align_global<G, S, P>(
    pass: &P,
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    cfg: &AlignConfig,
) -> Alignment
where
    G: GapModel,
    S: SubstScore,
    P: HalfPass<G, S>,
{
    let mut ops = Vec::with_capacity(q.len().max(s.len()) + 16);
    let score = diff(
        pass,
        gap,
        subst,
        q,
        s,
        gap.open(),
        gap.open(),
        cfg,
        &mut ops,
    );
    Alignment {
        score,
        ops,
        q_start: 0,
        q_end: q.len(),
        s_start: 0,
        s_end: s.len(),
    }
}

fn reversed(codes: &[u8]) -> Vec<u8> {
    codes.iter().rev().copied().collect()
}

/// Local alignment (linear space): locate the end with a forward local
/// pass, the start with a reversed extension pass, then globally align
/// the enclosed rectangle.
pub fn align_local<G, S, P>(
    pass: &P,
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    cfg: &AlignConfig,
) -> Alignment
where
    G: GapModel,
    S: SubstScore,
    P: HalfPass<G, S>,
{
    let fwd = pass.pass::<Local>(gap, subst, q, s, gap.open());
    if fwd.score <= 0 {
        return Alignment::empty(0);
    }
    let (ie, je) = fwd.end;
    let rq = reversed(&q[..ie]);
    let rs = reversed(&s[..je]);
    let rev = pass.pass::<Extension>(gap, subst, &rq, &rs, gap.open());
    debug_assert_eq!(
        rev.score, fwd.score,
        "reverse extension pass must reproduce the local optimum"
    );
    let (ri, rj) = rev.end;
    let (is, js) = (ie - ri, je - rj);

    let mut ops = Vec::new();
    let score = diff(
        pass,
        gap,
        subst,
        &q[is..ie],
        &s[js..je],
        gap.open(),
        gap.open(),
        cfg,
        &mut ops,
    );
    debug_assert_eq!(
        score, fwd.score,
        "region global score must equal local optimum"
    );
    Alignment {
        score: fwd.score,
        ops,
        q_start: is,
        q_end: ie,
        s_start: js,
        s_end: je,
    }
}

/// Semi-global alignment (linear space): free gaps at both ends; the
/// aligned core is located with a forward semi-global pass and a reversed
/// free-end pass.
pub fn align_semiglobal<G, S, P>(
    pass: &P,
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    cfg: &AlignConfig,
) -> Alignment
where
    G: GapModel,
    S: SubstScore,
    P: HalfPass<G, S>,
{
    let fwd = pass.pass::<SemiGlobal>(gap, subst, q, s, gap.open());
    let (ie, je) = fwd.end;
    if ie == 0 || je == 0 {
        // The optimum sits on an initialization border: everything is a
        // free end gap, the aligned core is empty.
        return Alignment::empty(fwd.score);
    }
    let rq = reversed(&q[..ie]);
    let rs = reversed(&s[..je]);
    let rev = pass.pass::<FreeEnd>(gap, subst, &rq, &rs, gap.open());
    debug_assert_eq!(
        rev.score, fwd.score,
        "reverse free-end pass must reproduce the semi-global optimum"
    );
    let (ri, rj) = rev.end;
    let (is, js) = (ie - ri, je - rj);
    debug_assert!(
        is == 0 || js == 0,
        "semi-global start must lie on a sequence boundary"
    );

    let mut ops = Vec::new();
    let score = diff(
        pass,
        gap,
        subst,
        &q[is..ie],
        &s[js..je],
        gap.open(),
        gap.open(),
        cfg,
        &mut ops,
    );
    debug_assert_eq!(score, fwd.score);
    Alignment {
        score: fwd.score,
        ops,
        q_start: is,
        q_end: ie,
        s_start: js,
        s_end: je,
    }
}

/// Free-end alignment (linear space): start anchored at the origin, free
/// gaps at the end.
pub fn align_free_end<G, S, P>(
    pass: &P,
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    cfg: &AlignConfig,
) -> Alignment
where
    G: GapModel,
    S: SubstScore,
    P: HalfPass<G, S>,
{
    let fwd = pass.pass::<FreeEnd>(gap, subst, q, s, gap.open());
    let (ie, je) = fwd.end;
    let mut ops = Vec::new();
    let score = diff(
        pass,
        gap,
        subst,
        &q[..ie],
        &s[..je],
        gap.open(),
        gap.open(),
        cfg,
        &mut ops,
    );
    debug_assert_eq!(score, fwd.score);
    Alignment {
        score: fwd.score,
        ops,
        q_start: 0,
        q_end: ie,
        s_start: 0,
        s_end: je,
    }
}

/// Extension alignment (linear space): start anchored at the origin, end
/// free anywhere — the best prefix-pair alignment.
pub fn align_extension<G, S, P>(
    pass: &P,
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    cfg: &AlignConfig,
) -> Alignment
where
    G: GapModel,
    S: SubstScore,
    P: HalfPass<G, S>,
{
    let fwd = pass.pass::<Extension>(gap, subst, q, s, gap.open());
    let (ie, je) = fwd.end;
    let mut ops = Vec::new();
    let score = diff(
        pass,
        gap,
        subst,
        &q[..ie],
        &s[..je],
        gap.open(),
        gap.open(),
        cfg,
        &mut ops,
    );
    debug_assert_eq!(score, fwd.score);
    Alignment {
        score: fwd.score,
        ops,
        q_start: 0,
        q_end: ie,
        s_start: 0,
        s_end: je,
    }
}

/// Kind-dispatched linear-space alignment. The `match` is over
/// compile-time constants, so each monomorphized instance contains
/// exactly one flow — the paper's "exchange several functions ... at
/// compile time" by function composition.
pub fn align<K, G, S>(gap: &G, subst: &S, q: &[u8], s: &[u8], cfg: &AlignConfig) -> Alignment
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
{
    align_with_pass::<K, G, S, ScalarPass>(&ScalarPass, gap, subst, q, s, cfg)
}

/// [`align`] with an explicit pass provider (multithreaded / SIMD
/// backends plug in here).
pub fn align_with_pass<K, G, S, P>(
    pass: &P,
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    cfg: &AlignConfig,
) -> Alignment
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
    P: HalfPass<G, S>,
{
    match K::OPT {
        OptRegion::Corner => align_global(pass, gap, subst, q, s, cfg),
        OptRegion::Anywhere => {
            if K::NU_ZERO {
                align_local(pass, gap, subst, q, s, cfg)
            } else {
                align_extension(pass, gap, subst, q, s, cfg)
            }
        }
        OptRegion::Border => {
            if K::FREE_BEGIN {
                align_semiglobal(pass, gap, subst, q, s, cfg)
            } else {
                align_free_end(pass, gap, subst, q, s, cfg)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{simple, AffineGap, LinearGap};
    use anyseq_seq::Seq;

    fn seq(text: &[u8]) -> Seq {
        Seq::from_ascii(text).unwrap()
    }

    /// Tiny cutoff to force deep recursion even on small inputs.
    fn deep() -> AlignConfig {
        AlignConfig { cutoff_area: 12 }
    }

    #[test]
    fn recursion_matches_base_case_linear() {
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let q = seq(b"ACGTACGTTACGATCA");
        let s = seq(b"ACGACGTTAGCGTCA");
        let big = align_global(
            &ScalarPass,
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            &AlignConfig::default(),
        );
        let small = align_global(&ScalarPass, &gap, &subst, q.codes(), s.codes(), &deep());
        assert_eq!(big.score, small.score);
        big.validate::<Global, _, _>(&q, &s, &gap, &subst).unwrap();
        small
            .validate::<Global, _, _>(&q, &s, &gap, &subst)
            .unwrap();
    }

    #[test]
    fn recursion_matches_base_case_affine() {
        let gap = AffineGap {
            open: -3,
            extend: -1,
        };
        let subst = simple(2, -1);
        let q = seq(b"ACGTTTTTACGTACGA");
        let s = seq(b"ACGTACGTACGA");
        let big = align_global(
            &ScalarPass,
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            &AlignConfig::default(),
        );
        let small = align_global(&ScalarPass, &gap, &subst, q.codes(), s.codes(), &deep());
        assert_eq!(big.score, small.score);
        small
            .validate::<Global, _, _>(&q, &s, &gap, &subst)
            .unwrap();
    }

    #[test]
    fn gap_crossing_midline_is_handled() {
        // A 8-long insertion in the middle of q forces the vertical run to
        // cross the midline of the recursion.
        let gap = AffineGap {
            open: -4,
            extend: -1,
        };
        let subst = simple(2, -1);
        let q = seq(b"ACGTACGTAAAAAAAACGTACGTA");
        let s = seq(b"ACGTACGTCGTACGTA");
        let aln = align_global(&ScalarPass, &gap, &subst, q.codes(), s.codes(), &deep());
        aln.validate::<Global, _, _>(&q, &s, &gap, &subst).unwrap();
        // 16 matches + one 8-gap: 32 - 4 - 8 = 20
        assert_eq!(aln.score, 20);
    }

    #[test]
    fn local_finds_core() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let q = seq(b"TTTTACGTACGTTTTT");
        let s = seq(b"GGGGACGTACGGGGG");
        let aln = align_local(&ScalarPass, &gap, &subst, q.codes(), s.codes(), &deep());
        aln.validate::<Local, _, _>(&q, &s, &gap, &subst).unwrap();
        // Common core ACGTACG (7 matches); extending to q's T vs s's G
        // costs a -3 mismatch and never pays off.
        assert_eq!(aln.score, 14);
    }

    #[test]
    fn local_empty_when_all_negative() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let aln = align_local(
            &ScalarPass,
            &gap,
            &subst,
            seq(b"AAAA").codes(),
            seq(b"CCCC").codes(),
            &deep(),
        );
        assert_eq!(aln.score, 0);
        assert!(aln.is_empty());
    }

    #[test]
    fn semiglobal_contained_read() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let q = seq(b"TTTTACGTACGTTTTT");
        let s = seq(b"ACGTACGT");
        let aln = align_semiglobal(&ScalarPass, &gap, &subst, q.codes(), s.codes(), &deep());
        aln.validate::<SemiGlobal, _, _>(&q, &s, &gap, &subst)
            .unwrap();
        assert_eq!(aln.score, 16);
        assert_eq!((aln.s_start, aln.s_end), (0, 8));
        assert_eq!((aln.q_start, aln.q_end), (4, 12));
    }

    #[test]
    fn free_end_shared_prefix() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let q = seq(b"ACGTTTTTTTT");
        let s = seq(b"ACGTGGGGGGG");
        let aln = align_free_end(&ScalarPass, &gap, &subst, q.codes(), s.codes(), &deep());
        aln.validate::<FreeEnd, _, _>(&q, &s, &gap, &subst).unwrap();
        // ACGT matched, then a 7-long query gap reaches the last column.
        assert_eq!(aln.score, -6);
        assert_eq!((aln.q_end, aln.s_end), (4, 11));
    }

    #[test]
    fn extension_shared_prefix() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let q = seq(b"ACGTTTTTTTT");
        let s = seq(b"ACGTGGGGGGG");
        let aln = align_extension(&ScalarPass, &gap, &subst, q.codes(), s.codes(), &deep());
        aln.validate::<crate::kind::Extension, _, _>(&q, &s, &gap, &subst)
            .unwrap();
        assert_eq!(aln.score, 8);
        assert_eq!((aln.q_end, aln.s_end), (4, 4));
    }
}
