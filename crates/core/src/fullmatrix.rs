//! Full-matrix global alignment with predecessor traceback — the base
//! case of the divide-and-conquer traceback (paper §III-A: "recursion on
//! subsequences is only done if the subsequence sizes exceed a
//! hardware-specific threshold"; the sub-threshold rectangles land here).
//!
//! Supports the Myers–Miller boundary gap-open adjustments `tb`/`te`
//! (vertical gaps touching the top/bottom boundary of the rectangle pay
//! the adjusted open instead of the scheme's, because the enclosing
//! recursion has already accounted for the junction): `tb` enters through
//! the initialization stripes, `te` through the end-state choice.

use crate::alignment::AlignOp;
use crate::kind::Global;
use crate::pass::{init_left_f, init_left_h, init_top_e, init_top_h};
use crate::relax::pred;
use crate::score::{max2, Score};
use crate::scoring::{GapModel, SubstScore};
use crate::tile::{relax_tile, PredSink, TileIn, TileOut};

/// Traceback state machine states (Gotoh's three matrices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    H,
    E,
    F,
}

/// Globally aligns `q × s` with boundary gap-opens `tb`/`te`, appending
/// the operations to `ops` (in left-to-right order) and returning the
/// boundary-adjusted optimal score.
///
/// Memory: `n·m` predecessor bytes — callers bound the rectangle area
/// (see `hirschberg::AlignConfig::cutoff_area`).
pub fn base_global<G, S>(
    gap: &G,
    subst: &S,
    q: &[u8],
    s: &[u8],
    tb: Score,
    te: Score,
    ops: &mut Vec<AlignOp>,
) -> Score
where
    G: GapModel,
    S: SubstScore,
{
    let n = q.len();
    let m = s.len();

    // Degenerate rectangles: one pure gap run (or nothing).
    if m == 0 {
        for _ in 0..n {
            ops.push(AlignOp::GapS);
        }
        return if n == 0 {
            0
        } else {
            // The run touches both boundaries: the better single waiver
            // applies (Myers–Miller's min(tb,te), here in score space).
            max2(tb, te) + (n as Score) * gap.extend()
        };
    }
    if n == 0 {
        for _ in 0..m {
            ops.push(AlignOp::GapQ);
        }
        return gap.gap(m);
    }

    let top_h = init_top_h::<Global, G>(gap, m);
    let top_e = init_top_e::<Global, G>(gap, m);
    let left_h = init_left_h::<Global, G>(gap, n, tb);
    let left_f = init_left_f::<G>(n);

    let mut out = TileOut::new();
    let mut sink = PredSink::new(n, m);
    relax_tile::<Global, G, S, _>(
        gap,
        subst,
        q,
        s,
        (1, 1),
        (n, m),
        TileIn {
            top_h: &top_h,
            top_e: &top_e,
            left_h: &left_h,
            left_f: &left_f,
        },
        &mut out,
        &mut sink,
    );

    // End-state choice: finishing in a vertical gap that touches the
    // bottom boundary re-prices its open from the scheme's to `te`.
    let score_h = out.bot_h[m];
    let (mut st, score) = if G::AFFINE {
        let score_e = out.bot_e[m - 1] - gap.open() + te;
        if score_e > score_h {
            (St::E, score_e)
        } else {
            (St::H, score_h)
        }
    } else {
        (St::H, score_h)
    };

    // Traceback (collect reversed, then flip).
    let mut rev: Vec<AlignOp> = Vec::with_capacity(n + m);
    let mut i = n;
    let mut j = m;
    loop {
        match st {
            St::H => {
                if i == 0 {
                    for _ in 0..j {
                        rev.push(AlignOp::GapQ);
                    }
                    break;
                }
                if j == 0 {
                    for _ in 0..i {
                        rev.push(AlignOp::GapS);
                    }
                    break;
                }
                let p = sink.at(i - 1, j - 1);
                match p & pred::DIR_MASK {
                    pred::DIAG => {
                        rev.push(if q[i - 1] == s[j - 1] {
                            AlignOp::Match
                        } else {
                            AlignOp::Mismatch
                        });
                        i -= 1;
                        j -= 1;
                    }
                    pred::UP => st = St::E,
                    pred::LEFT => st = St::F,
                    _ => unreachable!("global traceback hit a local stop cell"),
                }
            }
            St::E => {
                let p = sink.at(i - 1, j - 1);
                rev.push(AlignOp::GapS);
                i -= 1;
                st = if i > 0 && (p & pred::E_EXT) != 0 {
                    St::E
                } else {
                    St::H
                };
            }
            St::F => {
                let p = sink.at(i - 1, j - 1);
                rev.push(AlignOp::GapQ);
                j -= 1;
                st = if j > 0 && (p & pred::F_EXT) != 0 {
                    St::F
                } else {
                    St::H
                };
            }
        }
    }
    rev.reverse();
    ops.extend_from_slice(&rev);
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::kind::Global as GlobalKind;
    use crate::scoring::{simple, AffineGap, LinearGap};
    use anyseq_seq::Seq;

    fn run<G: GapModel>(gap: G, qa: &[u8], sa: &[u8]) -> (Score, Vec<AlignOp>) {
        let subst = simple(2, -1);
        let q = Seq::from_ascii(qa).unwrap();
        let s = Seq::from_ascii(sa).unwrap();
        let mut ops = Vec::new();
        let score = base_global(
            &gap,
            &subst,
            q.codes(),
            s.codes(),
            gap.open(),
            gap.open(),
            &mut ops,
        );
        // Every emitted alignment must recompute to its reported score.
        let aln = Alignment {
            score,
            ops: ops.clone(),
            q_start: 0,
            q_end: q.len(),
            s_start: 0,
            s_end: s.len(),
        };
        aln.validate::<GlobalKind, _, _>(&q, &s, &gap, &simple(2, -1))
            .unwrap();
        (score, ops)
    }

    #[test]
    fn identity_alignment() {
        let (score, ops) = run(LinearGap { gap: -1 }, b"ACGT", b"ACGT");
        assert_eq!(score, 8);
        assert!(ops.iter().all(|&o| o == AlignOp::Match));
    }

    #[test]
    fn single_mismatch() {
        let (score, ops) = run(LinearGap { gap: -1 }, b"ACGT", b"AGGT");
        assert_eq!(score, 5);
        assert_eq!(ops.iter().filter(|&&o| o == AlignOp::Mismatch).count(), 1);
    }

    #[test]
    fn single_deletion_linear() {
        let (score, ops) = run(LinearGap { gap: -1 }, b"ACGT", b"AGT");
        assert_eq!(score, 5); // 3 matches + 1 gap
        assert_eq!(ops.iter().filter(|&&o| o == AlignOp::GapS).count(), 1);
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        // q has a 3-base insertion; affine must produce ONE gap run.
        let gap = AffineGap {
            open: -4,
            extend: -1,
        };
        let (score, ops) = run(gap, b"ACGTTTACGT", b"ACGACGT");
        // Hmm: q = ACG TTT ACGT (10), s = ACG ACGT (7): 7 matches + gap(3)
        assert_eq!(score, 7 * 2 - 4 - 3);
        let runs: Vec<(AlignOp, usize)> = {
            let mut v = Vec::new();
            for &op in &ops {
                match v.last_mut() {
                    Some((last, count)) if *last == op => *count += 1,
                    _ => v.push((op, 1)),
                }
            }
            v
        };
        assert_eq!(
            runs.iter()
                .filter(|(op, _)| *op == AlignOp::GapS)
                .collect::<Vec<_>>(),
            vec![&(AlignOp::GapS, 3)],
            "expected exactly one 3-long subject gap, cigar-runs {runs:?}"
        );
    }

    #[test]
    fn empty_cases_emit_pure_gaps() {
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let mut ops = Vec::new();
        let score = base_global(
            &gap,
            &subst,
            &[],
            &[0, 1, 2],
            gap.open(),
            gap.open(),
            &mut ops,
        );
        assert_eq!(score, -5);
        assert_eq!(ops, vec![AlignOp::GapQ; 3]);

        ops.clear();
        let score = base_global(&gap, &subst, &[0, 1], &[], gap.open(), gap.open(), &mut ops);
        assert_eq!(score, -4);
        assert_eq!(ops, vec![AlignOp::GapS; 2]);

        ops.clear();
        let score = base_global(&gap, &subst, &[], &[], gap.open(), gap.open(), &mut ops);
        assert_eq!(score, 0);
        assert!(ops.is_empty());
    }

    #[test]
    fn tb_zero_waives_top_touching_open() {
        // q = AA, s = "" is trivial; instead: q = AAC, s = C. Optimal with
        // tb = 0: delete AA via a top-touching run paying 0 open.
        let gap = AffineGap {
            open: -10,
            extend: -1,
        };
        let subst = simple(2, -1);
        let q = Seq::from_ascii(b"AAC").unwrap();
        let s = Seq::from_ascii(b"C").unwrap();
        let mut ops = Vec::new();
        let score = base_global(&gap, &subst, q.codes(), s.codes(), 0, gap.open(), &mut ops);
        // top-touching delete of AA: 0 - 2, then C=C: +2 → 0
        assert_eq!(score, 0);
        assert_eq!(
            ops,
            vec![AlignOp::GapS, AlignOp::GapS, AlignOp::Match],
            "gap must be placed at the top boundary to exploit tb"
        );
    }

    #[test]
    fn te_zero_waives_bottom_touching_open() {
        let gap = AffineGap {
            open: -10,
            extend: -1,
        };
        let subst = simple(2, -1);
        let q = Seq::from_ascii(b"CAA").unwrap();
        let s = Seq::from_ascii(b"C").unwrap();
        let mut ops = Vec::new();
        let score = base_global(&gap, &subst, q.codes(), s.codes(), gap.open(), 0, &mut ops);
        assert_eq!(score, 0);
        assert_eq!(ops, vec![AlignOp::Match, AlignOp::GapS, AlignOp::GapS]);
    }

    #[test]
    fn full_span_gap_uses_better_boundary() {
        let gap = AffineGap {
            open: -10,
            extend: -1,
        };
        let subst = simple(2, -1);
        // m == 0: whole q deleted, run touches both boundaries.
        let mut ops = Vec::new();
        let score = base_global(&gap, &subst, &[0, 0, 0], &[], 0, gap.open(), &mut ops);
        assert_eq!(score, -3); // waived open (tb = 0), 3 extends
    }
}
