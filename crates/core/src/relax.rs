//! The shared cell-update ("relaxation") function — paper §III-B.
//!
//! Exactly one function encodes Equations (1), (4) and (5) for *every*
//! engine in the workspace: scalar, tiled/wavefront, SIMD (ported to lanes
//! in `anyseq-simd`), GPU-sim and FPGA-sim all funnel through this
//! recurrence. The paper's `relax_global` takes accessor objects
//! (`PrevScores`, `CharPair`) whose indirections are removed by partial
//! evaluation; here the neighbours arrive as plain values that the caller's
//! view logic produced, and monomorphization plus `#[inline(always)]`
//! guarantees the same zero-cost outcome.

use crate::kind::AlignKind;
use crate::score::Score;
use crate::scoring::{GapModel, SubstScore};

/// Predecessor encoding, two direction bits plus two affine state bits.
pub mod pred {
    /// Direction mask (bits 0–1).
    pub const DIR_MASK: u8 = 0b11;
    /// ν won: local-alignment stop cell.
    pub const NONE: u8 = 0;
    /// Diagonal predecessor (substitution).
    pub const DIAG: u8 = 1;
    /// Vertical predecessor (E: subject gap, consumes a query base).
    pub const UP: u8 = 2;
    /// Horizontal predecessor (F: query gap, consumes a subject base).
    pub const LEFT: u8 = 3;
    /// E(i,j) extended E(i−1,j) rather than opening from H(i−1,j).
    pub const E_EXT: u8 = 1 << 2;
    /// F(i,j) extended F(i,j−1) rather than opening from H(i,j−1).
    pub const F_EXT: u8 = 1 << 3;
}

/// Scores of the three ancestral subproblems of a cell, plus the running
/// gap-state values (paper's `PrevScores` accessor, flattened to values).
#[derive(Debug, Clone, Copy)]
pub struct Prev {
    /// `H(i−1, j−1)`.
    pub diag_h: Score,
    /// `H(i−1, j)`.
    pub up_h: Score,
    /// `E(i−1, j)` — only meaningful for affine gap models.
    pub up_e: Score,
    /// `H(i, j−1)`.
    pub left_h: Score,
    /// `F(i, j−1)` — only meaningful for affine gap models.
    pub left_f: Score,
}

/// Result of relaxing one cell (paper's `NextStep`, plus the outgoing
/// gap-state values needed by the neighbours).
#[derive(Debug, Clone, Copy)]
pub struct Next {
    /// `H(i, j)`.
    pub h: Score,
    /// `E(i, j)` (sentinel for linear models; never read).
    pub e: Score,
    /// `F(i, j)`.
    pub f: Score,
    /// Predecessor byte (see [`pred`]); only computed when requested.
    pub pred: u8,
}

/// Relaxes one DP cell.
///
/// `WITH_PRED` selects at compile time whether the predecessor byte is
/// materialized — the score-only engines instantiate `WITH_PRED = false`
/// and the pred computation vanishes from the generated code (the paper:
/// *"no machine code is generated for calls to functions that either do
/// not contain instructions or return a compile-time constant"*).
#[inline(always)]
pub fn relax<K, G, S, const WITH_PRED: bool>(gap: &G, subst: &S, prev: Prev, qc: u8, sc: u8) -> Next
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
{
    let ext = gap.extend();

    // Equations (4)/(5) for affine models; the linear case folds E/F to
    // single candidates because H ≥ E and H ≥ F always hold, making
    // max(E(i−1,j), H(i−1,j)) + g == H(i−1,j) + g.
    let (e, e_ext) = if G::AFFINE {
        let open_cand = prev.up_h + gap.open() + ext;
        let ext_cand = prev.up_e + ext;
        if ext_cand > open_cand {
            (ext_cand, true)
        } else {
            (open_cand, false)
        }
    } else {
        (prev.up_h + ext, false)
    };
    let (f, f_ext) = if G::AFFINE {
        let open_cand = prev.left_h + gap.open() + ext;
        let ext_cand = prev.left_f + ext;
        if ext_cand > open_cand {
            (ext_cand, true)
        } else {
            (open_cand, false)
        }
    } else {
        (prev.left_h + ext, false)
    };

    // Equation (1): maximum over the no-gap, subject-gap and query-gap
    // choices, mirroring the candidate order of the paper's relax_global
    // (ties keep the earlier candidate).
    let no_gap = prev.diag_h + subst.score(qc, sc);
    let mut h = no_gap;
    let mut dir = pred::DIAG;
    if e > h {
        h = e;
        dir = pred::UP;
    }
    if f > h {
        h = f;
        dir = pred::LEFT;
    }
    // ν = 0 for local alignments: floor and mark as a traceback stop.
    if K::NU_ZERO && h <= 0 {
        h = 0;
        dir = pred::NONE;
    }

    let pred_byte = if WITH_PRED {
        dir | if e_ext { pred::E_EXT } else { 0 } | if f_ext { pred::F_EXT } else { 0 }
    } else {
        0
    };

    Next {
        h,
        e,
        f,
        pred: pred_byte,
    }
}

/// Convenience: relax without predecessor tracking.
#[inline(always)]
pub fn relax_score<K, G, S>(gap: &G, subst: &S, prev: Prev, qc: u8, sc: u8) -> Next
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
{
    relax::<K, G, S, false>(gap, subst, prev, qc, sc)
}

/// The best cell seen so far, with deterministic tie-breaking
/// (higher score, then smaller `i`, then smaller `j`) so that every
/// engine — whatever its evaluation order — reports the same optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BestCell {
    /// Best score.
    pub score: Score,
    /// 1-based row of the best cell.
    pub i: usize,
    /// 1-based column of the best cell.
    pub j: usize,
}

impl Default for BestCell {
    fn default() -> Self {
        BestCell::empty()
    }
}

impl BestCell {
    /// A best-cell tracker that loses against everything.
    pub fn empty() -> BestCell {
        BestCell {
            score: crate::score::NEG_INF,
            i: usize::MAX,
            j: usize::MAX,
        }
    }

    /// Merges a candidate cell.
    #[inline(always)]
    pub fn update(&mut self, score: Score, i: usize, j: usize) {
        if score > self.score
            || (score == self.score && (i < self.i || (i == self.i && j < self.j)))
        {
            self.score = score;
            self.i = i;
            self.j = j;
        }
    }

    /// Merges another tracker (for combining per-tile results).
    #[inline]
    pub fn merge(&mut self, other: &BestCell) {
        if other.i != usize::MAX {
            self.update(other.score, other.i, other.j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{Global, Local};
    use crate::score::NEG_INF;
    use crate::scoring::{simple, AffineGap, LinearGap};

    fn prev_all(v: Score) -> Prev {
        Prev {
            diag_h: v,
            up_h: v,
            up_e: NEG_INF,
            left_h: v,
            left_f: NEG_INF,
        }
    }

    #[test]
    fn diagonal_match_wins() {
        let g = LinearGap { gap: -1 };
        let s = simple(2, -1);
        let n = relax::<Global, _, _, true>(&g, &s, prev_all(10), 1, 1);
        assert_eq!(n.h, 12);
        assert_eq!(n.pred & pred::DIR_MASK, pred::DIAG);
    }

    #[test]
    fn gap_wins_on_bad_mismatch() {
        let g = LinearGap { gap: -1 };
        let s = simple(2, -5);
        let p = Prev {
            diag_h: 10,
            up_h: 10,
            up_e: NEG_INF,
            left_h: 4,
            left_f: NEG_INF,
        };
        let n = relax::<Global, _, _, true>(&g, &s, p, 0, 1);
        // diag: 10-5=5, E: 10-1=9, F: 4-1=3
        assert_eq!(n.h, 9);
        assert_eq!(n.pred & pred::DIR_MASK, pred::UP);
    }

    #[test]
    fn tie_prefers_diagonal() {
        let g = LinearGap { gap: -1 };
        let s = simple(2, -1);
        // diag: 8+2 = 10, E: 11-1 = 10 -> tie, diag preferred
        let p = Prev {
            diag_h: 8,
            up_h: 11,
            up_e: NEG_INF,
            left_h: 0,
            left_f: NEG_INF,
        };
        let n = relax::<Global, _, _, true>(&g, &s, p, 2, 2);
        assert_eq!(n.h, 10);
        assert_eq!(n.pred & pred::DIR_MASK, pred::DIAG);
    }

    #[test]
    fn local_floors_at_zero() {
        let g = LinearGap { gap: -1 };
        let s = simple(2, -1);
        let n = relax::<Local, _, _, true>(&g, &s, prev_all(0), 0, 1);
        assert_eq!(n.h, 0);
        assert_eq!(n.pred & pred::DIR_MASK, pred::NONE);
    }

    #[test]
    fn affine_extension_beats_reopen() {
        let g = AffineGap {
            open: -5,
            extend: -1,
        };
        let s = simple(2, -2);
        let p = Prev {
            diag_h: NEG_INF,
            up_h: 10,
            up_e: 9, // an open gap: extending costs -1 -> 8; re-opening 10-6=4
            left_h: NEG_INF,
            left_f: NEG_INF,
        };
        let n = relax::<Global, _, _, true>(&g, &s, p, 0, 0);
        assert_eq!(n.e, 8);
        assert!(n.pred & pred::E_EXT != 0);
    }

    #[test]
    fn affine_reopen_beats_dead_extension() {
        let g = AffineGap {
            open: -2,
            extend: -1,
        };
        let s = simple(2, -2);
        let p = Prev {
            diag_h: NEG_INF,
            up_h: 10,
            up_e: 3,
            left_h: NEG_INF,
            left_f: NEG_INF,
        };
        let n = relax::<Global, _, _, true>(&g, &s, p, 0, 0);
        assert_eq!(n.e, 7); // 10 - 2 - 1
        assert!(n.pred & pred::E_EXT == 0);
    }

    #[test]
    fn linear_ignores_ef_inputs() {
        let g = LinearGap { gap: -3 };
        let s = simple(1, -1);
        let mut p = prev_all(5);
        p.up_e = 1_000_000; // must be ignored by the linear specialization
        p.left_f = 1_000_000;
        let n = relax::<Global, _, _, false>(&g, &s, p, 0, 0);
        assert_eq!(n.h, 6); // diag 5+1
        assert_eq!(n.e, 2); // up 5-3
        assert_eq!(n.f, 2);
    }

    #[test]
    fn best_cell_tie_breaking() {
        let mut b = BestCell::empty();
        b.update(5, 3, 7);
        b.update(5, 2, 9); // same score, smaller i wins
        assert_eq!((b.i, b.j), (2, 9));
        b.update(5, 2, 4); // same score & i, smaller j wins
        assert_eq!((b.i, b.j), (2, 4));
        b.update(6, 9, 9); // higher score beats position
        assert_eq!((b.score, b.i, b.j), (6, 9, 9));
        let mut c = BestCell::empty();
        c.merge(&b);
        assert_eq!(c, b);
        c.merge(&BestCell::empty());
        assert_eq!(c, b);
    }
}
