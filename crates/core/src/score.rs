//! Score arithmetic and the −∞ sentinel.
//!
//! Scores are `i32` (the paper's GPU path also uses 32-bit arithmetic;
//! the CPU SIMD path narrows to 16-bit *differential* scores inside a
//! block — that conversion lives in `anyseq-simd`). "−∞" is modelled as a
//! large negative sentinel with enough headroom that the bounded number of
//! additions performed before the next `max` against a finite value cannot
//! underflow `i32`.

/// Alignment score type.
pub type Score = i32;

/// The −∞ sentinel.
///
/// Contract: engines may add at most `O(n + m)` per-step penalties to a
/// sentinel-valued cell before it is rescued by a `max` against a finite
/// path, so `(n + m) · max|penalty|` must stay below `i32::MAX / 2 − |NEG_INF|`.
/// For genome-scale inputs (≤ 2³⁰ total length) and single-digit penalties
/// this leaves orders of magnitude of headroom.
pub const NEG_INF: Score = i32::MIN / 4;

/// Returns the larger of two scores (branchless-friendly helper).
#[inline(always)]
pub fn max2(a: Score, b: Score) -> Score {
    if a >= b {
        a
    } else {
        b
    }
}

/// Whether a score is "effectively −∞" (at or below half the sentinel).
///
/// Useful in assertions: legitimate scores never drift into this band.
#[inline]
pub fn is_neg_inf(v: Score) -> bool {
    v <= NEG_INF / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_has_headroom() {
        // The contract: (n + m) · max|penalty| below |i32::MIN| − |NEG_INF|.
        // A 128 Mbp-scale chain of penalty-4 extensions must not wrap.
        let drifted = NEG_INF as i64 - (1i64 << 27) * 4;
        assert!(drifted > i32::MIN as i64);
    }

    #[test]
    fn max2_behaves() {
        assert_eq!(max2(3, 5), 5);
        assert_eq!(max2(5, 3), 5);
        assert_eq!(max2(-1, -1), -1);
        assert_eq!(max2(NEG_INF, 0), 0);
    }

    #[test]
    fn neg_inf_detection() {
        assert!(is_neg_inf(NEG_INF));
        assert!(is_neg_inf(NEG_INF + 1_000_000));
        assert!(!is_neg_inf(0));
        assert!(!is_neg_inf(-1_000_000));
    }
}
