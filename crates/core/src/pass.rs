//! Score-only passes in linear space (paper §III-A: "score-only
//! computations can be performed in linear space").
//!
//! A pass is simply the tile kernel applied to the whole matrix as one
//! tile with the kind's initialization stripes — there is deliberately no
//! second implementation of the recurrence. The pass also returns the last
//! `H`/`E` rows, which is exactly what the Hirschberg combine step needs,
//! so the same function serves as the half-pass of the divide-and-conquer
//! traceback.

use crate::kind::{AlignKind, OptRegion};
use crate::score::{Score, NEG_INF};
use crate::scoring::{GapModel, SubstScore};
use crate::tile::{relax_tile, NoSink, TileIn, TileOut};

/// Result of a score-only pass.
#[derive(Debug, Clone)]
pub struct PassOutput {
    /// The kind-specific optimal score.
    pub score: Score,
    /// 1-based cell where the optimum is attained; `(n, m)` for global,
    /// `(0, 0)` for empty or all-non-positive local problems.
    pub end: (usize, usize),
    /// `H(n, 0..=m)` — the final DP row including the column-0 border.
    pub last_h: Vec<Score>,
    /// `E(n, 1..=m)` — final vertical-gap row (empty for linear models).
    pub last_e: Vec<Score>,
}

/// Builds the row-0 `H` stripe `H(0, 0..=w)` for kind `K`.
pub fn init_top_h<K: AlignKind, G: GapModel>(gap: &G, w: usize) -> Vec<Score> {
    (0..=w).map(|j| K::h_init(gap, j)).collect()
}

/// Builds the row-0 `E` stripe `E(0, 1..=w)`.
///
/// Initialized to `H(0,j) + open`, which is exactly equivalent to the
/// paper's `E(0,j) = −∞` because `E(1,j) = max(E(0,j)+e, H(0,j)+o+e)`
/// collapses either way. Note the Hirschberg boundary adjustment `tb`
/// deliberately does **not** appear here: a vertical run continuing from
/// the junction above enters this rectangle at its top-left corner and
/// can only flow down column 0 — a run at any column `j ≥ 1` was
/// necessarily preceded by horizontal movement, which breaks the run, so
/// it must pay the scheme's own open.
pub fn init_top_e<K: AlignKind, G: GapModel>(gap: &G, w: usize) -> Vec<Score> {
    if !G::AFFINE {
        return Vec::new();
    }
    (1..=w).map(|j| K::h_init(gap, j) + gap.open()).collect()
}

/// Builds the column-0 `H` stripe `H(1..=h, 0)` with top-boundary
/// vertical gap-open `tb` (the column-0 run always touches the top).
pub fn init_left_h<K: AlignKind, G: GapModel>(gap: &G, h: usize, tb: Score) -> Vec<Score> {
    (1..=h)
        .map(|i| {
            if K::FREE_BEGIN {
                0
            } else {
                tb + (i as Score) * gap.extend()
            }
        })
        .collect()
}

/// Builds the column-0 `F` stripe (always −∞: Equation (5) never reads a
/// real value there).
pub fn init_left_f<G: GapModel>(h: usize) -> Vec<Score> {
    if !G::AFFINE {
        return Vec::new();
    }
    vec![NEG_INF; h]
}

/// Runs a score-only pass of kind `K` over `q × s`.
///
/// `tb` is the vertical gap-open score applied at the top boundary; pass
/// `gap.open()` for a standalone alignment (see [`init_top_e`]).
pub fn score_pass<K, G, S>(gap: &G, subst: &S, q: &[u8], s: &[u8], tb: Score) -> PassOutput
where
    K: AlignKind,
    G: GapModel,
    S: SubstScore,
{
    let n = q.len();
    let m = s.len();

    // Degenerate rectangles: the init stripes *are* the result.
    if n == 0 || m == 0 {
        let last_h = init_top_h::<K, G>(gap, m);
        let last_e = init_top_e::<K, G>(gap, m);
        let (score, end) = match K::OPT {
            OptRegion::Corner => {
                if n == 0 {
                    (last_h[m], (0, m))
                } else {
                    (
                        if K::FREE_BEGIN {
                            0
                        } else {
                            tb + (n as Score) * gap.extend()
                        },
                        (n, 0),
                    )
                }
            }
            // Local / border optima of an empty rectangle: the empty
            // alignment (score 0) is always attainable and optimal among
            // the zero-width paths.
            OptRegion::Border | OptRegion::Anywhere => (0, (0, 0)),
        };
        return PassOutput {
            score,
            end,
            last_h,
            last_e,
        };
    }

    let top_h = init_top_h::<K, G>(gap, m);
    let top_e = init_top_e::<K, G>(gap, m);
    let left_h = init_left_h::<K, G>(gap, n, tb);
    let left_f = init_left_f::<G>(n);

    let mut out = TileOut::new();
    relax_tile::<K, G, S, _>(
        gap,
        subst,
        q,
        s,
        (1, 1),
        (n, m),
        TileIn {
            top_h: &top_h,
            top_e: &top_e,
            left_h: &left_h,
            left_f: &left_f,
        },
        &mut out,
        &mut NoSink,
    );

    let (score, end) = match K::OPT {
        OptRegion::Corner => (out.bot_h[m], (n, m)),
        OptRegion::Border | OptRegion::Anywhere => {
            let mut best = out.best;
            if matches!(K::OPT, OptRegion::Anywhere) && !K::NU_ZERO {
                // Extension-style kinds: the empty prefix alignment
                // (ending at the origin) is always available with score 0.
                best.update(0, 0, 0);
            }
            if matches!(K::OPT, OptRegion::Border) {
                // Paths ending on the initialization borders are valid
                // border endpoints too: (0, m) skips all of q (score
                // H(0,m)) and (n, 0) skips all of s. For semi-global both
                // are 0 (the empty alignment); for free-end they cost the
                // full gap. The deterministic tie-break of BestCell keeps
                // every engine consistent here.
                let h_0m = K::h_init(gap, m);
                let h_n0 = if K::FREE_BEGIN {
                    0
                } else {
                    tb + (n as Score) * gap.extend()
                };
                best.update(h_0m, 0, m);
                best.update(h_n0, n, 0);
            }
            if K::NU_ZERO && best.score <= 0 {
                // Local alignment with nothing positive: empty alignment.
                (0, (0, 0))
            } else {
                (best.score, (best.i, best.j))
            }
        }
    };

    PassOutput {
        score,
        end,
        last_h: out.bot_h,
        last_e: out.bot_e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::{FreeEnd, Global, Local, SemiGlobal};
    use crate::scoring::{simple, AffineGap, LinearGap};

    fn codes(text: &[u8]) -> Vec<u8> {
        anyseq_seq::Seq::from_ascii(text).unwrap().codes().to_vec()
    }

    #[test]
    fn global_identity_scores_all_matches() {
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let q = codes(b"ACGTACGT");
        let out = score_pass::<Global, _, _>(&gap, &subst, &q, &q, gap.open());
        assert_eq!(out.score, 16);
        assert_eq!(out.end, (8, 8));
    }

    #[test]
    fn global_known_small_case() {
        // q=GATTACA s=GCATGCU-ish classic; verify one hand-checked value:
        // q=AC s=AG with +2/-1, gap -1: H(2,2) = 1 (A=A then C/G mismatch
        // or gap-gap alternatives all give 1).
        let gap = LinearGap { gap: -1 };
        let subst = simple(2, -1);
        let out = score_pass::<Global, _, _>(&gap, &subst, &codes(b"AC"), &codes(b"AG"), 0);
        assert_eq!(out.score, 1);
    }

    #[test]
    fn global_empty_cases() {
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let q = codes(b"ACGT");
        let empty: Vec<u8> = Vec::new();
        let out = score_pass::<Global, _, _>(&gap, &subst, &empty, &q, gap.open());
        assert_eq!(out.score, -6); // open + 4*extend
        let out = score_pass::<Global, _, _>(&gap, &subst, &q, &empty, gap.open());
        assert_eq!(out.score, -6);
        let out = score_pass::<Global, _, _>(&gap, &subst, &empty, &empty, gap.open());
        assert_eq!(out.score, 0);
    }

    #[test]
    fn local_finds_embedded_match() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        // TTTT ACGT TTTT  vs  GGGG ACGT GGGG — common core ACGT
        let q = codes(b"TTTTACGTTTTT");
        let s = codes(b"GGGGACGTGGGG");
        let out = score_pass::<Local, _, _>(&gap, &subst, &q, &s, gap.open());
        // Wait: T matches the final T? The core ACGT scores 8; extending
        // with mismatches (-3) or gaps (-2) only hurts. But q has TTTT and
        // s has GGGG around it — no extension helps.
        assert_eq!(out.score, 8);
        assert_eq!(out.end, (8, 8));
    }

    #[test]
    fn local_all_mismatch_is_empty() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let out = score_pass::<Local, _, _>(&gap, &subst, &codes(b"AAAA"), &codes(b"CCCC"), 0);
        assert_eq!(out.score, 0);
        assert_eq!(out.end, (0, 0));
    }

    #[test]
    fn semiglobal_free_ends() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        // s contained in the middle of q: semi-global alignment should pay
        // nothing for the overhangs.
        let q = codes(b"TTTTACGTACGTTTTT");
        let s = codes(b"ACGTACGT");
        let out = score_pass::<SemiGlobal, _, _>(&gap, &subst, &q, &s, gap.open());
        assert_eq!(out.score, 16);
        // ends when s is exhausted (last column), at q position 12.
        assert_eq!(out.end, (12, 8));
    }

    #[test]
    fn free_end_reaches_a_border() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        // Shared prefix ACGT, then divergence. Free-end still requires one
        // sequence to be fully consumed: best is ACGT matches then a
        // 7-long query gap to the last column: 8 − 14 = −6 at (4, 11).
        let q = codes(b"ACGTTTTTTTT");
        let s = codes(b"ACGTGGGGGGG");
        let out = score_pass::<FreeEnd, _, _>(&gap, &subst, &q, &s, gap.open());
        assert_eq!(out.score, -6);
        assert_eq!(out.end, (4, 11));
    }

    #[test]
    fn extension_stops_after_shared_prefix() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        // Extension (anchored start, free end anywhere) stops right after
        // the shared prefix.
        let q = codes(b"ACGTTTTTTTT");
        let s = codes(b"ACGTGGGGGGG");
        let out = score_pass::<crate::kind::Extension, _, _>(&gap, &subst, &q, &s, gap.open());
        assert_eq!(out.score, 8);
        assert_eq!(out.end, (4, 4));
    }

    #[test]
    fn extension_all_mismatch_is_empty_prefix() {
        let gap = LinearGap { gap: -2 };
        let subst = simple(2, -3);
        let out = score_pass::<crate::kind::Extension, _, _>(
            &gap,
            &subst,
            &codes(b"AAAA"),
            &codes(b"CCCC"),
            gap.open(),
        );
        assert_eq!(out.score, 0);
        assert_eq!(out.end, (0, 0));
    }

    #[test]
    fn affine_open_zero_equals_linear() {
        let subst = simple(2, -1);
        let lin = LinearGap { gap: -1 };
        let aff = AffineGap {
            open: 0,
            extend: -1,
        };
        let q = codes(b"ACGTGGTACA");
        let s = codes(b"ACGTCGTTACA");
        let a = score_pass::<Global, _, _>(&lin, &subst, &q, &s, lin.open());
        let b = score_pass::<Global, _, _>(&aff, &subst, &q, &s, aff.open());
        assert_eq!(a.score, b.score);
        assert_eq!(a.last_h, b.last_h);
    }

    #[test]
    fn last_rows_have_expected_lengths() {
        let gap = AffineGap {
            open: -2,
            extend: -1,
        };
        let subst = simple(2, -1);
        let q = codes(b"ACGTA");
        let s = codes(b"ACG");
        let out = score_pass::<Global, _, _>(&gap, &subst, &q, &s, gap.open());
        assert_eq!(out.last_h.len(), 4);
        assert_eq!(out.last_e.len(), 3);
    }
}
