//! # anyseq-core — the generic alignment engine
//!
//! Rust reproduction of the algorithmic core of *AnySeq: A High
//! Performance Sequence Alignment Library based on Partial Evaluation*
//! (Müller et al., IPDPS 2020). The paper specializes one generic
//! dynamic-programming codebase into optimized variants via AnyDSL's
//! partial evaluator; this crate obtains the same guarantee from Rust's
//! monomorphization: alignment kind, gap model, substitution function and
//! per-cell observers are all *type* parameters, so each used combination
//! compiles into a dedicated kernel with dead branches removed.
//!
//! Layering (bottom-up):
//!
//! * [`relax`] — the single shared cell update (Equations (1), (4), (5)),
//! * [`tile`] — the tile kernel + border protocol every backend reuses,
//! * [`pass`] — linear-space score-only passes (also the Hirschberg
//!   half-pass),
//! * [`fullmatrix`] — predecessor-matrix base case with Myers–Miller
//!   boundary costs,
//! * [`hirschberg`] — linear-space traceback and the kind-specific flows,
//! * [`scheme`] — the composable user-facing API,
//! * [`oracle`] — an independent naive implementation for cross-checking.
//!
//! ```
//! use anyseq_core::prelude::*;
//! use anyseq_seq::Seq;
//!
//! let q = Seq::from_ascii(b"ACGTACGT").unwrap();
//! let s = Seq::from_ascii(b"ACGTTACGT").unwrap();
//! let scheme = global(linear(simple(2, -1), -1));
//! assert_eq!(scheme.score(&q, &s), 15);
//! let aln = scheme.align(&q, &s);
//! assert_eq!(aln.score, 15);
//! assert_eq!(aln.cigar(), "3=1D5="); // one of the equally optimal placements
//! ```

pub mod alignment;
pub mod fullmatrix;
pub mod hirschberg;
pub mod kind;
pub mod oracle;
pub mod pass;
pub mod relax;
pub mod scheme;
pub mod score;
pub mod scoring;
pub mod tile;

pub use alignment::{AlignOp, Alignment, AlignmentError};
pub use hirschberg::AlignConfig;
pub use kind::{AlignKind, Extension, FreeEnd, Global, Local, OptRegion, SemiGlobal};
pub use relax::BestCell;
pub use scheme::Scheme;
pub use score::{Score, NEG_INF};
pub use scoring::{AffineGap, GapModel, LinearGap, MatrixSubst, Scoring, SimpleSubst, SubstScore};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::alignment::{AlignOp, Alignment};
    pub use crate::hirschberg::AlignConfig;
    pub use crate::kind::{AlignKind, FreeEnd, Global, Local, SemiGlobal};
    pub use crate::scheme::{free_end, global, local, semiglobal, Scheme};
    pub use crate::score::{Score, NEG_INF};
    pub use crate::scoring::{
        affine, linear, simple, AffineGap, GapModel, LinearGap, MatrixSubst, Scoring, SimpleSubst,
        SubstScore,
    };
}
