//! Property tests: every engine agrees with the naive oracle, and every
//! traceback realizes exactly its reported score.

use anyseq_core::hirschberg::AlignConfig;
use anyseq_core::kind::{Extension, FreeEnd, Global, Local, SemiGlobal};
use anyseq_core::oracle::oracle_score;
use anyseq_core::pass::score_pass;
use anyseq_core::prelude::*;
use anyseq_core::scoring::{AffineGap, LinearGap};
use anyseq_seq::Seq;
use proptest::prelude::*;

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 0..max_len)
}

fn scoring_strategy() -> impl Strategy<Value = (i32, i32, i32, i32)> {
    // (match, mismatch, open, extend)
    (1i32..6, -6i32..0, -8i32..=0, -4i32..0)
}

macro_rules! check_kind {
    ($kind:ty, $gap:expr, $subst:expr, $q:expr, $s:expr) => {{
        let gap = $gap;
        let subst = $subst;
        let (oracle, oracle_end) = oracle_score::<$kind, _, _>(&gap, &subst, $q, $s);
        let pass = score_pass::<$kind, _, _>(&gap, &subst, $q, $s, gap.open());
        prop_assert_eq!(
            pass.score,
            oracle,
            "{} score mismatch (oracle end {:?}, pass end {:?})",
            <$kind as anyseq_core::kind::AlignKind>::NAME,
            oracle_end,
            pass.end
        );
        prop_assert_eq!(
            pass.end,
            oracle_end,
            "{} end-cell mismatch",
            <$kind as anyseq_core::kind::AlignKind>::NAME
        );
    }};
}

macro_rules! check_align {
    ($kind:ty, $gap:expr, $subst:expr, $q:expr, $s:expr, $cfg:expr) => {{
        let gap = $gap;
        let subst = $subst;
        let qs = Seq::from_codes($q.to_vec()).unwrap();
        let ss = Seq::from_codes($s.to_vec()).unwrap();
        let (oracle, _) = oracle_score::<$kind, _, _>(&gap, &subst, $q, $s);
        let aln = anyseq_core::hirschberg::align::<$kind, _, _>(
            &gap,
            &subst,
            qs.codes(),
            ss.codes(),
            $cfg,
        );
        prop_assert_eq!(
            aln.score,
            oracle,
            "{} alignment score != oracle (cigar {})",
            <$kind as anyseq_core::kind::AlignKind>::NAME,
            aln.cigar()
        );
        if let Err(e) = aln.validate::<$kind, _, _>(&qs, &ss, &gap, &subst) {
            prop_assert!(
                false,
                "{} alignment invalid: {e}",
                <$kind as anyseq_core::kind::AlignKind>::NAME
            );
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn scores_match_oracle_linear(
        q in seq_strategy(90),
        s in seq_strategy(90),
        (ma, mi, _o, e) in scoring_strategy(),
    ) {
        let gap = LinearGap { gap: e };
        let subst = simple(ma, mi);
        check_kind!(Global, gap, subst, &q, &s);
        check_kind!(Local, gap, subst, &q, &s);
        check_kind!(SemiGlobal, gap, subst, &q, &s);
        check_kind!(FreeEnd, gap, subst, &q, &s);
        check_kind!(Extension, gap, subst, &q, &s);
    }

    #[test]
    fn scores_match_oracle_affine(
        q in seq_strategy(90),
        s in seq_strategy(90),
        (ma, mi, o, e) in scoring_strategy(),
    ) {
        let gap = AffineGap { open: o, extend: e };
        let subst = simple(ma, mi);
        check_kind!(Global, gap, subst, &q, &s);
        check_kind!(Local, gap, subst, &q, &s);
        check_kind!(SemiGlobal, gap, subst, &q, &s);
        check_kind!(FreeEnd, gap, subst, &q, &s);
        check_kind!(Extension, gap, subst, &q, &s);
    }

    #[test]
    fn alignments_are_optimal_and_valid_linear(
        q in seq_strategy(70),
        s in seq_strategy(70),
        (ma, mi, _o, e) in scoring_strategy(),
        cutoff in prop_oneof![Just(8usize), Just(64), Just(1 << 18)],
    ) {
        let gap = LinearGap { gap: e };
        let subst = simple(ma, mi);
        let cfg = AlignConfig { cutoff_area: cutoff };
        check_align!(Global, gap, subst, &q, &s, &cfg);
        check_align!(Local, gap, subst, &q, &s, &cfg);
        check_align!(SemiGlobal, gap, subst, &q, &s, &cfg);
        check_align!(FreeEnd, gap, subst, &q, &s, &cfg);
    }

    #[test]
    fn alignments_are_optimal_and_valid_affine(
        q in seq_strategy(70),
        s in seq_strategy(70),
        (ma, mi, o, e) in scoring_strategy(),
        cutoff in prop_oneof![Just(8usize), Just(64), Just(1 << 18)],
    ) {
        let gap = AffineGap { open: o, extend: e };
        let subst = simple(ma, mi);
        let cfg = AlignConfig { cutoff_area: cutoff };
        check_align!(Global, gap, subst, &q, &s, &cfg);
        check_align!(Local, gap, subst, &q, &s, &cfg);
        check_align!(SemiGlobal, gap, subst, &q, &s, &cfg);
        check_align!(FreeEnd, gap, subst, &q, &s, &cfg);
        check_align!(Extension, gap, subst, &q, &s, &cfg);
    }

    #[test]
    fn affine_with_zero_open_equals_linear(
        q in seq_strategy(80),
        s in seq_strategy(80),
        (ma, mi, _o, e) in scoring_strategy(),
    ) {
        let lin = LinearGap { gap: e };
        let aff = AffineGap { open: 0, extend: e };
        let subst = simple(ma, mi);
        let a = score_pass::<Global, _, _>(&lin, &subst, &q, &s, lin.open());
        let b = score_pass::<Global, _, _>(&aff, &subst, &q, &s, aff.open());
        prop_assert_eq!(a.score, b.score);
        let a = score_pass::<Local, _, _>(&lin, &subst, &q, &s, lin.open());
        let b = score_pass::<Local, _, _>(&aff, &subst, &q, &s, aff.open());
        prop_assert_eq!(a.score, b.score);
    }

    #[test]
    fn swap_symmetry_global(
        q in seq_strategy(80),
        s in seq_strategy(80),
        (ma, mi, o, e) in scoring_strategy(),
    ) {
        // Simple scoring is symmetric, so swapping q and s preserves the
        // global score (E and F swap roles).
        let gap = AffineGap { open: o, extend: e };
        let subst = simple(ma, mi);
        let a = score_pass::<Global, _, _>(&gap, &subst, &q, &s, gap.open());
        let b = score_pass::<Global, _, _>(&gap, &subst, &s, &q, gap.open());
        prop_assert_eq!(a.score, b.score);
    }

    #[test]
    fn local_dominates_other_kinds(
        q in seq_strategy(80),
        s in seq_strategy(80),
        (ma, mi, o, e) in scoring_strategy(),
    ) {
        let gap = AffineGap { open: o, extend: e };
        let subst = simple(ma, mi);
        let g = score_pass::<Global, _, _>(&gap, &subst, &q, &s, gap.open()).score;
        let l = score_pass::<Local, _, _>(&gap, &subst, &q, &s, gap.open()).score;
        let sg = score_pass::<SemiGlobal, _, _>(&gap, &subst, &q, &s, gap.open()).score;
        let fe = score_pass::<FreeEnd, _, _>(&gap, &subst, &q, &s, gap.open()).score;
        let ex = score_pass::<Extension, _, _>(&gap, &subst, &q, &s, gap.open()).score;
        // Relaxing constraints can only help.
        prop_assert!(l >= sg, "local {l} < semiglobal {sg}");
        prop_assert!(sg >= g, "semiglobal {sg} < global {g}");
        prop_assert!(fe >= g, "free-end {fe} < global {g}");
        prop_assert!(ex >= fe, "extension {ex} < free-end {fe}");
        prop_assert!(l >= ex, "local {l} < extension {ex}");
    }

    #[test]
    fn identity_alignment_is_perfect(
        q in prop::collection::vec(0u8..4, 1..100),
        ma in 1i32..6,
    ) {
        let gap = AffineGap { open: -3, extend: -1 };
        let subst = simple(ma, -1);
        let qs = Seq::from_codes(q.clone()).unwrap();
        let scheme = anyseq_core::scheme::global(Scoring { gap, subst });
        let aln = scheme.align(&qs, &qs);
        prop_assert_eq!(aln.score, ma * q.len() as i32);
        prop_assert!(aln.ops.iter().all(|&op| op == AlignOp::Match));
    }

    #[test]
    fn traceback_gap_structure_respects_affine_pricing(
        q in seq_strategy(60),
        s in seq_strategy(60),
    ) {
        // With a very expensive open and cheap extension the traceback
        // must coalesce gaps: count the gap runs and verify the score
        // arithmetic priced them as runs, not per-base opens.
        let gap = AffineGap { open: -9, extend: -1 };
        let subst = simple(3, -2);
        let qs = Seq::from_codes(q.clone()).unwrap();
        let ss = Seq::from_codes(s.clone()).unwrap();
        let aln = anyseq_core::hirschberg::align_global(&anyseq_core::hirschberg::ScalarPass, &gap, &subst, qs.codes(), ss.codes(), &AlignConfig::default());
        if let Err(e) = aln.validate::<Global, _, _>(&qs, &ss, &gap, &subst) {
            prop_assert!(false, "invalid: {e}");
        }
    }
}

/// Deterministic regression cases distilled from the paper's setup.
#[test]
fn paper_parameterizations_agree_with_oracle() {
    let q = Seq::from_ascii(b"ACGTACGTTACGATCAGGTACCAGTTAACGT").unwrap();
    let s = Seq::from_ascii(b"ACGACGTTAGCGTCAGGACCAGTTACGT").unwrap();
    // Paper §V: +2 match, −1 mismatch, linear −1.
    let lin = LinearGap { gap: -1 };
    let subst = simple(2, -1);
    let (o, _) = oracle_score::<Global, _, _>(&lin, &subst, q.codes(), s.codes());
    assert_eq!(
        score_pass::<Global, _, _>(&lin, &subst, q.codes(), s.codes(), lin.open()).score,
        o
    );
    // Paper §V: affine Go = −2, Ge = −1.
    let aff = AffineGap {
        open: -2,
        extend: -1,
    };
    let (o, _) = oracle_score::<Global, _, _>(&aff, &subst, q.codes(), s.codes());
    assert_eq!(
        score_pass::<Global, _, _>(&aff, &subst, q.codes(), s.codes(), aff.open()).score,
        o
    );
}

/// Targeted stress: giant gaps that force vertical runs across many
/// recursion midlines (the Myers–Miller type-2 machinery).
#[test]
fn giant_gap_across_midlines() {
    for (nq, ns) in [(200usize, 3usize), (3, 200), (128, 64)] {
        let q = Seq::from_codes(vec![0u8; nq]).unwrap();
        let s = Seq::from_codes(vec![0u8; ns]).unwrap();
        for open in [-1, -5, -13] {
            let gap = AffineGap { open, extend: -1 };
            let subst = simple(2, -7);
            let cfg = AlignConfig { cutoff_area: 16 };
            let aln = anyseq_core::hirschberg::align_global(
                &anyseq_core::hirschberg::ScalarPass,
                &gap,
                &subst,
                q.codes(),
                s.codes(),
                &cfg,
            );
            let (oracle, _) = oracle_score::<Global, _, _>(&gap, &subst, q.codes(), s.codes());
            assert_eq!(aln.score, oracle, "nq={nq} ns={ns} open={open}");
            aln.validate::<Global, _, _>(&q, &s, &gap, &subst).unwrap();
        }
    }
}
