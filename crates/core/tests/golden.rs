//! Golden tests: alignment scores and tracebacks verified by hand (or
//! against well-known textbook examples), pinned exactly. These protect
//! against silent regressions that the relative (engine-vs-oracle) tests
//! cannot see, e.g. a systematic off-by-one both implementations share.

use anyseq_core::kind::{FreeEnd, Global, Local, SemiGlobal};
use anyseq_core::prelude::*;
use anyseq_seq::Seq;

fn seq(t: &[u8]) -> Seq {
    Seq::from_ascii(t).unwrap()
}

/// Classic textbook pair: GATTACA vs GCATGCT, match +1, mismatch −1,
/// linear gap −1. The global optimum is 0 (e.g. G-ATTACA / GCAT-GCT
/// variants); verified by hand against the standard NW matrix.
#[test]
fn needleman_wunsch_textbook() {
    let scheme = global(linear(simple(1, -1), -1));
    let q = seq(b"GATTACA");
    let s = seq(b"GCATGCT");
    assert_eq!(scheme.score(&q, &s), 0);
    let aln = scheme.align(&q, &s);
    assert_eq!(aln.score, 0);
    aln.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
        .unwrap();
}

/// The Smith–Waterman 1981 example shape: local alignment of
/// AAUGCCAUUGACGG vs CAGCCUCGCUUAG (as DNA), +1/−1/3 gap −1... we pin the
/// simpler canonical case TGTTACGG vs GGTTGACTA with +3/−3, gap −2
/// (Wikipedia's worked example): optimal local score 13, alignment
/// GTT-AC / GTTGAC.
#[test]
fn smith_waterman_worked_example() {
    let scheme = local(linear(simple(3, -3), -2));
    let q = seq(b"TGTTACGG");
    let s = seq(b"GGTTGACTA");
    let (score, _end) = scheme.score_with_end(&q, &s);
    assert_eq!(score, 13);
    let aln = scheme.align(&q, &s);
    assert_eq!(aln.score, 13);
    assert_eq!(aln.cigar(), "3=1D2=");
    // q region GTTAC (1..6), s region GTTGAC (1..7)
    assert_eq!((aln.q_start, aln.q_end), (1, 6));
    assert_eq!((aln.s_start, aln.s_end), (1, 7));
    aln.validate::<Local, _, _>(&q, &s, scheme.gap(), scheme.subst())
        .unwrap();
}

/// Gotoh affine example, hand-computed: q = ACACT, s = AT, open −5,
/// extend −1, match +2, mismatch −3.
/// Best: A≈A (+2), CAC deleted (−5−3), T≈T (+2) = −4.
#[test]
fn gotoh_affine_hand_computed() {
    let scheme = global(affine(simple(2, -3), -5, -1));
    let q = seq(b"ACACT");
    let s = seq(b"AT");
    assert_eq!(scheme.score(&q, &s), -4);
    let aln = scheme.align(&q, &s);
    assert_eq!(aln.cigar(), "1=3I1=");
    aln.validate::<Global, _, _>(&q, &s, scheme.gap(), scheme.subst())
        .unwrap();
}

/// Semi-global: primer contained in a template, zero-cost overhangs.
#[test]
fn semiglobal_primer_in_template() {
    let scheme = semiglobal(linear(simple(1, -2), -2));
    let template = seq(b"GGGGGGACGTACGTGGGGGG");
    let primer = seq(b"ACGTACGT");
    assert_eq!(scheme.score(&template, &primer), 8);
    let aln = scheme.align(&template, &primer);
    assert_eq!(aln.cigar(), "8=");
    assert_eq!((aln.q_start, aln.q_end), (6, 14));
    aln.validate::<SemiGlobal, _, _>(&template, &primer, scheme.gap(), scheme.subst())
        .unwrap();
}

/// Free-end: adapter detection — shared prefix then divergence; one
/// sequence must still be fully consumed.
#[test]
fn free_end_adapter() {
    let scheme = free_end(linear(simple(1, -2), -1));
    let read = seq(b"ACGTACGTTTTTTTTTTTTTTTT");
    let adapter = seq(b"ACGTACGT");
    // Adapter fully consumed at its end: 8 matches, read overhang free.
    assert_eq!(scheme.score(&read, &adapter), 8);
    let aln = scheme.align(&read, &adapter);
    assert_eq!(aln.cigar(), "8=");
    aln.validate::<FreeEnd, _, _>(&read, &adapter, scheme.gap(), scheme.subst())
        .unwrap();
}

/// Paper parameterization (+2/−1, linear −1) on a pinned random-ish pair:
/// the exact value locks the whole engine stack.
#[test]
fn paper_scoring_pinned_value() {
    let scheme = global(linear(simple(2, -1), -1));
    let q = seq(b"ACGTTGCAACGTACGTTGCA");
    let s = seq(b"ACGTGCAACGGTACGTTGA");
    assert_eq!(scheme.score(&q, &s), 33);
    let aff = global(affine(simple(2, -1), -2, -1));
    assert_eq!(aff.score(&q, &s), 27);
}

/// N bases behave like ordinary mismatching letters under SimpleSubst
/// (N == N matches!) and per-table under MatrixSubst.
#[test]
fn n_base_scoring_semantics() {
    let q = seq(b"ANNA");
    let s = seq(b"ANNA");
    assert_eq!(global(linear(simple(2, -1), -1)).score(&q, &s), 8);
    let wild = global(linear(MatrixSubst::dna(2, -1, 0), -1));
    // N columns score 0: 2 + 0 + 0 + 2
    assert_eq!(wild.score(&q, &s), 4);
}

/// Empty-vs-empty and empty-vs-nonempty across all kinds.
#[test]
fn empty_sequence_matrix() {
    let e = Seq::new();
    let a = seq(b"ACGT");
    let sc = affine(simple(2, -1), -2, -1);
    assert_eq!(global(sc).score(&e, &e), 0);
    assert_eq!(global(sc).score(&a, &e), -6);
    assert_eq!(global(sc).score(&e, &a), -6);
    assert_eq!(local(sc).score(&a, &e), 0);
    assert_eq!(semiglobal(sc).score(&e, &a), 0);
    assert_eq!(free_end(sc).score(&e, &a), 0);
    for aln in [
        global(sc).align(&a, &e),
        local(sc).align(&a, &e),
        semiglobal(sc).align(&a, &e),
    ] {
        assert!(aln.len() <= 4);
    }
}

/// Single-base cells: the smallest real DP matrix.
#[test]
fn single_base_cases() {
    let a = seq(b"A");
    let c = seq(b"C");
    let sc = affine(simple(2, -3), -2, -1);
    assert_eq!(global(sc).score(&a, &a), 2);
    assert_eq!(global(sc).score(&a, &c), -3); // mismatch beats two gaps (−6)
    assert_eq!(local(sc).score(&a, &c), 0);
    assert_eq!(semiglobal(sc).score(&a, &c), 0);
}
